//! Estimator adapters: MLP regressor/classifier over tabular datasets.
//!
//! These are the paper's "standard DNN" (IID) models (§IV-C3): simple
//! (2 hidden layers + dropout) and deep (4 hidden layers + dropout)
//! architectures, each ending in a linear (regression) or sigmoid
//! (classification) head.

use coda_data::{BoxedEstimator, ComponentError, Dataset, Estimator, ParamValue, TaskKind};
use coda_linalg::Matrix;

use crate::layer::{Activation, Dense, Dropout};
use crate::loss::Loss;
use crate::network::Sequential;
use crate::optim::Adam;

/// Network depth preset, mirroring the paper's simple/complex variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// Two hidden layers with dropout.
    Simple,
    /// Four hidden layers with dropout.
    Deep,
}

fn hidden_sizes(arch: Arch, width: usize) -> Vec<usize> {
    match arch {
        Arch::Simple => vec![width, width / 2],
        Arch::Deep => vec![width, width, width / 2, width / 2],
    }
}

fn build_mlp(
    in_dim: usize,
    arch: Arch,
    width: usize,
    dropout: f64,
    sigmoid_head: bool,
    seed: u64,
) -> Sequential {
    let mut net = Sequential::new();
    let mut cur = in_dim;
    for (i, h) in hidden_sizes(arch, width).into_iter().enumerate() {
        let h = h.max(2);
        net = net
            .push(Dense::new(cur, h, seed.wrapping_add(i as u64 * 17)))
            .push(Activation::relu())
            .push(Dropout::new(dropout, seed.wrapping_add(100 + i as u64)));
        cur = h;
    }
    net = net.push(Dense::new(cur, 1, seed.wrapping_add(999)));
    if sigmoid_head {
        net = net.push(Activation::sigmoid());
    }
    net
}

macro_rules! mlp_estimator {
    ($name:ident, $display:expr, $task:expr, $loss:expr, $sigmoid:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            arch: Arch,
            width: usize,
            dropout: f64,
            epochs: usize,
            batch_size: usize,
            learning_rate: f64,
            seed: u64,
            net: Option<Sequential>,
        }

        impl $name {
            /// Creates a simple-architecture network with training defaults
            /// (width 32, dropout 0.1, 200 epochs, batch 32, Adam 0.01).
            pub fn new() -> Self {
                $name {
                    arch: Arch::Simple,
                    width: 32,
                    dropout: 0.1,
                    epochs: 200,
                    batch_size: 32,
                    learning_rate: 0.01,
                    seed: 0,
                    net: None,
                }
            }

            /// Switches to the deep (4 hidden layer) architecture.
            pub fn deep() -> Self {
                let mut m = Self::new();
                m.arch = Arch::Deep;
                m
            }

            /// Sets the training epoch count.
            pub fn with_epochs(mut self, epochs: usize) -> Self {
                self.epochs = epochs.max(1);
                self
            }

            /// Sets the hidden width.
            pub fn with_width(mut self, width: usize) -> Self {
                self.width = width.max(2);
                self
            }

            /// Sets the initialization/shuffle seed.
            pub fn with_seed(mut self, seed: u64) -> Self {
                self.seed = seed;
                self
            }

            /// Sets the Adam learning rate.
            ///
            /// # Panics
            ///
            /// Panics if `lr <= 0`.
            pub fn with_learning_rate(mut self, lr: f64) -> Self {
                assert!(lr > 0.0, "learning rate must be positive");
                self.learning_rate = lr;
                self
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }

        impl Estimator for $name {
            fn name(&self) -> &str {
                $display
            }

            fn task(&self) -> TaskKind {
                $task
            }

            fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
                let bad = |reason: &str| ComponentError::InvalidParam {
                    component: $display.to_string(),
                    param: param.to_string(),
                    reason: reason.to_string(),
                };
                match param {
                    "epochs" => {
                        self.epochs = value
                            .as_usize()
                            .filter(|&x| x > 0)
                            .ok_or_else(|| bad("must be a positive integer"))?;
                        Ok(())
                    }
                    "width" => {
                        self.width = value
                            .as_usize()
                            .filter(|&x| x >= 2)
                            .ok_or_else(|| bad("must be an integer >= 2"))?;
                        Ok(())
                    }
                    "learning_rate" => {
                        self.learning_rate = value
                            .as_f64()
                            .filter(|&x| x > 0.0)
                            .ok_or_else(|| bad("must be positive"))?;
                        Ok(())
                    }
                    "dropout" => {
                        self.dropout = value
                            .as_f64()
                            .filter(|&x| (0.0..1.0).contains(&x))
                            .ok_or_else(|| bad("must be in [0, 1)"))?;
                        Ok(())
                    }
                    "arch" => {
                        self.arch = match value.as_str() {
                            Some("simple") => Arch::Simple,
                            Some("deep") => Arch::Deep,
                            _ => return Err(bad("must be \"simple\" or \"deep\"")),
                        };
                        Ok(())
                    }
                    _ => Err(ComponentError::UnknownParam {
                        component: self.name().to_string(),
                        param: param.to_string(),
                    }),
                }
            }

            fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
                let y = data.target_required()?;
                if data.n_samples() == 0 {
                    return Err(ComponentError::InvalidInput("empty dataset".to_string()));
                }
                if $sigmoid && y.iter().any(|&v| v != 0.0 && v != 1.0) {
                    return Err(ComponentError::InvalidInput(
                        "classifier requires 0/1 labels".to_string(),
                    ));
                }
                let mut net = build_mlp(
                    data.n_features(),
                    self.arch,
                    self.width,
                    self.dropout,
                    $sigmoid,
                    self.seed,
                );
                let ty = Matrix::from_vec(y.len(), 1, y.to_vec());
                let mut opt = Adam::new(self.learning_rate);
                net.fit(
                    data.features(),
                    &ty,
                    $loss,
                    &mut opt,
                    self.epochs,
                    self.batch_size.min(data.n_samples()),
                    self.seed,
                );
                self.net = Some(net);
                Ok(())
            }

            fn predict(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError> {
                let net = self
                    .net
                    .as_ref()
                    .ok_or_else(|| ComponentError::NotFitted(self.name().to_string()))?;
                let mut net = net.clone();
                let out = net.predict(data.features());
                if out.cols() != 1 {
                    return Err(ComponentError::Numerical(
                        "network produced non-scalar output".to_string(),
                    ));
                }
                let raw: Vec<f64> = out.col(0);
                Ok(if $sigmoid {
                    raw.into_iter().map(|p| if p >= 0.5 { 1.0 } else { 0.0 }).collect()
                } else {
                    raw
                })
            }

            fn clone_box(&self) -> BoxedEstimator {
                let mut fresh = $name::new();
                fresh.arch = self.arch;
                fresh.width = self.width;
                fresh.dropout = self.dropout;
                fresh.epochs = self.epochs;
                fresh.batch_size = self.batch_size;
                fresh.learning_rate = self.learning_rate;
                fresh.seed = self.seed;
                Box::new(fresh)
            }
        }
    };
}

mlp_estimator!(
    MlpRegressor,
    "mlp_regressor",
    TaskKind::Regression,
    Loss::Mse,
    false,
    "Feed-forward MLP regressor (the \"MLP Regression\" of Fig. 3).\n\n\
     # Examples\n\n\
     ```\n\
     use coda_data::{synth, Estimator};\n\
     use coda_nn::MlpRegressor;\n\
     let ds = synth::linear_regression(150, 3, 0.05, 2);\n\
     let mut mlp = MlpRegressor::new().with_epochs(100);\n\
     mlp.fit(&ds)?;\n\
     assert_eq!(mlp.predict(&ds)?.len(), 150);\n\
     # Ok::<(), Box<dyn std::error::Error>>(())\n\
     ```"
);

mlp_estimator!(
    MlpClassifier,
    "mlp_classifier",
    TaskKind::Classification,
    Loss::BinaryCrossEntropy,
    true,
    "Feed-forward MLP binary classifier with a sigmoid head."
);

/// MLP classifier probability output (class-1 probability per sample).
impl MlpClassifier {
    /// Probability of class 1 for each sample.
    ///
    /// # Errors
    ///
    /// [`ComponentError::NotFitted`] before fitting.
    pub fn predict_proba(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError> {
        let net =
            self.net.as_ref().ok_or_else(|| ComponentError::NotFitted(self.name().to_string()))?;
        let mut net = net.clone();
        Ok(net.predict(data.features()).col(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::{metrics, synth};

    #[test]
    fn regressor_fits_linear_relation() {
        let ds = synth::linear_regression(300, 3, 0.05, 81);
        let (train, test) = ds.train_test_split(0.25, 1);
        let mut mlp = MlpRegressor::new().with_epochs(150).with_seed(1);
        mlp.fit(&train).unwrap();
        let pred = mlp.predict(&test).unwrap();
        let r2 = metrics::r2(test.target().unwrap(), &pred).unwrap();
        assert!(r2 > 0.8, "r2 = {r2}");
    }

    #[test]
    fn classifier_separates_blobs() {
        let ds = synth::classification_blobs(200, 2, 2, 0.6, 82);
        let (train, test) = ds.train_test_split(0.3, 2);
        let mut mlp = MlpClassifier::new().with_epochs(150).with_seed(2);
        mlp.fit(&train).unwrap();
        let pred = mlp.predict(&test).unwrap();
        let acc = metrics::accuracy(test.target().unwrap(), &pred).unwrap();
        assert!(acc > 0.9, "accuracy = {acc}");
        let probs = mlp.predict_proba(&test).unwrap();
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn deep_architecture_has_more_parameters() {
        let ds = synth::linear_regression(50, 3, 0.1, 83);
        let mut simple = MlpRegressor::new().with_epochs(1);
        let mut deep = MlpRegressor::deep().with_epochs(1);
        simple.fit(&ds).unwrap();
        deep.fit(&ds).unwrap();
        let np = |m: &MlpRegressor| m.net.clone().unwrap().n_parameters();
        assert!(np(&deep) > np(&simple));
    }

    #[test]
    fn params_settable() {
        let mut mlp = MlpRegressor::new();
        mlp.set_param("epochs", ParamValue::from(50usize)).unwrap();
        mlp.set_param("width", ParamValue::from(16usize)).unwrap();
        mlp.set_param("learning_rate", ParamValue::from(0.005)).unwrap();
        mlp.set_param("dropout", ParamValue::from(0.0)).unwrap();
        mlp.set_param("arch", ParamValue::from("deep")).unwrap();
        assert!(mlp.set_param("arch", ParamValue::from("huge")).is_err());
        assert!(mlp.set_param("dropout", ParamValue::from(1.0)).is_err());
        assert!(mlp.set_param("zzz", ParamValue::from(1.0)).is_err());
    }

    #[test]
    fn errors() {
        let ds = synth::linear_regression(20, 2, 0.1, 84);
        assert!(MlpRegressor::new().predict(&ds).is_err());
        let multi = synth::classification_blobs(30, 2, 3, 0.5, 84);
        assert!(MlpClassifier::new().fit(&multi).is_err()); // non-binary labels
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = synth::linear_regression(60, 2, 0.1, 85);
        let mut a = MlpRegressor::new().with_epochs(20).with_seed(5);
        let mut b = MlpRegressor::new().with_epochs(20).with_seed(5);
        a.fit(&ds).unwrap();
        b.fit(&ds).unwrap();
        assert_eq!(a.predict(&ds).unwrap(), b.predict(&ds).unwrap());
    }
}
