/root/repo/target/release/deps/coda_timeseries-733e736cdc7dfef7.d: crates/timeseries/src/lib.rs crates/timeseries/src/deep.rs crates/timeseries/src/forecast.rs crates/timeseries/src/models.rs crates/timeseries/src/pipeline.rs crates/timeseries/src/series.rs crates/timeseries/src/window.rs

/root/repo/target/release/deps/libcoda_timeseries-733e736cdc7dfef7.rlib: crates/timeseries/src/lib.rs crates/timeseries/src/deep.rs crates/timeseries/src/forecast.rs crates/timeseries/src/models.rs crates/timeseries/src/pipeline.rs crates/timeseries/src/series.rs crates/timeseries/src/window.rs

/root/repo/target/release/deps/libcoda_timeseries-733e736cdc7dfef7.rmeta: crates/timeseries/src/lib.rs crates/timeseries/src/deep.rs crates/timeseries/src/forecast.rs crates/timeseries/src/models.rs crates/timeseries/src/pipeline.rs crates/timeseries/src/series.rs crates/timeseries/src/window.rs

crates/timeseries/src/lib.rs:
crates/timeseries/src/deep.rs:
crates/timeseries/src/forecast.rs:
crates/timeseries/src/models.rs:
crates/timeseries/src/pipeline.rs:
crates/timeseries/src/series.rs:
crates/timeseries/src/window.rs:
