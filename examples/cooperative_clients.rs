//! Cooperative data analytics (Fig. 2) plus the versioned data tier (§III):
//! several clients share one dataset, coordinate through the DARR to avoid
//! redundant pipeline evaluations, and keep their caches consistent with
//! delta-encoded updates from the home data store.
//!
//! Run with: `cargo run --release --example cooperative_clients`

use bytes::Bytes;
use coda::cluster::run_cooperative;
use coda::cluster::{run_job, ComponentRegistry, JobSpec, SpecValue};
use coda::darr::Darr;
use coda::data::{synth, CvStrategy, Metric, NoOp};
use coda::graph::TegBuilder;
use coda::ml::{
    GradientBoostingRegressor, KnnRegressor, LinearRegression, RandomForestRegressor,
    RidgeRegression, StandardScaler,
};
use coda::store::{CachingClient, HomeDataStore, PushMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: cooperative evaluation through the DARR -----------------
    let dataset = synth::friedman1(300, 6, 0.5, 11);
    let graph = TegBuilder::new()
        .add_feature_scalers(vec![Box::new(StandardScaler::new()), Box::new(NoOp::new())])
        .add_models(vec![
            Box::new(LinearRegression::new()),
            Box::new(RidgeRegression::new(1.0)),
            Box::new(KnnRegressor::new(5)),
            Box::new(RandomForestRegressor::new(15)),
            Box::new(GradientBoostingRegressor::new(30, 0.1)),
        ])
        .create_graph()?;

    for n_clients in [1usize, 2, 4] {
        let without =
            run_cooperative(&graph, &dataset, CvStrategy::kfold(5), Metric::Rmse, n_clients, false);
        let with =
            run_cooperative(&graph, &dataset, CvStrategy::kfold(5), Metric::Rmse, n_clients, true);
        println!(
            "{n_clients} clients x {} pipelines | no DARR: {:3} evaluations ({} redundant), {:7.1} ms | \
             DARR: {:3} evaluations, {} reused, {:7.1} ms",
            with.n_pipelines,
            without.total_evaluations,
            without.redundant_evaluations,
            without.wall_ms,
            with.total_evaluations,
            with.reused_results,
            with.wall_ms,
        );
    }

    // ---- Part 2: consistent caches with delta encoding -------------------
    println!("\ndata tier: delta-encoded cache synchronization");
    let mut home = HomeDataStore::new("home", 8);
    // the shared dataset serialized as bytes (one f64 per cell)
    let mut blob: Vec<u8> =
        dataset.features().as_slice().iter().flat_map(|v| v.to_le_bytes()).collect();
    home.put("dataset", Bytes::from(blob.clone()));

    let mut alice = CachingClient::new("alice");
    let mut bob = CachingClient::new("bob");
    alice.pull(&mut home, "dataset")?;
    bob.pull(&mut home, "dataset")?;
    println!("initial pulls: {} bytes each", alice.bytes_received);

    // bob subscribes to delta pushes; alice polls
    home.subscribe("bob", "dataset", PushMode::Delta, 1_000);

    // a sensor appends a few new readings (small update)
    for b in blob.iter_mut().take(64) {
        *b ^= 0xA5;
    }
    let (v2, pushes) = home.put("dataset", Bytes::from(blob.clone()));
    for push in &pushes {
        println!("push to {}: {} bytes (version {v2})", push.client(), push.wire_size());
        bob.apply_push(push)?;
    }
    let alice_before = alice.bytes_received;
    alice.pull(&mut home, "dataset")?;
    println!(
        "alice delta pull: {} bytes (full copy would be {} bytes)",
        alice.bytes_received - alice_before,
        blob.len()
    );
    assert_eq!(alice.held_version("dataset"), Some(v2));
    assert_eq!(bob.held_version("dataset"), Some(v2));
    let stats = home.stats();
    println!(
        "home store totals: {} messages, {} bytes, {} full, {} delta",
        stats.messages, stats.bytes, stats.full_transfers, stats.delta_transfers
    );

    // ---- Part 3: structured calculations as data --------------------------
    // A job spec is pure JSON any client can submit; the registry resolves
    // component names to the pre-defined catalog, and the DARR deduplicates.
    println!("\nstructured calculations via the component registry");
    let registry = ComponentRegistry::standard();
    let mut params = std::collections::BTreeMap::new();
    params.insert("pca__n_components".to_string(), SpecValue::Int(4));
    let spec = JobSpec {
        dataset_id: "friedman".to_string(),
        dataset_version: 1,
        steps: vec![
            "standard_scaler".to_string(),
            "pca".to_string(),
            "random_forest_regressor".to_string(),
        ],
        params,
        cv_folds: 4,
        metric: "rmse".to_string(),
    };
    println!("spec json: {}", spec.to_json());
    let darr = Darr::new();
    let record = run_job(&registry, &spec, &dataset, &darr, "alice")?;
    println!("alice computed: rmse {:.4} over {} folds", record.score, record.fold_scores.len());
    let reused = run_job(&registry, &spec, &dataset, &darr, "bob")?;
    println!("bob reused {}'s result; darr now holds {} record(s)", reused.producer, darr.len());
    // the repository snapshot travels between sites as plain JSON lines
    let snapshot = darr.export_records();
    let mirror = Darr::new();
    mirror.import_records(&snapshot)?;
    println!("mirror restored {} record(s) from the snapshot", mirror.len());
    Ok(())
}
