//! Parameter grids: the `node__param` hyper-parameter sweep of §IV.

use std::collections::BTreeSet;

use coda_data::{ParamValue, Params};

/// Restricts qualified `node__param` assignments to the nodes named in
/// `names` — the params that actually touch one path (or prefix) of a
/// graph. Unqualified keys are dropped. This is the canonicalization used
/// both for per-path grid deduplication and for prefix cache keys, so one
/// definition keeps the two in lockstep.
pub fn restrict_params(params: &Params, names: &BTreeSet<&str>) -> Params {
    params
        .iter()
        .filter(|(k, _)| {
            coda_data::traits::split_param_key(k).map(|(n, _)| names.contains(n)).unwrap_or(false)
        })
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

/// A grid of qualified parameter values; [`ParamGrid::expand`] produces the
/// cartesian product as concrete [`Params`] assignments.
///
/// # Examples
///
/// ```
/// use coda_core::ParamGrid;
///
/// let mut grid = ParamGrid::new();
/// grid.add("pca__n_components", vec![2usize.into(), 3usize.into()]);
/// grid.add("knn_regressor__k", vec![1usize.into(), 5usize.into(), 9usize.into()]);
/// assert_eq!(grid.expand().len(), 6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParamGrid {
    entries: Vec<(String, Vec<ParamValue>)>,
}

impl ParamGrid {
    /// Creates an empty grid (expands to one empty assignment).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a qualified parameter and its candidate values. Empty value
    /// lists are ignored. Re-adding a key replaces its values.
    pub fn add<S: Into<String>>(&mut self, key: S, values: Vec<ParamValue>) -> &mut Self {
        if values.is_empty() {
            return self;
        }
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = values;
        } else {
            self.entries.push((key, values));
        }
        self
    }

    /// Number of parameters in the grid.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of assignments the grid expands to.
    pub fn n_assignments(&self) -> usize {
        self.entries.iter().map(|(_, v)| v.len()).product()
    }

    /// The cartesian product of all parameter values.
    pub fn expand(&self) -> Vec<Params> {
        let mut out: Vec<Params> = vec![Params::new()];
        for (key, values) in &self.entries {
            let mut next = Vec::with_capacity(out.len() * values.len());
            for assignment in &out {
                for v in values {
                    let mut a = assignment.clone();
                    a.insert(key.clone(), v.clone());
                    next.push(a);
                }
            }
            out = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grid_single_empty_assignment() {
        let g = ParamGrid::new();
        assert!(g.is_empty());
        assert_eq!(g.n_assignments(), 1);
        let e = g.expand();
        assert_eq!(e.len(), 1);
        assert!(e[0].is_empty());
    }

    #[test]
    fn cartesian_product() {
        let mut g = ParamGrid::new();
        g.add("a__x", vec![1i64.into(), 2i64.into()]);
        g.add("b__y", vec![0.1.into(), 0.2.into(), 0.3.into()]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.n_assignments(), 6);
        let e = g.expand();
        assert_eq!(e.len(), 6);
        // every combination appears exactly once
        let mut keys: Vec<String> =
            e.iter().map(|p| format!("{:?}{:?}", p["a__x"], p["b__y"])).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn re_adding_replaces() {
        let mut g = ParamGrid::new();
        g.add("a__x", vec![1i64.into(), 2i64.into()]);
        g.add("a__x", vec![5i64.into()]);
        assert_eq!(g.n_assignments(), 1);
        assert_eq!(g.expand()[0]["a__x"], ParamValue::I64(5));
    }

    #[test]
    fn empty_values_ignored() {
        let mut g = ParamGrid::new();
        g.add("a__x", vec![]);
        assert!(g.is_empty());
    }

    #[test]
    fn restrict_params_filters_by_node() {
        let mut p = Params::new();
        p.insert("pca__n_components".to_string(), ParamValue::from(2usize));
        p.insert("knn__k".to_string(), ParamValue::from(5usize));
        p.insert("unqualified".to_string(), ParamValue::from(1usize));
        let names: BTreeSet<&str> = ["pca", "scaler"].into_iter().collect();
        let r = restrict_params(&p, &names);
        assert_eq!(r.len(), 1);
        assert!(r.contains_key("pca__n_components"));
    }
}
