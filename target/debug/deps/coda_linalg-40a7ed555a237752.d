/root/repo/target/debug/deps/coda_linalg-40a7ed555a237752.d: crates/linalg/src/lib.rs crates/linalg/src/decomp.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/libcoda_linalg-40a7ed555a237752.rlib: crates/linalg/src/lib.rs crates/linalg/src/decomp.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/libcoda_linalg-40a7ed555a237752.rmeta: crates/linalg/src/lib.rs crates/linalg/src/decomp.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/decomp.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/stats.rs:
