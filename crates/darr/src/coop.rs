//! Cooperative evaluation driver: a client works through a list of
//! computations against the DARR, reusing stored results, claiming untried
//! ones, and computing only what no other client has covered — the
//! cooperation protocol of Fig. 2.

use coda_chaos::{RetryPolicy, RetryStats};
use coda_core::CacheStats;
use coda_obs::{Obs, SpanContext};

use crate::record::{AnalyticsRecord, ComputationKey};
use crate::repo::{ClaimOutcome, Darr};

/// What happened for one computation in a cooperative pass.
#[derive(Debug, Clone, PartialEq)]
pub enum CoopOutcome {
    /// The client computed it (held the claim).
    Computed(AnalyticsRecord),
    /// A stored result was reused — a redundant computation avoided.
    Reused(AnalyticsRecord),
    /// Another client holds the claim; skipped for now.
    SkippedHeld(String),
    /// The computation failed; the claim was released.
    Failed(String),
}

/// Accounting from a retry-aware worklist pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RetryReport {
    /// Aggregated retry/backoff accounting over all deferred keys.
    pub stats: RetryStats,
    /// Keys this client computed after another client's claim lease
    /// expired (takeovers of presumed-dead owners).
    pub takeovers: usize,
}

impl coda_obs::Publish for RetryReport {
    fn publish(&self, registry: &coda_obs::MetricsRegistry) {
        self.stats.publish(registry);
        registry.count("coda_darr_takeovers", self.takeovers as u64);
    }
}

/// Per-client counters from a cooperative pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoopSummary {
    /// Computations this client performed.
    pub computed: usize,
    /// Results reused from the DARR.
    pub reused: usize,
    /// Computations skipped because another client held the claim.
    pub skipped: usize,
    /// Failures.
    pub failed: usize,
}

impl coda_obs::Publish for CoopSummary {
    fn publish(&self, registry: &coda_obs::MetricsRegistry) {
        registry.count("coda_darr_computed", self.computed as u64);
        registry.count("coda_darr_reused", self.reused as u64);
        registry.count("coda_darr_skipped_held", self.skipped as u64);
        registry.count("coda_darr_failed", self.failed as u64);
    }
}

/// A cooperating client bound to a shared [`Darr`].
#[derive(Debug)]
pub struct CooperativeClient<'a> {
    darr: &'a Darr,
    name: String,
    claim_duration: u64,
    obs: Option<Obs>,
}

impl<'a> CooperativeClient<'a> {
    /// Creates a client named `name` with the given claim lease duration.
    pub fn new<S: Into<String>>(darr: &'a Darr, name: S, claim_duration: u64) -> Self {
        CooperativeClient { darr, name: name.into(), claim_duration, obs: None }
    }

    /// Attaches an observability handle: per-key outcomes, takeovers and
    /// warm-start skips count live into its registry under `coda_darr_*`
    /// names, and each processed key is traced as a `darr.process` span.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    fn obs_count(&self, name: &str, n: u64) {
        if let Some(o) = &self.obs {
            o.count(name, n);
        }
    }

    /// The client's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Processes one computation: reuse, claim + compute, or skip.
    /// `compute` runs only when the claim is held and returns
    /// `(score, fold_scores, explanation)` or an error message.
    pub fn process<F>(&self, key: &ComputationKey, compute: F) -> CoopOutcome
    where
        F: FnOnce() -> Result<(f64, Vec<f64>, String), String>,
    {
        self.process_in(key, None, compute)
    }

    /// [`CooperativeClient::process`] inside a causal trace: the
    /// `darr.process` span becomes a child of the carried `parent`
    /// context (a dispatching job, a chaos driver's attempt, …), and the
    /// span's own context propagates into the repository's claim and
    /// complete operations — so the whole reuse/claim/compute story for
    /// one key reads as a single subtree.
    pub fn process_in<F>(
        &self,
        key: &ComputationKey,
        parent: Option<SpanContext>,
        compute: F,
    ) -> CoopOutcome
    where
        F: FnOnce() -> Result<(f64, Vec<f64>, String), String>,
    {
        let span = self.obs.as_ref().map(|o| {
            o.tracer().span_with_parent(
                parent,
                "darr.process",
                &[("client", &self.name), ("key", &key.pipeline)],
            )
        });
        let ctx = span.as_ref().map(|s| s.context()).or(parent);
        let outcome =
            match self.darr.try_claim_in(key, &self.name, self.claim_duration, ctx) {
                ClaimOutcome::AlreadyComputed(record) => CoopOutcome::Reused(record),
                ClaimOutcome::HeldBy(owner) => CoopOutcome::SkippedHeld(owner),
                ClaimOutcome::Claimed => match compute() {
                    Ok((score, folds, explanation)) => CoopOutcome::Computed(
                        self.darr.complete_in(key, &self.name, score, folds, &explanation, ctx),
                    ),
                    Err(e) => {
                        self.darr.release_claim(key, &self.name);
                        CoopOutcome::Failed(e)
                    }
                },
            };
        let metric = match &outcome {
            CoopOutcome::Computed(_) => "coda_darr_computed",
            CoopOutcome::Reused(_) => "coda_darr_reused",
            CoopOutcome::SkippedHeld(_) => "coda_darr_skipped_held",
            CoopOutcome::Failed(_) => "coda_darr_failed",
        };
        self.obs_count(metric, 1);
        outcome
    }

    /// Runs a full work list, returning the summary and per-key outcomes.
    pub fn run_worklist<F>(
        &self,
        keys: &[ComputationKey],
        mut compute: F,
    ) -> (CoopSummary, Vec<CoopOutcome>)
    where
        F: FnMut(&ComputationKey) -> Result<(f64, Vec<f64>, String), String>,
    {
        let mut summary = CoopSummary::default();
        let mut outcomes = Vec::with_capacity(keys.len());
        for key in keys {
            let outcome = self.process(key, || compute(key));
            match &outcome {
                CoopOutcome::Computed(_) => summary.computed += 1,
                CoopOutcome::Reused(_) => summary.reused += 1,
                CoopOutcome::SkippedHeld(_) => summary.skipped += 1,
                CoopOutcome::Failed(_) => summary.failed += 1,
            }
            outcomes.push(outcome);
        }
        (summary, outcomes)
    }

    /// Resolves the keys whose exact computation key already has a record
    /// in the DARR — the warm-start set — without generating any claim
    /// traffic. Returns the resolved `(index, record)` pairs, the indices
    /// still needing work (both in original `keys` order), and
    /// [`CacheStats`] accounting each resolution as a `warm_start_skip`.
    pub fn warm_start(
        &self,
        keys: &[ComputationKey],
    ) -> (Vec<(usize, AnalyticsRecord)>, Vec<usize>, CacheStats) {
        let mut resolved = Vec::new();
        let mut remaining = Vec::new();
        for (idx, key) in keys.iter().enumerate() {
            match self.darr.lookup(key) {
                Some(record) => resolved.push((idx, record)),
                None => remaining.push(idx),
            }
        }
        let stats = CacheStats { warm_start_skips: resolved.len() as u64, ..CacheStats::default() };
        self.obs_count("coda_darr_warm_start_skips", resolved.len() as u64);
        (resolved, remaining, stats)
    }

    /// Like [`CooperativeClient::run_worklist`], but with a warm-start
    /// pass first: keys whose exact spec key already has a local record
    /// resolve to [`CoopOutcome::Reused`] immediately (no claim traffic),
    /// and only the remainder goes through the claim/compute protocol.
    /// Outcomes come back in the original `keys` order; the returned
    /// [`CacheStats`] counts one `warm_start_skip` per job skipped.
    pub fn run_worklist_warm<F>(
        &self,
        keys: &[ComputationKey],
        mut compute: F,
    ) -> (CoopSummary, Vec<CoopOutcome>, CacheStats)
    where
        F: FnMut(&ComputationKey) -> Result<(f64, Vec<f64>, String), String>,
    {
        let (resolved, remaining, stats) = self.warm_start(keys);
        let cold: Vec<ComputationKey> = remaining.iter().map(|&i| keys[i].clone()).collect();
        let (mut summary, cold_outcomes) = self.run_worklist(&cold, &mut compute);
        summary.reused += resolved.len();
        let mut outcomes: Vec<Option<CoopOutcome>> = vec![None; keys.len()];
        for (idx, record) in resolved {
            outcomes[idx] = Some(CoopOutcome::Reused(record));
        }
        for (&idx, outcome) in remaining.iter().zip(cold_outcomes) {
            outcomes[idx] = Some(outcome);
        }
        let outcomes = outcomes.into_iter().map(Option::unwrap).collect();
        (summary, outcomes, stats)
    }

    /// Like [`CooperativeClient::run_worklist`], but keys skipped because
    /// another client held the claim are *revisited* under `policy`: each
    /// retry backs off by advancing the shared DARR clock (so the holder's
    /// lease can expire), then reclaims. A key whose holder finished in the
    /// meantime resolves to `Reused`; a key whose holder's lease expired is
    /// taken over and `Computed` here. Keys still held when the policy
    /// exhausts stay `SkippedHeld`.
    pub fn run_worklist_with_retry<F>(
        &self,
        keys: &[ComputationKey],
        mut compute: F,
        policy: &RetryPolicy,
    ) -> (CoopSummary, Vec<CoopOutcome>, RetryReport)
    where
        F: FnMut(&ComputationKey) -> Result<(f64, Vec<f64>, String), String>,
    {
        let (mut summary, mut outcomes) = self.run_worklist(keys, &mut compute);
        let mut report = RetryReport::default();
        for idx in 0..outcomes.len() {
            if !matches!(outcomes[idx], CoopOutcome::SkippedHeld(_)) {
                continue;
            }
            let key = &keys[idx];
            let mut state = policy.state();
            state.begin_attempt(); // the first pass was attempt 1
            let resolved = loop {
                let Some(backoff) = state.next_backoff_ms() else {
                    break None;
                };
                // back off in DARR logical time so the holder's lease ages
                self.darr.advance_clock(backoff.ceil() as u64);
                state.begin_attempt();
                match self.process(key, || compute(key)) {
                    CoopOutcome::SkippedHeld(_) => continue,
                    other => break Some(other),
                }
            };
            match resolved {
                Some(outcome) => {
                    match &outcome {
                        CoopOutcome::Computed(_) => {
                            summary.skipped -= 1;
                            summary.computed += 1;
                            report.takeovers += 1;
                            self.obs_count("coda_darr_takeovers", 1);
                        }
                        CoopOutcome::Reused(_) => {
                            summary.skipped -= 1;
                            summary.reused += 1;
                        }
                        CoopOutcome::Failed(_) => {
                            summary.skipped -= 1;
                            summary.failed += 1;
                        }
                        // the retry loop only breaks on non-held outcomes;
                        // if that ever changes the key simply stays skipped
                        CoopOutcome::SkippedHeld(_) => {}
                    }
                    report.stats.merge(&state.finish(true));
                    outcomes[idx] = outcome;
                }
                None => report.stats.merge(&state.finish(false)),
            }
        }
        (summary, outcomes, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn keys(n: usize) -> Vec<ComputationKey> {
        (0..n)
            .map(|i| ComputationKey::new("ds", 1, &format!("p{i}") as &str, "kfold(3)", "rmse"))
            .collect()
    }

    #[test]
    fn single_client_computes_everything_once() {
        let darr = Darr::new();
        let client = CooperativeClient::new(&darr, "a", 100);
        let work = keys(5);
        let (summary, _) = client
            .run_worklist(&work, |k| Ok((k.pipeline.len() as f64, vec![], "test".to_string())));
        assert_eq!(summary.computed, 5);
        // a second pass reuses all five
        let (summary2, outcomes) = client.run_worklist(&work, |_| unreachable!());
        assert_eq!(summary2.reused, 5);
        assert!(matches!(outcomes[0], CoopOutcome::Reused(_)));
    }

    #[test]
    fn two_clients_partition_the_work() {
        let darr = Darr::new();
        let a = CooperativeClient::new(&darr, "a", 100);
        let b = CooperativeClient::new(&darr, "b", 100);
        let work = keys(10);
        let (sa, _) = a.run_worklist(&work[..6], |_| Ok((0.0, vec![], String::new())));
        let (sb, _) = b.run_worklist(&work, |_| Ok((0.0, vec![], String::new())));
        assert_eq!(sa.computed, 6);
        assert_eq!(sb.computed, 4);
        assert_eq!(sb.reused, 6);
        // total computations equal the distinct work items
        assert_eq!(darr.len(), 10);
    }

    #[test]
    fn failure_releases_claim_for_others() {
        let darr = Darr::new();
        let a = CooperativeClient::new(&darr, "a", 100);
        let b = CooperativeClient::new(&darr, "b", 100);
        let k = &keys(1)[0];
        let outcome = a.process(k, || Err("boom".to_string()));
        assert!(matches!(outcome, CoopOutcome::Failed(_)));
        // b can immediately claim and finish
        let outcome = b.process(k, || Ok((1.0, vec![], String::new())));
        assert!(matches!(outcome, CoopOutcome::Computed(_)));
    }

    #[test]
    fn held_claim_is_skipped() {
        let darr = Darr::new();
        let k = &keys(1)[0];
        darr.try_claim(k, "other", 100);
        let a = CooperativeClient::new(&darr, "a", 100);
        let outcome = a.process(k, || unreachable!());
        assert_eq!(outcome, CoopOutcome::SkippedHeld("other".to_string()));
    }

    #[test]
    fn retry_takes_over_expired_claim() {
        use coda_chaos::RetryPolicy;
        let darr = Darr::new();
        let work = keys(1);
        // a client that died mid-compute holds the claim for 50 ticks
        darr.try_claim(&work[0], "dead", 50);
        let a = CooperativeClient::new(&darr, "a", 100);
        let policy = RetryPolicy::fixed(30.0, 5);
        let (summary, outcomes, report) =
            a.run_worklist_with_retry(&work, |_| Ok((1.0, vec![], String::new())), &policy);
        assert_eq!(summary.computed, 1);
        assert_eq!(summary.skipped, 0);
        assert_eq!(report.takeovers, 1);
        assert!(report.stats.retries >= 1);
        assert!(matches!(outcomes[0], CoopOutcome::Computed(_)));
        assert_eq!(darr.lookup(&work[0]).unwrap().producer, "a");
    }

    #[test]
    fn retry_reuses_result_finished_by_holder() {
        use coda_chaos::RetryPolicy;
        let darr = Darr::new();
        let work = keys(2);
        // "other" holds p1 and finishes it while we compute p0
        darr.try_claim(&work[1], "other", 1000);
        let a = CooperativeClient::new(&darr, "a", 100);
        let policy = RetryPolicy::fixed(10.0, 4);
        let (summary, outcomes, report) = a.run_worklist_with_retry(
            &work,
            |k| {
                if k == &work[0] {
                    darr.complete(&work[1], "other", 0.7, vec![], "done elsewhere");
                }
                Ok((1.0, vec![], String::new()))
            },
            &policy,
        );
        assert_eq!(summary.computed, 1);
        assert_eq!(summary.reused, 1);
        assert_eq!(report.takeovers, 0, "a reuse is not a takeover");
        assert!(matches!(outcomes[1], CoopOutcome::Reused(_)));
    }

    #[test]
    fn retry_exhausts_against_live_holder() {
        use coda_chaos::RetryPolicy;
        let darr = Darr::new();
        let work = keys(1);
        darr.try_claim(&work[0], "busy", 1_000_000);
        let a = CooperativeClient::new(&darr, "a", 100);
        let policy = RetryPolicy::fixed(10.0, 3);
        let (summary, outcomes, report) =
            a.run_worklist_with_retry(&work, |_| unreachable!(), &policy);
        assert_eq!(summary.skipped, 1);
        assert_eq!(report.takeovers, 0);
        assert_eq!(report.stats.exhausted, 1);
        assert!(matches!(outcomes[0], CoopOutcome::SkippedHeld(_)));
    }

    #[test]
    fn warm_start_partitions_known_and_unknown_keys() {
        let darr = Darr::new();
        let client = CooperativeClient::new(&darr, "a", 100);
        let work = keys(4);
        // records already exist for keys 1 and 3
        darr.try_claim(&work[1], "earlier", 100);
        darr.complete(&work[1], "earlier", 0.5, vec![], "old");
        darr.try_claim(&work[3], "earlier", 100);
        darr.complete(&work[3], "earlier", 0.9, vec![], "old");
        let (resolved, remaining, stats) = client.warm_start(&work);
        assert_eq!(resolved.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(remaining, vec![0, 2]);
        assert_eq!(stats.warm_start_skips, 2);
        assert_eq!(stats.hits + stats.misses, 0, "warm start is not a prefix lookup");
    }

    #[test]
    fn warm_worklist_skips_known_keys_without_claim_traffic() {
        let darr = Darr::new();
        let client = CooperativeClient::new(&darr, "a", 100);
        let work = keys(5);
        darr.try_claim(&work[2], "earlier", 100);
        darr.complete(&work[2], "earlier", 0.5, vec![], "old");
        let computed = Arc::new(AtomicUsize::new(0));
        let computed2 = Arc::clone(&computed);
        let (summary, outcomes, stats) = client.run_worklist_warm(&work, |_| {
            computed2.fetch_add(1, Ordering::SeqCst);
            Ok((1.0, vec![], String::new()))
        });
        assert_eq!(computed.load(Ordering::SeqCst), 4, "only cold keys computed");
        assert_eq!(summary.computed, 4);
        assert_eq!(summary.reused, 1);
        assert_eq!(stats.warm_start_skips, 1);
        assert_eq!(outcomes.len(), 5, "outcomes stay in original key order");
        for (i, outcome) in outcomes.iter().enumerate() {
            if i == 2 {
                assert!(matches!(outcome, CoopOutcome::Reused(r) if r.producer == "earlier"));
            } else {
                assert!(matches!(outcome, CoopOutcome::Computed(_)));
            }
        }
    }

    #[test]
    fn warm_worklist_on_empty_darr_is_all_cold() {
        let darr = Darr::new();
        let client = CooperativeClient::new(&darr, "a", 100);
        let work = keys(3);
        let (summary, _, stats) =
            client.run_worklist_warm(&work, |_| Ok((1.0, vec![], String::new())));
        assert_eq!(summary.computed, 3);
        assert_eq!(stats.warm_start_skips, 0);
    }

    #[test]
    fn process_in_traces_the_whole_key_as_one_subtree() {
        use coda_obs::{Obs, TraceForest};
        let obs = Obs::deterministic();
        let darr = Darr::new();
        darr.attach_obs(obs.clone());
        let client = CooperativeClient::new(&darr, "a", 100).with_obs(obs.clone());
        let job = obs.tracer().begin_span("cluster.job", None, &[]);
        let outcome =
            client.process_in(&keys(1)[0], Some(job), || Ok((1.0, vec![], String::new())));
        obs.tracer().end_span(job, &[]);
        assert!(matches!(outcome, CoopOutcome::Computed(_)));
        let forest = TraceForest::from_events(&obs.tracer().events());
        assert!(forest.orphans().is_empty());
        assert_eq!(forest.unresolved_points(), 0);
        let process = forest.spans().find(|s| s.name == "darr.process").unwrap();
        assert_eq!(process.parent, Some(job.span_id));
        for name in ["darr.claim", "darr.complete"] {
            let span = forest.spans().find(|s| s.name == name).unwrap();
            assert_eq!(span.parent, Some(process.ctx.span_id), "{name} nests under the process");
            assert_eq!(span.ctx.trace_id, job.trace_id, "one trace end to end");
        }
    }

    #[test]
    fn concurrent_clients_never_duplicate_work() {
        let darr = Arc::new(Darr::new());
        let computations = Arc::new(AtomicUsize::new(0));
        let work = keys(50);
        let mut handles = Vec::new();
        for t in 0..6 {
            let darr = Arc::clone(&darr);
            let computations = Arc::clone(&computations);
            let work = work.clone();
            handles.push(std::thread::spawn(move || {
                let client = CooperativeClient::new(&darr, format!("c{t}"), 1000);
                client.run_worklist(&work, |_| {
                    computations.fetch_add(1, Ordering::SeqCst);
                    Ok((0.0, vec![], String::new()))
                })
            }));
        }
        let mut total_effective = 0usize;
        for h in handles {
            let (s, _) = h.join().unwrap();
            assert_eq!(s.failed, 0);
            total_effective += s.computed + s.reused + s.skipped;
        }
        // with cooperation the total actual computations equal the work size
        assert_eq!(computations.load(Ordering::SeqCst), 50);
        assert_eq!(total_effective, 6 * 50);
        assert_eq!(darr.len(), 50);
    }
}
