//! Gaussian naive Bayes classification.

use coda_data::{BoxedEstimator, ComponentError, Dataset, Estimator, TaskKind};

/// Per-class Gaussian parameters.
#[derive(Debug, Clone)]
struct ClassModel {
    label: f64,
    log_prior: f64,
    means: Vec<f64>,
    vars: Vec<f64>,
}

/// Gaussian naive Bayes: per-class per-feature normal likelihoods with a
/// variance floor for numerical stability.
///
/// # Examples
///
/// ```
/// use coda_data::{synth, Estimator};
/// use coda_ml::GaussianNb;
///
/// let ds = synth::classification_blobs(200, 3, 2, 0.5, 8);
/// let mut nb = GaussianNb::new();
/// nb.fit(&ds)?;
/// let acc = coda_data::metrics::accuracy(ds.target().unwrap(), &nb.predict(&ds)?)?;
/// assert!(acc > 0.9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    classes: Vec<ClassModel>,
}

impl GaussianNb {
    /// Creates an unfitted Gaussian naive Bayes classifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-class log joint likelihoods for each sample (one inner vec per
    /// sample, ordered as the fitted classes).
    ///
    /// # Errors
    ///
    /// [`ComponentError::NotFitted`] before fitting.
    pub fn log_likelihoods(&self, data: &Dataset) -> Result<Vec<Vec<f64>>, ComponentError> {
        if self.classes.is_empty() {
            return Err(ComponentError::NotFitted(self.name().to_string()));
        }
        if self.classes[0].means.len() != data.n_features() {
            return Err(ComponentError::InvalidInput(format!(
                "model fitted on {} features, input has {}",
                self.classes[0].means.len(),
                data.n_features()
            )));
        }
        let ln_2pi = (2.0 * std::f64::consts::PI).ln();
        Ok(data
            .features()
            .iter_rows()
            .map(|row| {
                self.classes
                    .iter()
                    .map(|cm| {
                        let mut ll = cm.log_prior;
                        for ((x, m), v) in row.iter().zip(&cm.means).zip(&cm.vars) {
                            ll += -0.5 * (ln_2pi + v.ln() + (x - m) * (x - m) / v);
                        }
                        ll
                    })
                    .collect()
            })
            .collect())
    }
}

impl Estimator for GaussianNb {
    fn name(&self) -> &str {
        "gaussian_nb"
    }

    fn task(&self) -> TaskKind {
        TaskKind::Classification
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        let y = data.target_required()?;
        if data.n_samples() == 0 {
            return Err(ComponentError::InvalidInput("empty dataset".to_string()));
        }
        let labels = data.classes()?;
        let n = data.n_samples() as f64;
        let x = data.features();
        // variance floor proportional to the largest feature variance
        let mut max_var = 0.0f64;
        for c in 0..x.cols() {
            max_var = max_var.max(coda_linalg::variance(&x.col(c)));
        }
        let floor = (1e-9 * max_var).max(1e-12);
        self.classes = labels
            .into_iter()
            .map(|label| {
                let idx: Vec<usize> = (0..y.len()).filter(|&i| y[i] == label).collect();
                let sub = data.select(&idx);
                let sx = sub.features();
                let means = sx.column_means();
                let vars: Vec<f64> =
                    (0..sx.cols()).map(|c| coda_linalg::variance(&sx.col(c)).max(floor)).collect();
                ClassModel { label, log_prior: (idx.len() as f64 / n).ln(), means, vars }
            })
            .collect();
        Ok(())
    }

    fn predict(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError> {
        let lls = self.log_likelihoods(data)?;
        Ok(lls
            .into_iter()
            .map(|row| {
                let mut best = 0usize;
                for (i, v) in row.iter().enumerate() {
                    if *v > row[best] {
                        best = i;
                    }
                }
                self.classes[best].label
            })
            .collect())
    }

    fn clone_box(&self) -> BoxedEstimator {
        Box::new(GaussianNb::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::{metrics, synth};

    #[test]
    fn separates_blobs_multiclass() {
        let ds = synth::classification_blobs(300, 3, 4, 0.5, 61);
        let (train, test) = ds.train_test_split(0.3, 10);
        let mut nb = GaussianNb::new();
        nb.fit(&train).unwrap();
        let pred = nb.predict(&test).unwrap();
        assert!(metrics::accuracy(test.target().unwrap(), &pred).unwrap() > 0.9);
    }

    #[test]
    fn priors_affect_decisions() {
        // overlapping classes, 90/10 imbalance: bayes should favour majority
        let ds = synth::imbalanced_binary(1000, 2, 0.1, 62);
        let mut nb = GaussianNb::new();
        nb.fit(&ds).unwrap();
        let pred = nb.predict(&ds).unwrap();
        let pred_pos = pred.iter().filter(|&&v| v == 1.0).count();
        let true_pos = ds.target().unwrap().iter().filter(|&&v| v == 1.0).count();
        // predicted positives should be in the same ballpark as the truth,
        // not half the dataset
        assert!(pred_pos < true_pos * 3);
    }

    #[test]
    fn log_likelihoods_finite_with_constant_feature() {
        let base = synth::classification_blobs(60, 2, 2, 0.5, 63);
        // append a constant column (zero variance)
        let ones = coda_linalg::Matrix::filled(60, 1, 1.0);
        let x = base.features().hstack(&ones).unwrap();
        let ds = base.replace_features(x);
        let mut nb = GaussianNb::new();
        nb.fit(&ds).unwrap();
        let lls = nb.log_likelihoods(&ds).unwrap();
        assert!(lls.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn errors() {
        let ds = synth::classification_blobs(30, 2, 2, 0.5, 64);
        assert!(GaussianNb::new().predict(&ds).is_err());
        let mut nb = GaussianNb::new();
        nb.fit(&ds).unwrap();
        let other = synth::classification_blobs(10, 5, 2, 0.5, 64);
        assert!(nb.predict(&other).is_err());
    }

    #[test]
    fn predictions_are_training_labels() {
        let ds = synth::classification_blobs(90, 2, 3, 0.4, 65);
        let mut nb = GaussianNb::new();
        nb.fit(&ds).unwrap();
        let classes = ds.classes().unwrap();
        for p in nb.predict(&ds).unwrap() {
            assert!(classes.contains(&p));
        }
    }
}
