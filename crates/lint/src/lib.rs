//! `coda-lint` — workspace invariant checker (DESIGN.md §10).
//!
//! Five whole-workspace static analyses over a hand-rolled token stream
//! (the offline build vendors no `syn`):
//!
//! 1. **Determinism** ([`determinism`]) — no wall clocks or ambient RNGs
//!    outside the `coda-obs` `Clock` impls and bench binaries, so
//!    same-seed runs replay byte-identically (never baselineable);
//! 2. **Panic safety** ([`panics`]) — no `unwrap`/`expect`/`panic!`-family
//!    calls in library-crate non-test code;
//! 3. **Lock order** ([`locks`]) — an intra-/inter-procedural acquisition
//!    graph over every `Mutex`/`RwLock` site, reporting cycles
//!    (potential deadlocks), non-reentrant re-acquisition, and guards held
//!    across `spawn`/`send`;
//! 4. **Nondeterminism dataflow** ([`dataflow`]) — tracks values produced
//!    by `HashMap`/`HashSet` iteration through let-bindings, `collect`,
//!    accumulator writes, and function returns, and flags flows into
//!    serialization/digest sinks or unsorted collections, plus float
//!    reductions over unordered sources;
//! 5. **Observability contract** ([`obs_contract`]) — extracts every
//!    metric/span/event name into a canonical `OBS_SCHEMA.json` and flags
//!    consumed-but-never-produced names, label-set and bounds mismatches,
//!    kind conflicts, case/underscore collisions, and drift from the
//!    committed schema (drift is never baselineable).
//!
//! Pre-existing violations are frozen by the one-way ratchet in
//! [`baseline`]; the escape hatch is a `// lint:allow(<rule>) <reason>`
//! comment whose reason is mandatory.
//!
//! # Examples
//!
//! ```
//! use coda_lint::{analyze_sources, CrateKind, Rule};
//!
//! let src = "fn f() { let t = std::time::Instant::now(); }";
//! let findings = analyze_sources(vec![("lib.rs".into(), CrateKind::Library, src.into())]);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, Rule::Determinism);
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod baseline;
pub mod dataflow;
pub mod determinism;
pub mod items;
pub mod lexer;
pub mod locks;
pub mod obs_contract;
pub mod panics;
pub mod source;
pub mod walk;

use std::io;
use std::path::Path;

pub use baseline::{Baseline, RatchetCheck};
pub use locks::LockReport;
pub use obs_contract::{MetricSchema, ObsSchema};
pub use source::{CrateKind, SourceFile};

/// The lint rules. `as_str` names are what `// lint:allow(<rule>)` takes
/// and what baseline keys use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall clock / ambient RNG outside the Clock impls.
    Determinism,
    /// Panicking call/macro in library non-test code.
    PanicSafety,
    /// Lock-order cycle or non-reentrant re-acquisition.
    LockOrder,
    /// Guard held across a `spawn` or channel `send`.
    LockAcrossSpawn,
    /// `lint:allow` escape hatch without a justification.
    AllowMissingReason,
    /// HashMap/HashSet iteration order escapes into serialized or
    /// accumulated output.
    UnorderedFlow,
    /// Float `sum`/`fold`/`+=` fed by an unordered source.
    FloatReduction,
    /// Observability-contract violation (unregistered name, label-set or
    /// bounds mismatch, case/underscore collision).
    ObsContract,
    /// Extracted observability schema drifted from the committed
    /// `OBS_SCHEMA.json` (never baselineable: regenerate and commit).
    ObsSchemaDrift,
}

impl Rule {
    /// Stable rule name.
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::PanicSafety => "panic_safety",
            Rule::LockOrder => "lock_order",
            Rule::LockAcrossSpawn => "lock_across_spawn",
            Rule::AllowMissingReason => "allow_missing_reason",
            Rule::UnorderedFlow => "unordered_flow",
            Rule::FloatReduction => "float_reduction",
            Rule::ObsContract => "obs_contract",
            Rule::ObsSchemaDrift => "obs_schema_drift",
        }
    }

    /// Whether pre-existing violations of this rule may be frozen in the
    /// baseline. Determinism violations, reason-less escape hatches and
    /// schema drift always fail.
    pub fn is_baselineable(self) -> bool {
        !matches!(self, Rule::Determinism | Rule::AllowMissingReason | Rule::ObsSchemaDrift)
    }

    /// Inverse of [`Rule::as_str`].
    pub fn parse(name: &str) -> Option<Rule> {
        [
            Rule::Determinism,
            Rule::PanicSafety,
            Rule::LockOrder,
            Rule::LockAcrossSpawn,
            Rule::AllowMissingReason,
            Rule::UnorderedFlow,
            Rule::FloatReduction,
            Rule::ObsContract,
            Rule::ObsSchemaDrift,
        ]
        .into_iter()
        .find(|r| r.as_str() == name)
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule violated.
    pub rule: Rule,
    /// Workspace-relative file (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.as_str(), self.message)
    }
}

impl serde::Serialize for Finding {
    fn to_value(&self) -> serde::Value {
        let mut map = std::collections::BTreeMap::new();
        map.insert("file".to_string(), serde::Value::Str(self.file.clone()));
        map.insert("line".to_string(), serde::Value::Int(i64::from(self.line)));
        map.insert("message".to_string(), serde::Value::Str(self.message.clone()));
        map.insert("rule".to_string(), serde::Value::Str(self.rule.as_str().to_string()));
        serde::Value::Object(map)
    }
}

impl serde::Deserialize for Finding {
    fn from_value(v: &serde::Value) -> Result<Self, String> {
        let obj = v.as_object().ok_or("expected finding object")?;
        let field = |k: &str| -> Result<&serde::Value, String> {
            obj.get(k).ok_or_else(|| format!("finding missing field `{k}`"))
        };
        let s = |k: &str| -> Result<String, String> {
            field(k)?.as_str().map(str::to_string).ok_or_else(|| format!("`{k}` must be a string"))
        };
        let rule_name = s("rule")?;
        Ok(Finding {
            rule: Rule::parse(&rule_name).ok_or_else(|| format!("unknown rule `{rule_name}`"))?,
            file: s("file")?,
            line: u32::try_from(match field("line")? {
                serde::Value::Int(i) => *i,
                other => return Err(format!("`line` must be an integer, got {other:?}")),
            })
            .map_err(|_| "`line` out of range".to_string())?,
            message: s("message")?,
        })
    }
}

/// Runs all analyses over in-memory sources: `(rel path, kind, text)`.
/// Returns surviving findings, sorted by `(file, line, rule)`; findings
/// covered by a `lint:allow` directive *with a reason* are suppressed, and
/// every reason-less directive yields an [`Rule::AllowMissingReason`]
/// finding of its own.
pub fn analyze_sources(files: Vec<(String, CrateKind, String)>) -> Vec<Finding> {
    let sources: Vec<SourceFile> =
        files.iter().map(|(rel, kind, text)| SourceFile::parse(rel, *kind, text)).collect();

    let mut findings: Vec<Finding> = Vec::new();
    for sf in &sources {
        findings.extend(determinism::check(sf));
        findings.extend(panics::check(sf));
    }
    findings.extend(locks::check(&sources).findings);
    findings.extend(dataflow::check(&sources));
    findings.extend(obs_contract::check(&sources).1);

    // escape hatch: suppress allowed findings, flag reason-less directives
    let mut out: Vec<Finding> = Vec::new();
    for f in findings {
        let covered = sources
            .iter()
            .find(|sf| sf.rel == f.file)
            .and_then(|sf| sf.allow_for(f.rule.as_str(), f.line));
        match covered {
            Some(allow) if !allow.reason.is_empty() => {}
            _ => out.push(f),
        }
    }
    for sf in &sources {
        for allow in &sf.allows {
            if allow.reason.is_empty() {
                out.push(Finding {
                    rule: Rule::AllowMissingReason,
                    file: sf.rel.clone(),
                    line: allow.line,
                    message: format!(
                        "`lint:allow({})` without a justification — write \
                         `// lint:allow({}) <why this site is safe>`",
                        allow.rule, allow.rule
                    ),
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Discovers and analyzes every covered file under the workspace `root`.
///
/// # Errors
///
/// Propagates filesystem errors from the workspace walk.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(analyze_sources(walk::workspace_files(root)?))
}

/// Extracts the canonical observability schema for the workspace at `root`
/// (what `OBS_SCHEMA.json` commits).
///
/// # Errors
///
/// Propagates filesystem errors from the workspace walk.
pub fn extract_obs_schema(root: &Path) -> io::Result<ObsSchema> {
    let sources: Vec<SourceFile> = walk::workspace_files(root)?
        .iter()
        .map(|(rel, kind, text)| SourceFile::parse(rel, *kind, text))
        .collect();
    Ok(obs_contract::check(&sources).0)
}

/// Renders findings as a stable JSON array (fields `file`, `line`,
/// `message`, `rule`, keys sorted) — the `--json` CLI output.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let arr = serde::Value::Array(findings.iter().map(serde::Serialize::to_value).collect());
    serde_json::to_string(&arr).unwrap_or_else(|_| "[]".to_string())
}

/// Parses the output of [`findings_to_json`] back into findings.
///
/// # Errors
///
/// Returns a message describing the first malformed element.
pub fn findings_from_json(text: &str) -> Result<Vec<Finding>, String> {
    let v = serde_json::parse(text).map_err(|e| format!("bad findings JSON: {e}"))?;
    serde::Deserialize::from_value(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> Vec<(String, CrateKind, String)> {
        vec![("lib.rs".to_string(), CrateKind::Library, src.to_string())]
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let findings = analyze_sources(lib(
            "fn f() -> u32 {\n    // lint:allow(panic_safety) the map is non-empty by construction\n    m.get(0).unwrap()\n}\n",
        ));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allow_without_reason_does_not_suppress_and_is_flagged() {
        let findings = analyze_sources(lib(
            "fn f() -> u32 {\n    // lint:allow(panic_safety)\n    m.get(0).unwrap()\n}\n",
        ));
        let rules: Vec<Rule> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&Rule::PanicSafety), "{findings:?}");
        assert!(rules.contains(&Rule::AllowMissingReason), "{findings:?}");
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let findings = analyze_sources(lib(
            "fn f() {\n    // lint:allow(determinism) wrong rule\n    x.unwrap();\n}\n",
        ));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::PanicSafety);
    }

    #[test]
    fn binary_files_skip_panic_and_determinism_but_not_locks() {
        let findings = analyze_sources(vec![(
            "src/bin/tool.rs".to_string(),
            CrateKind::Binary,
            "fn main() {\n let t = std::time::Instant::now();\n x.unwrap();\n \
             let a = s.alpha.lock();\n let b = s.beta.lock();\n let g = held.lock();\n \
             std::thread::spawn(move || {});\n}\n"
                .to_string(),
        )]);
        assert!(findings.iter().all(|f| f.rule == Rule::LockAcrossSpawn), "{findings:?}");
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn findings_json_round_trips_with_stable_fields() {
        let findings = analyze_sources(lib("fn f() { x.unwrap(); y.expect(\"no\"); }"));
        assert!(!findings.is_empty());
        let text = findings_to_json(&findings);
        // stable field order: object keys are sorted by construction
        let first_obj = text.find('{').map(|i| &text[i..]).unwrap_or("");
        let keys: Vec<usize> = ["\"file\"", "\"line\"", "\"message\"", "\"rule\""]
            .iter()
            .map(|k| first_obj.find(k).expect("field present"))
            .collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "fields out of order in {text}");
        let back = findings_from_json(&text).expect("round trip");
        assert_eq!(back, findings);
        assert_eq!(findings_to_json(&back), text);
    }

    #[test]
    fn test_code_is_exempt() {
        let findings =
            analyze_sources(lib("#[cfg(test)]\nmod tests {\n fn helper() { x.unwrap(); \
             let t = std::time::Instant::now(); }\n}\n"));
        assert!(findings.is_empty(), "{findings:?}");
    }
}
