//! Workspace discovery: enumerates the `.rs` files the analyses cover and
//! classifies each by lint profile. Covered: the root package's `src/` and
//! every `crates/*/src/`. Excluded: `vendor/` (offline stand-in crates we
//! don't own), `target/`, integration `tests/`, `examples/`, `benches/`,
//! and `crates/lint/fixtures/` (deliberately-violating snippets).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::source::CrateKind;

/// One discovered file: workspace-relative path (forward slashes), lint
/// profile, and contents.
pub type FileEntry = (String, CrateKind, String);

/// Crates whose targets are binaries/benches end to end: panic-safety and
/// determinism are waived there (they report to humans and measure real
/// wall time by design).
const BINARY_CRATES: &[&str] = &["bench"];

/// Enumerates all analyzable files under `root`, deterministically sorted.
///
/// # Errors
///
/// Propagates filesystem errors from directory walks and file reads.
pub fn workspace_files(root: &Path) -> io::Result<Vec<FileEntry>> {
    let mut out: Vec<FileEntry> = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect(&root_src, root, CrateKind::Library, &mut out)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> =
            fs::read_dir(&crates_dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if !src.is_dir() {
                continue;
            }
            let name = member.file_name().and_then(|n| n.to_str()).unwrap_or("");
            let kind =
                if BINARY_CRATES.contains(&name) { CrateKind::Binary } else { CrateKind::Library };
            collect(&src, root, kind, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`; files under a `bin/`
/// directory are binary targets regardless of the crate's profile.
fn collect(dir: &Path, root: &Path, kind: CrateKind, out: &mut Vec<FileEntry>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "fixtures" | "target" | "tests" | "examples" | "benches") {
                continue;
            }
            let child_kind = if name == "bin" { CrateKind::Binary } else { kind };
            collect(&path, root, child_kind, out)?;
        } else if name.ends_with(".rs") {
            let file_kind = if name == "main.rs" { CrateKind::Binary } else { kind };
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let text = fs::read_to_string(&path)?;
            out.push((rel, file_kind, text));
        }
    }
    Ok(())
}

/// Finds the workspace root: ascends from `start` looking for a
/// `Cargo.toml` declaring `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}
