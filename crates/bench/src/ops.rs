//! The D8 ops-plane driver: one deterministic "day in the life" of the
//! serving tier, observed end to end through the `coda-obs` telemetry
//! plane. A [`ManualClock`]-driven window loop pushes real `ServeTier`
//! traffic, real TEG evaluations, and a real crash-recovery run through
//! the [`FlightRecorder`], evaluates declared SLOs as multi-window burn
//! rates at every boundary, attaches exemplars to hot `eval.path`
//! observations, tail-samples the trace log down to the interesting
//! traces, and rolls span self-times into a per-operator [`CostProfile`].
//!
//! Two scenarios share one seed: `clean` (closed-loop traffic, healthy
//! latencies, an uneventful recovery drill) must fire **zero** `slo.burn`
//! alerts; `fault` (admission-control bursts, a latency tail, a failing
//! OLS path, and an unrecovered home crash) must fire at least one on
//! every declared SLO family it stresses. Both render byte-identically
//! across same-seed runs — the `OPS_REPORT.json` artifact is diffable.

use bytes::Bytes;
use coda_chaos::CrashPlan;
use coda_cluster::{run_crash_recovery_obs, CrashRecoveryConfig};
use coda_core::{Evaluator, TegBuilder};
use coda_data::{synth, CvStrategy, Metric};
use coda_ml::{LinearRegression, RidgeRegression, StandardScaler};
use coda_obs::{
    BurnWindows, CostProfile, FlightConfig, FlightRecorder, FlightWindow, Obs, SloEngine,
    SloReport, SloSignal, SloSpec, SpanId, TailPolicy, TraceForest,
};
use coda_serve::{ServeConfig, ServeRequest, ServeTier, SERVE_LATENCY_BOUNDS};
use serde::impl_serde_struct;

/// Level-0 flight window length, milliseconds of manual-clock time.
const WINDOW_MS: f64 = 100.0;
/// Windows driven per scenario.
const N_WINDOWS: u64 = 20;
/// Fault phase: windows `[FAULT_FROM, FAULT_TO)` inject sheds, tail
/// latencies, and eval errors.
const FAULT_FROM: u64 = 8;
const FAULT_TO: u64 = 16;
/// Window at which the crash-recovery drill runs (both scenarios).
const DRILL_AT: u64 = 10;
/// Exemplars retained per metric.
const EXEMPLAR_CAP: usize = 8;

/// One exemplar-anchored critical path: the chain of spans from the trace
/// root down to the span that produced an extreme observation.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Metric the exemplar came from.
    pub metric: String,
    /// The observed value, milliseconds.
    pub value_ms: f64,
    /// Clock reading at the observation.
    pub at_ms: f64,
    /// Root-to-span chain, `name[spec]` segments joined by ` > `.
    pub path: String,
    /// Compact span context (`t<trace>.s<span>`).
    pub trace: String,
}

impl_serde_struct!(CriticalPath { metric, value_ms, at_ms, path, trace });

/// Everything one scenario of the D8 run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct OpsScenario {
    /// Scenario name (`clean` / `fault`).
    pub name: String,
    /// Level-0 windows driven.
    pub windows: u64,
    /// `slo.burn` trace events emitted during the run.
    pub burn_events: u64,
    /// Breached evaluations across all SLOs.
    pub total_breaches: u64,
    /// Ops applied by the serving tier.
    pub serve_ops: u64,
    /// Requests shed by admission control.
    pub serve_shed: u64,
    /// The full burn-rate evaluation record.
    pub slo: SloReport,
    /// The downsampled flight timeline, oldest window first.
    pub timeline: Vec<FlightWindow>,
    /// Top exemplar critical paths, hottest first.
    pub critical_paths: Vec<CriticalPath>,
    /// Per-operator span self-time aggregates.
    pub cost: CostProfile,
    /// Distinct traces inspected by the tail sampler.
    pub traces_seen: u64,
    /// Traces retained (exemplar-pinned or carrying `slo.burn` context).
    pub traces_kept: u64,
    /// Trace events before the tail-sampling pass.
    pub events_before: u64,
    /// Trace events after the tail-sampling pass.
    pub events_after: u64,
}

impl_serde_struct!(OpsScenario {
    name,
    windows,
    burn_events,
    total_breaches,
    serve_ops,
    serve_shed,
    slo,
    timeline,
    critical_paths,
    cost,
    traces_seen,
    traces_kept,
    events_before,
    events_after,
});

/// The `OPS_REPORT.json` schema: both scenarios of one seeded D8 run.
#[derive(Debug, Clone, PartialEq)]
pub struct OpsReport {
    /// Schema tag (`coda-ops-report-v1`).
    pub schema: String,
    /// Workload seed.
    pub seed: u64,
    /// Level-0 window length, milliseconds.
    pub window_ms: f64,
    /// The healthy run (must fire zero alerts).
    pub clean: OpsScenario,
    /// The fault-injected run (must fire alerts).
    pub fault: OpsScenario,
}

impl_serde_struct!(OpsReport { schema, seed, window_ms, clean, fault });

impl OpsReport {
    /// Renders the stable JSON artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }

    /// Parses a rendered report back.
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error message on malformed input.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let value = serde_json::parse(s).map_err(|e| e.to_string())?;
        serde::Deserialize::from_value(&value)
    }
}

/// The declared serving-tier SLOs, shared by both scenarios (and extended
/// by the D9 diagnosis driver).
pub(crate) fn slo_specs() -> Vec<SloSpec> {
    vec![
        SloSpec {
            name: "serve-shed-rate".to_string(),
            signal: SloSignal::EventRatio {
                bad: "coda_serve_shed_total".to_string(),
                good: "coda_serve_ops_total".to_string(),
            },
            objective: 0.05,
        },
        SloSpec {
            name: "serve-p99-latency".to_string(),
            signal: SloSignal::LatencyAbove {
                histogram: "coda_serve_latency_ms".to_string(),
                threshold_ms: 50.0,
            },
            objective: 0.01,
        },
        SloSpec {
            name: "eval-error-rate".to_string(),
            signal: SloSignal::EventRatio {
                bad: "coda_core_eval_path_errors".to_string(),
                good: "coda_core_eval_paths_ok".to_string(),
            },
            objective: 0.05,
        },
        SloSpec {
            name: "cluster-failovers".to_string(),
            signal: SloSignal::Occurrence {
                counter: "coda_cluster_failovers_total".to_string(),
                allowed_per_window: 0.02,
            },
            objective: 1.0,
        },
    ]
}

/// splitmix64 — the workspace's standard seedable mixer.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    *state = z ^ (z >> 31);
}

fn uniform(state: &mut u64, lo: f64, hi: f64) -> f64 {
    splitmix64(state);
    lo + (hi - lo) * ((*state >> 11) as f64 / (1u64 << 53) as f64)
}

fn span_label(s: &coda_obs::SpanNode) -> String {
    match s.fields.iter().find(|(k, _)| k == "spec") {
        Some((_, v)) => format!("{}[{}]", s.name, v),
        None => s.name.clone(),
    }
}

/// Root-to-span chain for one span id, ` > `-joined.
fn critical_path(forest: &TraceForest, id: SpanId) -> String {
    let mut segments = Vec::new();
    let mut cur = Some(id);
    while let Some(i) = cur {
        let Some(s) = forest.span(i) else { break };
        segments.push(span_label(s));
        cur = s.parent;
    }
    segments.reverse();
    segments.join(" > ")
}

/// The raw telemetry a scenario run leaves behind, beyond the rendered
/// [`OpsScenario`]: everything the D9 diagnosis engine consumes.
pub struct ScenarioArtifacts {
    /// The flight recorder, timeline intact.
    pub recorder: FlightRecorder,
    /// The burn-rate evaluation record.
    pub slo: SloReport,
    /// Retained exemplars, keyed by metric.
    pub exemplars: std::collections::BTreeMap<String, Vec<coda_obs::Exemplar>>,
    /// The full-run span forest (pre tail-sampling).
    pub forest: TraceForest,
}

/// Drives one scenario: `fault = false` is the healthy baseline, `fault =
/// true` injects shed bursts, a latency tail, failing eval paths, and an
/// unrecovered home crash. Single-threaded closed-loop submission plus the
/// manual clock make the returned scenario byte-stable for a given seed.
pub fn run_ops_scenario(seed: u64, fault: bool) -> OpsScenario {
    run_ops_scenario_full(seed, fault).0
}

/// As [`run_ops_scenario`], additionally returning the raw artifacts so a
/// diagnosis pass can attribute whatever breached.
pub fn run_ops_scenario_full(seed: u64, fault: bool) -> (OpsScenario, ScenarioArtifacts) {
    let obs = Obs::deterministic();
    obs.exemplars().enable(0.0, EXEMPLAR_CAP);
    let mut recorder =
        FlightRecorder::new(FlightConfig { window_ms: WINDOW_MS, ..FlightConfig::default() });
    let mut engine = SloEngine::new(slo_specs(), BurnWindows::default());

    let serve_cfg = ServeConfig { n_shards: 2, queue_capacity: 4, ..ServeConfig::default() };
    let tier = ServeTier::start_obs(&serve_cfg, Some(&obs));

    // eval workloads: ridge-only always succeeds; adding plain OLS on a
    // 12x6 dataset under kfold(2) makes that branch fail every fold (6
    // training rows < 7 design columns), so fault windows split paths
    // 1 ok / 1 error
    let ds = synth::linear_regression(12, 6, 0.01, seed);
    let mut rng = seed ^ 0xd8;

    // window 0 baseline, before any traffic
    obs.sync_manual_ms(0.0);
    recorder.tick(0.0, &obs.registry().snapshot());

    for t in 0..N_WINDOWS {
        let now = t as f64 * WINDOW_MS;
        obs.sync_manual_ms(now);
        let in_fault = fault && (FAULT_FROM..FAULT_TO).contains(&t);

        // --- serving traffic ---
        if in_fault {
            // burst 12 requests at held shards: each 4-deep mailbox admits
            // its share, the rest shed at the admission edge
            let h0 = tier.hold_shard(0);
            let h1 = tier.hold_shard(1);
            let mut pendings = Vec::new();
            for i in 0..12 {
                if let Ok(p) = tier.submit_nowait(put(&format!("w{t}-k{i}"), t as u8)) {
                    pendings.push(p);
                }
            }
            h0.release();
            h1.release();
            for p in pendings {
                let _ = p.wait();
            }
        } else {
            for i in 0..6 {
                let _ = tier.submit(put(&format!("w{t}-k{i}"), t as u8));
            }
        }

        // --- request latencies (seeded closed-form draws) ---
        let latency = obs.registry().histogram("coda_serve_latency_ms", SERVE_LATENCY_BOUNDS);
        for i in 0..20 {
            let v = if in_fault && i < 8 {
                uniform(&mut rng, 60.0, 400.0) // the injected tail
            } else {
                uniform(&mut rng, 1.0, 30.0)
            };
            latency.observe(v);
        }

        // --- model evaluation ---
        let mut builder = TegBuilder::new();
        if in_fault {
            builder =
                builder.add_feature_scalers(vec![Box::new(StandardScaler::new())]).add_models(
                    vec![Box::new(LinearRegression::new()), Box::new(RidgeRegression::new(1.0))],
                );
        } else {
            builder = builder.add_models(vec![Box::new(RidgeRegression::new(1.0))]);
        }
        if let Ok(graph) = builder.create_graph() {
            let _ = Evaluator::new(CvStrategy::kfold(2), Metric::Rmse)
                .with_obs(obs.clone())
                .evaluate_graph(&graph, &ds);
        }

        // --- crash-recovery drill ---
        // the recovery driver owns its manual clock, so it runs against a
        // private Obs; its counters fold into the shared registry so the
        // failover lands in this window's flight delta
        if t == DRILL_AT {
            let plan = if fault {
                CrashPlan::new().with_crash_at("node-0", 9, None) // no restart: forces failover
            } else {
                CrashPlan::new()
            };
            let drill_obs = Obs::deterministic();
            let cfg = CrashRecoveryConfig { plan, ..CrashRecoveryConfig::default() };
            let _ = run_crash_recovery_obs(&cfg, Some(&drill_obs));
            for (name, v) in &drill_obs.registry().snapshot().counters {
                obs.count(name, *v);
            }
        }

        // --- window boundary: record + evaluate burn rates ---
        let end = (t + 1) as f64 * WINDOW_MS;
        obs.sync_manual_ms(end);
        recorder.tick(end, &obs.registry().snapshot());
        engine.step(&recorder, Some(obs.tracer().as_ref()));
    }

    let tier_report = tier.finish();
    let slo = engine.report();

    // the forest and cost profile cover the FULL run; sampling trims the
    // retained event log afterwards
    let forest = obs.forest();
    let cost = CostProfile::from_forest_refined(&forest, Some("spec"));
    let exemplars = obs.exemplars().exemplars("coda_core_eval_path_ms");
    let critical_paths: Vec<CriticalPath> = exemplars
        .iter()
        .filter_map(|e| {
            let ctx = e.ctx?;
            Some(CriticalPath {
                metric: "coda_core_eval_path_ms".to_string(),
                value_ms: e.value,
                at_ms: e.at_ms,
                path: critical_path(&forest, ctx.span_id),
                trace: ctx.encode(),
            })
        })
        .collect();

    // tail-based sampling: keep exemplar-pinned traces and anything that
    // carried a burn event; drop the bulk of healthy traces
    let mut policy = TailPolicy::new().keep_event("slo.burn");
    for e in &exemplars {
        if let Some(ctx) = e.ctx {
            policy = policy.keep_trace(ctx.trace_id);
        }
    }
    let tail = obs.tracer().sample_tail(&policy);
    let burn_events = obs.tracer().events().iter().filter(|e| e.name == "slo.burn").count() as u64;

    let scenario = OpsScenario {
        name: if fault { "fault" } else { "clean" }.to_string(),
        windows: N_WINDOWS,
        burn_events,
        total_breaches: slo.total_breaches(),
        serve_ops: tier_report.total_ops(),
        serve_shed: tier_report.shed_total,
        slo: slo.clone(),
        timeline: recorder.timeline().into_iter().cloned().collect(),
        critical_paths,
        cost,
        traces_seen: tail.traces_seen as u64,
        traces_kept: tail.traces_kept as u64,
        events_before: tail.events_before as u64,
        events_after: tail.events_after as u64,
    };
    let artifacts =
        ScenarioArtifacts { recorder, slo, exemplars: obs.exemplars().snapshot(), forest };
    (scenario, artifacts)
}

/// Runs both scenarios of the D8 ops drill for one seed.
pub fn run_ops_report(seed: u64) -> OpsReport {
    OpsReport {
        schema: "coda-ops-report-v1".to_string(),
        seed,
        window_ms: WINDOW_MS,
        clean: run_ops_scenario(seed, false),
        fault: run_ops_scenario(seed, true),
    }
}

fn put(id: &str, fill: u8) -> ServeRequest {
    ServeRequest::Put { id: id.to_string(), data: Bytes::from(vec![fill; 64]) }
}
