//! Censored time-to-event analysis (§II flags "the issue of censored data"
//! among the practical considerations): Kaplan-Meier survival estimation
//! and the log-rank test, the standard tools when failure times are only
//! partially observed (assets still healthy when the study ends are
//! *censored*, not failure-free).

use std::fmt;

/// Error produced by survival computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SurvivalError {
    /// Durations and censoring flags disagree in length, or are empty.
    InvalidInput(String),
}

impl fmt::Display for SurvivalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SurvivalError::InvalidInput(m) => write!(f, "invalid survival data: {m}"),
        }
    }
}

impl std::error::Error for SurvivalError {}

/// Right-censored time-to-event observations.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivalData {
    durations: Vec<f64>,
    observed: Vec<bool>,
}

impl SurvivalData {
    /// Creates survival data: `durations[i]` is the time to failure when
    /// `observed[i]` is true, or the censoring time otherwise.
    ///
    /// # Errors
    ///
    /// [`SurvivalError::InvalidInput`] for empty or mismatched inputs or
    /// non-positive durations.
    pub fn new(durations: Vec<f64>, observed: Vec<bool>) -> Result<Self, SurvivalError> {
        if durations.is_empty() {
            return Err(SurvivalError::InvalidInput("no observations".to_string()));
        }
        if durations.len() != observed.len() {
            return Err(SurvivalError::InvalidInput(format!(
                "{} durations vs {} flags",
                durations.len(),
                observed.len()
            )));
        }
        if durations.iter().any(|d| !d.is_finite() || *d <= 0.0) {
            return Err(SurvivalError::InvalidInput(
                "durations must be positive and finite".to_string(),
            ));
        }
        Ok(SurvivalData { durations, observed })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.durations.len()
    }

    /// True when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.durations.is_empty()
    }

    /// Number of observed (uncensored) events.
    pub fn n_events(&self) -> usize {
        self.observed.iter().filter(|&&o| o).count()
    }

    /// The Kaplan-Meier survival curve: `(time, S(time))` at each distinct
    /// event time, starting implicitly from `S(0) = 1`.
    pub fn kaplan_meier(&self) -> Vec<(f64, f64)> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| {
            self.durations[a].partial_cmp(&self.durations[b]).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut at_risk = self.len() as f64;
        let mut survival = 1.0;
        let mut curve: Vec<(f64, f64)> = Vec::new();
        let mut i = 0;
        while i < order.len() {
            let t = self.durations[order[i]];
            // gather ties at this time
            let mut events = 0.0;
            let mut leaving = 0.0;
            while i < order.len() && self.durations[order[i]] == t {
                leaving += 1.0;
                if self.observed[order[i]] {
                    events += 1.0;
                }
                i += 1;
            }
            if events > 0.0 {
                survival *= 1.0 - events / at_risk;
                curve.push((t, survival));
            }
            at_risk -= leaving;
        }
        curve
    }

    /// Median survival time: the first event time where `S(t) <= 0.5`, or
    /// `None` when survival never drops that far (heavy censoring).
    pub fn median_survival(&self) -> Option<f64> {
        self.kaplan_meier().into_iter().find(|(_, s)| *s <= 0.5).map(|(t, _)| t)
    }

    /// Survival probability at `time` (step-function evaluation).
    pub fn survival_at(&self, time: f64) -> f64 {
        let mut s = 1.0;
        for (t, surv) in self.kaplan_meier() {
            if t <= time {
                s = surv;
            } else {
                break;
            }
        }
        s
    }
}

/// Log-rank test comparing two survival curves. Returns the chi-squared
/// statistic (1 degree of freedom) and whether it exceeds the 0.05 critical
/// value (3.841) — i.e. whether the groups' failure behaviour differs.
///
/// # Errors
///
/// [`SurvivalError::InvalidInput`] when either group is empty.
pub fn log_rank_test(a: &SurvivalData, b: &SurvivalData) -> Result<(f64, bool), SurvivalError> {
    // pooled distinct event times
    let mut event_times: Vec<f64> = a
        .durations
        .iter()
        .zip(&a.observed)
        .chain(b.durations.iter().zip(&b.observed))
        .filter(|(_, &o)| o)
        .map(|(&t, _)| t)
        .collect();
    if event_times.is_empty() {
        return Err(SurvivalError::InvalidInput("no observed events".to_string()));
    }
    event_times.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    event_times.dedup();
    let at_risk = |g: &SurvivalData, t: f64| -> f64 {
        g.durations.iter().filter(|&&d| d >= t).count() as f64
    };
    let events_at = |g: &SurvivalData, t: f64| -> f64 {
        g.durations.iter().zip(&g.observed).filter(|(&d, &o)| d == t && o).count() as f64
    };
    let mut observed_a = 0.0;
    let mut expected_a = 0.0;
    let mut variance = 0.0;
    for &t in &event_times {
        let n_a = at_risk(a, t);
        let n_b = at_risk(b, t);
        let n = n_a + n_b;
        if n < 2.0 || n_a == 0.0 && n_b == 0.0 {
            continue;
        }
        let d = events_at(a, t) + events_at(b, t);
        observed_a += events_at(a, t);
        expected_a += d * n_a / n;
        variance += d * (n_a / n) * (n_b / n) * (n - d) / (n - 1.0).max(1.0);
    }
    if variance <= 0.0 {
        return Ok((0.0, false));
    }
    let chi2 = (observed_a - expected_a).powi(2) / variance;
    Ok((chi2, chi2 > 3.841))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_censoring_matches_empirical_survival() {
        // events at 1..=4, no censoring: S steps down by 1/4 each time
        let data = SurvivalData::new(vec![1.0, 2.0, 3.0, 4.0], vec![true; 4]).unwrap();
        let km = data.kaplan_meier();
        let expected = [(1.0, 0.75), (2.0, 0.5), (3.0, 0.25), (4.0, 0.0)];
        assert_eq!(km.len(), 4);
        for ((t, s), (et, es)) in km.iter().zip(expected) {
            assert_eq!(*t, et);
            assert!((s - es).abs() < 1e-12);
        }
        assert_eq!(data.median_survival(), Some(2.0));
        assert_eq!(data.n_events(), 4);
    }

    #[test]
    fn censoring_raises_the_curve() {
        // same times, but the longest two are censored: survival stays higher
        let full = SurvivalData::new(vec![1.0, 2.0, 3.0, 4.0], vec![true; 4]).unwrap();
        let censored =
            SurvivalData::new(vec![1.0, 2.0, 3.0, 4.0], vec![true, true, false, false]).unwrap();
        assert!(censored.survival_at(3.5) > full.survival_at(3.5));
        // classic textbook check: KM with censoring
        // events at 1 (n=4) and 2 (n=3): S = 3/4 * 2/3 = 0.5
        assert!((censored.survival_at(2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn survival_at_is_a_step_function() {
        let data = SurvivalData::new(vec![2.0, 4.0], vec![true, true]).unwrap();
        assert_eq!(data.survival_at(1.0), 1.0);
        assert_eq!(data.survival_at(2.0), 0.5);
        assert_eq!(data.survival_at(3.9), 0.5);
        assert_eq!(data.survival_at(10.0), 0.0);
    }

    #[test]
    fn heavy_censoring_no_median() {
        let data = SurvivalData::new(
            vec![1.0, 5.0, 5.0, 5.0, 5.0],
            vec![true, false, false, false, false],
        )
        .unwrap();
        assert_eq!(data.median_survival(), None);
        assert!(data.survival_at(100.0) > 0.5);
    }

    #[test]
    fn log_rank_separates_different_populations() {
        // group a fails early, group b late
        let a = SurvivalData::new((1..=20).map(|i| i as f64).collect(), vec![true; 20]).unwrap();
        let b = SurvivalData::new((31..=50).map(|i| i as f64).collect(), vec![true; 20]).unwrap();
        let (chi2, significant) = log_rank_test(&a, &b).unwrap();
        assert!(significant, "chi2 = {chi2}");
        // identical groups are not significant
        let (chi2_same, significant_same) = log_rank_test(&a, &a.clone()).unwrap();
        assert!(!significant_same, "chi2 = {chi2_same}");
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(SurvivalData::new(vec![], vec![]).is_err());
        assert!(SurvivalData::new(vec![1.0], vec![true, false]).is_err());
        assert!(SurvivalData::new(vec![0.0], vec![true]).is_err());
        assert!(SurvivalData::new(vec![f64::NAN], vec![true]).is_err());
        let all_censored = SurvivalData::new(vec![1.0, 2.0], vec![false, false]).unwrap();
        assert!(log_rank_test(&all_censored, &all_censored.clone()).is_err());
        assert!(all_censored.kaplan_meier().is_empty());
    }
}
