/root/repo/target/release/deps/coda_ml-136296b41fbe846a.d: crates/ml/src/lib.rs crates/ml/src/balance.rs crates/ml/src/bayes.rs crates/ml/src/boost.rs crates/ml/src/forest.rs crates/ml/src/kernel_pca.rs crates/ml/src/kmeans.rs crates/ml/src/knn.rs crates/ml/src/lda.rs crates/ml/src/linear.rs crates/ml/src/pca.rs crates/ml/src/scalers.rs crates/ml/src/select.rs crates/ml/src/tree.rs

/root/repo/target/release/deps/libcoda_ml-136296b41fbe846a.rlib: crates/ml/src/lib.rs crates/ml/src/balance.rs crates/ml/src/bayes.rs crates/ml/src/boost.rs crates/ml/src/forest.rs crates/ml/src/kernel_pca.rs crates/ml/src/kmeans.rs crates/ml/src/knn.rs crates/ml/src/lda.rs crates/ml/src/linear.rs crates/ml/src/pca.rs crates/ml/src/scalers.rs crates/ml/src/select.rs crates/ml/src/tree.rs

/root/repo/target/release/deps/libcoda_ml-136296b41fbe846a.rmeta: crates/ml/src/lib.rs crates/ml/src/balance.rs crates/ml/src/bayes.rs crates/ml/src/boost.rs crates/ml/src/forest.rs crates/ml/src/kernel_pca.rs crates/ml/src/kmeans.rs crates/ml/src/knn.rs crates/ml/src/lda.rs crates/ml/src/linear.rs crates/ml/src/pca.rs crates/ml/src/scalers.rs crates/ml/src/select.rs crates/ml/src/tree.rs

crates/ml/src/lib.rs:
crates/ml/src/balance.rs:
crates/ml/src/bayes.rs:
crates/ml/src/boost.rs:
crates/ml/src/forest.rs:
crates/ml/src/kernel_pca.rs:
crates/ml/src/kmeans.rs:
crates/ml/src/knn.rs:
crates/ml/src/lda.rs:
crates/ml/src/linear.rs:
crates/ml/src/pca.rs:
crates/ml/src/scalers.rs:
crates/ml/src/select.rs:
crates/ml/src/tree.rs:
