//! The Transformer-Estimator Graph (TEG) — the paper's primary contribution
//! (Section IV).
//!
//! A TEG is a rooted DAG whose vertices are *named* AI/ML operations
//! (Transformers or Estimators) and whose root→leaf paths are candidate
//! machine-learning [`Pipeline`]s. Given a dataset, a cross-validation
//! strategy and a scoring metric, [`Evaluator`] evaluates every path —
//! optionally in parallel — and returns the best `(model, score, path)`
//! triple, exactly the `pipeline_evaluation` of Listing 2.
//!
//! # Examples
//!
//! Reconstructing Listing 1's regression graph (36 pipelines):
//!
//! ```
//! use coda_core::{Component, Evaluator, TegBuilder};
//! use coda_data::{synth, CvStrategy, Metric, NoOp};
//! use coda_ml::{
//!     DecisionTreeRegressor, KnnRegressor, MinMaxScaler, Pca, RandomForestRegressor,
//!     RobustScaler, SelectKBest, ScoreFunction, StandardScaler,
//! };
//!
//! let graph = TegBuilder::new()
//!     .add_feature_scalers(vec![
//!         Box::new(MinMaxScaler::new()),
//!         Box::new(StandardScaler::new()),
//!         Box::new(RobustScaler::new()),
//!         Box::new(NoOp::new()),
//!     ])
//!     .add_feature_selectors(vec![
//!         Box::new(Pca::new(2)),
//!         Box::new(SelectKBest::new(2, ScoreFunction::FRegression)),
//!         Box::new(NoOp::new()),
//!     ])
//!     .add_models(vec![
//!         Box::new(DecisionTreeRegressor::new()),
//!         Box::new(KnnRegressor::new(5)),
//!         Box::new(RandomForestRegressor::new(5)),
//!     ])
//!     .create_graph()?;
//! assert_eq!(graph.enumerate_pipelines()?.len(), 36);
//!
//! let ds = synth::linear_regression(80, 4, 0.2, 3);
//! let eval = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse);
//! let report = eval.evaluate_graph(&graph, &ds)?;
//! assert!(report.best().is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod dot;
pub mod eval;
pub mod graph;
pub mod grid;
pub mod node;
pub mod pipeline;
pub mod search;
pub mod tuning;

pub use cache::{CacheStats, TransformCache};
pub use dot::to_dot;
pub use eval::{EvalError, EvalTiming, Evaluator, GraphReport, PathResult};
pub use graph::{GraphError, Teg, TegBuilder};
pub use grid::{restrict_params, ParamGrid};
pub use node::{Component, Node};
pub use pipeline::{Pipeline, PipelineSpec};
pub use search::{HalvingReport, RoundSummary};
pub use tuning::{NestedCvResult, OuterFoldResult};
