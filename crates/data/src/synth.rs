//! Synthetic data generators.
//!
//! The paper evaluates on proprietary heavy-industry customer data it cannot
//! publish; these generators produce the closest synthetic equivalents with
//! *known ground truth* so every experiment is checkable (see DESIGN.md §2):
//! regression/classification tables, autocorrelated and random-walk time
//! series, and industrial sensor data with degradation-to-failure processes,
//! injected anomalies and cohort structure.

use crate::dataset::Dataset;
use coda_linalg::Matrix;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Attaches the generated target to the generated features. Every generator
/// in this module builds `y` with exactly one entry per feature row, so the
/// mismatch arm cannot run; it degrades to an empty dataset rather than
/// panicking in library code.
fn targeted(x: Matrix, y: Vec<f64>) -> Dataset {
    debug_assert_eq!(x.rows(), y.len(), "generators emit one label per row");
    match Dataset::new(x).with_target(y) {
        Ok(ds) => ds,
        Err(_) => Dataset::new(Matrix::zeros(0, 0)),
    }
}

/// Standard normal sample.
fn randn(rng: &mut StdRng) -> f64 {
    // Box-Muller
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Linear regression data: `y = X·w + b + noise`, standard-normal features.
///
/// # Examples
///
/// ```
/// let ds = coda_data::synth::linear_regression(50, 4, 0.01, 1);
/// assert_eq!(ds.n_samples(), 50);
/// assert!(ds.target().is_some());
/// ```
pub fn linear_regression(n: usize, d: usize, noise: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let w: Vec<f64> = (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let b: f64 = rng.gen_range(-1.0..1.0);
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let mut t = b;
        for c in 0..d {
            let v = randn(&mut rng);
            x[(r, c)] = v;
            t += w[c] * v;
        }
        y.push(t + noise * randn(&mut rng));
    }
    targeted(x, y)
}

/// Friedman-1-style nonlinear regression:
/// `y = 10 sin(π x0 x1) + 20 (x2 − 0.5)² + 10 x3 + 5 x4 + noise`, features
/// uniform in `[0, 1]`. Requires `d ≥ 5`; extra features are irrelevant noise
/// columns (useful for feature selection).
///
/// # Panics
///
/// Panics if `d < 5`.
pub fn friedman1(n: usize, d: usize, noise: f64, seed: u64) -> Dataset {
    assert!(d >= 5, "friedman1 requires at least 5 features");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        for c in 0..d {
            x[(r, c)] = rng.gen_range(0.0..1.0);
        }
        let t = 10.0 * (std::f64::consts::PI * x[(r, 0)] * x[(r, 1)]).sin()
            + 20.0 * (x[(r, 2)] - 0.5).powi(2)
            + 10.0 * x[(r, 3)]
            + 5.0 * x[(r, 4)];
        y.push(t + noise * randn(&mut rng));
    }
    targeted(x, y)
}

/// Regression data with wildly different feature scales (columns scaled by
/// powers of 10) — the case where the paper's feature-scaling stage matters.
pub fn badly_scaled_regression(n: usize, d: usize, noise: f64, seed: u64) -> Dataset {
    let base = linear_regression(n, d, noise, seed);
    let mut x = base.features().clone();
    for c in 0..d {
        let scale = 10f64.powi((c % 7) as i32 - 3);
        for r in 0..n {
            x[(r, c)] *= scale;
        }
    }
    base.replace_features(x)
}

/// Gaussian-blob classification data with `n_classes` labels `0..n_classes`.
/// Class centres are spread on a scaled simplex; `spread` is the within-class
/// standard deviation.
pub fn classification_blobs(
    n: usize,
    d: usize,
    n_classes: usize,
    spread: f64,
    seed: u64,
) -> Dataset {
    assert!(n_classes >= 2, "need at least two classes");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> =
        (0..n_classes).map(|_| (0..d).map(|_| rng.gen_range(-5.0..5.0)).collect()).collect();
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let cls = r % n_classes;
        for c in 0..d {
            x[(r, c)] = centers[cls][c] + spread * randn(&mut rng);
        }
        y.push(cls as f64);
    }
    targeted(x, y)
}

/// Imbalanced binary classification: positives are a `pos_fraction` minority
/// drawn from a shifted cluster (the "rare failure cases" of §II).
pub fn imbalanced_binary(n: usize, d: usize, pos_fraction: f64, seed: u64) -> Dataset {
    assert!(pos_fraction > 0.0 && pos_fraction < 1.0, "pos_fraction must be in (0,1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let positive = rng.gen_range(0.0..1.0) < pos_fraction;
        let shift = if positive { 2.0 } else { 0.0 };
        for c in 0..d {
            x[(r, c)] = shift + randn(&mut rng);
        }
        y.push(if positive { 1.0 } else { 0.0 });
    }
    targeted(x, y)
}

/// Punches NaN holes into a fraction of feature cells (missing data, §II).
pub fn inject_missing(data: &Dataset, fraction: f64, seed: u64) -> Dataset {
    assert!((0.0..1.0).contains(&fraction), "fraction must be in [0,1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = data.features().clone();
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            if rng.gen_range(0.0..1.0) < fraction {
                x[(r, c)] = f64::NAN;
            }
        }
    }
    data.replace_features(x)
}

/// A univariate series with linear trend, sinusoidal seasonality and noise —
/// strongly autocorrelated, the regime where temporal models should win.
pub fn trend_seasonal_series(n: usize, period: f64, noise: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|t| {
            let tf = t as f64;
            0.05 * tf
                + 3.0 * (2.0 * std::f64::consts::PI * tf / period).sin()
                + noise * randn(&mut rng)
        })
        .collect()
}

/// A pure random walk — the regime where the Zero (persistence) model is
/// near-optimal.
pub fn random_walk(n: usize, step: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = Vec::with_capacity(n);
    let mut cur = 0.0;
    for _ in 0..n {
        cur += step * randn(&mut rng);
        v.push(cur);
    }
    v
}

/// An AR(2) process `x_t = a1 x_{t-1} + a2 x_{t-2} + ε`.
///
/// # Panics
///
/// Panics if the coefficients are non-stationary (|roots| ≤ 1 check by the
/// simple sufficient condition |a1| + |a2| < 1).
pub fn ar2_series(n: usize, a1: f64, a2: f64, noise: f64, seed: u64) -> Vec<f64> {
    assert!(a1.abs() + a2.abs() < 1.0, "AR(2) coefficients must be stationary");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = vec![0.0; n];
    for t in 2..n {
        v[t] = a1 * v[t - 1] + a2 * v[t - 2] + noise * randn(&mut rng);
    }
    v
}

/// Multivariate industrial sensor series: `v` channels sharing a latent
/// regime signal plus channel-specific seasonality and noise. Returns an
/// `n x v` matrix (rows = timestamps, Fig. 6).
pub fn multivariate_sensors(n: usize, v: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(n, v);
    // latent slow regime signal
    let mut latent = 0.0;
    for t in 0..n {
        latent = 0.98 * latent + 0.2 * randn(&mut rng);
        for c in 0..v {
            let period = 24.0 + 12.0 * c as f64;
            m[(t, c)] = latent
                + (1.0 + 0.3 * c as f64) * (2.0 * std::f64::consts::PI * t as f64 / period).sin()
                + 0.3 * randn(&mut rng);
        }
    }
    m
}

/// Degradation-to-failure sensor data for Failure Prediction Analysis: each
/// asset runs until a degradation signal crosses a threshold; the label is 1
/// when failure occurs within `horizon` steps. Returns a tabular dataset of
/// per-timestep sensor readings with the imminent-failure label.
pub fn failure_prediction_data(
    n_assets: usize,
    steps_per_asset: usize,
    horizon: usize,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<f64> = Vec::new();
    for _ in 0..n_assets {
        // each asset degrades at a random rate
        let rate = rng.gen_range(0.5..2.0) / steps_per_asset as f64;
        let mut wear = 0.0f64;
        let mut history: Vec<(Vec<f64>, usize)> = Vec::new();
        let mut failed_at: Option<usize> = None;
        for t in 0..steps_per_asset {
            wear += rate * (1.0 + 0.3 * randn(&mut rng)).max(0.0);
            let temp = 60.0 + 25.0 * wear + 2.0 * randn(&mut rng);
            let vibration = 1.0 + 4.0 * wear * wear + 0.3 * randn(&mut rng);
            let pressure = 30.0 - 5.0 * wear + 1.0 * randn(&mut rng);
            let load = 50.0 + 10.0 * randn(&mut rng);
            history.push((vec![temp, vibration, pressure, load], t));
            if wear >= 1.0 {
                failed_at = Some(t);
                break;
            }
        }
        for (features, t) in history {
            let label = match failed_at {
                Some(ft) if ft.saturating_sub(t) <= horizon => 1.0,
                _ => 0.0,
            };
            rows.push(features);
            labels.push(label);
        }
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let ds = targeted(Matrix::from_rows(&refs), labels);
    match ds.clone().with_feature_names(vec!["temperature", "vibration", "pressure", "load"]) {
        Ok(named) => named,
        Err(_) => ds,
    }
}

/// Sensor data with injected point anomalies. Returns `(dataset, truth)`
/// where `truth[i]` is `true` for anomalous rows.
pub fn anomaly_data(n: usize, d: usize, anomaly_fraction: f64, seed: u64) -> (Dataset, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, d);
    let mut truth = vec![false; n];
    for r in 0..n {
        let anomalous = rng.gen_range(0.0..1.0) < anomaly_fraction;
        truth[r] = anomalous;
        for c in 0..d {
            let base = randn(&mut rng);
            x[(r, c)] = if anomalous { base * 8.0 + 10.0 } else { base };
        }
    }
    (Dataset::new(x), truth)
}

/// Cohort-structured asset behaviour: `n_assets` assets in `n_cohorts`
/// behavioural groups; each asset contributes a feature vector of behaviour
/// statistics. Returns `(dataset, truth)` where `truth[i]` is the cohort id.
pub fn cohort_data(
    n_assets: usize,
    n_cohorts: usize,
    d: usize,
    seed: u64,
) -> (Dataset, Vec<usize>) {
    assert!(n_cohorts >= 2, "need at least two cohorts");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> =
        (0..n_cohorts).map(|_| (0..d).map(|_| rng.gen_range(-6.0..6.0)).collect()).collect();
    let mut x = Matrix::zeros(n_assets, d);
    let mut truth = Vec::with_capacity(n_assets);
    for r in 0..n_assets {
        let cohort = r % n_cohorts;
        truth.push(cohort);
        for c in 0..d {
            x[(r, c)] = centers[cohort][c] + 0.8 * randn(&mut rng);
        }
    }
    (Dataset::new(x), truth)
}

/// Root-cause data: outcome driven by a *known* subset of actionable factors;
/// returns `(dataset, causal_indices)`. Factors outside the causal set are
/// pure noise — RCA must rank the causal ones on top.
pub fn root_cause_data(n: usize, d: usize, n_causal: usize, seed: u64) -> (Dataset, Vec<usize>) {
    assert!(n_causal <= d, "cannot have more causal factors than features");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut causal: Vec<usize> = (0..d).collect();
    // deterministic shuffle for the causal subset
    for i in (1..causal.len()).rev() {
        let j = rng.gen_range(0..=i);
        causal.swap(i, j);
    }
    causal.truncate(n_causal);
    causal.sort_unstable();
    let weights: Vec<f64> = (0..n_causal).map(|i| 2.0 + i as f64).collect();
    let mut x = Matrix::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        for c in 0..d {
            x[(r, c)] = randn(&mut rng);
        }
        let mut t = 0.0;
        for (k, &c) in causal.iter().enumerate() {
            t += weights[k] * x[(r, c)];
        }
        y.push(t + 0.2 * randn(&mut rng));
    }
    (targeted(x, y), causal)
}

/// Right-censored asset failure times (§II's "censored data"): failure
/// times are exponential with the given mean; assets still alive at
/// `study_end` are censored there. Returns `(durations, observed)`.
///
/// # Panics
///
/// Panics if `mean_lifetime` or `study_end` is non-positive.
pub fn failure_times(
    n_assets: usize,
    mean_lifetime: f64,
    study_end: f64,
    seed: u64,
) -> (Vec<f64>, Vec<bool>) {
    assert!(mean_lifetime > 0.0 && study_end > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut durations = Vec::with_capacity(n_assets);
    let mut observed = Vec::with_capacity(n_assets);
    for _ in 0..n_assets {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let t = -mean_lifetime * u.ln(); // exponential draw
        if t <= study_end {
            durations.push(t);
            observed.push(true);
        } else {
            durations.push(study_end);
            observed.push(false);
        }
    }
    (durations, observed)
}

/// Convenience: a Bernoulli(p) draw usable by callers composing generators.
pub fn bernoulli(rng: &mut StdRng, p: f64) -> bool {
    rand::distributions::Bernoulli::new(p.clamp(0.0, 1.0)).map(|d| d.sample(rng)).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_linalg::stats;

    #[test]
    fn linear_regression_reproducible_and_shaped() {
        let a = linear_regression(30, 3, 0.1, 5);
        let b = linear_regression(30, 3, 0.1, 5);
        assert_eq!(a, b);
        assert_eq!(a.n_samples(), 30);
        assert_eq!(a.n_features(), 3);
        let c = linear_regression(30, 3, 0.1, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn friedman_requires_five_features() {
        let ds = friedman1(40, 7, 0.5, 2);
        assert_eq!(ds.n_features(), 7);
        let result = std::panic::catch_unwind(|| friedman1(10, 4, 0.5, 2));
        assert!(result.is_err());
    }

    #[test]
    fn badly_scaled_has_wide_scales() {
        let ds = badly_scaled_regression(100, 7, 0.1, 3);
        let ranges: Vec<f64> = (0..7).map(|c| stats::std_dev(&ds.features().col(c))).collect();
        let max = ranges.iter().cloned().fold(0.0f64, f64::max);
        let min = ranges.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 1e4, "scales must differ by orders of magnitude");
    }

    #[test]
    fn blobs_have_labels_and_separation() {
        let ds = classification_blobs(90, 2, 3, 0.3, 7);
        let classes = ds.classes().unwrap();
        assert_eq!(classes, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn imbalanced_minority_fraction() {
        let ds = imbalanced_binary(2000, 3, 0.05, 11);
        let pos = ds.target().unwrap().iter().filter(|&&v| v == 1.0).count();
        let frac = pos as f64 / 2000.0;
        assert!(frac > 0.02 && frac < 0.09, "positive fraction {frac} out of band");
    }

    #[test]
    fn inject_missing_fraction() {
        let ds = linear_regression(100, 5, 0.1, 1);
        let holed = inject_missing(&ds, 0.1, 2);
        let frac = holed.missing_count() as f64 / 500.0;
        assert!(frac > 0.05 && frac < 0.16);
        // target untouched
        assert_eq!(holed.target().unwrap(), ds.target().unwrap());
    }

    #[test]
    fn trend_seasonal_is_autocorrelated() {
        let s = trend_seasonal_series(500, 24.0, 0.2, 3);
        assert!(stats::autocorrelation(&s, 1) > 0.8);
    }

    #[test]
    fn random_walk_diffs_are_noise() {
        let s = random_walk(1000, 1.0, 4);
        let diffs: Vec<f64> = s.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(stats::autocorrelation(&diffs, 1).abs() < 0.15);
    }

    #[test]
    fn ar2_stationary_required() {
        let s = ar2_series(300, 0.5, 0.3, 1.0, 5);
        assert_eq!(s.len(), 300);
        assert!(std::panic::catch_unwind(|| ar2_series(10, 0.9, 0.5, 1.0, 5)).is_err());
    }

    #[test]
    fn sensors_shape() {
        let m = multivariate_sensors(200, 4, 6);
        assert_eq!(m.shape(), (200, 4));
    }

    #[test]
    fn failure_data_has_both_classes_and_rising_temperature() {
        let ds = failure_prediction_data(30, 120, 10, 8);
        let y = ds.target().unwrap();
        let pos = y.iter().filter(|&&v| v == 1.0).count();
        assert!(pos > 0 && pos < y.len());
        assert_eq!(ds.feature_names()[0], "temperature");
        // temperature for failing rows should exceed that of healthy rows on average
        let t = ds.features().col(0);
        let mean_pos = stats::mean(
            &t.iter().zip(y).filter(|(_, &l)| l == 1.0).map(|(v, _)| *v).collect::<Vec<_>>(),
        );
        let mean_neg = stats::mean(
            &t.iter().zip(y).filter(|(_, &l)| l == 0.0).map(|(v, _)| *v).collect::<Vec<_>>(),
        );
        assert!(mean_pos > mean_neg);
    }

    #[test]
    fn anomaly_truth_matches_fraction() {
        let (ds, truth) = anomaly_data(1000, 3, 0.05, 9);
        assert_eq!(ds.n_samples(), 1000);
        let frac = truth.iter().filter(|&&t| t).count() as f64 / 1000.0;
        assert!(frac > 0.02 && frac < 0.09);
    }

    #[test]
    fn cohorts_balanced() {
        let (ds, truth) = cohort_data(60, 3, 4, 10);
        assert_eq!(ds.n_samples(), 60);
        for k in 0..3 {
            assert_eq!(truth.iter().filter(|&&c| c == k).count(), 20);
        }
    }

    #[test]
    fn failure_times_censoring_behaviour() {
        let (durations, observed) = failure_times(500, 50.0, 60.0, 17);
        assert_eq!(durations.len(), 500);
        // censored entries sit exactly at the study end
        for (d, o) in durations.iter().zip(&observed) {
            if !o {
                assert_eq!(*d, 60.0);
            } else {
                assert!(*d <= 60.0);
            }
        }
        // with mean 50 and cutoff 60, a solid fraction is censored
        let censored = observed.iter().filter(|&&o| !o).count() as f64 / 500.0;
        assert!(censored > 0.15 && censored < 0.5, "censored fraction {censored}");
    }

    #[test]
    fn root_cause_indices_valid() {
        let (ds, causal) = root_cause_data(200, 10, 3, 12);
        assert_eq!(causal.len(), 3);
        assert!(causal.iter().all(|&c| c < 10));
        assert_eq!(ds.n_features(), 10);
        // causal features correlate with the target; noise features don't
        let y = ds.target().unwrap();
        let c0 = stats::pearson(&ds.features().col(causal[0]), y).abs();
        let noise_idx = (0..10).find(|i| !causal.contains(i)).unwrap();
        let cn = stats::pearson(&ds.features().col(noise_idx), y).abs();
        assert!(c0 > cn);
    }
}
