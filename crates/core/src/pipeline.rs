//! Pipelines: one root→leaf path of a Transformer-Estimator Graph, with the
//! training/prediction semantics of Fig. 5.
//!
//! During `fit`, internal (Transform) nodes run **fit & transform** —
//! refreshing the data for subsequent modelling — and the final (Estimate)
//! node runs **fit**. During `predict`, internal nodes run **transform**
//! only and the final node runs **predict**.

use std::fmt;

use coda_data::traits::split_param_key;
use coda_data::{ComponentError, Dataset, ParamValue, Params, TaskKind};

use crate::node::{Component, Node};

/// A runnable chain of named components ending in an estimator.
#[derive(Debug, Clone)]
pub struct Pipeline {
    nodes: Vec<Node>,
    fitted: bool,
}

impl Pipeline {
    /// Builds a pipeline from nodes. The node sequence is validated lazily:
    /// [`Pipeline::fit`] fails if the last node is not an estimator or an
    /// internal node is.
    pub fn from_nodes(nodes: Vec<Node>) -> Self {
        Pipeline { nodes, fitted: false }
    }

    /// The pipeline's nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node names in order.
    pub fn node_names(&self) -> Vec<&str> {
        self.nodes.iter().map(|n| n.name()).collect()
    }

    /// True after a successful [`Pipeline::fit`].
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// The task kind of the final estimator, if the pipeline is well-formed.
    pub fn task(&self) -> Option<TaskKind> {
        match self.nodes.last().map(|n| n.component()) {
            Some(Component::Estimate(e)) => Some(e.task()),
            _ => None,
        }
    }

    /// A fresh unfitted clone (used per cross-validation fold).
    pub fn fresh_clone(&self) -> Pipeline {
        Pipeline { nodes: self.nodes.clone(), fitted: false }
    }

    /// Applies qualified parameters (`node__param`) to the matching nodes.
    /// Unqualified keys are rejected; unknown node names are errors.
    ///
    /// # Errors
    ///
    /// [`ComponentError::UnknownParam`] for unqualified or unmatched keys,
    /// and any error the target component raises.
    pub fn apply_params(&mut self, params: &Params) -> Result<(), ComponentError> {
        for (key, value) in params {
            let Some((node_name, param)) = split_param_key(key) else {
                return Err(ComponentError::UnknownParam {
                    component: "pipeline".to_string(),
                    param: key.clone(),
                });
            };
            let node = self.nodes.iter_mut().find(|n| n.name() == node_name).ok_or_else(|| {
                ComponentError::UnknownParam {
                    component: "pipeline".to_string(),
                    param: key.clone(),
                }
            })?;
            node.component_mut().set_param(param, value.clone())?;
        }
        Ok(())
    }

    /// Like [`Pipeline::apply_params`] but silently skips parameters whose
    /// node is not on this path — the right behaviour when one grid is
    /// shared by every path of a graph.
    ///
    /// # Errors
    ///
    /// Any error the target component raises for a *matched* key.
    pub fn apply_matching_params(&mut self, params: &Params) -> Result<(), ComponentError> {
        for (key, value) in params {
            if let Some((node_name, param)) = split_param_key(key) {
                if let Some(node) = self.nodes.iter_mut().find(|n| n.name() == node_name) {
                    node.component_mut().set_param(param, value.clone())?;
                }
            }
        }
        Ok(())
    }

    /// Trains the pipeline: internal nodes `fit_transform`, final node `fit`
    /// (the training operation of Fig. 5).
    ///
    /// # Errors
    ///
    /// [`ComponentError::InvalidInput`] for a malformed pipeline, plus any
    /// component error.
    pub fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        if self.nodes.is_empty() {
            return Err(ComponentError::InvalidInput("empty pipeline".to_string()));
        }
        let last = self.nodes.len() - 1;
        let mut cur = data.clone();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            match node.component_mut() {
                Component::Transform(t) => {
                    if i == last {
                        return Err(ComponentError::InvalidInput(format!(
                            "pipeline ends in transformer {}",
                            t.name()
                        )));
                    }
                    cur = t.fit_transform(&cur)?;
                }
                Component::Estimate(e) => {
                    if i != last {
                        return Err(ComponentError::InvalidInput(format!(
                            "estimator {} is not the final node",
                            e.name()
                        )));
                    }
                    e.fit(&cur)?;
                }
            }
        }
        self.fitted = true;
        Ok(())
    }

    /// Predicts for new data: internal nodes `transform`, final node
    /// `predict` (the prediction operation of Fig. 5).
    ///
    /// # Errors
    ///
    /// [`ComponentError::NotFitted`] before fitting, plus any component
    /// error.
    pub fn predict(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError> {
        if !self.fitted {
            return Err(ComponentError::NotFitted("pipeline".to_string()));
        }
        let last = self.nodes.len() - 1;
        let mut cur = data.clone();
        for (i, node) in self.nodes.iter().enumerate() {
            match node.component() {
                Component::Transform(t) => {
                    cur = t.transform(&cur)?;
                }
                Component::Estimate(e) => {
                    debug_assert_eq!(i, last);
                    return e.predict(&cur);
                }
            }
        }
        Err(ComponentError::InvalidInput("pipeline has no estimator".to_string()))
    }

    /// Applies only the internal (Transform) nodes to `data`, returning the
    /// transformed dataset — including any target the transformers derive.
    /// Time-series evaluation needs this: windowing transformers attach the
    /// per-window ground truth, which the caller scores predictions against.
    ///
    /// # Errors
    ///
    /// [`ComponentError::NotFitted`] before fitting, plus any component
    /// error.
    pub fn transform_only(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        if !self.fitted {
            return Err(ComponentError::NotFitted("pipeline".to_string()));
        }
        let mut cur = data.clone();
        for node in &self.nodes {
            if let Component::Transform(t) = node.component() {
                cur = t.transform(&cur)?;
            }
        }
        Ok(cur)
    }

    /// Convenience: fit on `train`, predict `test`.
    ///
    /// # Errors
    ///
    /// As for [`Pipeline::fit`] and [`Pipeline::predict`].
    pub fn fit_predict(
        &mut self,
        train: &Dataset,
        test: &Dataset,
    ) -> Result<Vec<f64>, ComponentError> {
        self.fit(train)?;
        self.predict(test)
    }

    /// Feature importances of the final estimator, if available.
    pub fn feature_importances(&self) -> Option<Vec<f64>> {
        match self.nodes.last().map(|n| n.component()) {
            Some(Component::Estimate(e)) => e.feature_importances(),
            _ => None,
        }
    }

    /// The canonical spec of this pipeline (node names + applied params) —
    /// the identity used by the DARR to detect redundant computations.
    pub fn spec(&self) -> PipelineSpec {
        PipelineSpec {
            steps: self.nodes.iter().map(|n| n.name().to_string()).collect(),
            params: std::collections::BTreeMap::new(),
        }
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.node_names().join(" -> "))
    }
}

/// A canonical, serializable pipeline description: ordered step names plus
/// parameter assignments. Two equal specs denote the same computation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PipelineSpec {
    /// Ordered node names.
    pub steps: Vec<String>,
    /// Qualified parameter assignments rendered to strings (canonical form).
    pub params: std::collections::BTreeMap<String, String>,
}

serde::impl_serde_struct!(PipelineSpec { steps, params });

impl PipelineSpec {
    /// Creates a spec from step names.
    pub fn new<S: Into<String>>(steps: Vec<S>) -> Self {
        PipelineSpec {
            steps: steps.into_iter().map(Into::into).collect(),
            params: std::collections::BTreeMap::new(),
        }
    }

    /// Attaches parameters (rendered canonically).
    pub fn with_params(mut self, params: &Params) -> Self {
        self.params = params.iter().map(|(k, v)| (k.clone(), render_param(v))).collect();
        self
    }

    /// A stable text key for hashing/indexing.
    pub fn key(&self) -> String {
        let mut s = self.steps.join(">");
        for (k, v) in &self.params {
            s.push_str(&format!(";{k}={v}"));
        }
        s
    }

    /// The canonical cache key of a transformer prefix: the prefix's step
    /// names plus `params` restricted to those steps, rendered through
    /// [`PipelineSpec::key`]. Within one graph, node names uniquely
    /// identify node instances, so this key is canonical for one
    /// evaluation; it is *not* meaningful across different graphs.
    pub fn prefix_key(steps: &[String], params: &Params) -> String {
        let names: std::collections::BTreeSet<&str> = steps.iter().map(String::as_str).collect();
        PipelineSpec::new(steps.to_vec())
            .with_params(&crate::grid::restrict_params(params, &names))
            .key()
    }
}

fn render_param(v: &ParamValue) -> String {
    match v {
        ParamValue::F64(x) => format!("f{x:?}"),
        ParamValue::I64(x) => format!("i{x}"),
        ParamValue::Bool(x) => format!("b{x}"),
        ParamValue::Str(x) => format!("s{x}"),
    }
}

impl fmt::Display for PipelineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.key())
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! An instrumented transformer that records its operation sequence —
    //! used to verify the Fig. 5 fit/predict semantics.

    use coda_data::{BoxedTransformer, ComponentError, Dataset, Transformer};
    use std::sync::{Arc, Mutex};

    /// Shared call log.
    pub type CallLog = Arc<Mutex<Vec<String>>>;

    #[derive(Debug, Clone)]
    pub struct Probe {
        pub label: String,
        pub log: CallLog,
        fitted: bool,
    }

    impl Probe {
        pub fn new(label: &str, log: CallLog) -> Self {
            Probe { label: label.to_string(), log, fitted: false }
        }
    }

    impl Transformer for Probe {
        fn name(&self) -> &str {
            &self.label
        }

        fn fit(&mut self, _data: &Dataset) -> Result<(), ComponentError> {
            self.log.lock().unwrap().push(format!("{}.fit", self.label));
            self.fitted = true;
            Ok(())
        }

        fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
            if !self.fitted {
                return Err(ComponentError::NotFitted(self.label.clone()));
            }
            self.log.lock().unwrap().push(format!("{}.transform", self.label));
            Ok(data.clone())
        }

        fn clone_box(&self) -> BoxedTransformer {
            Box::new(Probe { label: self.label.clone(), log: self.log.clone(), fitted: false })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::{CallLog, Probe};
    use super::*;
    use coda_data::{synth, BoxedEstimator, BoxedTransformer, NoOp};
    use coda_ml::{LinearRegression, StandardScaler};
    use std::sync::{Arc, Mutex};

    fn simple_pipeline() -> Pipeline {
        Pipeline::from_nodes(vec![
            Node::auto((Box::new(StandardScaler::new()) as BoxedTransformer).into()),
            Node::auto((Box::new(LinearRegression::new()) as BoxedEstimator).into()),
        ])
    }

    #[test]
    fn prefix_key_restricts_params_to_prefix_steps() {
        let steps = vec!["scaler".to_string(), "pca".to_string()];
        let mut params = Params::new();
        params.insert("pca__n_components".to_string(), ParamValue::from(3usize));
        params.insert("knn__k".to_string(), ParamValue::from(5usize));
        let key = PipelineSpec::prefix_key(&steps, &params);
        assert!(key.starts_with("scaler>pca"));
        assert!(key.contains("pca__n_components"), "prefix params are part of the key");
        assert!(!key.contains("knn__k"), "downstream params must not leak into the key");
        // a param change downstream of the prefix leaves the key unchanged
        params.insert("knn__k".to_string(), ParamValue::from(9usize));
        assert_eq!(key, PipelineSpec::prefix_key(&steps, &params));
        // a param change inside the prefix changes the key
        params.insert("pca__n_components".to_string(), ParamValue::from(4usize));
        assert_ne!(key, PipelineSpec::prefix_key(&steps, &params));
    }

    #[test]
    fn fit_then_predict_works() {
        let ds = synth::linear_regression(100, 3, 0.05, 91);
        let mut p = simple_pipeline();
        assert!(!p.is_fitted());
        p.fit(&ds).unwrap();
        assert!(p.is_fitted());
        let pred = p.predict(&ds).unwrap();
        let r2 = coda_data::metrics::r2(ds.target().unwrap(), &pred).unwrap();
        assert!(r2 > 0.95);
        assert_eq!(p.task(), Some(TaskKind::Regression));
    }

    #[test]
    fn predict_before_fit_errors() {
        let ds = synth::linear_regression(10, 2, 0.1, 92);
        let p = simple_pipeline();
        assert!(matches!(p.predict(&ds), Err(ComponentError::NotFitted(_))));
    }

    #[test]
    fn fig5_operation_sequence() {
        // Training: internal nodes fit then transform; final node fit.
        // Prediction: internal nodes transform only.
        let log: CallLog = Arc::new(Mutex::new(Vec::new()));
        let ds = synth::linear_regression(30, 2, 0.1, 93);
        let mut p = Pipeline::from_nodes(vec![
            Node::auto((Box::new(Probe::new("a", log.clone())) as BoxedTransformer).into()),
            Node::auto((Box::new(Probe::new("b", log.clone())) as BoxedTransformer).into()),
            Node::auto((Box::new(LinearRegression::new()) as BoxedEstimator).into()),
        ]);
        p.fit(&ds).unwrap();
        p.predict(&ds).unwrap();
        let calls = log.lock().unwrap().clone();
        assert_eq!(
            calls,
            vec!["a.fit", "a.transform", "b.fit", "b.transform", "a.transform", "b.transform"]
        );
    }

    #[test]
    fn malformed_pipelines_rejected_at_fit() {
        let ds = synth::linear_regression(20, 2, 0.1, 94);
        // ends in transformer
        let mut p = Pipeline::from_nodes(vec![Node::auto(
            (Box::new(NoOp::new()) as BoxedTransformer).into(),
        )]);
        assert!(p.fit(&ds).is_err());
        // estimator mid-path
        let mut p = Pipeline::from_nodes(vec![
            Node::auto((Box::new(LinearRegression::new()) as BoxedEstimator).into()),
            Node::auto((Box::new(LinearRegression::new()) as BoxedEstimator).into()),
        ]);
        assert!(p.fit(&ds).is_err());
        // empty
        let mut p = Pipeline::from_nodes(vec![]);
        assert!(p.fit(&ds).is_err());
    }

    #[test]
    fn apply_params_qualified_names() {
        let mut p = Pipeline::from_nodes(vec![
            Node::auto((Box::new(coda_ml::Pca::new(1)) as BoxedTransformer).into()),
            Node::auto((Box::new(LinearRegression::new()) as BoxedEstimator).into()),
        ]);
        let mut params = Params::new();
        params.insert("pca__n_components".to_string(), ParamValue::from(2usize));
        p.apply_params(&params).unwrap();
        // unqualified key rejected
        let mut bad = Params::new();
        bad.insert("n_components".to_string(), ParamValue::from(2usize));
        assert!(p.apply_params(&bad).is_err());
        // unknown node rejected
        let mut bad2 = Params::new();
        bad2.insert("nope__k".to_string(), ParamValue::from(2usize));
        assert!(p.apply_params(&bad2).is_err());
        // but tolerated by apply_matching_params
        p.apply_matching_params(&bad2).unwrap();
    }

    #[test]
    fn fresh_clone_is_unfitted() {
        let ds = synth::linear_regression(50, 2, 0.1, 95);
        let mut p = simple_pipeline();
        p.fit(&ds).unwrap();
        let clone = p.fresh_clone();
        assert!(!clone.is_fitted());
        assert!(clone.predict(&ds).is_err());
    }

    #[test]
    fn spec_key_stable_and_param_sensitive() {
        let p = simple_pipeline();
        let spec = p.spec();
        assert_eq!(spec.steps, vec!["standard_scaler", "linear_regression"]);
        let mut params = Params::new();
        params.insert("pca__n_components".to_string(), ParamValue::from(3usize));
        let with = PipelineSpec::new(vec!["a", "b"]).with_params(&params);
        let without = PipelineSpec::new(vec!["a", "b"]);
        assert_ne!(with.key(), without.key());
        assert_eq!(with.key(), with.clone().key());
        // float and int renderings are distinct
        let mut pf = Params::new();
        pf.insert("a__x".to_string(), ParamValue::from(3.0));
        let mut pi = Params::new();
        pi.insert("a__x".to_string(), ParamValue::from(3i64));
        assert_ne!(
            PipelineSpec::new(vec!["a"]).with_params(&pf).key(),
            PipelineSpec::new(vec!["a"]).with_params(&pi).key()
        );
    }

    #[test]
    fn display_formats() {
        let p = simple_pipeline();
        assert_eq!(p.to_string(), "standard_scaler -> linear_regression");
        assert!(p.spec().to_string().contains("standard_scaler"));
    }

    #[test]
    fn importances_pass_through() {
        let ds = synth::linear_regression(60, 3, 0.05, 96);
        let mut p = simple_pipeline();
        p.fit(&ds).unwrap();
        assert_eq!(p.feature_importances().unwrap().len(), 3);
    }
}
