/root/repo/target/debug/deps/store_and_darr-a01337b0c3bf3674.d: tests/store_and_darr.rs

/root/repo/target/debug/deps/store_and_darr-a01337b0c3bf3674: tests/store_and_darr.rs

tests/store_and_darr.rs:
