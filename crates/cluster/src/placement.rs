//! Work placement (paper §III): run analytics locally on the client, or
//! ship the data to the cloud analytics servers? Local execution avoids
//! network latency and works offline; cloud execution parallelizes the grid
//! across VMs.

use crate::network::SimNetwork;
use crate::node::{AnalyticsTask, ComputeNode};

/// Where the scheduler placed the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Execute on the client.
    Local,
    /// Ship input to the cloud, execute there, return results.
    Cloud,
}

/// The decision plus the predicted completion time of both options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementDecision {
    /// The chosen placement.
    pub placement: Placement,
    /// Predicted local completion time (ms).
    pub local_ms: f64,
    /// Predicted cloud completion time (ms), `None` when disconnected.
    pub cloud_ms: Option<f64>,
}

/// The placement scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scheduler;

/// Result bytes returned per subtask (model scores and metadata).
const RESULT_BYTES_PER_SUBTASK: u64 = 256;

impl Scheduler {
    /// Predicts both completion times and picks the faster option; falls
    /// back to local when the cloud is unreachable.
    pub fn place(
        task: &AnalyticsTask,
        client: &ComputeNode,
        cloud: &ComputeNode,
        net: &SimNetwork,
    ) -> PlacementDecision {
        let local_ms = client.execution_time(task);
        if !net.is_connected(client.name(), cloud.name()) {
            return PlacementDecision { placement: Placement::Local, local_ms, cloud_ms: None };
        }
        // predict without mutating accounting
        let mut probe = net.clone();
        let upload = probe.transfer(client.name(), cloud.name(), task.input_bytes);
        let download = probe.transfer(
            cloud.name(),
            client.name(),
            task.n_subtasks as u64 * RESULT_BYTES_PER_SUBTASK,
        );
        let cloud_ms = match (upload, download) {
            (Some(u), Some(d)) => Some(u + cloud.execution_time(task) + d),
            _ => None,
        };
        let placement = match cloud_ms {
            Some(c) if c < local_ms => Placement::Cloud,
            _ => Placement::Local,
        };
        PlacementDecision { placement, local_ms, cloud_ms }
    }

    /// Executes the decision against the real (accounted) network, returning
    /// the realized completion time.
    pub fn execute(
        decision: &PlacementDecision,
        task: &AnalyticsTask,
        client: &ComputeNode,
        cloud: &ComputeNode,
        net: &mut SimNetwork,
    ) -> f64 {
        match decision.placement {
            Placement::Local => client.execution_time(task),
            Placement::Cloud => {
                let up = net
                    .transfer(client.name(), cloud.name(), task.input_bytes)
                    .expect("placement chose cloud while connected");
                let down = net
                    .transfer(
                        cloud.name(),
                        client.name(),
                        task.n_subtasks as u64 * RESULT_BYTES_PER_SUBTASK,
                    )
                    .expect("placement chose cloud while connected");
                up + cloud.execution_time(task) + down
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ComputeNode, ComputeNode, AnalyticsTask) {
        (
            ComputeNode::client("edge", 1.0),
            ComputeNode::cloud("dc", 4.0, 8),
            AnalyticsTask { n_subtasks: 32, work_per_subtask: 100.0, input_bytes: 100_000 },
        )
    }

    #[test]
    fn fast_network_prefers_cloud() {
        let (client, cloud, task) = setup();
        let net = SimNetwork::new(5.0, 10_000.0);
        let d = Scheduler::place(&task, &client, &cloud, &net);
        assert_eq!(d.placement, Placement::Cloud);
        assert!(d.cloud_ms.unwrap() < d.local_ms);
    }

    #[test]
    fn huge_latency_prefers_local() {
        let (client, cloud, task) = setup();
        let net = SimNetwork::new(10_000.0, 10_000.0);
        let d = Scheduler::place(&task, &client, &cloud, &net);
        assert_eq!(d.placement, Placement::Local);
    }

    #[test]
    fn disconnected_forces_local() {
        let (client, cloud, task) = setup();
        let mut net = SimNetwork::new(1.0, 10_000.0);
        net.disconnect("edge", "dc");
        let d = Scheduler::place(&task, &client, &cloud, &net);
        assert_eq!(d.placement, Placement::Local);
        assert!(d.cloud_ms.is_none());
    }

    #[test]
    fn more_vms_shift_crossover() {
        let (client, _, task) = setup();
        // a slow link where a 2-VM cloud loses but a 32-VM cloud wins
        let net = SimNetwork::new(100.0, 50.0);
        let small = ComputeNode::cloud("dc", 4.0, 2);
        let big = ComputeNode::cloud("dc", 4.0, 32);
        let d_small = Scheduler::place(&task, &client, &small, &net);
        let d_big = Scheduler::place(&task, &client, &big, &net);
        assert!(d_big.cloud_ms.unwrap() < d_small.cloud_ms.unwrap());
        assert_eq!(d_big.placement, Placement::Cloud);
    }

    #[test]
    fn execute_matches_prediction_and_accounts() {
        let (client, cloud, task) = setup();
        let mut net = SimNetwork::new(5.0, 10_000.0);
        let d = Scheduler::place(&task, &client, &cloud, &net);
        let realized = Scheduler::execute(&d, &task, &client, &cloud, &mut net);
        assert!((realized - d.cloud_ms.unwrap()).abs() < 1e-9);
        assert_eq!(net.messages, 2);
        assert!(net.bytes >= task.input_bytes);
        // local execution moves no bytes
        let mut net2 = SimNetwork::new(10_000.0, 1.0);
        let d2 = Scheduler::place(&task, &client, &cloud, &net2);
        let t2 = Scheduler::execute(&d2, &task, &client, &cloud, &mut net2);
        assert_eq!(net2.messages, 0);
        assert!((t2 - d2.local_ms).abs() < 1e-9);
    }
}
