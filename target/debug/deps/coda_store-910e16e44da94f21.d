/root/repo/target/debug/deps/coda_store-910e16e44da94f21.d: crates/store/src/lib.rs crates/store/src/client.rs crates/store/src/delta.rs crates/store/src/home.rs crates/store/src/lease.rs crates/store/src/replication.rs crates/store/src/tier.rs crates/store/src/trigger.rs Cargo.toml

/root/repo/target/debug/deps/libcoda_store-910e16e44da94f21.rmeta: crates/store/src/lib.rs crates/store/src/client.rs crates/store/src/delta.rs crates/store/src/home.rs crates/store/src/lease.rs crates/store/src/replication.rs crates/store/src/tier.rs crates/store/src/trigger.rs Cargo.toml

crates/store/src/lib.rs:
crates/store/src/client.rs:
crates/store/src/delta.rs:
crates/store/src/home.rs:
crates/store/src/lease.rs:
crates/store/src/replication.rs:
crates/store/src/tier.rs:
crates/store/src/trigger.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
