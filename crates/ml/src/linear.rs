//! Linear models: ordinary least squares, ridge regression and logistic
//! regression.

use coda_data::{BoxedEstimator, ComponentError, Dataset, Estimator, ParamValue, TaskKind};
use coda_linalg::decomp::{cholesky_solve, lstsq};
use coda_linalg::Matrix;

fn design_with_intercept(data: &Dataset) -> Result<Matrix, ComponentError> {
    let x = data.features();
    let ones = Matrix::filled(x.rows(), 1, 1.0);
    ones.hstack(x).map_err(|e| ComponentError::Numerical(e.to_string()))
}

/// Ordinary least-squares linear regression (QR-based).
///
/// # Examples
///
/// ```
/// use coda_data::{synth, Estimator};
/// use coda_ml::LinearRegression;
///
/// let ds = synth::linear_regression(100, 2, 0.0, 3);
/// let mut lr = LinearRegression::new();
/// lr.fit(&ds)?;
/// let pred = lr.predict(&ds)?;
/// assert!(coda_data::metrics::rmse(ds.target().unwrap(), &pred)? < 1e-8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinearRegression {
    coef: Option<Vec<f64>>, // [intercept, w...]
}

impl LinearRegression {
    /// Creates an unfitted OLS regressor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fitted `[intercept, w_0, …, w_{d-1}]`, if fitted.
    pub fn coefficients(&self) -> Option<&[f64]> {
        self.coef.as_deref()
    }
}

impl Estimator for LinearRegression {
    fn name(&self) -> &str {
        "linear_regression"
    }

    fn task(&self) -> TaskKind {
        TaskKind::Regression
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        let y = data.target_required()?;
        let design = design_with_intercept(data)?;
        if design.rows() < design.cols() {
            return Err(ComponentError::InvalidInput(format!(
                "need at least {} samples for {} features",
                design.cols(),
                data.n_features()
            )));
        }
        let coef = lstsq(&design, y)
            .map_err(|e| ComponentError::Numerical(format!("least squares failed: {e}")))?;
        self.coef = Some(coef);
        Ok(())
    }

    fn predict(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError> {
        let coef =
            self.coef.as_ref().ok_or_else(|| ComponentError::NotFitted(self.name().to_string()))?;
        if coef.len() != data.n_features() + 1 {
            return Err(ComponentError::InvalidInput(format!(
                "model fitted on {} features, input has {}",
                coef.len() - 1,
                data.n_features()
            )));
        }
        let design = design_with_intercept(data)?;
        design.matvec(coef).map_err(|e| ComponentError::Numerical(e.to_string()))
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        self.coef.as_ref().map(|c| c[1..].iter().map(|w| w.abs()).collect())
    }

    fn clone_box(&self) -> BoxedEstimator {
        Box::new(LinearRegression::new())
    }
}

/// Ridge regression: OLS with L2 penalty `alpha` on the weights (intercept
/// unpenalized), solved via the normal equations with Cholesky.
#[derive(Debug, Clone)]
pub struct RidgeRegression {
    alpha: f64,
    coef: Option<Vec<f64>>,
}

impl RidgeRegression {
    /// Creates a ridge regressor with penalty `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha < 0`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha >= 0.0, "alpha must be non-negative");
        RidgeRegression { alpha, coef: None }
    }

    /// Fitted `[intercept, w…]`, if fitted.
    pub fn coefficients(&self) -> Option<&[f64]> {
        self.coef.as_deref()
    }
}

impl Default for RidgeRegression {
    fn default() -> Self {
        RidgeRegression::new(1.0)
    }
}

impl Estimator for RidgeRegression {
    fn name(&self) -> &str {
        "ridge_regression"
    }

    fn task(&self) -> TaskKind {
        TaskKind::Regression
    }

    fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
        match param {
            "alpha" => {
                self.alpha = value.as_f64().filter(|a| *a >= 0.0).ok_or_else(|| {
                    ComponentError::InvalidParam {
                        component: "ridge_regression".to_string(),
                        param: param.to_string(),
                        reason: "must be a non-negative number".to_string(),
                    }
                })?;
                Ok(())
            }
            _ => Err(ComponentError::UnknownParam {
                component: self.name().to_string(),
                param: param.to_string(),
            }),
        }
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        let y = data.target_required()?;
        let design = design_with_intercept(data)?;
        let mut gram = design.gram();
        for i in 1..gram.rows() {
            gram[(i, i)] += self.alpha;
        }
        // tiny jitter on the intercept keeps the system PD when alpha = 0
        gram[(0, 0)] += 1e-10;
        let xty =
            design.transpose().matvec(y).map_err(|e| ComponentError::Numerical(e.to_string()))?;
        let coef = cholesky_solve(&gram, &xty)
            .map_err(|e| ComponentError::Numerical(format!("ridge solve failed: {e}")))?;
        self.coef = Some(coef);
        Ok(())
    }

    fn predict(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError> {
        let coef =
            self.coef.as_ref().ok_or_else(|| ComponentError::NotFitted(self.name().to_string()))?;
        if coef.len() != data.n_features() + 1 {
            return Err(ComponentError::InvalidInput(format!(
                "model fitted on {} features, input has {}",
                coef.len() - 1,
                data.n_features()
            )));
        }
        let design = design_with_intercept(data)?;
        design.matvec(coef).map_err(|e| ComponentError::Numerical(e.to_string()))
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        self.coef.as_ref().map(|c| c[1..].iter().map(|w| w.abs()).collect())
    }

    fn clone_box(&self) -> BoxedEstimator {
        Box::new(RidgeRegression::new(self.alpha))
    }
}

/// Binary logistic regression trained by full-batch gradient descent with an
/// L2 penalty. Labels must be `0.0` / `1.0`; `predict` returns hard labels,
/// [`LogisticRegression::predict_proba`] returns probabilities.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    learning_rate: f64,
    max_iter: usize,
    l2: f64,
    coef: Option<Vec<f64>>,
}

impl LogisticRegression {
    /// Creates a logistic regressor with sensible defaults
    /// (lr = 0.1, 500 iterations, l2 = 1e-4).
    pub fn new() -> Self {
        LogisticRegression { learning_rate: 0.1, max_iter: 500, l2: 1e-4, coef: None }
    }

    /// Probability of class 1 per sample.
    ///
    /// # Errors
    ///
    /// [`ComponentError::NotFitted`] before fitting.
    pub fn predict_proba(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError> {
        let coef =
            self.coef.as_ref().ok_or_else(|| ComponentError::NotFitted(self.name().to_string()))?;
        if coef.len() != data.n_features() + 1 {
            return Err(ComponentError::InvalidInput(format!(
                "model fitted on {} features, input has {}",
                coef.len() - 1,
                data.n_features()
            )));
        }
        let design = design_with_intercept(data)?;
        let z = design.matvec(coef).map_err(|e| ComponentError::Numerical(e.to_string()))?;
        Ok(z.into_iter().map(sigmoid).collect())
    }
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new()
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Estimator for LogisticRegression {
    fn name(&self) -> &str {
        "logistic_regression"
    }

    fn task(&self) -> TaskKind {
        TaskKind::Classification
    }

    fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
        let pos = |v: &ParamValue| v.as_f64().filter(|x| *x > 0.0);
        match param {
            "learning_rate" => {
                self.learning_rate = pos(&value).ok_or_else(|| ComponentError::InvalidParam {
                    component: "logistic_regression".to_string(),
                    param: param.to_string(),
                    reason: "must be positive".to_string(),
                })?;
                Ok(())
            }
            "max_iter" => {
                self.max_iter = value.as_usize().filter(|&i| i > 0).ok_or_else(|| {
                    ComponentError::InvalidParam {
                        component: "logistic_regression".to_string(),
                        param: param.to_string(),
                        reason: "must be a positive integer".to_string(),
                    }
                })?;
                Ok(())
            }
            "l2" => {
                self.l2 = value.as_f64().filter(|x| *x >= 0.0).ok_or_else(|| {
                    ComponentError::InvalidParam {
                        component: "logistic_regression".to_string(),
                        param: param.to_string(),
                        reason: "must be non-negative".to_string(),
                    }
                })?;
                Ok(())
            }
            _ => Err(ComponentError::UnknownParam {
                component: self.name().to_string(),
                param: param.to_string(),
            }),
        }
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        let y = data.target_required()?;
        if y.iter().any(|&v| v != 0.0 && v != 1.0) {
            return Err(ComponentError::InvalidInput(
                "logistic regression requires 0/1 labels".to_string(),
            ));
        }
        let design = design_with_intercept(data)?;
        let n = design.rows() as f64;
        let d = design.cols();
        let mut w = vec![0.0; d];
        for _ in 0..self.max_iter {
            let z = design.matvec(&w).map_err(|e| ComponentError::Numerical(e.to_string()))?;
            let mut grad = vec![0.0; d];
            for (i, row) in design.iter_rows().enumerate() {
                let err = sigmoid(z[i]) - y[i];
                for (g, &x) in grad.iter_mut().zip(row) {
                    *g += err * x;
                }
            }
            let mut max_step = 0.0f64;
            for j in 0..d {
                let reg = if j == 0 { 0.0 } else { self.l2 * w[j] };
                let step = self.learning_rate * (grad[j] / n + reg);
                w[j] -= step;
                max_step = max_step.max(step.abs());
            }
            if max_step < 1e-9 {
                break;
            }
        }
        self.coef = Some(w);
        Ok(())
    }

    fn predict(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError> {
        Ok(self
            .predict_proba(data)?
            .into_iter()
            .map(|p| if p >= 0.5 { 1.0 } else { 0.0 })
            .collect())
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        self.coef.as_ref().map(|c| c[1..].iter().map(|w| w.abs()).collect())
    }

    fn clone_box(&self) -> BoxedEstimator {
        let mut fresh = LogisticRegression::new();
        fresh.learning_rate = self.learning_rate;
        fresh.max_iter = self.max_iter;
        fresh.l2 = self.l2;
        Box::new(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::metrics;
    use coda_data::synth;

    #[test]
    fn ols_recovers_exact_coefficients() {
        let ds = synth::linear_regression(200, 4, 0.0, 11);
        let mut lr = LinearRegression::new();
        lr.fit(&ds).unwrap();
        let pred = lr.predict(&ds).unwrap();
        assert!(metrics::rmse(ds.target().unwrap(), &pred).unwrap() < 1e-8);
    }

    #[test]
    fn ols_generalizes_under_noise() {
        let ds = synth::linear_regression(400, 3, 0.2, 12);
        let (train, test) = ds.train_test_split(0.25, 1);
        let mut lr = LinearRegression::new();
        lr.fit(&train).unwrap();
        let pred = lr.predict(&test).unwrap();
        assert!(metrics::r2(test.target().unwrap(), &pred).unwrap() > 0.9);
    }

    #[test]
    fn ols_requires_target_and_enough_samples() {
        let no_target = coda_data::Dataset::new(coda_linalg::Matrix::zeros(5, 2));
        assert!(LinearRegression::new().fit(&no_target).is_err());
        let tiny = synth::linear_regression(2, 5, 0.0, 1);
        assert!(LinearRegression::new().fit(&tiny).is_err());
    }

    #[test]
    fn ols_not_fitted_predict() {
        let ds = synth::linear_regression(10, 2, 0.0, 1);
        assert!(LinearRegression::new().predict(&ds).is_err());
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let ds = synth::linear_regression(100, 3, 0.1, 13);
        let mut low = RidgeRegression::new(1e-6);
        let mut high = RidgeRegression::new(1e4);
        low.fit(&ds).unwrap();
        high.fit(&ds).unwrap();
        let norm = |c: &[f64]| c[1..].iter().map(|w| w * w).sum::<f64>();
        assert!(norm(high.coefficients().unwrap()) < norm(low.coefficients().unwrap()) / 10.0);
    }

    #[test]
    fn ridge_handles_collinear_features() {
        // duplicate column -> OLS design is singular, ridge must still fit
        let base = synth::linear_regression(50, 1, 0.05, 14);
        let x = base.features().hstack(base.features()).unwrap();
        let ds = base.replace_features(x);
        let mut ridge = RidgeRegression::new(1.0);
        ridge.fit(&ds).unwrap();
        let pred = ridge.predict(&ds).unwrap();
        assert!(metrics::r2(ds.target().unwrap(), &pred).unwrap() > 0.9);
    }

    #[test]
    fn ridge_param_setting() {
        let mut r = RidgeRegression::default();
        r.set_param("alpha", ParamValue::from(0.5)).unwrap();
        assert!(r.set_param("alpha", ParamValue::from(-1.0)).is_err());
        assert!(r.set_param("beta", ParamValue::from(1.0)).is_err());
    }

    #[test]
    fn logistic_separates_blobs() {
        let ds = synth::classification_blobs(200, 2, 2, 0.5, 15);
        let (train, test) = ds.train_test_split(0.3, 2);
        let mut clf = LogisticRegression::new();
        clf.fit(&train).unwrap();
        let pred = clf.predict(&test).unwrap();
        assert!(metrics::accuracy(test.target().unwrap(), &pred).unwrap() > 0.95);
        // probabilities in [0,1]
        let probs = clf.predict_proba(&test).unwrap();
        assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn logistic_rejects_nonbinary_labels() {
        let ds = synth::classification_blobs(30, 2, 3, 0.5, 16);
        assert!(LogisticRegression::new().fit(&ds).is_err());
    }

    #[test]
    fn logistic_params() {
        let mut clf = LogisticRegression::new();
        clf.set_param("learning_rate", ParamValue::from(0.05)).unwrap();
        clf.set_param("max_iter", ParamValue::from(100usize)).unwrap();
        clf.set_param("l2", ParamValue::from(0.0)).unwrap();
        assert!(clf.set_param("max_iter", ParamValue::from(0usize)).is_err());
        assert!(clf.set_param("nope", ParamValue::from(1.0)).is_err());
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn importances_match_weight_magnitudes() {
        let ds = synth::linear_regression(100, 3, 0.01, 17);
        let mut lr = LinearRegression::new();
        lr.fit(&ds).unwrap();
        let imp = lr.feature_importances().unwrap();
        assert_eq!(imp.len(), 3);
        assert!(imp.iter().all(|&v| v >= 0.0));
    }
}
