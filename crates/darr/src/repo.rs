//! The repository proper: thread-safe result storage, lookups, claims and
//! staleness handling.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use coda_obs::{Obs, SpanContext};

use crate::record::{AnalyticsRecord, ComputationKey};

/// Result of attempting to claim a computation.
#[derive(Debug, Clone, PartialEq)]
pub enum ClaimOutcome {
    /// The caller holds the claim and should compute.
    Claimed,
    /// Another client holds an unexpired claim.
    HeldBy(String),
    /// The result already exists; reuse it.
    AlreadyComputed(AnalyticsRecord),
}

impl ClaimOutcome {
    /// True when the caller acquired the claim.
    pub fn is_claimed(&self) -> bool {
        matches!(self, ClaimOutcome::Claimed)
    }
}

/// Usage counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DarrStats {
    /// Lookups that found a stored result (computations avoided).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Results stored.
    pub stored: u64,
    /// Claims granted.
    pub claims_granted: u64,
    /// Claims refused because another client held them.
    pub claims_refused: u64,
    /// Unexpired claims reaped because their owner was declared dead.
    pub claims_reaped: u64,
}

impl coda_obs::Publish for DarrStats {
    fn publish(&self, registry: &coda_obs::MetricsRegistry) {
        registry.count("coda_darr_lookup_hits", self.hits);
        registry.count("coda_darr_lookup_misses", self.misses);
        registry.count("coda_darr_records_stored", self.stored);
        registry.count("coda_darr_claims_granted", self.claims_granted);
        registry.count("coda_darr_claims_refused", self.claims_refused);
        registry.count("coda_darr_claims_reaped_total", self.claims_reaped);
    }
}

#[derive(Debug, Clone)]
struct Claim {
    owner: String,
    expires_at: u64,
}

#[derive(Default)]
struct Inner {
    records: BTreeMap<ComputationKey, AnalyticsRecord>,
    claims: BTreeMap<ComputationKey, Claim>,
    /// Latest known version per dataset id (for staleness checks).
    dataset_versions: BTreeMap<String, u64>,
    stats: DarrStats,
    obs: Option<Obs>,
}

/// Counts into the attached registry (no-op without one). Uses the same
/// `coda_darr_*` names as [`DarrStats`]'s `Publish` impl — attach *or*
/// publish, not both, to avoid double counting.
fn obs_count(inner: &Inner, name: &str, n: u64) {
    if let Some(o) = &inner.obs {
        o.count(name, n);
    }
}

/// The shared Data Analytics Results Repository. Cheap to share across
/// threads (`&Darr` is all a client needs).
#[derive(Default)]
pub struct Darr {
    inner: RwLock<Inner>,
    clock: AtomicU64,
}

impl std::fmt::Debug for Darr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        write!(
            f,
            "Darr[{} records, {} claims, clock {}]",
            inner.records.len(),
            inner.claims.len(),
            self.clock.load(Ordering::Relaxed)
        )
    }
}

impl Darr {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches an observability handle: lookups, claims and stores count
    /// live into its registry under `coda_darr_*` names.
    pub fn attach_obs(&self, obs: Obs) {
        self.inner.write().obs = Some(obs);
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Advances the logical clock (expired claims become reclaimable).
    pub fn advance_clock(&self, ticks: u64) {
        self.clock.fetch_add(ticks, Ordering::Relaxed);
    }

    /// Registers the latest version of a dataset; results and claims for
    /// older versions become stale (lookups ignore them).
    pub fn register_dataset_version(&self, dataset_id: &str, version: u64) {
        let mut inner = self.inner.write();
        let slot = inner.dataset_versions.entry(dataset_id.to_string()).or_insert(0);
        if version > *slot {
            *slot = version;
        }
    }

    /// Latest registered version of a dataset.
    pub fn dataset_version(&self, dataset_id: &str) -> Option<u64> {
        self.inner.read().dataset_versions.get(dataset_id).copied()
    }

    fn is_stale(inner: &Inner, key: &ComputationKey) -> bool {
        inner
            .dataset_versions
            .get(&key.dataset_id)
            .map(|&latest| key.dataset_version < latest)
            .unwrap_or(false)
    }

    /// Looks up a stored result. Stale results (older dataset versions) are
    /// treated as misses.
    pub fn lookup(&self, key: &ComputationKey) -> Option<AnalyticsRecord> {
        let mut inner = self.inner.write();
        if Self::is_stale(&inner, key) {
            inner.stats.misses += 1;
            obs_count(&inner, "coda_darr_lookup_misses", 1);
            return None;
        }
        match inner.records.get(key).cloned() {
            Some(r) => {
                inner.stats.hits += 1;
                obs_count(&inner, "coda_darr_lookup_hits", 1);
                Some(r)
            }
            None => {
                inner.stats.misses += 1;
                obs_count(&inner, "coda_darr_lookup_misses", 1);
                None
            }
        }
    }

    /// Everything computed so far for a dataset at its current version —
    /// the paper's "users can determine from the DARR which calculations
    /// have been run for a certain data set".
    pub fn computed_for(&self, dataset_id: &str) -> Vec<AnalyticsRecord> {
        let inner = self.inner.read();
        inner
            .records
            .iter()
            .filter(|(k, _)| k.dataset_id == dataset_id && !Self::is_stale(&inner, k))
            .map(|(_, r)| r.clone())
            .collect()
    }

    /// The best stored result for a dataset under `metric`, using
    /// `higher_is_better` to rank.
    pub fn best_for(
        &self,
        dataset_id: &str,
        metric: &str,
        higher_is_better: bool,
    ) -> Option<AnalyticsRecord> {
        self.computed_for(dataset_id).into_iter().filter(|r| r.key.metric == metric).reduce(
            |a, b| {
                let better = if higher_is_better { b.score > a.score } else { b.score < a.score };
                if better {
                    b
                } else {
                    a
                }
            },
        )
    }

    /// The attached observability handle, if any (cheap clone of two
    /// `Arc`s) — taken *before* repository operations so span recording
    /// never runs under the inner lock.
    fn obs_handle(&self) -> Option<Obs> {
        self.inner.read().obs.clone()
    }

    /// [`Darr::try_claim`] inside a causal trace: when the requesting
    /// client carries a [`SpanContext`] (and an [`Obs`] is attached), the
    /// claim runs in a `darr.claim` child span of that context, with the
    /// outcome recorded as a point event — so a coordinator's trace shows
    /// exactly where contention and reuse happened. Without a carried
    /// context this is identical to `try_claim`.
    pub fn try_claim_in(
        &self,
        key: &ComputationKey,
        client: &str,
        duration: u64,
        parent: Option<SpanContext>,
    ) -> ClaimOutcome {
        let obs = self.obs_handle();
        let span = match (parent, obs.as_ref()) {
            (Some(p), Some(o)) => Some(o.tracer().span_child(
                p,
                "darr.claim",
                &[("client", client), ("key", &key.pipeline)],
            )),
            _ => None,
        };
        let outcome = self.try_claim(key, client, duration);
        if let (Some(s), Some(o)) = (&span, obs.as_ref()) {
            let label = match &outcome {
                ClaimOutcome::Claimed => "claimed",
                ClaimOutcome::HeldBy(_) => "held",
                ClaimOutcome::AlreadyComputed(_) => "reused",
            };
            o.event_in(s.context(), "darr.claim_outcome", &[("outcome", label)]);
        }
        outcome
    }

    /// Attempts to claim `key` for `client` for `duration` logical ticks.
    pub fn try_claim(&self, key: &ComputationKey, client: &str, duration: u64) -> ClaimOutcome {
        let now = self.now();
        let mut inner = self.inner.write();
        if !Self::is_stale(&inner, key) {
            if let Some(r) = inner.records.get(key).cloned() {
                inner.stats.hits += 1;
                obs_count(&inner, "coda_darr_lookup_hits", 1);
                return ClaimOutcome::AlreadyComputed(r);
            }
        }
        let holder = inner
            .claims
            .get(key)
            .filter(|c| c.expires_at > now && c.owner != client)
            .map(|c| c.owner.clone());
        match holder {
            Some(owner) => {
                inner.stats.claims_refused += 1;
                obs_count(&inner, "coda_darr_claims_refused", 1);
                ClaimOutcome::HeldBy(owner)
            }
            None => {
                inner.claims.insert(
                    key.clone(),
                    Claim { owner: client.to_string(), expires_at: now + duration },
                );
                inner.stats.claims_granted += 1;
                obs_count(&inner, "coda_darr_claims_granted", 1);
                ClaimOutcome::Claimed
            }
        }
    }

    /// Releases a claim without storing a result (e.g. the client failed).
    /// Returns true if the caller held it.
    pub fn release_claim(&self, key: &ComputationKey, client: &str) -> bool {
        let mut inner = self.inner.write();
        if inner.claims.get(key).map(|c| c.owner == client).unwrap_or(false) {
            inner.claims.remove(key);
            true
        } else {
            false
        }
    }

    /// Reaps every claim held by a crashed `owner`, making its in-flight
    /// computations re-claimable by the surviving clients.
    ///
    /// The failure detector declared `owner` dead at logical time
    /// `dead_since`; reaping waits out a `grace` period beyond that
    /// instant so a wrongly-suspected (merely slow) owner that comes back
    /// keeps its claims. Until `now >= dead_since + grace` this is a
    /// no-op. Expired claims need no reaping — [`Darr::try_claim`]
    /// already ignores them — so only *unexpired* claims count here.
    /// Returns the number of claims reaped.
    pub fn reap_claims(&self, owner: &str, dead_since: u64, grace: u64) -> usize {
        let now = self.now();
        if now < dead_since.saturating_add(grace) {
            return 0;
        }
        let mut inner = self.inner.write();
        let doomed: Vec<ComputationKey> = inner
            .claims
            .iter()
            .filter(|(_, c)| c.owner == owner && c.expires_at > now)
            .map(|(k, _)| k.clone())
            .collect();
        for k in &doomed {
            inner.claims.remove(k);
        }
        let n = doomed.len();
        if n > 0 {
            inner.stats.claims_reaped += n as u64;
            obs_count(&inner, "coda_darr_claims_reaped_total", n as u64);
        }
        n
    }

    /// [`Darr::complete`] inside a causal trace: the store-and-release runs
    /// in a `darr.complete` child span of the producing client's carried
    /// context (no-op linkage without one).
    pub fn complete_in(
        &self,
        key: &ComputationKey,
        client: &str,
        score: f64,
        fold_scores: Vec<f64>,
        explanation: &str,
        parent: Option<SpanContext>,
    ) -> AnalyticsRecord {
        let obs = self.obs_handle();
        let _span = match (parent, obs.as_ref()) {
            (Some(p), Some(o)) => Some(o.tracer().span_child(
                p,
                "darr.complete",
                &[("client", client), ("key", &key.pipeline)],
            )),
            _ => None,
        };
        self.complete(key, client, score, fold_scores, explanation)
    }

    /// Stores a completed result and releases the claim.
    pub fn complete(
        &self,
        key: &ComputationKey,
        client: &str,
        score: f64,
        fold_scores: Vec<f64>,
        explanation: &str,
    ) -> AnalyticsRecord {
        let record = AnalyticsRecord {
            key: key.clone(),
            score,
            fold_scores,
            explanation: explanation.to_string(),
            producer: client.to_string(),
            stored_at: self.now(),
        };
        let mut inner = self.inner.write();
        inner.claims.remove(key);
        inner.records.insert(key.clone(), record.clone());
        inner.stats.stored += 1;
        obs_count(&inner, "coda_darr_records_stored", 1);
        record
    }

    /// [`Darr::merge_record`] inside a causal trace: the journal-replay
    /// merge runs in a `darr.merge` child span of the replaying client's
    /// carried context, its applied/ignored outcome recorded as an event.
    pub fn merge_record_in(&self, record: AnalyticsRecord, parent: Option<SpanContext>) -> bool {
        let obs = self.obs_handle();
        let span = match (parent, obs.as_ref()) {
            (Some(p), Some(o)) => Some(o.tracer().span_child(
                p,
                "darr.merge",
                &[("producer", &record.producer), ("key", &record.key.pipeline)],
            )),
            _ => None,
        };
        let applied = self.merge_record(record);
        if let (Some(s), Some(o)) = (&span, obs.as_ref()) {
            let label = if applied { "applied" } else { "ignored" };
            o.event_in(s.context(), "darr.merge_outcome", &[("outcome", label)]);
        }
        applied
    }

    /// Merges one externally-produced record (e.g. replayed from a client's
    /// write-behind journal after a partition healed), keeping the *newer*
    /// `stored_at` on conflict — the same rule as [`Darr::import_records`].
    /// Releases any claim on the key and returns true when the record was
    /// applied.
    pub fn merge_record(&self, record: AnalyticsRecord) -> bool {
        let mut inner = self.inner.write();
        let keep_incoming = inner
            .records
            .get(&record.key)
            .map(|existing| record.stored_at > existing.stored_at)
            .unwrap_or(true);
        if keep_incoming {
            inner.claims.remove(&record.key);
            inner.records.insert(record.key.clone(), record);
            inner.stats.stored += 1;
            obs_count(&inner, "coda_darr_records_stored", 1);
        }
        keep_incoming
    }

    /// Serializes every stored record to JSON lines — the repository is a
    /// durable cloud artifact in the paper, so its contents must survive
    /// process restarts and travel between sites.
    pub fn export_records(&self) -> String {
        let inner = self.inner.read();
        inner.records.values().map(|r| r.to_json()).collect::<Vec<_>>().join("\n")
    }

    /// Imports records from [`Darr::export_records`] output, merging into
    /// the current repository (existing keys keep the *newer* `stored_at`).
    /// Returns the number of records applied.
    ///
    /// # Errors
    ///
    /// The underlying `serde_json` error on the first malformed line;
    /// earlier valid lines remain applied.
    pub fn import_records(&self, snapshot: &str) -> Result<usize, serde_json::Error> {
        let mut applied = 0usize;
        for line in snapshot.lines().filter(|l| !l.trim().is_empty()) {
            let record = AnalyticsRecord::from_json(line)?;
            let mut inner = self.inner.write();
            let keep_incoming = inner
                .records
                .get(&record.key)
                .map(|existing| record.stored_at > existing.stored_at)
                .unwrap_or(true);
            if keep_incoming {
                inner.records.insert(record.key.clone(), record);
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// Usage counters.
    pub fn stats(&self) -> DarrStats {
        self.inner.read().stats
    }

    /// Number of stored records (including stale ones).
    pub fn len(&self) -> usize {
        self.inner.read().records.len()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: &str) -> ComputationKey {
        ComputationKey::new("ds", 1, p, "kfold(5)", "rmse")
    }

    #[test]
    fn store_lookup_roundtrip() {
        let darr = Darr::new();
        assert!(darr.lookup(&key("p1")).is_none());
        darr.complete(&key("p1"), "c1", 0.5, vec![0.4, 0.6], "why");
        let r = darr.lookup(&key("p1")).unwrap();
        assert_eq!(r.score, 0.5);
        assert_eq!(r.producer, "c1");
        assert_eq!(darr.len(), 1);
        assert!(!darr.is_empty());
        let stats = darr.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.stored, 1);
    }

    #[test]
    fn claims_are_exclusive_until_expiry() {
        let darr = Darr::new();
        assert!(darr.try_claim(&key("p"), "a", 50).is_claimed());
        match darr.try_claim(&key("p"), "b", 50) {
            ClaimOutcome::HeldBy(owner) => assert_eq!(owner, "a"),
            other => panic!("expected HeldBy, got {other:?}"),
        }
        // owner can re-claim (idempotent)
        assert!(darr.try_claim(&key("p"), "a", 50).is_claimed());
        // after expiry another client may take over
        darr.advance_clock(51);
        assert!(darr.try_claim(&key("p"), "b", 50).is_claimed());
    }

    #[test]
    fn claim_after_completion_returns_record() {
        let darr = Darr::new();
        darr.try_claim(&key("p"), "a", 50);
        darr.complete(&key("p"), "a", 1.0, vec![1.0], "done");
        match darr.try_claim(&key("p"), "b", 50) {
            ClaimOutcome::AlreadyComputed(r) => assert_eq!(r.score, 1.0),
            other => panic!("expected AlreadyComputed, got {other:?}"),
        }
    }

    #[test]
    fn release_claim_requires_ownership() {
        let darr = Darr::new();
        darr.try_claim(&key("p"), "a", 50);
        assert!(!darr.release_claim(&key("p"), "b"));
        assert!(darr.release_claim(&key("p"), "a"));
        assert!(darr.try_claim(&key("p"), "b", 50).is_claimed());
    }

    #[test]
    fn reaping_waits_out_the_grace_period() {
        let darr = Darr::new();
        darr.try_claim(&key("p1"), "dead", 1000);
        darr.try_claim(&key("p2"), "dead", 1000);
        darr.try_claim(&key("p3"), "alive", 1000);
        // detector declares "dead" gone at t=10; grace is 20 ticks
        darr.advance_clock(25);
        assert_eq!(darr.reap_claims("dead", 10, 20), 0, "inside grace: no-op");
        assert!(matches!(darr.try_claim(&key("p1"), "b", 50), ClaimOutcome::HeldBy(_)));
        darr.advance_clock(5); // now = 30 = dead_since + grace
        assert_eq!(darr.reap_claims("dead", 10, 20), 2);
        assert_eq!(darr.stats().claims_reaped, 2);
        // the dead owner's keys are re-claimable; the live owner's is not
        assert!(darr.try_claim(&key("p1"), "b", 50).is_claimed());
        assert!(darr.try_claim(&key("p2"), "b", 50).is_claimed());
        assert!(matches!(darr.try_claim(&key("p3"), "b", 50), ClaimOutcome::HeldBy(_)));
        // idempotent: nothing left to reap
        assert_eq!(darr.reap_claims("dead", 10, 20), 0);
    }

    #[test]
    fn reaping_counts_into_an_attached_registry() {
        use coda_obs::Obs;
        let obs = Obs::deterministic();
        let darr = Darr::new();
        darr.attach_obs(obs.clone());
        darr.try_claim(&key("p"), "dead", 1000);
        darr.advance_clock(50);
        assert_eq!(darr.reap_claims("dead", 0, 10), 1);
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter("coda_darr_claims_reaped_total"), 1);
    }

    #[test]
    fn dataset_version_bump_invalidates() {
        let darr = Darr::new();
        darr.register_dataset_version("ds", 1);
        darr.complete(&key("p"), "a", 0.7, vec![], "v1 result");
        assert!(darr.lookup(&key("p")).is_some());
        darr.register_dataset_version("ds", 2);
        // the old result is stale...
        assert!(darr.lookup(&key("p")).is_none());
        assert!(darr.computed_for("ds").is_empty());
        // ...and the key can be claimed again at the new version
        assert!(darr.try_claim(&key("p").at_version(2), "b", 50).is_claimed());
        assert_eq!(darr.dataset_version("ds"), Some(2));
        // version registration never goes backwards
        darr.register_dataset_version("ds", 1);
        assert_eq!(darr.dataset_version("ds"), Some(2));
    }

    #[test]
    fn computed_for_and_best_for() {
        let darr = Darr::new();
        darr.complete(&key("p1"), "a", 0.9, vec![], "");
        darr.complete(&key("p2"), "b", 0.3, vec![], "");
        darr.complete(&ComputationKey::new("other", 1, "p", "cv", "rmse"), "c", 0.1, vec![], "");
        assert_eq!(darr.computed_for("ds").len(), 2);
        // rmse: lower is better
        let best = darr.best_for("ds", "rmse", false).unwrap();
        assert_eq!(best.key.pipeline, "p2");
        let best_high = darr.best_for("ds", "rmse", true).unwrap();
        assert_eq!(best_high.key.pipeline, "p1");
        assert!(darr.best_for("ds", "auc", true).is_none());
    }

    #[test]
    fn concurrent_claims_are_exclusive() {
        use std::sync::Arc;
        let darr = Arc::new(Darr::new());
        let keys: Vec<ComputationKey> = (0..20).map(|i| key(&format!("p{i}"))).collect();
        let mut handles = Vec::new();
        for t in 0..8 {
            let darr = Arc::clone(&darr);
            let keys = keys.clone();
            handles.push(std::thread::spawn(move || {
                let client = format!("client-{t}");
                let mut won = 0usize;
                for k in &keys {
                    if darr.try_claim(k, &client, 1000).is_claimed() {
                        won += 1;
                        darr.complete(k, &client, 0.0, vec![], "");
                    }
                }
                won
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // every key computed exactly once across all clients
        assert_eq!(total, 20);
        assert_eq!(darr.len(), 20);
    }

    #[test]
    fn export_import_roundtrip_and_merge() {
        let darr = Darr::new();
        darr.complete(&key("p1"), "a", 0.5, vec![0.4], "first");
        darr.advance_clock(10);
        darr.complete(&key("p2"), "b", 0.7, vec![], "second");
        let snapshot = darr.export_records();
        assert_eq!(snapshot.lines().count(), 2);

        // a fresh repository restores everything
        let restored = Darr::new();
        assert_eq!(restored.import_records(&snapshot).unwrap(), 2);
        assert_eq!(restored.lookup(&key("p1")).unwrap().score, 0.5);
        assert_eq!(restored.lookup(&key("p2")).unwrap().producer, "b");

        // merging an older snapshot does not clobber newer local results
        restored.advance_clock(100);
        restored.complete(&key("p1"), "c", 0.1, vec![], "newer");
        assert_eq!(restored.import_records(&snapshot).unwrap(), 0);
        assert_eq!(restored.lookup(&key("p1")).unwrap().producer, "c");

        // malformed lines error
        assert!(restored.import_records("not json").is_err());
        // empty snapshot is a no-op
        assert_eq!(restored.import_records("").unwrap(), 0);
    }

    #[test]
    fn merge_record_keeps_newer_and_clears_claims() {
        let darr = Darr::new();
        darr.advance_clock(10);
        darr.complete(&key("p"), "a", 0.5, vec![], "local");
        // an older journaled record loses to the local one
        let old = AnalyticsRecord {
            key: key("p"),
            score: 0.9,
            fold_scores: vec![],
            explanation: "stale".to_string(),
            producer: "b".to_string(),
            stored_at: 5,
        };
        assert!(!darr.merge_record(old));
        assert_eq!(darr.lookup(&key("p")).unwrap().producer, "a");
        // a newer one wins and releases any claim on the key
        darr.try_claim(&key("p2"), "c", 100);
        let newer = AnalyticsRecord {
            key: key("p2"),
            score: 0.1,
            fold_scores: vec![0.1],
            explanation: "journaled".to_string(),
            producer: "b".to_string(),
            stored_at: 50,
        };
        assert!(darr.merge_record(newer));
        match darr.try_claim(&key("p2"), "d", 100) {
            ClaimOutcome::AlreadyComputed(r) => assert_eq!(r.producer, "b"),
            other => panic!("expected AlreadyComputed, got {other:?}"),
        }
    }

    #[test]
    fn claim_and_complete_link_to_the_carried_context() {
        use coda_obs::{Obs, TraceForest};
        let obs = Obs::deterministic();
        let darr = Darr::new();
        darr.attach_obs(obs.clone());
        let req = obs.tracer().begin_span("client.process", None, &[]);
        assert!(darr.try_claim_in(&key("p"), "a", 50, Some(req)).is_claimed());
        darr.complete_in(&key("p"), "a", 0.5, vec![], "done", Some(req));
        obs.tracer().end_span(req, &[]);
        let forest = TraceForest::from_events(&obs.tracer().events());
        assert!(forest.orphans().is_empty());
        assert_eq!(forest.unresolved_points(), 0);
        for name in ["darr.claim", "darr.complete"] {
            let span = forest.spans().find(|s| s.name == name).unwrap();
            assert_eq!(span.parent, Some(req.span_id), "{name} hangs off the request");
        }
        // without a carried context the operations trace nothing
        let quiet = Darr::new();
        quiet.attach_obs(Obs::deterministic());
        quiet.try_claim_in(&key("q"), "a", 50, None);
        assert_eq!(quiet.obs_handle().unwrap().tracer().len(), 0);
    }

    #[test]
    fn debug_nonempty() {
        let darr = Darr::new();
        assert!(format!("{darr:?}").contains("Darr"));
    }
}
