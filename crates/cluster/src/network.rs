//! Deterministic network model: per-pair latency/bandwidth with optional
//! link failure, plus transfer accounting.

use std::collections::BTreeMap;

/// Link parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Link {
    latency_ms: f64,
    bytes_per_ms: f64,
    up: bool,
}

/// A simulated network: a default link plus per-pair overrides. Pairs are
/// unordered (the link is symmetric).
#[derive(Debug, Clone)]
pub struct SimNetwork {
    default_latency_ms: f64,
    default_bytes_per_ms: f64,
    overrides: BTreeMap<(String, String), Link>,
    /// Total messages sent.
    pub messages: u64,
    /// Total bytes transferred.
    pub bytes: u64,
}

fn pair(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

impl SimNetwork {
    /// Creates a network with default link parameters.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters.
    pub fn new(default_latency_ms: f64, default_bytes_per_ms: f64) -> Self {
        assert!(default_latency_ms >= 0.0 && default_bytes_per_ms > 0.0);
        SimNetwork {
            default_latency_ms,
            default_bytes_per_ms,
            overrides: BTreeMap::new(),
            messages: 0,
            bytes: 0,
        }
    }

    /// Overrides the link between two nodes.
    pub fn set_link(&mut self, a: &str, b: &str, latency_ms: f64, bytes_per_ms: f64) {
        self.overrides
            .insert(pair(a, b), Link { latency_ms, bytes_per_ms, up: true });
    }

    /// Takes the link between two nodes down (poor connectivity, §III).
    pub fn disconnect(&mut self, a: &str, b: &str) {
        let key = pair(a, b);
        let link = self.overrides.entry(key).or_insert(Link {
            latency_ms: self.default_latency_ms,
            bytes_per_ms: self.default_bytes_per_ms,
            up: true,
        });
        link.up = false;
    }

    /// Restores the link between two nodes.
    pub fn reconnect(&mut self, a: &str, b: &str) {
        if let Some(link) = self.overrides.get_mut(&pair(a, b)) {
            link.up = true;
        }
    }

    /// True when the two nodes can communicate.
    pub fn is_connected(&self, a: &str, b: &str) -> bool {
        self.overrides.get(&pair(a, b)).map(|l| l.up).unwrap_or(true)
    }

    /// Time to move `bytes` from `a` to `b` in one message, or `None` when
    /// disconnected. Records the transfer.
    pub fn transfer(&mut self, a: &str, b: &str, bytes: u64) -> Option<f64> {
        let link = self
            .overrides
            .get(&pair(a, b))
            .copied()
            .unwrap_or(Link {
                latency_ms: self.default_latency_ms,
                bytes_per_ms: self.default_bytes_per_ms,
                up: true,
            });
        if !link.up {
            return None;
        }
        self.messages += 1;
        self.bytes += bytes;
        Some(link.latency_ms + bytes as f64 / link.bytes_per_ms)
    }

    /// Round-trip cost of a request/response with the given payload sizes.
    pub fn round_trip(
        &mut self,
        a: &str,
        b: &str,
        request_bytes: u64,
        response_bytes: u64,
    ) -> Option<f64> {
        let there = self.transfer(a, b, request_bytes)?;
        let back = self.transfer(b, a, response_bytes)?;
        Some(there + back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_link_timing() {
        let mut net = SimNetwork::new(10.0, 100.0);
        let t = net.transfer("a", "b", 1000).unwrap();
        assert!((t - 20.0).abs() < 1e-12); // 10 latency + 1000/100
        assert_eq!(net.messages, 1);
        assert_eq!(net.bytes, 1000);
    }

    #[test]
    fn override_is_symmetric() {
        let mut net = SimNetwork::new(10.0, 100.0);
        net.set_link("x", "y", 1.0, 1000.0);
        let t1 = net.transfer("x", "y", 1000).unwrap();
        let t2 = net.transfer("y", "x", 1000).unwrap();
        assert_eq!(t1, t2);
        assert!((t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disconnect_and_reconnect() {
        let mut net = SimNetwork::new(5.0, 10.0);
        assert!(net.is_connected("a", "b"));
        net.disconnect("a", "b");
        assert!(!net.is_connected("a", "b"));
        assert!(net.transfer("a", "b", 10).is_none());
        assert!(net.round_trip("a", "b", 1, 1).is_none());
        // other links unaffected
        assert!(net.transfer("a", "c", 10).is_some());
        net.reconnect("a", "b");
        assert!(net.transfer("a", "b", 10).is_some());
    }

    #[test]
    fn round_trip_sums_both_directions() {
        let mut net = SimNetwork::new(10.0, 100.0);
        let t = net.round_trip("a", "b", 100, 400).unwrap();
        assert!((t - (10.0 + 1.0 + 10.0 + 4.0)).abs() < 1e-12);
        assert_eq!(net.messages, 2);
    }

    #[test]
    fn invalid_defaults_panic() {
        assert!(std::panic::catch_unwind(|| SimNetwork::new(1.0, 0.0)).is_err());
    }
}
