/root/repo/target/debug/examples/quickstart-d06d46471bc55da1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d06d46471bc55da1: examples/quickstart.rs

examples/quickstart.rs:
