/root/repo/target/debug/deps/coda_timeseries-0b2317f7965797d6.d: crates/timeseries/src/lib.rs crates/timeseries/src/deep.rs crates/timeseries/src/forecast.rs crates/timeseries/src/models.rs crates/timeseries/src/pipeline.rs crates/timeseries/src/series.rs crates/timeseries/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libcoda_timeseries-0b2317f7965797d6.rmeta: crates/timeseries/src/lib.rs crates/timeseries/src/deep.rs crates/timeseries/src/forecast.rs crates/timeseries/src/models.rs crates/timeseries/src/pipeline.rs crates/timeseries/src/series.rs crates/timeseries/src/window.rs Cargo.toml

crates/timeseries/src/lib.rs:
crates/timeseries/src/deep.rs:
crates/timeseries/src/forecast.rs:
crates/timeseries/src/models.rs:
crates/timeseries/src/pipeline.rs:
crates/timeseries/src/series.rs:
crates/timeseries/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
