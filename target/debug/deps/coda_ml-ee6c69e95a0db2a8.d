/root/repo/target/debug/deps/coda_ml-ee6c69e95a0db2a8.d: crates/ml/src/lib.rs crates/ml/src/balance.rs crates/ml/src/bayes.rs crates/ml/src/boost.rs crates/ml/src/forest.rs crates/ml/src/kernel_pca.rs crates/ml/src/kmeans.rs crates/ml/src/knn.rs crates/ml/src/lda.rs crates/ml/src/linear.rs crates/ml/src/pca.rs crates/ml/src/scalers.rs crates/ml/src/select.rs crates/ml/src/tree.rs

/root/repo/target/debug/deps/coda_ml-ee6c69e95a0db2a8: crates/ml/src/lib.rs crates/ml/src/balance.rs crates/ml/src/bayes.rs crates/ml/src/boost.rs crates/ml/src/forest.rs crates/ml/src/kernel_pca.rs crates/ml/src/kmeans.rs crates/ml/src/knn.rs crates/ml/src/lda.rs crates/ml/src/linear.rs crates/ml/src/pca.rs crates/ml/src/scalers.rs crates/ml/src/select.rs crates/ml/src/tree.rs

crates/ml/src/lib.rs:
crates/ml/src/balance.rs:
crates/ml/src/bayes.rs:
crates/ml/src/boost.rs:
crates/ml/src/forest.rs:
crates/ml/src/kernel_pca.rs:
crates/ml/src/kmeans.rs:
crates/ml/src/knn.rs:
crates/ml/src/lda.rs:
crates/ml/src/linear.rs:
crates/ml/src/pca.rs:
crates/ml/src/scalers.rs:
crates/ml/src/select.rs:
crates/ml/src/tree.rs:
