//! Classical transformers and estimators for the `coda` stack.
//!
//! Everything here implements the [`coda_data::Transformer`] /
//! [`coda_data::Estimator`] contract so it can be placed in a
//! Transformer-Estimator Graph. The catalog covers the components the paper
//! names in Table I, Fig. 3 and §III: scalers (standard / min-max / robust),
//! PCA, SelectKBest, linear & ridge & logistic regression, k-NN, CART
//! decision trees, random forests, gradient boosting and Gaussian naive
//! Bayes, plus k-means for cohort analysis.
//!
//! # Examples
//!
//! ```
//! use coda_data::{synth, Estimator};
//! use coda_ml::LinearRegression;
//!
//! let ds = synth::linear_regression(200, 3, 0.01, 7);
//! let mut lr = LinearRegression::new();
//! lr.fit(&ds)?;
//! let preds = lr.predict(&ds)?;
//! let r2 = coda_data::metrics::r2(ds.target().unwrap(), &preds)?;
//! assert!(r2 > 0.99);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod balance;
pub mod bayes;
pub mod boost;
pub mod forest;
pub mod kernel_pca;
pub mod kmeans;
pub mod knn;
pub mod lda;
pub mod linear;
pub mod pca;
pub mod scalers;
pub mod select;
pub mod tree;

pub use balance::RandomOversampler;
pub use bayes::GaussianNb;
pub use boost::GradientBoostingRegressor;
pub use forest::{RandomForestClassifier, RandomForestRegressor};
pub use kernel_pca::{Kernel, KernelPca};
pub use kmeans::KMeans;
pub use knn::{KnnClassifier, KnnRegressor};
pub use lda::Lda;
pub use linear::{LinearRegression, LogisticRegression, RidgeRegression};
pub use pca::Pca;
pub use scalers::{MinMaxScaler, RobustScaler, StandardScaler};
pub use select::{ScoreFunction, SelectKBest};
pub use tree::{DecisionTreeClassifier, DecisionTreeRegressor};
