//! Anomaly Analysis: "builds a model to flag data as corresponding to a
//! normal operation mode or an anomalous mode" (§IV-E).
//!
//! The template fits the normal operating envelope on (mostly-normal)
//! training data with a robust per-feature model (median/MAD) plus a
//! k-means distance model, and flags points outside either envelope.

use coda_data::Dataset;
use coda_linalg::stats;
use coda_ml::KMeans;

use crate::TemplateError;

/// Result of an anomaly run.
#[derive(Debug, Clone)]
pub struct AnomalyReport {
    /// Per-sample anomaly flags.
    pub flags: Vec<bool>,
    /// Per-sample anomaly scores (higher = more anomalous).
    pub scores: Vec<f64>,
    /// The score threshold used.
    pub threshold: f64,
    /// Fraction flagged.
    pub flagged_fraction: f64,
}

/// The Anomaly Analysis template.
#[derive(Debug, Clone)]
pub struct AnomalyAnalysis {
    /// Robust z-score beyond which a point is anomalous.
    threshold: f64,
    clusters: usize,
    fitted: Option<FittedEnvelope>,
}

#[derive(Debug, Clone)]
struct FittedEnvelope {
    medians: Vec<f64>,
    mads: Vec<f64>,
    kmeans: KMeans,
    /// Robust scale of distances to the nearest centre.
    dist_median: f64,
    dist_mad: f64,
}

impl AnomalyAnalysis {
    /// Creates the template (threshold 4 robust sigmas, 3 clusters).
    pub fn new() -> Self {
        AnomalyAnalysis { threshold: 4.0, clusters: 3, fitted: None }
    }

    /// Sets the robust-sigma threshold.
    ///
    /// # Panics
    ///
    /// Panics if `t <= 0`.
    pub fn with_threshold(mut self, t: f64) -> Self {
        assert!(t > 0.0);
        self.threshold = t;
        self
    }

    /// Sets the number of normal operating modes (k-means clusters).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_modes(mut self, k: usize) -> Self {
        assert!(k > 0);
        self.clusters = k;
        self
    }

    /// Fits the normal envelope on training data (which may contain a small
    /// fraction of anomalies — the robust statistics tolerate them).
    ///
    /// # Errors
    ///
    /// [`TemplateError::InvalidData`] for too-small data,
    /// [`TemplateError::Evaluation`] when clustering fails.
    pub fn fit(mut self, data: &Dataset) -> Result<Self, TemplateError> {
        if data.n_samples() < self.clusters.max(10) {
            return Err(TemplateError::InvalidData(format!(
                "need at least {} samples",
                self.clusters.max(10)
            )));
        }
        let x = data.features();
        let mut medians = Vec::with_capacity(x.cols());
        let mut mads = Vec::with_capacity(x.cols());
        for c in 0..x.cols() {
            let col = x.col(c);
            let med = stats::median(&col);
            let devs: Vec<f64> = col.iter().map(|v| (v - med).abs()).collect();
            let mad = (stats::median(&devs) * 1.4826).max(1e-9);
            medians.push(med);
            mads.push(mad);
        }
        let kmeans = KMeans::new(self.clusters)
            .with_seed(17)
            .fit(data)
            .map_err(|e| TemplateError::Evaluation(e.to_string()))?;
        let dists = Self::center_distances(&kmeans, data);
        let dist_median = stats::median(&dists);
        let devs: Vec<f64> = dists.iter().map(|d| (d - dist_median).abs()).collect();
        let dist_mad = (stats::median(&devs) * 1.4826).max(1e-9);
        self.fitted = Some(FittedEnvelope { medians, mads, kmeans, dist_median, dist_mad });
        Ok(self)
    }

    fn center_distances(kmeans: &KMeans, data: &Dataset) -> Vec<f64> {
        let centers = kmeans.centers().expect("fitted");
        data.features()
            .iter_rows()
            .map(|row| {
                (0..centers.rows())
                    .map(|c| {
                        row.iter()
                            .zip(centers.row(c))
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum::<f64>()
                            .sqrt()
                    })
                    .fold(f64::INFINITY, f64::min)
            })
            .collect()
    }

    /// Scores and flags new data against the fitted envelope.
    ///
    /// # Errors
    ///
    /// [`TemplateError::Evaluation`] before [`AnomalyAnalysis::fit`].
    pub fn detect(&self, data: &Dataset) -> Result<AnomalyReport, TemplateError> {
        let env = self
            .fitted
            .as_ref()
            .ok_or_else(|| TemplateError::Evaluation("fit before detect".to_string()))?;
        if data.n_features() != env.medians.len() {
            return Err(TemplateError::InvalidData(format!(
                "fitted on {} features, input has {}",
                env.medians.len(),
                data.n_features()
            )));
        }
        let x = data.features();
        let dists = Self::center_distances(&env.kmeans, data);
        let mut scores = Vec::with_capacity(x.rows());
        for (r, row) in x.iter_rows().enumerate() {
            // robust per-feature z-score (max across features)
            let feature_score = row
                .iter()
                .zip(env.medians.iter().zip(&env.mads))
                .map(|(v, (m, s))| ((v - m) / s).abs())
                .fold(0.0f64, f64::max);
            // distance-to-mode score
            let dist_score = ((dists[r] - env.dist_median) / env.dist_mad).abs();
            scores.push(feature_score.max(dist_score));
        }
        let flags: Vec<bool> = scores.iter().map(|&s| s > self.threshold).collect();
        let flagged = flags.iter().filter(|&&f| f).count();
        Ok(AnomalyReport {
            flagged_fraction: flagged as f64 / flags.len().max(1) as f64,
            flags,
            scores,
            threshold: self.threshold,
        })
    }
}

impl Default for AnomalyAnalysis {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::metrics;
    use coda_data::synth;

    #[test]
    fn detects_injected_anomalies() {
        let (data, truth) = synth::anomaly_data(1500, 4, 0.04, 61);
        let detector = AnomalyAnalysis::new().fit(&data).unwrap();
        let report = detector.detect(&data).unwrap();
        let truth_f: Vec<f64> = truth.iter().map(|&t| if t { 1.0 } else { 0.0 }).collect();
        let flags_f: Vec<f64> = report.flags.iter().map(|&f| if f { 1.0 } else { 0.0 }).collect();
        let f1 = metrics::f1_score(&truth_f, &flags_f, 1.0).unwrap();
        assert!(f1 > 0.7, "f1 = {f1}");
    }

    #[test]
    fn clean_data_mostly_unflagged() {
        let (data, _) = synth::anomaly_data(800, 3, 0.0, 62);
        let detector = AnomalyAnalysis::new().fit(&data).unwrap();
        let report = detector.detect(&data).unwrap();
        assert!(report.flagged_fraction < 0.02, "flagged {}", report.flagged_fraction);
    }

    #[test]
    fn threshold_controls_sensitivity() {
        let (data, _) = synth::anomaly_data(800, 3, 0.05, 63);
        let strict = AnomalyAnalysis::new().with_threshold(8.0).fit(&data).unwrap();
        let loose = AnomalyAnalysis::new().with_threshold(2.0).fit(&data).unwrap();
        let fs = strict.detect(&data).unwrap().flagged_fraction;
        let fl = loose.detect(&data).unwrap().flagged_fraction;
        assert!(fl > fs);
    }

    #[test]
    fn scores_rank_anomalies_highest() {
        let (data, truth) = synth::anomaly_data(600, 3, 0.05, 64);
        let detector = AnomalyAnalysis::new().fit(&data).unwrap();
        let report = detector.detect(&data).unwrap();
        let truth_f: Vec<f64> = truth.iter().map(|&t| if t { 1.0 } else { 0.0 }).collect();
        let auc = metrics::auc(&truth_f, &report.scores).unwrap();
        assert!(auc > 0.9, "auc = {auc}");
    }

    #[test]
    fn errors() {
        let (tiny, _) = synth::anomaly_data(5, 2, 0.0, 65);
        assert!(AnomalyAnalysis::new().fit(&tiny).is_err());
        let (data, _) = synth::anomaly_data(100, 2, 0.0, 66);
        let unfitted = AnomalyAnalysis::new();
        assert!(unfitted.detect(&data).is_err());
        let fitted = AnomalyAnalysis::new().fit(&data).unwrap();
        let (other, _) = synth::anomaly_data(10, 5, 0.0, 67);
        assert!(fitted.detect(&other).is_err());
    }
}
