//! S1 bench: the four solution templates end to end on synthetic industrial
//! data.

use coda_data::synth;
use coda_templates::{
    AnomalyAnalysis, CohortAnalysis, FailurePredictionAnalysis, RootCauseAnalysis,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_templates(c: &mut Criterion) {
    let mut group = c.benchmark_group("templates");
    group.sample_size(10);
    let fleet = synth::failure_prediction_data(15, 60, 10, 1);
    group.bench_function("failure_prediction", |b| {
        b.iter(|| FailurePredictionAnalysis::new().with_fast_settings().run(&fleet).unwrap())
    });
    let (process, _) = synth::root_cause_data(200, 6, 2, 2);
    group.bench_function("root_cause", |b| {
        b.iter(|| RootCauseAnalysis::new().with_fast_settings().run(&process).unwrap())
    });
    let (sensor, _) = synth::anomaly_data(1000, 4, 0.03, 3);
    group.bench_function("anomaly_fit_detect", |b| {
        b.iter(|| AnomalyAnalysis::new().fit(&sensor).unwrap().detect(&sensor).unwrap())
    });
    let (assets, _) = synth::cohort_data(100, 4, 6, 4);
    group.bench_function("cohort", |b| b.iter(|| CohortAnalysis::new(4).run(&assets).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_templates);
criterion_main!(benches);
