//! The sharded multi-tenant serving tier: the store/DARR stack, scaled out.
//!
//! The paper's cooperative-analytics story (§III) only pays off when many
//! clients hit the data tier and the DARR concurrently. This crate shards
//! both by the stable key hash every layer already routes with
//! ([`coda_store::shard_of`]) across N *single-writer* worker shards: one
//! OS thread per shard owns that shard's [`coda_store::DurableStore`],
//! [`coda_darr::Darr`] partition and per-object
//! [`coda_store::ChangeMonitor`]s outright — no cross-shard locks, no
//! shared mutable state, just a bounded MPSC mailbox in front of each
//! worker.
//!
//! The tier boundary provides what a single instance never needed:
//!
//! - **admission control** — mailboxes are bounded; a full queue sheds the
//!   request with a typed [`ServeError::Overloaded`] (never a panic, never
//!   a silent drop) and counts it under `coda_serve_shed_total`;
//! - **request batching** — a worker drains its mailbox up to a batch cap
//!   per wakeup, so under load the per-wakeup cost amortizes across many
//!   requests (`coda_serve_batch_size` histograms the effect);
//! - **crash composition** — each shard executes the
//!   [`coda_chaos::CrashPlan`] points addressed to it (node `shard-{i}`)
//!   at exact WAL operation counts: export, crash to the durable image,
//!   recover by WAL replay, and prove the replay byte-identical — in-line,
//!   while the other shards keep serving.
//!
//! Everything observable flows through [`coda_obs::Obs`]; everything
//! random or time-like is seeded/logical, so the shard-equivalence
//! harness can demand byte-identical final state against the unsharded
//! baseline at any shard count.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod loadgen;
pub mod request;
pub mod router;
pub mod shard;
pub mod tier;

pub use loadgen::{run_load, LoadGenConfig, LoadReport, SERVE_LATENCY_BOUNDS};
pub use request::{ServeError, ServeRequest, ServeResponse};
pub use router::ShardRouter;
pub use shard::{merge_canonical_exports, ShardCore, TriggerPolicy};
pub use tier::{ServeConfig, ServeTier, ShardSummary, TierReport};
