//! Outlier detection (paper §II–III: "data which constitute erroneous and/or
//! outlying values may need to be identified and discarded").
//!
//! Detectors flag sample rows; [`remove_outliers`] drops them. A detector is
//! also usable as a graph stage via [`OutlierRemover`].

use crate::dataset::Dataset;
use crate::traits::{BoxedTransformer, ComponentError, ParamValue, Transformer};

/// Row-flagging outlier detection method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutlierMethod {
    /// |x − mean| > threshold · std in any column.
    ZScore {
        /// Number of standard deviations considered outlying.
        threshold: f64,
    },
    /// Outside `[q1 − k·iqr, q3 + k·iqr]` in any column.
    Iqr {
        /// IQR multiplier (1.5 is the classic whisker rule).
        k: f64,
    },
    /// |x − median| > threshold · MAD (scaled) in any column.
    Mad {
        /// Number of scaled MADs considered outlying.
        threshold: f64,
    },
}

/// Flags each row: `true` = outlier. NaN cells never flag a row (they are a
/// missing-data concern, not an outlier concern).
pub fn detect_outliers(data: &Dataset, method: OutlierMethod) -> Vec<bool> {
    let x = data.features();
    let n = x.rows();
    let mut flags = vec![false; n];
    for c in 0..x.cols() {
        let col: Vec<f64> = x.col(c);
        let observed: Vec<f64> = col.iter().copied().filter(|v| !v.is_nan()).collect();
        if observed.len() < 3 {
            continue;
        }
        let (lo, hi) = match method {
            OutlierMethod::ZScore { threshold } => {
                let m = coda_linalg::mean(&observed);
                let s = coda_linalg::std_dev(&observed);
                if s == 0.0 {
                    continue;
                }
                (m - threshold * s, m + threshold * s)
            }
            OutlierMethod::Iqr { k } => {
                let q1 = coda_linalg::percentile(&observed, 25.0);
                let q3 = coda_linalg::percentile(&observed, 75.0);
                let iqr = q3 - q1;
                (q1 - k * iqr, q3 + k * iqr)
            }
            OutlierMethod::Mad { threshold } => {
                let med = coda_linalg::median(&observed);
                let devs: Vec<f64> = observed.iter().map(|v| (v - med).abs()).collect();
                // 1.4826 makes MAD a consistent sigma estimator for normals
                let mad = coda_linalg::median(&devs) * 1.4826;
                if mad == 0.0 {
                    continue;
                }
                (med - threshold * mad, med + threshold * mad)
            }
        };
        for (r, v) in col.iter().enumerate() {
            if !v.is_nan() && (*v < lo || *v > hi) {
                flags[r] = true;
            }
        }
    }
    flags
}

/// Returns `data` with outlying rows removed.
pub fn remove_outliers(data: &Dataset, method: OutlierMethod) -> Dataset {
    let flags = detect_outliers(data, method);
    let keep: Vec<usize> = flags.iter().enumerate().filter(|(_, &f)| !f).map(|(i, _)| i).collect();
    data.select(&keep)
}

/// Transformer wrapper: removes outliers during `fit_transform` but passes
/// data through untouched at `transform` time (prediction rows must never be
/// silently dropped).
#[derive(Debug, Clone)]
pub struct OutlierRemover {
    method: OutlierMethod,
    fitted: bool,
}

impl OutlierRemover {
    /// Creates a remover using `method`.
    pub fn new(method: OutlierMethod) -> Self {
        OutlierRemover { method, fitted: false }
    }
}

impl Transformer for OutlierRemover {
    fn name(&self) -> &str {
        "outlier_remover"
    }

    fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
        let as_pos_f64 = |v: &ParamValue| -> Result<f64, ComponentError> {
            v.as_f64().filter(|t| *t > 0.0).ok_or_else(|| ComponentError::InvalidParam {
                component: "outlier_remover".to_string(),
                param: param.to_string(),
                reason: "must be a positive number".to_string(),
            })
        };
        match (param, &mut self.method) {
            ("threshold", OutlierMethod::ZScore { threshold })
            | ("threshold", OutlierMethod::Mad { threshold }) => {
                *threshold = as_pos_f64(&value)?;
                Ok(())
            }
            ("k", OutlierMethod::Iqr { k }) => {
                *k = as_pos_f64(&value)?;
                Ok(())
            }
            _ => Err(ComponentError::UnknownParam {
                component: self.name().to_string(),
                param: param.to_string(),
            }),
        }
    }

    fn fit(&mut self, _data: &Dataset) -> Result<(), ComponentError> {
        self.fitted = true;
        Ok(())
    }

    fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        if !self.fitted {
            return Err(ComponentError::NotFitted(self.name().to_string()));
        }
        Ok(data.clone())
    }

    fn fit_transform(&mut self, data: &Dataset) -> Result<Dataset, ComponentError> {
        self.fit(data)?;
        Ok(remove_outliers(data, self.method))
    }

    fn clone_box(&self) -> BoxedTransformer {
        Box::new(OutlierRemover::new(self.method))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_linalg::Matrix;

    fn with_outlier() -> Dataset {
        let mut rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.1]).collect();
        rows.push(vec![1000.0]);
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs))
    }

    #[test]
    fn zscore_flags_extreme() {
        let ds = with_outlier();
        let flags = detect_outliers(&ds, OutlierMethod::ZScore { threshold: 3.0 });
        assert!(flags[20]);
        assert!(!flags[..20].iter().any(|&f| f));
    }

    #[test]
    fn iqr_flags_extreme() {
        let ds = with_outlier();
        let flags = detect_outliers(&ds, OutlierMethod::Iqr { k: 1.5 });
        assert!(flags[20]);
        assert!(!flags[..20].iter().any(|&f| f));
    }

    #[test]
    fn mad_flags_extreme_and_is_robust() {
        let ds = with_outlier();
        let flags = detect_outliers(&ds, OutlierMethod::Mad { threshold: 3.5 });
        assert!(flags[20]);
        assert!(!flags[..20].iter().any(|&f| f));
    }

    #[test]
    fn constant_column_never_flags() {
        let x = Matrix::from_rows(&[&[5.0], &[5.0], &[5.0], &[5.0]]);
        let ds = Dataset::new(x);
        assert!(!detect_outliers(&ds, OutlierMethod::ZScore { threshold: 3.0 }).iter().any(|&f| f));
        assert!(!detect_outliers(&ds, OutlierMethod::Mad { threshold: 3.0 }).iter().any(|&f| f));
    }

    #[test]
    fn nan_cells_do_not_flag() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[f64::NAN]]);
        let ds = Dataset::new(x);
        let flags = detect_outliers(&ds, OutlierMethod::ZScore { threshold: 1.0 });
        assert!(!flags[3]);
    }

    #[test]
    fn remove_outliers_drops_rows() {
        let ds = with_outlier();
        let clean = remove_outliers(&ds, OutlierMethod::Iqr { k: 1.5 });
        assert_eq!(clean.n_samples(), 20);
    }

    #[test]
    fn remover_transformer_semantics() {
        let ds = with_outlier();
        let mut remover = OutlierRemover::new(OutlierMethod::ZScore { threshold: 3.0 });
        // not fitted yet
        assert!(remover.transform(&ds).is_err());
        let cleaned = remover.fit_transform(&ds).unwrap();
        assert_eq!(cleaned.n_samples(), 20);
        // at prediction time rows pass through
        let passed = remover.transform(&ds).unwrap();
        assert_eq!(passed.n_samples(), 21);
    }

    #[test]
    fn remover_params() {
        let mut r = OutlierRemover::new(OutlierMethod::ZScore { threshold: 3.0 });
        r.set_param("threshold", ParamValue::from(2.0)).unwrap();
        assert!(r.set_param("threshold", ParamValue::from(-1.0)).is_err());
        assert!(r.set_param("k", ParamValue::from(1.0)).is_err()); // wrong method
        let mut r2 = OutlierRemover::new(OutlierMethod::Iqr { k: 1.5 });
        r2.set_param("k", ParamValue::from(3.0)).unwrap();
    }
}
