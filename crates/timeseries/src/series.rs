//! The multivariate time-series representation (Fig. 6).

use coda_data::Dataset;
use coda_linalg::Matrix;

/// A multivariate time series: `n` timestamps × `v` variables, plus the
/// index of the variable to forecast.
///
/// [`SeriesData::to_dataset`] encodes the series for pipeline consumption:
/// features = the full series matrix (scalers act on this), target = the
/// **unscaled** column of the forecast variable (windowing transformers
/// derive per-window labels from it, so every pipeline path is scored in
/// original units regardless of its scaling stage).
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesData {
    values: Matrix,
    target_var: usize,
}

impl SeriesData {
    /// Creates a series from a timestamps × variables matrix, forecasting
    /// variable `target_var`.
    ///
    /// # Panics
    ///
    /// Panics if `target_var` is out of range or the matrix is empty.
    pub fn new(values: Matrix, target_var: usize) -> Self {
        assert!(values.rows() > 0 && values.cols() > 0, "series must be non-empty");
        assert!(target_var < values.cols(), "target variable out of range");
        SeriesData { values, target_var }
    }

    /// A univariate series.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn univariate(values: Vec<f64>) -> Self {
        let n = values.len();
        SeriesData::new(Matrix::from_vec(n, 1, values), 0)
    }

    /// Number of timestamps.
    pub fn len(&self) -> usize {
        self.values.rows()
    }

    /// True when the series has no timestamps (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.values.rows() == 0
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.values.cols()
    }

    /// Index of the forecast variable.
    pub fn target_var(&self) -> usize {
        self.target_var
    }

    /// The raw series matrix.
    pub fn values(&self) -> &Matrix {
        &self.values
    }

    /// The forecast variable's series.
    pub fn target_series(&self) -> Vec<f64> {
        self.values.col(self.target_var)
    }

    /// Encodes for pipeline consumption (see the type docs).
    pub fn to_dataset(&self) -> Dataset {
        Dataset::new(self.values.clone())
            .with_target(self.target_series())
            .expect("target length equals row count by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn univariate_roundtrip() {
        let s = SeriesData::univariate(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.n_vars(), 1);
        assert_eq!(s.target_series(), vec![1.0, 2.0, 3.0]);
        assert!(!s.is_empty());
    }

    #[test]
    fn multivariate_target_selection() {
        let m = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0]]);
        let s = SeriesData::new(m, 1);
        assert_eq!(s.target_series(), vec![10.0, 20.0]);
        let ds = s.to_dataset();
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.target().unwrap(), &[10.0, 20.0]);
    }

    #[test]
    fn invalid_construction_panics() {
        assert!(std::panic::catch_unwind(|| SeriesData::new(Matrix::zeros(2, 2), 5)).is_err());
        assert!(std::panic::catch_unwind(|| SeriesData::univariate(vec![])).is_err());
    }
}
