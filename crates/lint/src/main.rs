//! `coda-lint` CLI — the CI gate.
//!
//! ```text
//! cargo run -p coda-lint -- [--root <dir>] [--baseline lint-baseline.json]
//!                           [--write-baseline]
//! ```
//!
//! Exit codes: `0` clean (or exactly ratcheted against the baseline),
//! `1` violations / ratchet failure, `2` usage or I/O error.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use coda_lint::baseline::{key_of, Baseline};
use coda_lint::{analyze_workspace, walk, Finding};

struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { root: None, baseline: None, write_baseline: false };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root =
                    Some(PathBuf::from(it.next().ok_or("--root needs a directory argument")?));
            }
            "--baseline" => {
                args.baseline =
                    Some(PathBuf::from(it.next().ok_or("--baseline needs a file argument")?));
            }
            "--write-baseline" => args.write_baseline = true,
            "--help" | "-h" => {
                println!(
                    "coda-lint: workspace invariant checker\n\n\
                     USAGE: coda-lint [--root <dir>] [--baseline <file>] [--write-baseline]\n\n\
                     Analyses: determinism (never baselineable), panic_safety, lock_order,\n\
                     lock_across_spawn. Escape hatch: `// lint:allow(<rule>) <reason>`."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    match run() {
        Ok(failed) => {
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("coda-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            walk::find_root(&cwd).ok_or("no workspace root found (pass --root)")?
        }
    };
    let findings = analyze_workspace(&root).map_err(|e| e.to_string())?;
    let (hard, soft): (Vec<&Finding>, Vec<&Finding>) =
        findings.iter().partition(|f| !f.rule.is_baselineable());

    for f in &hard {
        println!("{f}  [not baselineable]");
    }

    if args.write_baseline {
        let path = args.baseline.unwrap_or_else(|| root.join("lint-baseline.json"));
        let base = Baseline::from_findings(&findings);
        let frozen: u64 = base.entries.values().sum();
        base.save(&path)?;
        println!(
            "wrote {} ({} finding(s) across {} file/rule entries frozen)",
            path.display(),
            frozen,
            base.entries.len()
        );
        print_summary(&findings);
        return Ok(!hard.is_empty());
    }

    let Some(baseline_path) = args.baseline else {
        for f in &soft {
            println!("{f}");
        }
        print_summary(&findings);
        return Ok(!findings.is_empty());
    };

    let base = Baseline::load(&baseline_path)?;
    let check = base.check(&findings);
    for (key, (frozen, current)) in &check.grown {
        println!("NEW: {key}: {current} violation(s), baseline froze {frozen}:");
        for f in soft.iter().filter(|f| key_of(f) == *key) {
            println!("  {f}");
        }
    }
    for (key, (frozen, current)) in &check.stale {
        println!(
            "STALE: {key}: baseline froze {frozen} but only {current} remain — the ratchet \
             only shrinks; run `cargo run -p coda-lint -- --write-baseline` and commit"
        );
    }
    let failed = !check.is_clean() || !hard.is_empty();
    if failed {
        print_summary(&findings);
    } else {
        let frozen: u64 = base.entries.values().sum();
        println!(
            "coda-lint: clean — 0 new violations ({frozen} frozen in {})",
            baseline_path.display()
        );
    }
    Ok(failed)
}

fn print_summary(findings: &[Finding]) {
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *by_rule.entry(f.rule.as_str()).or_insert(0) += 1;
    }
    let total: usize = by_rule.values().sum();
    let detail: Vec<String> = by_rule.iter().map(|(r, n)| format!("{r}: {n}")).collect();
    println!("coda-lint: {total} finding(s) [{}]", detail.join(", "));
}
