//! Simulated external AI web services (Fig. 1: IBM Watson, Azure Cognitive
//! Services, AWS ML, Google Cloud AI). A web service offers *capabilities*
//! the local stack lacks (speech, NLU, vision); calls cost latency and —
//! for premium tiers — money, exactly the trade-off §I describes.

use std::collections::BTreeSet;

/// A simulated HTTP AI service.
#[derive(Debug, Clone)]
pub struct SimWebService {
    name: String,
    capabilities: BTreeSet<String>,
    per_call_latency_ms: f64,
    per_call_cost: f64,
    free_calls: u64,
    /// Calls served so far.
    pub calls: u64,
    /// Total simulated spend.
    pub total_cost: f64,
}

impl SimWebService {
    /// Creates a service with the given capabilities, per-call latency, and
    /// per-call cost after `free_calls` free requests.
    pub fn new<S: Into<String>>(
        name: S,
        capabilities: &[&str],
        per_call_latency_ms: f64,
        per_call_cost: f64,
        free_calls: u64,
    ) -> Self {
        SimWebService {
            name: name.into(),
            capabilities: capabilities.iter().map(|s| s.to_string()).collect(),
            per_call_latency_ms,
            per_call_cost,
            free_calls,
            calls: 0,
            total_cost: 0.0,
        }
    }

    /// Service name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True when the service offers `capability`.
    pub fn supports(&self, capability: &str) -> bool {
        self.capabilities.contains(capability)
    }

    /// Invokes the service; returns the call latency, or `None` for an
    /// unsupported capability. Billing starts after the free tier.
    pub fn call(&mut self, capability: &str) -> Option<f64> {
        if !self.supports(capability) {
            return None;
        }
        self.calls += 1;
        if self.calls > self.free_calls {
            self.total_cost += self.per_call_cost;
        }
        Some(self.per_call_latency_ms)
    }
}

/// Routes a capability request to the cheapest supporting service (fewest
/// dollars, then lowest latency). Returns the chosen service index.
pub fn route_capability(services: &[SimWebService], capability: &str) -> Option<usize> {
    services
        .iter()
        .enumerate()
        .filter(|(_, s)| s.supports(capability))
        .min_by(|(_, a), (_, b)| {
            let cost_a = if a.calls >= a.free_calls { a.per_call_cost } else { 0.0 };
            let cost_b = if b.calls >= b.free_calls { b.per_call_cost } else { 0.0 };
            cost_a.partial_cmp(&cost_b).unwrap_or(std::cmp::Ordering::Equal).then(
                a.per_call_latency_ms
                    .partial_cmp(&b.per_call_latency_ms)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_gating() {
        let mut svc = SimWebService::new("watson", &["nlu", "speech"], 50.0, 0.01, 2);
        assert!(svc.supports("nlu"));
        assert!(!svc.supports("vision"));
        assert_eq!(svc.call("vision"), None);
        assert_eq!(svc.call("nlu"), Some(50.0));
    }

    #[test]
    fn free_tier_then_billing() {
        let mut svc = SimWebService::new("ml", &["nlu"], 10.0, 0.5, 2);
        svc.call("nlu");
        svc.call("nlu");
        assert_eq!(svc.total_cost, 0.0);
        svc.call("nlu");
        assert!((svc.total_cost - 0.5).abs() < 1e-12);
        assert_eq!(svc.calls, 3);
    }

    #[test]
    fn routing_prefers_free_then_fast() {
        let services = vec![
            SimWebService::new("paid_fast", &["nlu"], 5.0, 1.0, 0),
            SimWebService::new("free_slow", &["nlu"], 100.0, 1.0, 1000),
            SimWebService::new("no_nlu", &["vision"], 1.0, 0.0, 1000),
        ];
        assert_eq!(route_capability(&services, "nlu"), Some(1));
        assert_eq!(route_capability(&services, "vision"), Some(2));
        assert_eq!(route_capability(&services, "speech"), None);
    }
}
