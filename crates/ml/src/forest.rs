//! Random forests (bagged CART trees with feature subsampling) — the
//! "Random Forest" of Fig. 3 and Table I.

use coda_data::{BoxedEstimator, ComponentError, Dataset, Estimator, ParamValue, TaskKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tree::{DecisionTreeClassifier, DecisionTreeRegressor};

fn bootstrap_indices(n: usize, rng: &mut StdRng) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

/// Number of features to consider per split: `round(sqrt(d))`, at least 1.
fn default_max_features(d: usize) -> usize {
    (d as f64).sqrt().round().max(1.0) as usize
}

macro_rules! forest {
    ($name:ident, $tree:ident, $display:expr, $task:expr, $agg:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            n_trees: usize,
            max_depth: usize,
            seed: u64,
            trees: Vec<$tree>,
            n_features: usize,
        }

        impl $name {
            /// Creates a forest of `n_trees` trees (depth limit 12).
            ///
            /// # Panics
            ///
            /// Panics if `n_trees == 0`.
            pub fn new(n_trees: usize) -> Self {
                assert!(n_trees > 0, "n_trees must be positive");
                $name { n_trees, max_depth: 12, seed: 42, trees: Vec::new(), n_features: 0 }
            }

            /// Sets the per-tree depth limit.
            pub fn with_max_depth(mut self, depth: usize) -> Self {
                self.max_depth = depth;
                self
            }

            /// Sets the bootstrap seed.
            pub fn with_seed(mut self, seed: u64) -> Self {
                self.seed = seed;
                self
            }

            /// Number of fitted trees.
            pub fn n_fitted_trees(&self) -> usize {
                self.trees.len()
            }
        }

        impl Estimator for $name {
            fn name(&self) -> &str {
                $display
            }

            fn task(&self) -> TaskKind {
                $task
            }

            fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
                let as_pos = |v: &ParamValue| v.as_usize().filter(|&x| x > 0);
                match param {
                    "n_trees" | "n_estimators" => {
                        self.n_trees =
                            as_pos(&value).ok_or_else(|| ComponentError::InvalidParam {
                                component: $display.to_string(),
                                param: param.to_string(),
                                reason: "must be a positive integer".to_string(),
                            })?;
                        Ok(())
                    }
                    "max_depth" => {
                        self.max_depth =
                            as_pos(&value).ok_or_else(|| ComponentError::InvalidParam {
                                component: $display.to_string(),
                                param: param.to_string(),
                                reason: "must be a positive integer".to_string(),
                            })?;
                        Ok(())
                    }
                    _ => Err(ComponentError::UnknownParam {
                        component: self.name().to_string(),
                        param: param.to_string(),
                    }),
                }
            }

            fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
                data.target_required()?;
                if data.n_samples() == 0 {
                    return Err(ComponentError::InvalidInput("empty dataset".to_string()));
                }
                let mut rng = StdRng::seed_from_u64(self.seed);
                let k = default_max_features(data.n_features());
                self.trees.clear();
                self.n_features = data.n_features();
                for t in 0..self.n_trees {
                    let mut tree = $tree::new()
                        .with_max_depth(self.max_depth)
                        .with_max_features(k)
                        .with_seed(self.seed.wrapping_add(t as u64).wrapping_mul(2654435761));
                    let idx = bootstrap_indices(data.n_samples(), &mut rng);
                    tree.fit_on_indices(data, idx)?;
                    self.trees.push(tree);
                }
                Ok(())
            }

            fn predict(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError> {
                if self.trees.is_empty() {
                    return Err(ComponentError::NotFitted(self.name().to_string()));
                }
                let per_tree: Vec<Vec<f64>> =
                    self.trees.iter().map(|t| t.predict(data)).collect::<Result<_, _>>()?;
                let n = data.n_samples();
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let votes: Vec<f64> = per_tree.iter().map(|p| p[i]).collect();
                    out.push($agg(&votes));
                }
                Ok(out)
            }

            fn feature_importances(&self) -> Option<Vec<f64>> {
                if self.trees.is_empty() {
                    return None;
                }
                let mut acc = vec![0.0; self.n_features];
                for t in &self.trees {
                    if let Some(imp) = t.feature_importances() {
                        for (a, v) in acc.iter_mut().zip(imp) {
                            *a += v;
                        }
                    }
                }
                let total: f64 = acc.iter().sum();
                if total > 0.0 {
                    acc.iter_mut().for_each(|v| *v /= total);
                }
                Some(acc)
            }

            fn clone_box(&self) -> BoxedEstimator {
                let mut fresh = $name::new(self.n_trees);
                fresh.max_depth = self.max_depth;
                fresh.seed = self.seed;
                Box::new(fresh)
            }
        }
    };
}

fn mean_vote(votes: &[f64]) -> f64 {
    votes.iter().sum::<f64>() / votes.len() as f64
}

fn majority_vote(votes: &[f64]) -> f64 {
    let mut counts = std::collections::BTreeMap::new();
    for v in votes {
        *counts.entry(v.to_bits()).or_insert(0usize) += 1;
    }
    counts
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
        .map(|(&bits, _)| f64::from_bits(bits))
        .unwrap_or(0.0)
}

forest!(
    RandomForestRegressor,
    DecisionTreeRegressor,
    "random_forest_regressor",
    TaskKind::Regression,
    mean_vote,
    "Bagged regression forest averaging per-tree predictions.\n\n\
     # Examples\n\n\
     ```\n\
     use coda_data::{synth, Estimator};\n\
     use coda_ml::RandomForestRegressor;\n\
     let ds = synth::friedman1(300, 5, 0.3, 5);\n\
     let mut rf = RandomForestRegressor::new(20);\n\
     rf.fit(&ds)?;\n\
     assert_eq!(rf.predict(&ds)?.len(), 300);\n\
     # Ok::<(), Box<dyn std::error::Error>>(())\n\
     ```"
);

forest!(
    RandomForestClassifier,
    DecisionTreeClassifier,
    "random_forest_classifier",
    TaskKind::Classification,
    majority_vote,
    "Bagged classification forest with per-tree majority vote."
);

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::{metrics, synth};

    #[test]
    fn forest_beats_single_tree_on_noisy_data() {
        let ds = synth::friedman1(600, 8, 1.0, 31);
        let (train, test) = ds.train_test_split(0.3, 5);
        let mut tree = crate::tree::DecisionTreeRegressor::new().with_max_depth(12);
        tree.fit(&train).unwrap();
        let tree_r2 = metrics::r2(test.target().unwrap(), &tree.predict(&test).unwrap()).unwrap();
        let mut rf = RandomForestRegressor::new(30).with_seed(1);
        rf.fit(&train).unwrap();
        let rf_r2 = metrics::r2(test.target().unwrap(), &rf.predict(&test).unwrap()).unwrap();
        assert!(
            rf_r2 > tree_r2,
            "forest ({rf_r2:.3}) should beat a single deep tree ({tree_r2:.3})"
        );
    }

    #[test]
    fn classifier_majority_vote_on_blobs() {
        let ds = synth::classification_blobs(300, 3, 3, 0.6, 32);
        let (train, test) = ds.train_test_split(0.3, 6);
        let mut rf = RandomForestClassifier::new(15);
        rf.fit(&train).unwrap();
        let pred = rf.predict(&test).unwrap();
        assert!(metrics::accuracy(test.target().unwrap(), &pred).unwrap() > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = synth::friedman1(200, 5, 0.5, 33);
        let mut a = RandomForestRegressor::new(10).with_seed(7);
        let mut b = RandomForestRegressor::new(10).with_seed(7);
        a.fit(&ds).unwrap();
        b.fit(&ds).unwrap();
        assert_eq!(a.predict(&ds).unwrap(), b.predict(&ds).unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let ds = synth::friedman1(200, 5, 0.5, 34);
        let mut a = RandomForestRegressor::new(10).with_seed(1);
        let mut b = RandomForestRegressor::new(10).with_seed(2);
        a.fit(&ds).unwrap();
        b.fit(&ds).unwrap();
        assert_ne!(a.predict(&ds).unwrap(), b.predict(&ds).unwrap());
    }

    #[test]
    fn importances_sum_to_one() {
        let ds = synth::friedman1(300, 6, 0.3, 35);
        let mut rf = RandomForestRegressor::new(10);
        rf.fit(&ds).unwrap();
        let imp = rf.feature_importances().unwrap();
        assert_eq!(imp.len(), 6);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn params_and_not_fitted() {
        let mut rf = RandomForestRegressor::new(5);
        rf.set_param("n_estimators", ParamValue::from(8usize)).unwrap();
        rf.set_param("max_depth", ParamValue::from(4usize)).unwrap();
        assert!(rf.set_param("n_trees", ParamValue::from(0usize)).is_err());
        assert!(rf.set_param("zzz", ParamValue::from(1usize)).is_err());
        let ds = synth::friedman1(50, 5, 0.1, 36);
        assert!(RandomForestRegressor::new(3).predict(&ds).is_err());
    }

    #[test]
    fn tree_count_tracked() {
        let ds = synth::friedman1(100, 5, 0.3, 37);
        let mut rf = RandomForestRegressor::new(7);
        assert_eq!(rf.n_fitted_trees(), 0);
        rf.fit(&ds).unwrap();
        assert_eq!(rf.n_fitted_trees(), 7);
    }
}
