//! Solution templates for domain-specific data analytics (paper §IV-E).
//!
//! Each template wraps a full Transformer-Estimator-Graph workflow behind a
//! one-call API "considerably easier to use than general-purpose machine
//! learning frameworks", targeting the heavy-industry problems the paper
//! lists: Failure Prediction Analysis, Root Cause Analysis, Anomaly
//! Analysis, and Cohort Analysis.
//!
//! # Examples
//!
//! ```
//! use coda_data::synth;
//! use coda_templates::FailurePredictionAnalysis;
//!
//! let data = synth::failure_prediction_data(20, 80, 10, 5);
//! let report = FailurePredictionAnalysis::new().with_fast_settings().run(&data)?;
//! assert!(report.f1 > 0.3);
//! assert_eq!(report.factor_ranking.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod anomaly;
pub mod cohort;
pub mod failure;
pub mod lifetime;
pub mod rca;

pub use anomaly::{AnomalyAnalysis, AnomalyReport};
pub use cohort::{CohortAnalysis, CohortReport};
pub use failure::{FailurePredictionAnalysis, FailureReport};
pub use lifetime::{FailureTimeAnalysis, LifetimeReport};
pub use rca::{RootCauseAnalysis, RootCauseReport};

/// Error shared by the solution templates.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateError {
    /// The input data does not fit the template's requirements.
    InvalidData(String),
    /// The underlying graph evaluation failed.
    Evaluation(String),
}

impl std::fmt::Display for TemplateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemplateError::InvalidData(m) => write!(f, "invalid data: {m}"),
            TemplateError::Evaluation(m) => write!(f, "evaluation failed: {m}"),
        }
    }
}

impl std::error::Error for TemplateError {}
