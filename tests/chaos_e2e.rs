//! End-to-end chaos acceptance test: a seeded multi-client cooperative run
//! under simultaneous message drops, a node crash/restart, and a temporary
//! DARR partition must complete every pipeline evaluation with zero lost
//! results, account for every duplicate computation, export retry
//! statistics, and replay bit-identically from the same seed.

use coda::chaos::{FaultPlan, RetryPolicy};
use coda::cluster::{run_chaos_coop, run_chaos_coop_obs, ChaosCoopConfig};
use coda::obs::Obs;

/// The scenario from the issue: 20% drops, one client crashing and
/// restarting mid-run, and a DARR partition that heals.
fn acceptance_config(seed: u64) -> ChaosCoopConfig {
    ChaosCoopConfig {
        seed,
        n_clients: 4,
        n_keys: 16,
        drop_probability: 0.2,
        darr_partition: Some((300.0, 700.0)),
        crash: Some((2, 150.0, 650.0)),
        claim_duration: 200,
        max_rounds: 10_000,
    }
}

#[test]
fn chaotic_cooperative_run_loses_nothing() {
    let report = run_chaos_coop(&acceptance_config(17));

    // every pipeline evaluation completes despite the chaos
    assert_eq!(report.completed, report.n_keys, "zero lost results");
    assert!(report.rounds < 10_000, "the run must converge, not hit the cap");

    // the chaos actually happened — this is not a vacuous pass
    assert!(report.faults.dropped > 0, "drops must occur");
    assert!(report.faults.link_down > 0, "the partition must block messages");
    assert!(report.journaled > 0, "the partition must force offline compute");
    assert!(report.retry.retries > 0, "drops must force retries");
    assert!(report.retry.total_backoff_ms > 0.0, "retries must back off");

    // no silent duplicate compute: every computation is either the stored
    // result, a replayed journal entry, or an explicitly counted duplicate
    let total_compute = report.computed + report.journaled;
    assert!(total_compute >= report.n_keys);
    assert_eq!(report.journaled, report.replayed + report.duplicates);
    assert_eq!(
        total_compute,
        report.computed + report.replayed + report.duplicates,
        "every computation must be accounted for"
    );
}

#[test]
fn same_seed_produces_identical_run_report() {
    let a = run_chaos_coop(&acceptance_config(17));
    let b = run_chaos_coop(&acceptance_config(17));
    assert_eq!(a, b, "same seed must reproduce every counter bit-identically");

    let c = run_chaos_coop(&acceptance_config(18));
    assert_ne!(a.faults, c.faults, "a different seed must draw different faults");
    assert_eq!(c.completed, c.n_keys, "...but still lose nothing");
}

#[test]
fn same_seed_produces_byte_identical_trace_and_metrics() {
    // observability must not disturb determinism: every trace event is
    // stamped from the driver's logical clock, so two same-seed runs with
    // fresh deterministic Obs handles render byte-identical logs
    let obs_a = Obs::deterministic();
    let report_a = run_chaos_coop_obs(&acceptance_config(17), Some(&obs_a));
    let obs_b = Obs::deterministic();
    let report_b = run_chaos_coop_obs(&acceptance_config(17), Some(&obs_b));

    assert_eq!(report_a, report_b, "reports must replay bit-identically");
    let log_a = obs_a.tracer().render_log();
    assert!(!log_a.is_empty(), "the run must emit trace events");
    assert_eq!(log_a, obs_b.tracer().render_log(), "trace logs must be byte-identical");
    assert_eq!(
        obs_a.registry().render_prometheus(),
        obs_b.registry().render_prometheus(),
        "metric expositions must be byte-identical"
    );

    // an instrumented run must not perturb the uninstrumented ground truth
    assert_eq!(report_a, run_chaos_coop(&acceptance_config(17)));

    // the log carries the protocol events the driver counted
    assert!(log_a.contains("event chaos.claim "));
    assert!(log_a.contains("event chaos.journal "));
    let claims = log_a.matches("event chaos.claim ").count();
    assert!(claims >= report_a.computed, "every online completion was claimed first");
}

#[test]
fn chaos_survives_across_seeds() {
    // robustness is not a property of one lucky seed
    for seed in [1u64, 7, 23, 64, 101] {
        let report = run_chaos_coop(&acceptance_config(seed));
        assert_eq!(report.completed, report.n_keys, "seed {seed}: all evaluations must complete");
        assert_eq!(report.journaled, report.replayed + report.duplicates, "seed {seed}");
    }
}

#[test]
fn retry_policy_composes_with_fault_plan_end_to_end() {
    // the building blocks compose outside the driver too: a jittered
    // exponential policy rides out a scheduled outage window
    use coda::chaos::FaultInjector;
    let mut injector =
        FaultInjector::new(FaultPlan::new(5).with_link_flap("client", "darr", 0.0, 120.0));
    let policy = RetryPolicy::exponential(10.0, 2.0, 80.0, 8).with_jitter(0.1, 5);
    let mut state = policy.state();
    let ok = loop {
        state.begin_attempt();
        let dropped = injector.should_drop("client", "darr");
        if !dropped {
            break true;
        }
        match state.next_backoff_ms() {
            Some(backoff) => injector.advance_to(injector.now_ms() + backoff),
            None => break false,
        }
    };
    assert!(ok, "backoff must outlast the 120ms outage window");
    let stats = state.finish(ok);
    assert!(stats.retries >= 2);
    assert!(injector.now_ms() >= 120.0);
}
