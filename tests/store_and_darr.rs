//! Cross-crate integration: the data tier and the DARR working together —
//! dataset updates propagate through the store, trigger recomputation, and
//! invalidate stale DARR entries; cooperating clients re-cover the new
//! version without redundancy.

use bytes::Bytes;
use coda::darr::{ComputationKey, CooperativeClient, Darr};
use coda::store::{CachingClient, ChangeMonitor, HomeDataStore, PushMode, RecomputeTrigger};

fn dataset_blob(version_salt: u8, n: usize) -> Bytes {
    Bytes::from((0..n).map(|i| ((i as u64 * 31) % 251) as u8 ^ version_salt).collect::<Vec<u8>>())
}

#[test]
fn update_flow_store_trigger_darr() {
    let mut store = HomeDataStore::new("home", 4);
    let darr = Darr::new();
    let mut monitor = ChangeMonitor::new(RecomputeTrigger::UpdateCount(3));

    // version 1 of the dataset; a first analytics pass fills the DARR
    store.put("ds", dataset_blob(0, 10_000));
    darr.register_dataset_version("ds", 1);
    let keys: Vec<ComputationKey> = (0..4)
        .map(|i| ComputationKey::new("ds", 1, &format!("pipeline-{i}") as &str, "kfold(5)", "rmse"))
        .collect();
    let client = CooperativeClient::new(&darr, "c1", 100);
    let (summary, _) = client.run_worklist(&keys, |_| Ok((1.0, vec![], "v1".to_string())));
    assert_eq!(summary.computed, 4);

    // three updates arrive; the third crosses the recompute threshold
    let mut fired = false;
    for salt in 1..=3u8 {
        let blob = dataset_blob(salt, 10_000);
        let (v, _) = store.put("ds", blob.clone());
        fired = monitor.record_update(blob.len() as u64, 0.0);
        if fired {
            darr.register_dataset_version("ds", v);
        }
    }
    assert!(fired, "threshold of 3 updates must fire on the third");
    assert_eq!(store.version_of("ds"), Some(4));
    assert_eq!(darr.dataset_version("ds"), Some(4));

    // all v1 results are now stale: nothing to reuse
    assert!(darr.computed_for("ds").is_empty());
    let new_keys: Vec<ComputationKey> = keys.iter().map(|k| k.at_version(4)).collect();
    let (summary2, _) = client.run_worklist(&new_keys, |_| Ok((2.0, vec![], "v4".to_string())));
    assert_eq!(summary2.computed, 4, "stale results must not be reused");
    assert_eq!(summary2.reused, 0);
}

#[test]
fn multi_client_cache_consistency_under_update_storm() {
    let mut store = HomeDataStore::new("home", 8);
    let mut clients: Vec<CachingClient> =
        (0..3).map(|i| CachingClient::new(format!("c{i}"))).collect();
    let mut blob = dataset_blob(0, 50_000).to_vec();
    store.put("ds", Bytes::from(blob.clone()));
    for c in &mut clients {
        c.pull(&mut store, "ds").unwrap();
    }
    // client 0 uses delta push, client 1 notify-only, client 2 polls
    store.subscribe("c0", "ds", PushMode::Delta, 1_000);
    store.subscribe("c1", "ds", PushMode::NotifyOnly, 1_000);

    for round in 0..10u8 {
        // small in-place mutation
        let idx = 64 * (round as usize + 1);
        blob[idx] ^= 0xFF;
        let (_, pushes) = store.put("ds", Bytes::from(blob.clone()));
        for push in &pushes {
            let target: usize = push.client()[1..].parse().unwrap();
            clients[target].apply_push(push).unwrap();
        }
        // the notify-only client pulls on demand
        clients[1].pull(&mut store, "ds").unwrap();
        // the polling client pulls every other round
        if round % 2 == 1 {
            clients[2].pull(&mut store, "ds").unwrap();
        }
    }
    clients[2].pull(&mut store, "ds").unwrap();
    // all clients converge to identical bytes
    let expected = Bytes::from(blob);
    for c in &clients {
        assert_eq!(c.held_version("ds"), Some(11));
        assert_eq!(c.held_data("ds").unwrap(), &expected);
    }
    // delta encoding kept traffic far below 11 full copies
    let stats = store.stats();
    assert!(stats.delta_transfers >= 10, "deltas used: {}", stats.delta_transfers);
    assert!(
        stats.bytes < 11 * 50_000,
        "total bytes {} must be far below {} (all-full)",
        stats.bytes,
        11 * 50_000
    );
}

#[test]
fn lease_expiry_mid_stream_falls_back_to_pull() {
    let mut store = HomeDataStore::new("home", 4);
    let mut client = CachingClient::new("c0");
    let mut blob = dataset_blob(0, 10_000).to_vec();
    store.put("ds", Bytes::from(blob.clone()));
    client.pull(&mut store, "ds").unwrap();
    store.subscribe("c0", "ds", PushMode::Delta, 5);

    // first update arrives within the lease
    blob[0] ^= 1;
    let (_, pushes) = store.put("ds", Bytes::from(blob.clone()));
    assert_eq!(pushes.len(), 1);
    client.apply_push(&pushes[0]).unwrap();

    // the lease expires; the next update is NOT pushed (failure injection)
    store.advance_clock(10);
    blob[1] ^= 1;
    store.put("ds", Bytes::from(blob.clone()));
    assert!(client.is_stale(&store, "ds"));

    // the client notices staleness, renews and pulls; renewal of an expired
    // lease fails, so it must re-subscribe
    assert!(!store.renew("c0", "ds", 100));
    store.subscribe("c0", "ds", PushMode::Delta, 100);
    client.pull(&mut store, "ds").unwrap();
    assert_eq!(client.held_version("ds"), Some(3));
    assert_eq!(&client.held_data("ds").unwrap()[..], &blob[..]);
}

#[test]
fn cooperative_claim_takeover_after_client_failure() {
    let darr = Darr::new();
    let key = ComputationKey::new("ds", 1, "p", "cv", "m");
    // client a claims then dies (never completes)
    assert!(darr.try_claim(&key, "a", 50).is_claimed());
    // b cannot claim while the lease is live
    assert!(!darr.try_claim(&key, "b", 50).is_claimed());
    // after the claim lease expires, b takes over
    darr.advance_clock(60);
    assert!(darr.try_claim(&key, "b", 50).is_claimed());
    darr.complete(&key, "b", 0.5, vec![], "takeover");
    assert_eq!(darr.lookup(&key).unwrap().producer, "b");
}

#[test]
fn best_result_visible_to_all_clients() {
    let darr = Darr::new();
    let mk = |p: &str| ComputationKey::new("ds", 1, p, "kfold(5)", "rmse");
    let a = CooperativeClient::new(&darr, "a", 100);
    let b = CooperativeClient::new(&darr, "b", 100);
    a.process(&mk("p1"), || Ok((0.9, vec![], String::new())));
    b.process(&mk("p2"), || Ok((0.2, vec![], String::new())));
    a.process(&mk("p3"), || Ok((0.5, vec![], String::new())));
    let best = darr.best_for("ds", "rmse", false).unwrap();
    assert_eq!(best.key.pipeline, "p2");
    assert_eq!(best.producer, "b");
    assert_eq!(darr.computed_for("ds").len(), 3);
}
