//! Offline stand-in for the `rand` crate. Implements the subset used by
//! this workspace — `StdRng`/`SeedableRng`, `Rng::gen_range`,
//! `seq::SliceRandom` and a couple of distributions — over a deterministic
//! xoshiro256** generator seeded via SplitMix64. Determinism is a feature:
//! every experiment and chaos test in this repo must replay bit-identically
//! from its seed.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A Bernoulli(p) draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        uniform_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        uniform_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Maps 64 random bits to a uniform f64 in [0, 1).
fn uniform_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Marker for numeric types `gen_range` supports.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * uniform_f64(rng.next_u64())
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low <= high, "gen_range: empty inclusive range");
        low + (high - low) * uniform_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: f32, high: f32) -> f32 {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: f32, high: f32) -> f32 {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as the
            // xoshiro authors recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, RngCore};

    /// Shuffling and element choice on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod distributions {
    //! The distribution subset used by the workspace.

    use super::{uniform_f64, RngCore};

    /// A sampleable distribution.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error constructing a Bernoulli distribution.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct BernoulliError;

    impl std::fmt::Display for BernoulliError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "probability outside [0, 1]")
        }
    }

    impl std::error::Error for BernoulliError {}

    /// Bernoulli(p).
    #[derive(Debug, Clone, Copy)]
    pub struct Bernoulli {
        p: f64,
    }

    impl Bernoulli {
        /// Creates the distribution.
        ///
        /// # Errors
        ///
        /// [`BernoulliError`] when `p` is outside `[0, 1]`.
        pub fn new(p: f64) -> Result<Self, BernoulliError> {
            if (0.0..=1.0).contains(&p) {
                Ok(Bernoulli { p })
            } else {
                Err(BernoulliError)
            }
        }
    }

    impl Distribution<bool> for Bernoulli {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            uniform_f64(rng.next_u64()) < self.p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
            let n: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&n));
            let m: usize = rng.gen_range(0..=4);
            assert!(m <= 4);
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn bernoulli_bounds() {
        use distributions::{Bernoulli, Distribution};
        assert!(Bernoulli::new(1.5).is_err());
        let d = Bernoulli::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(d.sample(&mut rng));
        let never = Bernoulli::new(0.0).unwrap();
        assert!(!never.sample(&mut rng));
    }
}
