/root/repo/target/debug/deps/properties-d8acefbb64891b2e.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-d8acefbb64891b2e.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
