//! Lease-gated home-store failover.
//!
//! The acting home holds a *home lease* it renews on every heartbeat.
//! A failure detector's suspicion alone must never move the home role —
//! transient slowness would cause split-brain promotions. Failover fires
//! only when BOTH hold:
//!
//! 1. the detector declares the holder dead (crash-stop, not suspicion);
//! 2. the holder's home lease has expired — so even a node the detector
//!    wrongly declared dead cannot be usurped while it could still
//!    believe itself the home.
//!
//! [`FailoverController::evaluate`] is a pure state machine over explicit
//! logical time; every decision is returned as a [`FailoverDecision`] so
//! drivers can trace and count each transition.

use coda_obs::Obs;

/// Why a failover did or did not happen at one evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailoverDecision {
    /// The holder is alive (possibly suspected); nothing to do.
    Healthy,
    /// The holder is declared dead but its lease still has `remaining`
    /// ticks to run: wait — no promotion on an unexpired lease.
    LeaseStillHeld {
        /// Ticks until the lease expires.
        remaining: u64,
    },
    /// The holder was dead with an expired lease: `to` is the new home.
    Promoted {
        /// Previous home.
        from: String,
        /// New home (the candidate).
        to: String,
    },
    /// The holder is dead, the lease expired, but no candidate is
    /// available to promote.
    NoCandidate,
}

/// The home-lease state machine for one replicated object home.
#[derive(Debug, Clone)]
pub struct HomeLeaseFailover {
    holder: String,
    lease_duration: u64,
    expires_at: u64,
    failovers: u64,
    obs: Option<Obs>,
}

impl HomeLeaseFailover {
    /// Grants the initial home lease to `holder` at logical time `now`.
    pub fn new<S: Into<String>>(holder: S, lease_duration: u64, now: u64) -> Self {
        HomeLeaseFailover {
            holder: holder.into(),
            lease_duration,
            expires_at: now + lease_duration,
            failovers: 0,
            obs: None,
        }
    }

    /// Attaches an observability handle: every promotion counts
    /// `coda_cluster_failovers_total` (the cluster-level failover metric)
    /// and `coda_store_home_promotions`.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// The current home.
    pub fn holder(&self) -> &str {
        &self.holder
    }

    /// Lease expiry instant (exclusive — the lease is held while
    /// `now < expires_at`).
    pub fn expires_at(&self) -> u64 {
        self.expires_at
    }

    /// True when the home lease has expired at `now`.
    pub fn lease_expired(&self, now: u64) -> bool {
        now >= self.expires_at
    }

    /// Promotions performed so far.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Heartbeat path: the *current holder* renews its lease to
    /// `now + lease_duration`. Renewals from non-holders are ignored
    /// (returns false) — a demoted node cannot extend a role it lost.
    pub fn renew(&mut self, holder: &str, now: u64) -> bool {
        if holder != self.holder {
            return false;
        }
        self.expires_at = now + self.lease_duration;
        true
    }

    /// Evaluates the failover gate at logical time `now`. `holder_dead`
    /// is the failure detector's *dead* verdict for the current holder
    /// (suspicion must be passed as `false` — see module docs);
    /// `candidate` is the replica to promote when the gate opens.
    pub fn evaluate(
        &mut self,
        holder_dead: bool,
        candidate: Option<&str>,
        now: u64,
    ) -> FailoverDecision {
        if !holder_dead {
            return FailoverDecision::Healthy;
        }
        if !self.lease_expired(now) {
            return FailoverDecision::LeaseStillHeld { remaining: self.expires_at - now };
        }
        match candidate {
            None => FailoverDecision::NoCandidate,
            Some(next) => {
                let from = std::mem::replace(&mut self.holder, next.to_string());
                self.expires_at = now + self.lease_duration;
                self.failovers += 1;
                if let Some(o) = &self.obs {
                    o.count("coda_cluster_failovers_total", 1);
                    o.count("coda_store_home_promotions", 1);
                }
                FailoverDecision::Promoted { from, to: next.to_string() }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_holder_keeps_the_lease() {
        let mut fo = HomeLeaseFailover::new("site-0", 100, 0);
        assert_eq!(fo.evaluate(false, Some("site-1"), 50), FailoverDecision::Healthy);
        assert_eq!(fo.holder(), "site-0");
        assert_eq!(fo.failovers(), 0);
    }

    #[test]
    fn dead_holder_with_live_lease_is_not_usurped() {
        let mut fo = HomeLeaseFailover::new("site-0", 100, 0);
        match fo.evaluate(true, Some("site-1"), 60) {
            FailoverDecision::LeaseStillHeld { remaining } => assert_eq!(remaining, 40),
            other => panic!("expected LeaseStillHeld, got {other:?}"),
        }
        assert_eq!(fo.holder(), "site-0");
    }

    #[test]
    fn failover_fires_only_after_lease_expiry() {
        let mut fo = HomeLeaseFailover::new("site-0", 100, 0);
        assert!(matches!(
            fo.evaluate(true, Some("site-1"), 99),
            FailoverDecision::LeaseStillHeld { remaining: 1 }
        ));
        assert_eq!(
            fo.evaluate(true, Some("site-1"), 100),
            FailoverDecision::Promoted { from: "site-0".into(), to: "site-1".into() }
        );
        assert_eq!(fo.holder(), "site-1");
        assert_eq!(fo.failovers(), 1);
        // the new holder starts with a fresh lease
        assert!(!fo.lease_expired(150));
        assert!(fo.lease_expired(200));
    }

    #[test]
    fn renewal_extends_only_for_the_holder() {
        let mut fo = HomeLeaseFailover::new("site-0", 50, 0);
        assert!(fo.renew("site-0", 40));
        assert!(!fo.lease_expired(89));
        assert!(!fo.renew("site-1", 80), "non-holders cannot renew");
        assert!(fo.lease_expired(90));
    }

    #[test]
    fn no_candidate_leaves_the_role_vacant_but_counts_nothing() {
        let mut fo = HomeLeaseFailover::new("site-0", 10, 0);
        assert_eq!(fo.evaluate(true, None, 10), FailoverDecision::NoCandidate);
        assert_eq!(fo.holder(), "site-0");
        assert_eq!(fo.failovers(), 0);
    }

    #[test]
    fn promotion_counts_into_an_attached_registry() {
        let obs = Obs::deterministic();
        let mut fo = HomeLeaseFailover::new("site-0", 10, 0);
        fo.attach_obs(obs.clone());
        fo.evaluate(true, Some("site-1"), 10);
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter("coda_cluster_failovers_total"), 1);
        assert_eq!(snap.counter("coda_store_home_promotions"), 1);
    }
}
