//! Cooperative evaluation driver: a client works through a list of
//! computations against the DARR, reusing stored results, claiming untried
//! ones, and computing only what no other client has covered — the
//! cooperation protocol of Fig. 2.

use crate::record::{AnalyticsRecord, ComputationKey};
use crate::repo::{ClaimOutcome, Darr};

/// What happened for one computation in a cooperative pass.
#[derive(Debug, Clone, PartialEq)]
pub enum CoopOutcome {
    /// The client computed it (held the claim).
    Computed(AnalyticsRecord),
    /// A stored result was reused — a redundant computation avoided.
    Reused(AnalyticsRecord),
    /// Another client holds the claim; skipped for now.
    SkippedHeld(String),
    /// The computation failed; the claim was released.
    Failed(String),
}

/// Per-client counters from a cooperative pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoopSummary {
    /// Computations this client performed.
    pub computed: usize,
    /// Results reused from the DARR.
    pub reused: usize,
    /// Computations skipped because another client held the claim.
    pub skipped: usize,
    /// Failures.
    pub failed: usize,
}

/// A cooperating client bound to a shared [`Darr`].
#[derive(Debug)]
pub struct CooperativeClient<'a> {
    darr: &'a Darr,
    name: String,
    claim_duration: u64,
}

impl<'a> CooperativeClient<'a> {
    /// Creates a client named `name` with the given claim lease duration.
    pub fn new<S: Into<String>>(darr: &'a Darr, name: S, claim_duration: u64) -> Self {
        CooperativeClient { darr, name: name.into(), claim_duration }
    }

    /// The client's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Processes one computation: reuse, claim + compute, or skip.
    /// `compute` runs only when the claim is held and returns
    /// `(score, fold_scores, explanation)` or an error message.
    pub fn process<F>(&self, key: &ComputationKey, compute: F) -> CoopOutcome
    where
        F: FnOnce() -> Result<(f64, Vec<f64>, String), String>,
    {
        match self.darr.try_claim(key, &self.name, self.claim_duration) {
            ClaimOutcome::AlreadyComputed(record) => CoopOutcome::Reused(record),
            ClaimOutcome::HeldBy(owner) => CoopOutcome::SkippedHeld(owner),
            ClaimOutcome::Claimed => match compute() {
                Ok((score, folds, explanation)) => CoopOutcome::Computed(self.darr.complete(
                    key,
                    &self.name,
                    score,
                    folds,
                    &explanation,
                )),
                Err(e) => {
                    self.darr.release_claim(key, &self.name);
                    CoopOutcome::Failed(e)
                }
            },
        }
    }

    /// Runs a full work list, returning the summary and per-key outcomes.
    pub fn run_worklist<F>(
        &self,
        keys: &[ComputationKey],
        mut compute: F,
    ) -> (CoopSummary, Vec<CoopOutcome>)
    where
        F: FnMut(&ComputationKey) -> Result<(f64, Vec<f64>, String), String>,
    {
        let mut summary = CoopSummary::default();
        let mut outcomes = Vec::with_capacity(keys.len());
        for key in keys {
            let outcome = self.process(key, || compute(key));
            match &outcome {
                CoopOutcome::Computed(_) => summary.computed += 1,
                CoopOutcome::Reused(_) => summary.reused += 1,
                CoopOutcome::SkippedHeld(_) => summary.skipped += 1,
                CoopOutcome::Failed(_) => summary.failed += 1,
            }
            outcomes.push(outcome);
        }
        (summary, outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn keys(n: usize) -> Vec<ComputationKey> {
        (0..n)
            .map(|i| ComputationKey::new("ds", 1, &format!("p{i}") as &str, "kfold(3)", "rmse"))
            .collect()
    }

    #[test]
    fn single_client_computes_everything_once() {
        let darr = Darr::new();
        let client = CooperativeClient::new(&darr, "a", 100);
        let work = keys(5);
        let (summary, _) = client.run_worklist(&work, |k| {
            Ok((k.pipeline.len() as f64, vec![], "test".to_string()))
        });
        assert_eq!(summary.computed, 5);
        // a second pass reuses all five
        let (summary2, outcomes) = client.run_worklist(&work, |_| unreachable!());
        assert_eq!(summary2.reused, 5);
        assert!(matches!(outcomes[0], CoopOutcome::Reused(_)));
    }

    #[test]
    fn two_clients_partition_the_work() {
        let darr = Darr::new();
        let a = CooperativeClient::new(&darr, "a", 100);
        let b = CooperativeClient::new(&darr, "b", 100);
        let work = keys(10);
        let (sa, _) = a.run_worklist(&work[..6], |_| Ok((0.0, vec![], String::new())));
        let (sb, _) = b.run_worklist(&work, |_| Ok((0.0, vec![], String::new())));
        assert_eq!(sa.computed, 6);
        assert_eq!(sb.computed, 4);
        assert_eq!(sb.reused, 6);
        // total computations equal the distinct work items
        assert_eq!(darr.len(), 10);
    }

    #[test]
    fn failure_releases_claim_for_others() {
        let darr = Darr::new();
        let a = CooperativeClient::new(&darr, "a", 100);
        let b = CooperativeClient::new(&darr, "b", 100);
        let k = &keys(1)[0];
        let outcome = a.process(k, || Err("boom".to_string()));
        assert!(matches!(outcome, CoopOutcome::Failed(_)));
        // b can immediately claim and finish
        let outcome = b.process(k, || Ok((1.0, vec![], String::new())));
        assert!(matches!(outcome, CoopOutcome::Computed(_)));
    }

    #[test]
    fn held_claim_is_skipped() {
        let darr = Darr::new();
        let k = &keys(1)[0];
        darr.try_claim(k, "other", 100);
        let a = CooperativeClient::new(&darr, "a", 100);
        let outcome = a.process(k, || unreachable!());
        assert_eq!(outcome, CoopOutcome::SkippedHeld("other".to_string()));
    }

    #[test]
    fn concurrent_clients_never_duplicate_work() {
        let darr = Arc::new(Darr::new());
        let computations = Arc::new(AtomicUsize::new(0));
        let work = keys(50);
        let mut handles = Vec::new();
        for t in 0..6 {
            let darr = Arc::clone(&darr);
            let computations = Arc::clone(&computations);
            let work = work.clone();
            handles.push(std::thread::spawn(move || {
                let client = CooperativeClient::new(&darr, format!("c{t}"), 1000);
                client.run_worklist(&work, |_| {
                    computations.fetch_add(1, Ordering::SeqCst);
                    Ok((0.0, vec![], String::new()))
                })
            }));
        }
        let mut total_effective = 0usize;
        for h in handles {
            let (s, _) = h.join().unwrap();
            assert_eq!(s.failed, 0);
            total_effective += s.computed + s.reused + s.skipped;
        }
        // with cooperation the total actual computations equal the work size
        assert_eq!(computations.load(Ordering::SeqCst), 50);
        assert_eq!(total_effective, 6 * 50);
        assert_eq!(darr.len(), 50);
    }
}
