//! Heartbeat-based phi-accrual failure detection (Hayashibara et al.,
//! "The φ accrual failure detector", SRDS 2004 — the Cassandra variant).
//!
//! Instead of a binary alive/dead timeout, each node accrues a *suspicion
//! level* φ that grows continuously while heartbeats are missing. Under an
//! exponential inter-arrival model with mean `m`, the probability that a
//! heartbeat is still in flight after `t` ms is `exp(-t/m)`, so
//!
//! ```text
//! φ(t) = -log10(P_later(t)) = (t / m) · log10(e)
//! ```
//!
//! Crossing `suspect_phi` marks a node *Suspect* (slow or partitioned —
//! never grounds for failover on its own); crossing `dead_phi` marks it
//! *Dead* (crash-stop verdict). Failover additionally requires the home
//! lease to expire — see `coda_store::HomeLeaseFailover` — so a wrongly
//! suspected node is never usurped while it could still act as home.
//!
//! Everything runs on the caller's logical clock (f64 milliseconds) and is
//! fully deterministic: the mean interval is a windowed arithmetic mean of
//! observed heartbeat gaps, seeded by `initial_interval_ms` before enough
//! samples arrive.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use coda_obs::Obs;

/// log10(e): converts the exponential survival exponent into decimal φ.
const LOG10_E: f64 = std::f64::consts::LOG10_E;

/// A node's liveness verdict at one evaluation instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Heartbeats arrive on schedule (φ below `suspect_phi`).
    Alive,
    /// Heartbeats are overdue (φ in `[suspect_phi, dead_phi)`): the node
    /// may be slow or partitioned. Never a failover trigger by itself.
    Suspect,
    /// φ reached `dead_phi`: crash-stop verdict.
    Dead,
}

/// Detector tuning. All times are logical milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Sliding window of inter-heartbeat intervals per node.
    pub window: usize,
    /// Prior mean interval used until the window has samples.
    pub initial_interval_ms: f64,
    /// φ at which a node becomes [`Liveness::Suspect`].
    pub suspect_phi: f64,
    /// φ at which a node becomes [`Liveness::Dead`].
    pub dead_phi: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig { window: 16, initial_interval_ms: 100.0, suspect_phi: 1.0, dead_phi: 4.0 }
    }
}

#[derive(Debug, Clone)]
struct NodeHealth {
    last_heartbeat: f64,
    intervals: VecDeque<f64>,
    state: Liveness,
    dead_since: Option<f64>,
}

/// Per-cluster failure detector: registered nodes heartbeat on the logical
/// clock; [`FailureDetector::evaluate`] accrues suspicion and counts every
/// state transition (`coda_cluster_suspicions_total`,
/// `coda_cluster_deaths_detected`, `coda_cluster_revivals`) into an
/// attached [`Obs`]; the current φ of the most-suspected node is exported
/// as the `coda_cluster_max_phi` gauge.
#[derive(Debug, Clone, Default)]
pub struct FailureDetector {
    config: DetectorConfig,
    nodes: BTreeMap<String, NodeHealth>,
    suspicions: u64,
    deaths: u64,
    revivals: u64,
    obs: Option<Obs>,
}

impl FailureDetector {
    /// Creates a detector with the given tuning.
    pub fn new(config: DetectorConfig) -> Self {
        FailureDetector { config, ..Default::default() }
    }

    /// Attaches an observability handle for transition counters and the
    /// suspicion gauge.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// Registers `node` at logical time `now` (registration counts as its
    /// first heartbeat). Re-registering an existing node is a heartbeat.
    pub fn register(&mut self, node: &str, now: f64) {
        self.heartbeat(node, now);
    }

    /// Records a heartbeat from `node` at `now`. A heartbeat from a node
    /// previously declared dead is a *revival* (restart rejoining): its
    /// interval window resets so pre-crash gaps don't poison the mean.
    pub fn heartbeat(&mut self, node: &str, now: f64) {
        match self.nodes.get_mut(node) {
            None => {
                self.nodes.insert(
                    node.to_string(),
                    NodeHealth {
                        last_heartbeat: now,
                        intervals: VecDeque::new(),
                        state: Liveness::Alive,
                        dead_since: None,
                    },
                );
            }
            Some(h) => {
                if h.state == Liveness::Dead {
                    self.revivals += 1;
                    if let Some(o) = &self.obs {
                        o.count("coda_cluster_revivals", 1);
                    }
                    h.intervals.clear();
                } else {
                    let gap = now - h.last_heartbeat;
                    if gap > 0.0 {
                        h.intervals.push_back(gap);
                        while h.intervals.len() > self.config.window {
                            h.intervals.pop_front();
                        }
                    }
                }
                h.last_heartbeat = now;
                h.state = Liveness::Alive;
                h.dead_since = None;
            }
        }
    }

    fn mean_interval(&self, h: &NodeHealth) -> f64 {
        if h.intervals.is_empty() {
            self.config.initial_interval_ms
        } else {
            h.intervals.iter().sum::<f64>() / h.intervals.len() as f64
        }
    }

    /// Current suspicion level of `node` at `now` (0.0 for unknown nodes
    /// or immediately after a heartbeat; grows without bound while
    /// heartbeats are missing).
    pub fn phi(&self, node: &str, now: f64) -> f64 {
        let Some(h) = self.nodes.get(node) else { return 0.0 };
        let elapsed = (now - h.last_heartbeat).max(0.0);
        elapsed / self.mean_interval(h) * LOG10_E
    }

    /// Evaluates `node`'s liveness at `now`, recording state transitions.
    /// Unknown nodes evaluate as [`Liveness::Dead`] (never heartbeated).
    pub fn evaluate(&mut self, node: &str, now: f64) -> Liveness {
        let phi = self.phi(node, now);
        let next = if phi >= self.config.dead_phi {
            Liveness::Dead
        } else if phi >= self.config.suspect_phi {
            Liveness::Suspect
        } else {
            Liveness::Alive
        };
        let Some(h) = self.nodes.get_mut(node) else { return Liveness::Dead };
        if next != h.state {
            match next {
                Liveness::Suspect => {
                    self.suspicions += 1;
                    if let Some(o) = &self.obs {
                        o.count("coda_cluster_suspicions_total", 1);
                    }
                }
                Liveness::Dead => {
                    self.deaths += 1;
                    h.dead_since = Some(now);
                    if let Some(o) = &self.obs {
                        o.count("coda_cluster_deaths_detected", 1);
                    }
                }
                Liveness::Alive => {} // only heartbeats revive — unreachable here
            }
            h.state = next;
        }
        if let Some(o) = &self.obs {
            o.registry().gauge("coda_cluster_max_phi").set(self.max_phi(now));
        }
        next
    }

    /// The instant the detector first declared `node` dead (cleared by a
    /// reviving heartbeat) — the `dead_since` a DARR claim reaper keys its
    /// grace period on.
    pub fn dead_since(&self, node: &str) -> Option<f64> {
        self.nodes.get(node).and_then(|h| h.dead_since)
    }

    /// Highest φ across all registered nodes at `now`.
    pub fn max_phi(&self, now: f64) -> f64 {
        self.nodes.keys().map(|n| self.phi(n, now)).fold(0.0, f64::max)
    }

    /// Suspect transitions recorded so far.
    pub fn suspicions(&self) -> u64 {
        self.suspicions
    }

    /// Dead transitions recorded so far.
    pub fn deaths(&self) -> u64 {
        self.deaths
    }

    /// Dead nodes that heartbeated again (restarts rejoining).
    pub fn revivals(&self) -> u64 {
        self.revivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> FailureDetector {
        FailureDetector::new(DetectorConfig {
            window: 8,
            initial_interval_ms: 10.0,
            suspect_phi: 1.0,
            dead_phi: 4.0,
        })
    }

    #[test]
    fn steady_heartbeats_stay_alive() {
        let mut d = detector();
        d.register("n0", 0.0);
        for t in 1..=50 {
            let now = t as f64 * 10.0;
            d.heartbeat("n0", now);
            assert_eq!(d.evaluate("n0", now + 5.0), Liveness::Alive);
        }
        assert_eq!(d.suspicions(), 0);
        assert_eq!(d.deaths(), 0);
    }

    #[test]
    fn phi_grows_monotonically_while_heartbeats_are_missing() {
        let mut d = detector();
        d.register("n0", 0.0);
        for t in 1..=10 {
            d.heartbeat("n0", t as f64 * 10.0);
        }
        // silence after t=100: phi accrues with elapsed time
        let mut last = 0.0;
        for t in [110.0, 130.0, 170.0, 250.0] {
            let phi = d.phi("n0", t);
            assert!(phi > last, "phi must accrue: {phi} vs {last}");
            last = phi;
        }
    }

    #[test]
    fn suspicion_precedes_death_and_each_transition_counts_once() {
        let mut d = detector();
        d.register("n0", 0.0);
        for t in 1..=10 {
            d.heartbeat("n0", t as f64 * 10.0);
        }
        // mean interval 10ms; suspect at phi>=1 (~23ms), dead at phi>=4 (~92ms)
        assert_eq!(d.evaluate("n0", 110.0), Liveness::Alive);
        assert_eq!(d.evaluate("n0", 140.0), Liveness::Suspect);
        assert_eq!(d.evaluate("n0", 150.0), Liveness::Suspect, "no double count");
        assert_eq!(d.evaluate("n0", 300.0), Liveness::Dead);
        assert_eq!(d.evaluate("n0", 400.0), Liveness::Dead);
        assert_eq!(d.suspicions(), 1);
        assert_eq!(d.deaths(), 1);
        assert_eq!(d.dead_since("n0"), Some(300.0));
    }

    #[test]
    fn a_reviving_heartbeat_resets_suspicion() {
        let mut d = detector();
        d.register("n0", 0.0);
        for t in 1..=5 {
            d.heartbeat("n0", t as f64 * 10.0);
        }
        assert_eq!(d.evaluate("n0", 500.0), Liveness::Dead);
        d.heartbeat("n0", 510.0); // restart rejoins
        assert_eq!(d.evaluate("n0", 512.0), Liveness::Alive);
        assert_eq!(d.revivals(), 1);
        assert_eq!(d.dead_since("n0"), None);
        // the 460ms death gap must not poison the window mean
        d.heartbeat("n0", 520.0);
        assert!(d.phi("n0", 540.0) > 0.5, "mean stays near the true interval");
    }

    #[test]
    fn unknown_nodes_evaluate_dead() {
        let mut d = detector();
        assert_eq!(d.evaluate("ghost", 100.0), Liveness::Dead);
        assert_eq!(d.phi("ghost", 100.0), 0.0);
    }

    #[test]
    fn transitions_count_into_an_attached_registry() {
        let obs = Obs::deterministic();
        let mut d = detector();
        d.attach_obs(obs.clone());
        d.register("n0", 0.0);
        d.heartbeat("n0", 10.0);
        d.evaluate("n0", 40.0); // suspect
        d.evaluate("n0", 200.0); // dead
        d.heartbeat("n0", 210.0); // revival
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter("coda_cluster_suspicions_total"), 1);
        assert_eq!(snap.counter("coda_cluster_deaths_detected"), 1);
        assert_eq!(snap.counter("coda_cluster_revivals"), 1);
    }

    #[test]
    fn max_phi_tracks_the_most_suspected_node() {
        let mut d = detector();
        d.register("fresh", 100.0);
        d.register("stale", 0.0);
        for t in 1..=5 {
            d.heartbeat("stale", t as f64 * 10.0);
        }
        let m = d.max_phi(120.0);
        assert!((m - d.phi("stale", 120.0)).abs() < 1e-12);
        assert!(m > d.phi("fresh", 120.0));
    }
}
