/root/repo/target/debug/examples/timeseries_forecast-db66fe9e787b4fe6.d: examples/timeseries_forecast.rs

/root/repo/target/debug/examples/timeseries_forecast-db66fe9e787b4fe6: examples/timeseries_forecast.rs

examples/timeseries_forecast.rs:
