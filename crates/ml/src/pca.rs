//! Principal component analysis (the "covariance based PCA" of Fig. 3).

use coda_data::{BoxedTransformer, ComponentError, Dataset, ParamValue, Transformer};
use coda_linalg::{symmetric_eigen, Matrix};

/// Covariance-based PCA: learns the top `n_components` principal directions
/// during `fit` (the Estimate operation of §IV) and projects data onto them
/// during `transform`.
///
/// # Examples
///
/// ```
/// use coda_data::{Dataset, Transformer};
/// use coda_linalg::Matrix;
/// use coda_ml::Pca;
///
/// // 2-D data lying on the x=y line has one dominant component.
/// let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0], &[4.0, 4.1]]);
/// let mut pca = Pca::new(1);
/// let out = pca.fit_transform(&Dataset::new(x))?;
/// assert_eq!(out.n_features(), 1);
/// assert!(pca.explained_variance_ratio().unwrap()[0] > 0.99);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    n_components: usize,
    means: Option<Vec<f64>>,
    components: Option<Matrix>, // d x k, columns are principal directions
    explained: Option<Vec<f64>>,
}

impl Pca {
    /// Creates a PCA keeping `n_components` components.
    ///
    /// # Panics
    ///
    /// Panics if `n_components == 0`.
    pub fn new(n_components: usize) -> Self {
        assert!(n_components > 0, "n_components must be positive");
        Pca { n_components, means: None, components: None, explained: None }
    }

    /// Fraction of total variance explained per kept component, if fitted.
    pub fn explained_variance_ratio(&self) -> Option<&[f64]> {
        self.explained.as_deref()
    }

    /// The fitted components (d x k), if fitted.
    pub fn components(&self) -> Option<&Matrix> {
        self.components.as_ref()
    }
}

impl Transformer for Pca {
    fn name(&self) -> &str {
        "pca"
    }

    fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
        match param {
            "n_components" => {
                self.n_components = value.as_usize().filter(|&k| k > 0).ok_or_else(|| {
                    ComponentError::InvalidParam {
                        component: "pca".to_string(),
                        param: param.to_string(),
                        reason: "must be a positive integer".to_string(),
                    }
                })?;
                Ok(())
            }
            _ => Err(ComponentError::UnknownParam {
                component: self.name().to_string(),
                param: param.to_string(),
            }),
        }
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        let x = data.features();
        if x.rows() < 2 {
            return Err(ComponentError::InvalidInput("pca needs at least two samples".to_string()));
        }
        let k = self.n_components.min(x.cols());
        let cov = x.covariance();
        let eig = symmetric_eigen(&cov)
            .map_err(|e| ComponentError::Numerical(format!("eigendecomposition failed: {e}")))?;
        let total: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
        let keep: Vec<usize> = (0..k).collect();
        let components = eig.vectors.select_cols(&keep);
        let explained: Vec<f64> = eig.values[..k]
            .iter()
            .map(|v| if total > 0.0 { v.max(0.0) / total } else { 0.0 })
            .collect();
        self.means = Some(x.column_means());
        self.components = Some(components);
        self.explained = Some(explained);
        Ok(())
    }

    fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        let (means, comps) = match (&self.means, &self.components) {
            (Some(m), Some(c)) => (m, c),
            _ => return Err(ComponentError::NotFitted(self.name().to_string())),
        };
        if means.len() != data.n_features() {
            return Err(ComponentError::InvalidInput(format!(
                "pca fitted on {} features, input has {}",
                means.len(),
                data.n_features()
            )));
        }
        let x = data.features();
        let mut centered = x.clone();
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                centered[(r, c)] -= means[c];
            }
        }
        let projected =
            centered.matmul(comps).map_err(|e| ComponentError::Numerical(e.to_string()))?;
        Ok(data.replace_features(projected))
    }

    fn clone_box(&self) -> BoxedTransformer {
        Box::new(Pca::new(self.n_components))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::synth;

    #[test]
    fn reduces_dimensionality() {
        let ds = synth::linear_regression(100, 5, 0.1, 3);
        let mut pca = Pca::new(2);
        let out = pca.fit_transform(&ds).unwrap();
        assert_eq!(out.n_features(), 2);
        assert_eq!(out.n_samples(), 100);
        assert_eq!(out.target().unwrap().len(), 100);
    }

    #[test]
    fn explained_variance_sums_to_one_when_all_kept() {
        let ds = synth::linear_regression(100, 4, 0.1, 3);
        let mut pca = Pca::new(4);
        pca.fit(&ds).unwrap();
        let total: f64 = pca.explained_variance_ratio().unwrap().iter().sum();
        assert!((total - 1.0).abs() < 1e-8);
    }

    #[test]
    fn components_capped_at_feature_count() {
        let ds = synth::linear_regression(50, 3, 0.1, 4);
        let mut pca = Pca::new(10);
        let out = pca.fit_transform(&ds).unwrap();
        assert_eq!(out.n_features(), 3);
    }

    #[test]
    fn first_component_has_max_variance() {
        let ds = synth::linear_regression(200, 4, 0.1, 5);
        let mut pca = Pca::new(4);
        let out = pca.fit_transform(&ds).unwrap();
        let vars: Vec<f64> =
            (0..4).map(|c| coda_linalg::variance(&out.features().col(c))).collect();
        for w in vars.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "component variances must be descending");
        }
    }

    #[test]
    fn projected_components_are_decorrelated() {
        let ds = synth::linear_regression(300, 3, 0.1, 6);
        let mut pca = Pca::new(3);
        let out = pca.fit_transform(&ds).unwrap();
        for i in 0..3 {
            for j in (i + 1)..3 {
                let corr =
                    coda_linalg::stats::pearson(&out.features().col(i), &out.features().col(j));
                assert!(corr.abs() < 1e-6, "components {i},{j} correlate: {corr}");
            }
        }
    }

    #[test]
    fn set_param_n_components() {
        let mut pca = Pca::new(1);
        pca.set_param("n_components", ParamValue::from(3usize)).unwrap();
        assert!(pca.set_param("n_components", ParamValue::from(0usize)).is_err());
        assert!(pca.set_param("whatever", ParamValue::from(1usize)).is_err());
    }

    #[test]
    fn not_fitted_and_too_small() {
        let ds = synth::linear_regression(10, 2, 0.1, 1);
        assert!(Pca::new(1).transform(&ds).is_err());
        let one = ds.select(&[0]);
        assert!(Pca::new(1).fit(&one).is_err());
    }
}
