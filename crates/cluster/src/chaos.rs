//! Deterministic chaos driver: N logical clients cooperating over a shared
//! DARR while a seeded [`FaultInjector`] drops messages, partitions the
//! repository and crashes a client mid-computation. The driver is
//! single-threaded round-robin — every source of randomness is seeded and
//! every clock is logical — so a run with the same [`ChaosCoopConfig`]
//! replays bit-identically, which is what the resilience acceptance test
//! asserts.
//!
//! Resilience paths exercised per step:
//! - unreachable DARR → [`RetryPolicy`] backoff, then offline compute with
//!   a write-behind journal replayed (keep-newer merge) after the heal;
//! - a claim held by a crashed client → lease expiry, then takeover;
//! - message drops on the claim/complete round trips → seeded retries.

use std::collections::{BTreeSet, VecDeque};

use coda_chaos::{FaultInjector, FaultPlan, FaultStats, RetryPolicy, RetryStats};
use coda_darr::{AnalyticsRecord, ClaimOutcome, ComputationKey, Darr};
use coda_obs::{Obs, SpanContext};
use coda_store::shard_of;

/// Logical milliseconds (and DARR ticks) per driver round.
const STEP_MS: f64 = 20.0;
/// Rounds a claimed computation takes — claims outlive steps, so a crash
/// mid-computation leaves a dangling claim for others to take over.
const WORK_STEPS: usize = 2;

/// Configuration of one chaos run. All times are logical milliseconds on
/// the driver clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosCoopConfig {
    /// Seed for the fault injector and retry jitter.
    pub seed: u64,
    /// Number of logical cooperating clients.
    pub n_clients: usize,
    /// Number of pipeline evaluations (work items).
    pub n_keys: usize,
    /// Per-message drop probability on every client↔DARR exchange.
    pub drop_probability: f64,
    /// Window during which the DARR is unreachable for every client.
    pub darr_partition: Option<(f64, f64)>,
    /// `(client index, down_at, up_at)`: one client crashes and restarts.
    pub crash: Option<(usize, f64, f64)>,
    /// Claim lease duration in DARR ticks.
    pub claim_duration: u64,
    /// Safety cap on driver rounds.
    pub max_rounds: usize,
}

impl Default for ChaosCoopConfig {
    fn default() -> Self {
        ChaosCoopConfig {
            seed: 7,
            n_clients: 3,
            n_keys: 12,
            drop_probability: 0.2,
            darr_partition: Some((400.0, 800.0)),
            crash: Some((1, 200.0, 600.0)),
            claim_duration: 200,
            max_rounds: 10_000,
        }
    }
}

/// What happened in one chaos run — the ground truth the acceptance test
/// and the D4 experiment compare across seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosCoopReport {
    /// Work items configured.
    pub n_keys: usize,
    /// Distinct results stored in the DARR at the end.
    pub completed: usize,
    /// Computations completed online (claim → compute → complete).
    pub computed: usize,
    /// Stored results reused instead of recomputed.
    pub reused: usize,
    /// Results computed offline and journaled during unreachability.
    pub journaled: usize,
    /// Journaled records the DARR accepted on replay.
    pub replayed: usize,
    /// Journaled records rejected on replay because the key was already
    /// computed — every duplicate computation is counted here, none are
    /// silent.
    pub duplicates: usize,
    /// Claims taken over after a holder's lease expired.
    pub takeovers: usize,
    /// Computations lost to the crash (claimed, never completed — redone
    /// by someone else via takeover).
    pub lost_to_crash: usize,
    /// Driver rounds executed.
    pub rounds: usize,
    /// Crash edges the *driver* observed (a client up last round, down
    /// now) — compared against the injector's own crash count to prove
    /// scheduled crashes actually bit the protocol.
    pub crashes_seen: u64,
    /// Restart edges the driver observed (a client back up after a crash).
    pub restarts_seen: u64,
    /// Aggregated retry/backoff accounting over every DARR exchange.
    pub retry: RetryStats,
    /// The injector's fault counters.
    pub faults: FaultStats,
}

impl coda_obs::Publish for ChaosCoopReport {
    fn publish(&self, registry: &coda_obs::MetricsRegistry) {
        registry.count("coda_cluster_chaos_keys", self.n_keys as u64);
        registry.count("coda_cluster_chaos_completed", self.completed as u64);
        registry.count("coda_cluster_chaos_computed", self.computed as u64);
        registry.count("coda_cluster_chaos_reused", self.reused as u64);
        registry.count("coda_cluster_chaos_journaled", self.journaled as u64);
        registry.count("coda_cluster_chaos_replayed", self.replayed as u64);
        registry.count("coda_cluster_chaos_duplicates", self.duplicates as u64);
        registry.count("coda_cluster_chaos_takeovers", self.takeovers as u64);
        registry.count("coda_cluster_chaos_lost_to_crash", self.lost_to_crash as u64);
        registry.count("coda_cluster_chaos_rounds", self.rounds as u64);
        // faults the injector *injected* vs retries the clients *observed*:
        // comparing the two tells whether chaos actually bit the protocol
        registry.count("coda_cluster_faults_injected", self.faults.injected());
        registry.count("coda_cluster_faults_observed", u64::from(self.retry.retries));
        // same injected-vs-observed pairing for crash-stop events: the
        // injector counts scheduled crash/restart edges, the driver counts
        // the edges its clients actually lived through
        registry.count("coda_cluster_crashes_observed", self.crashes_seen);
        registry.count("coda_cluster_restarts_observed", self.restarts_seen);
        self.retry.publish(registry);
        self.faults.publish(registry);
    }
}

/// Per-client driver state.
struct ClientState {
    name: String,
    /// Rotated work cursor (key indices still to try).
    pending: VecDeque<usize>,
    /// In-flight claimed computation: (key index, rounds remaining, the
    /// `chaos.attempt` span covering this claim → work → complete cycle).
    working: Option<(usize, usize, Option<SpanContext>)>,
    /// Offline results waiting for replay.
    journal: Vec<AnalyticsRecord>,
    /// Whether the previous round saw this client crashed (restart edge).
    was_down: bool,
}

/// One retried client↔DARR round trip: request and response legs each risk
/// an injected drop; backoffs advance both the chaos and *every DARR
/// lane's* clock so scheduled windows can heal and lane clocks stay in
/// lockstep — and keep an attached observer's manual clock aligned so
/// trace timestamps stay logical. Returns reachability plus retry
/// accounting.
fn reach(
    injector: &mut FaultInjector,
    client: &str,
    policy: &RetryPolicy,
    now_ms: &mut f64,
    lanes: &[Darr],
    obs: Option<&Obs>,
) -> (bool, RetryStats) {
    let mut state = policy.state();
    loop {
        state.begin_attempt();
        let request_dropped = injector.should_drop(client, "darr");
        let response_dropped = injector.should_drop("darr", client);
        if !request_dropped && !response_dropped {
            return (true, state.finish(true));
        }
        match state.next_backoff_ms() {
            Some(backoff) => {
                *now_ms += backoff;
                injector.advance_to(*now_ms);
                for lane in lanes {
                    lane.advance_clock(backoff.ceil() as u64);
                }
                if let Some(o) = obs {
                    o.sync_manual_ms(*now_ms);
                }
            }
            None => return (false, state.finish(false)),
        }
    }
}

/// Lazily opens the per-key root span the first time any client touches
/// key `idx`; every later protocol step for that key hangs off it.
fn key_root(
    obs: Option<&Obs>,
    key_spans: &mut [Option<SpanContext>],
    key_open: &mut [bool],
    keys: &[ComputationKey],
    idx: usize,
) -> Option<SpanContext> {
    let o = obs?;
    if key_spans[idx].is_none() {
        key_spans[idx] =
            Some(o.tracer().begin_span("chaos.key", None, &[("key", &keys[idx].pipeline)]));
        key_open[idx] = true;
    }
    key_spans[idx]
}

/// Closes key `idx`'s root span (once) with a terminal outcome.
fn close_key(
    obs: Option<&Obs>,
    key_spans: &[Option<SpanContext>],
    key_open: &mut [bool],
    idx: usize,
    outcome: &str,
) {
    if let (Some(o), Some(ctx)) = (obs, key_spans[idx]) {
        if key_open[idx] {
            key_open[idx] = false;
            o.tracer().end_span(ctx, &[("outcome", outcome)]);
        }
    }
}

/// Deterministic score for key `idx` — the "pipeline evaluation" stand-in.
fn score_for(idx: usize) -> f64 {
    0.1 * (idx as f64 + 1.0)
}

/// Runs one seeded chaos scenario to completion (or the round cap).
pub fn run_chaos_coop(cfg: &ChaosCoopConfig) -> ChaosCoopReport {
    run_chaos_coop_obs(cfg, None)
}

/// Like [`run_chaos_coop`], but with optional observability: every work
/// item gets a `chaos.key` root span, each claim → work → complete cycle a
/// `chaos.attempt` child, and protocol events (claims, takeovers, journal
/// writes, replays, crash losses) attach to those spans — the DARR's own
/// `darr.claim`/`darr.complete`/`darr.merge` spans link in through the
/// carried [`SpanContext`], so the whole run yields one coherent trace
/// forest. If the observer's clock is a manual clock it is kept in
/// lockstep with the driver's logical time, so two same-seed runs emit
/// byte-identical trace logs.
pub fn run_chaos_coop_obs(cfg: &ChaosCoopConfig, obs: Option<&Obs>) -> ChaosCoopReport {
    run_chaos_coop_sharded(cfg, 1, obs)
}

/// The sharded generalization of [`run_chaos_coop_obs`]: the repository is
/// `n_shards` independent DARR lanes, and every key routes to the lane
/// [`coda_store::shard_of`] picks from its stable `dataset|pipeline`
/// routing key — the same hash the serving tier and the data tier use.
/// Lane clocks advance in lockstep (rounds and retry backoffs tick all of
/// them), so per-key protocol behavior — claims, lease expiry, takeovers,
/// journal replay — is invariant in the shard count, and a 1-shard run
/// reproduces the historical single-DARR driver exactly.
pub fn run_chaos_coop_sharded(
    cfg: &ChaosCoopConfig,
    n_shards: usize,
    obs: Option<&Obs>,
) -> ChaosCoopReport {
    assert!(cfg.n_clients >= 1 && cfg.n_keys >= 1, "need clients and work");
    assert!(n_shards >= 1, "need at least one DARR lane");
    let keys: Vec<ComputationKey> = (0..cfg.n_keys)
        .map(|i| ComputationKey::new("chaos-ds", 1, &format!("p{i}") as &str, "kfold(3)", "rmse"))
        .collect();
    // each key's owning lane, by the tier-wide stable routing hash
    let lane_of: Vec<usize> = keys
        .iter()
        .map(|k| shard_of(&format!("{}|{}", k.dataset_id, k.pipeline), n_shards))
        .collect();

    let mut plan = FaultPlan::new(cfg.seed).with_drop_probability(cfg.drop_probability);
    let client_names: Vec<String> = (0..cfg.n_clients).map(|c| format!("client-{c}")).collect();
    if let Some((from, to)) = cfg.darr_partition {
        for name in &client_names {
            plan = plan.with_link_flap(name, "darr", from, to);
        }
    }
    if let Some((idx, down, up)) = cfg.crash {
        plan = plan.with_crash(&client_names[idx % cfg.n_clients], down, up);
    }
    let mut injector = FaultInjector::new(plan);
    let policy =
        RetryPolicy::exponential(5.0, 2.0, 40.0, 4).with_jitter(0.1, cfg.seed.wrapping_add(1));

    let lanes: Vec<Darr> = (0..n_shards).map(|_| Darr::new()).collect();
    if let Some(o) = obs {
        for lane in &lanes {
            lane.attach_obs(o.clone());
        }
        o.sync_manual_ms(0.0);
    }
    // a point event inside the key's trace: every protocol step carries the
    // span context of the key it belongs to (or of the attempt cycle)
    let trace = |ctx: Option<SpanContext>, name: &str, client: &str, key: &str| {
        if let (Some(o), Some(c)) = (obs, ctx) {
            o.tracer().event_in(c, name, &[("client", client), ("key", key)]);
        }
    };
    let mut key_spans: Vec<Option<SpanContext>> = vec![None; cfg.n_keys];
    let mut key_open: Vec<bool> = vec![false; cfg.n_keys];
    let mut clients: Vec<ClientState> = (0..cfg.n_clients)
        .map(|c| {
            // rotated start offsets spread clients over the work list
            let offset = c * cfg.n_keys / cfg.n_clients;
            let pending = (0..cfg.n_keys).map(|i| (i + offset) % cfg.n_keys).collect();
            ClientState {
                name: client_names[c].clone(),
                pending,
                working: None,
                journal: Vec::new(),
                was_down: false,
            }
        })
        .collect();

    let mut report = ChaosCoopReport {
        n_keys: cfg.n_keys,
        completed: 0,
        computed: 0,
        reused: 0,
        journaled: 0,
        replayed: 0,
        duplicates: 0,
        takeovers: 0,
        lost_to_crash: 0,
        rounds: 0,
        crashes_seen: 0,
        restarts_seen: 0,
        retry: RetryStats::default(),
        faults: FaultStats::default(),
    };
    // keys that ever answered HeldBy: a later successful claim on one of
    // these (with no stored result) is a takeover of an expired lease
    let mut held_seen: BTreeSet<usize> = BTreeSet::new();
    // keys whose claim holder crashed mid-computation: the dangling claim
    // expires and the next successful claim is a takeover
    let mut orphaned: BTreeSet<usize> = BTreeSet::new();
    let mut now_ms = 0.0f64;

    for round in 0..cfg.max_rounds {
        report.rounds = round + 1;
        for client in &mut clients {
            if !injector.node_up(&client.name) {
                if !client.was_down {
                    report.crashes_seen += 1;
                }
                // crashed: in-flight work is lost; its claim dangles
                if let Some((idx, _, attempt)) = client.working.take() {
                    report.lost_to_crash += 1;
                    orphaned.insert(idx);
                    let ctx = attempt
                        .or_else(|| key_root(obs, &mut key_spans, &mut key_open, &keys, idx));
                    trace(ctx, "chaos.crash_loss", &client.name, &keys[idx].pipeline);
                    if let (Some(o), Some(a)) = (obs, attempt) {
                        o.tracer().end_span(a, &[("outcome", "crashed")]);
                    }
                }
                client.was_down = true;
                continue;
            }
            if client.was_down {
                report.restarts_seen += 1;
            }
            client.was_down = false;

            // finish in-flight work first
            if let Some((idx, remaining, attempt)) = client.working {
                if remaining > 1 {
                    client.working = Some((idx, remaining - 1, attempt));
                    continue;
                }
                client.working = None;
                let (ok, stats) =
                    reach(&mut injector, &client.name, &policy, &mut now_ms, &lanes, obs);
                report.retry.merge(&stats);
                if ok {
                    lanes[lane_of[idx]].complete_in(
                        &keys[idx],
                        &client.name,
                        score_for(idx),
                        vec![],
                        "chaos",
                        attempt,
                    );
                    report.computed += 1;
                    trace(attempt, "chaos.complete", &client.name, &keys[idx].pipeline);
                    if let (Some(o), Some(a)) = (obs, attempt) {
                        o.tracer().end_span(a, &[("outcome", "completed")]);
                    }
                    close_key(obs, &key_spans, &mut key_open, idx, "computed");
                } else {
                    // completion lost: journal the finished result instead
                    client.journal.push(AnalyticsRecord {
                        key: keys[idx].clone(),
                        score: score_for(idx),
                        fold_scores: vec![],
                        explanation: "chaos (journaled)".to_string(),
                        producer: client.name.clone(),
                        stored_at: lanes[lane_of[idx]].now(),
                    });
                    report.journaled += 1;
                    trace(attempt, "chaos.journal", &client.name, &keys[idx].pipeline);
                    if let (Some(o), Some(a)) = (obs, attempt) {
                        o.tracer().end_span(a, &[("outcome", "journaled")]);
                    }
                }
                continue;
            }

            // replay any journal as soon as the DARR answers again
            if !client.journal.is_empty() {
                let (ok, stats) =
                    reach(&mut injector, &client.name, &policy, &mut now_ms, &lanes, obs);
                report.retry.merge(&stats);
                if ok {
                    for record in client.journal.drain(..) {
                        let idx = keys
                            .iter()
                            .position(|k| *k == record.key)
                            // lint:allow(panic_safety) journal entries are only created from work-list keys earlier in this function
                            .expect("journaled keys come from the work list");
                        let ctx = key_root(obs, &mut key_spans, &mut key_open, &keys, idx);
                        if lanes[lane_of[idx]].lookup(&record.key).is_some() {
                            report.duplicates += 1; // someone else got there
                            trace(ctx, "chaos.duplicate", &client.name, &record.key.pipeline);
                        } else {
                            trace(ctx, "chaos.replay", &client.name, &record.key.pipeline);
                            lanes[lane_of[idx]].merge_record_in(record, ctx);
                            report.replayed += 1;
                            close_key(obs, &key_spans, &mut key_open, idx, "replayed");
                        }
                    }
                }
                continue;
            }

            // pick up the next work item
            let Some(idx) = client.pending.pop_front() else {
                continue; // this client is done
            };
            let root = key_root(obs, &mut key_spans, &mut key_open, &keys, idx);
            let (ok, stats) = reach(&mut injector, &client.name, &policy, &mut now_ms, &lanes, obs);
            report.retry.merge(&stats);
            if !ok {
                // DARR unreachable: degrade gracefully — compute locally
                // now, journal for replay after the heal
                client.journal.push(AnalyticsRecord {
                    key: keys[idx].clone(),
                    score: score_for(idx),
                    fold_scores: vec![],
                    explanation: "chaos (offline)".to_string(),
                    producer: client.name.clone(),
                    stored_at: lanes[lane_of[idx]].now(),
                });
                report.journaled += 1;
                trace(root, "chaos.journal", &client.name, &keys[idx].pipeline);
                continue;
            }
            match lanes[lane_of[idx]].try_claim_in(
                &keys[idx],
                &client.name,
                cfg.claim_duration,
                root,
            ) {
                ClaimOutcome::AlreadyComputed(_) => {
                    report.reused += 1;
                    trace(root, "chaos.reuse", &client.name, &keys[idx].pipeline);
                }
                ClaimOutcome::Claimed => {
                    let attempt = obs.zip(root).map(|(o, r)| {
                        o.tracer().begin_span(
                            "chaos.attempt",
                            Some(r),
                            &[("client", &client.name), ("key", &keys[idx].pipeline)],
                        )
                    });
                    if orphaned.remove(&idx) || held_seen.contains(&idx) {
                        report.takeovers += 1;
                        trace(attempt, "chaos.takeover", &client.name, &keys[idx].pipeline);
                    }
                    client.working = Some((idx, WORK_STEPS, attempt));
                    trace(attempt, "chaos.claim", &client.name, &keys[idx].pipeline);
                }
                ClaimOutcome::HeldBy(_) => {
                    held_seen.insert(idx);
                    client.pending.push_back(idx); // revisit with backoff
                    trace(root, "chaos.held", &client.name, &keys[idx].pipeline);
                }
            }
        }

        now_ms += STEP_MS;
        injector.advance_to(now_ms);
        for lane in &lanes {
            lane.advance_clock(STEP_MS as u64);
        }
        if let Some(o) = obs {
            o.sync_manual_ms(now_ms);
        }

        let all_idle = clients
            .iter()
            .all(|cl| cl.pending.is_empty() && cl.working.is_none() && cl.journal.is_empty());
        if all_idle && lanes.iter().map(Darr::len).sum::<usize>() >= cfg.n_keys {
            break;
        }
    }

    // end sweep: any key root still open never reached a stored result
    for idx in 0..cfg.n_keys {
        close_key(obs, &key_spans, &mut key_open, idx, "unresolved");
    }
    report.completed = lanes.iter().map(Darr::len).sum::<usize>();
    report.faults = injector.stats();
    if let Some(o) = obs {
        o.publish(&report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_completes_without_retries() {
        let cfg = ChaosCoopConfig {
            drop_probability: 0.0,
            darr_partition: None,
            crash: None,
            ..ChaosCoopConfig::default()
        };
        let report = run_chaos_coop(&cfg);
        assert_eq!(report.completed, cfg.n_keys);
        assert_eq!(report.journaled, 0);
        assert_eq!(report.duplicates, 0);
        assert_eq!(report.retry.retries, 0);
        assert_eq!(report.faults.dropped, 0);
        // cooperation still partitions the work across the three clients
        assert_eq!(report.computed, cfg.n_keys);
    }

    #[test]
    fn chaotic_run_completes_all_work() {
        let report = run_chaos_coop(&ChaosCoopConfig::default());
        assert_eq!(report.completed, report.n_keys, "no result may be lost");
        assert!(report.rounds < ChaosCoopConfig::default().max_rounds, "run must converge");
        // every computation is accounted: online completions plus replayed
        // journal entries cover the key space; duplicates are all visible
        assert_eq!(
            report.computed + report.replayed + report.duplicates,
            report.n_keys + report.duplicates,
        );
        assert!(report.faults.dropped > 0, "drops must actually occur");
        assert!(report.retry.retries > 0, "retries must actually occur");
        assert!(report.journaled > 0, "the partition must force offline compute");
        assert_eq!(report.journaled, report.replayed + report.duplicates);
        // injected-vs-observed crash accounting: every scheduled crash and
        // restart edge the injector counted was lived through by a client
        assert_eq!(report.crashes_seen, report.faults.crashes);
        assert_eq!(report.restarts_seen, report.faults.restarts);
        assert_eq!(report.crashes_seen, 1, "the default config crashes one client");
        assert_eq!(report.restarts_seen, 1);
    }

    #[test]
    fn same_seed_replays_identically() {
        let cfg = ChaosCoopConfig::default();
        let a = run_chaos_coop(&cfg);
        let b = run_chaos_coop(&cfg);
        assert_eq!(a, b, "identical seeds must produce identical counters");
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run_chaos_coop(&ChaosCoopConfig::default());
        let b = run_chaos_coop(&ChaosCoopConfig { seed: 99, ..ChaosCoopConfig::default() });
        // both complete, but the fault sequences differ
        assert_eq!(a.completed, a.n_keys);
        assert_eq!(b.completed, b.n_keys);
        assert_ne!(a.faults, b.faults);
    }

    #[test]
    fn sharded_lanes_reproduce_the_unsharded_run() {
        // lane clocks tick in lockstep and claim/lease state is per key, so
        // the whole report — retries, takeovers, journal traffic — must be
        // invariant in the lane count
        let cfg = ChaosCoopConfig::default();
        let unsharded = run_chaos_coop(&cfg);
        for n_shards in [1usize, 2, 4] {
            let sharded = run_chaos_coop_sharded(&cfg, n_shards, None);
            assert_eq!(sharded, unsharded, "{n_shards} lanes must be invisible");
        }
    }

    #[test]
    fn crash_forces_takeover() {
        // aggressive: long crash window, no other noise, so the crashed
        // client's claim must be taken over via lease expiry
        let cfg = ChaosCoopConfig {
            drop_probability: 0.0,
            darr_partition: None,
            crash: Some((0, 30.0, 2000.0)),
            claim_duration: 100,
            ..ChaosCoopConfig::default()
        };
        let report = run_chaos_coop(&cfg);
        assert_eq!(report.completed, cfg.n_keys);
        assert!(report.lost_to_crash >= 1, "the crash must interrupt work");
        assert!(report.takeovers >= 1, "expired claims must be taken over");
    }
}
