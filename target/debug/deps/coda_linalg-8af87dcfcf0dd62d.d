/root/repo/target/debug/deps/coda_linalg-8af87dcfcf0dd62d.d: crates/linalg/src/lib.rs crates/linalg/src/decomp.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

/root/repo/target/debug/deps/coda_linalg-8af87dcfcf0dd62d: crates/linalg/src/lib.rs crates/linalg/src/decomp.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/decomp.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/stats.rs:
