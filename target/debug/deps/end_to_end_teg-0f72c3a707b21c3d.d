/root/repo/target/debug/deps/end_to_end_teg-0f72c3a707b21c3d.d: tests/end_to_end_teg.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_teg-0f72c3a707b21c3d.rmeta: tests/end_to_end_teg.rs Cargo.toml

tests/end_to_end_teg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
