//! The [`Publish`] trait: one uniform way for crate-local stats structs
//! (`CacheStats`, `RetryStats`, `TransferStats`, …) to land their counters
//! in a shared [`MetricsRegistry`] under canonical `coda_<crate>_<name>`
//! names, instead of bespoke accessors duplicated at every call site.

use crate::metrics::MetricsRegistry;

/// Adds a snapshot's counters into a registry.
///
/// Implementations are *additive*: publishing the same snapshot twice
/// double-counts, so publish each accounting struct exactly once (typically
/// at the end of the operation that produced it). Components that are
/// instead wired live via [`Obs`](crate::Obs) handles increment the same
/// canonical names as they go — use one style or the other per source.
pub trait Publish {
    /// Accumulates this snapshot into `registry`.
    fn publish(&self, registry: &MetricsRegistry);
}

impl<T: Publish> Publish for Option<T> {
    fn publish(&self, registry: &MetricsRegistry) {
        if let Some(inner) = self {
            inner.publish(registry);
        }
    }
}
