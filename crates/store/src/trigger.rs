//! Recomputation triggers (paper §III): decide when data has changed enough
//! to warrant re-running analytics. Three policies, exactly as listed:
//! update **count** threshold, update **size** threshold, and an
//! **application-specific** predicate over the accumulated change.

use std::fmt;

/// Accumulated change since the last recomputation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateStats {
    /// Updates observed.
    pub count: u64,
    /// Total updated bytes observed.
    pub bytes: u64,
    /// Application-supplied magnitude of change (e.g. drift score).
    pub magnitude: f64,
}

/// When to recompute analytics over changing data.
pub enum RecomputeTrigger {
    /// Recompute after this many updates.
    UpdateCount(u64),
    /// Recompute after this many updated bytes.
    UpdateBytes(u64),
    /// Application-specific: recompute when the predicate holds. The paper
    /// calls this "the best way … however harder to implement".
    AppSpecific(Box<dyn Fn(&UpdateStats) -> bool + Send + Sync>),
}

impl fmt::Debug for RecomputeTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecomputeTrigger::UpdateCount(n) => write!(f, "UpdateCount({n})"),
            RecomputeTrigger::UpdateBytes(n) => write!(f, "UpdateBytes({n})"),
            RecomputeTrigger::AppSpecific(_) => write!(f, "AppSpecific(..)"),
        }
    }
}

impl RecomputeTrigger {
    /// True when the accumulated change warrants recomputation.
    pub fn should_recompute(&self, stats: &UpdateStats) -> bool {
        match self {
            RecomputeTrigger::UpdateCount(n) => stats.count >= *n,
            RecomputeTrigger::UpdateBytes(n) => stats.bytes >= *n,
            RecomputeTrigger::AppSpecific(pred) => pred(stats),
        }
    }
}

/// Tracks change since the last recomputation and fires the trigger.
pub struct ChangeMonitor {
    trigger: RecomputeTrigger,
    stats: UpdateStats,
    /// Number of recomputations fired.
    pub recomputations: u64,
}

impl fmt::Debug for ChangeMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ChangeMonitor({:?}, pending {:?}, fired {})",
            self.trigger, self.stats, self.recomputations
        )
    }
}

impl ChangeMonitor {
    /// Creates a monitor with the given policy.
    pub fn new(trigger: RecomputeTrigger) -> Self {
        ChangeMonitor { trigger, stats: UpdateStats::default(), recomputations: 0 }
    }

    /// Accumulated change since the last recomputation.
    pub fn pending(&self) -> UpdateStats {
        self.stats
    }

    /// Records one update; returns true when analytics should be recomputed
    /// now (and resets the accumulator).
    pub fn record_update(&mut self, bytes: u64, magnitude: f64) -> bool {
        self.stats.count += 1;
        self.stats.bytes += bytes;
        self.stats.magnitude += magnitude;
        if self.trigger.should_recompute(&self.stats) {
            self.stats = UpdateStats::default();
            self.recomputations += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_trigger_fires_every_n() {
        let mut m = ChangeMonitor::new(RecomputeTrigger::UpdateCount(3));
        assert!(!m.record_update(10, 0.0));
        assert!(!m.record_update(10, 0.0));
        assert!(m.record_update(10, 0.0));
        // accumulator reset
        assert!(!m.record_update(10, 0.0));
        assert_eq!(m.recomputations, 1);
        assert_eq!(m.pending().count, 1);
    }

    #[test]
    fn bytes_trigger_fires_on_volume() {
        let mut m = ChangeMonitor::new(RecomputeTrigger::UpdateBytes(100));
        assert!(!m.record_update(60, 0.0));
        assert!(m.record_update(60, 0.0)); // 120 >= 100
        assert!(!m.record_update(99, 0.0));
        assert!(m.record_update(1, 0.0));
        assert_eq!(m.recomputations, 2);
    }

    #[test]
    fn app_specific_trigger_uses_magnitude() {
        let trigger = RecomputeTrigger::AppSpecific(Box::new(|s: &UpdateStats| s.magnitude > 1.0));
        let mut m = ChangeMonitor::new(trigger);
        assert!(!m.record_update(1_000_000, 0.5)); // big but low-drift
        assert!(m.record_update(1, 0.6)); // cumulative drift 1.1
    }

    #[test]
    fn one_update_can_fire_immediately() {
        let mut m = ChangeMonitor::new(RecomputeTrigger::UpdateCount(1));
        assert!(m.record_update(0, 0.0));
        assert!(m.record_update(0, 0.0));
        assert_eq!(m.recomputations, 2);
    }

    #[test]
    fn debug_impls() {
        let m = ChangeMonitor::new(RecomputeTrigger::UpdateBytes(5));
        assert!(format!("{m:?}").contains("UpdateBytes"));
        let t = RecomputeTrigger::AppSpecific(Box::new(|_| false));
        assert!(format!("{t:?}").contains("AppSpecific"));
    }
}
