//! Selective algorithm testing — the paper's title in action: the space of
//! (pipeline × parameters) calculations is "generally too large to
//! exhaustively determine" (§III), so the evaluator screens all paths on a
//! small subsample and successively halves the field, spending the full
//! dataset only on finalists. Nested cross-validation then gives an honest
//! estimate for the winner.
//!
//! Run with: `cargo run --release --example selective_search`

use coda::data::{synth, CvStrategy, Metric, NoOp};
use coda::graph::{Evaluator, ParamGrid, TegBuilder};
use coda::ml::{
    DecisionTreeRegressor, GradientBoostingRegressor, KnnRegressor, LinearRegression, Pca,
    RandomForestRegressor, RidgeRegression, ScoreFunction, SelectKBest, StandardScaler,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = synth::friedman1(1_000, 10, 0.8, 7);
    let graph = TegBuilder::new()
        .add_feature_scalers(vec![Box::new(StandardScaler::new()), Box::new(NoOp::new())])
        .add_feature_selectors(vec![
            Box::new(Pca::new(5)),
            Box::new(SelectKBest::new(5, ScoreFunction::MutualInfo)),
            Box::new(NoOp::new()),
        ])
        .add_models(vec![
            Box::new(LinearRegression::new()),
            Box::new(RidgeRegression::new(1.0)),
            Box::new(KnnRegressor::new(5)),
            Box::new(DecisionTreeRegressor::new()),
            Box::new(RandomForestRegressor::new(15)),
            Box::new(GradientBoostingRegressor::new(40, 0.1)),
        ])
        .create_graph()?;
    let n_paths = graph.enumerate_pipelines()?.len();
    println!("search space: {n_paths} pipelines over {} samples", dataset.n_samples());

    let evaluator = Evaluator::new(CvStrategy::kfold(4), Metric::Rmse);

    // --- exhaustive baseline ----------------------------------------------
    let start = std::time::Instant::now();
    let exhaustive = evaluator.evaluate_graph(&graph, &dataset)?;
    let exhaustive_ms = start.elapsed().as_millis();
    let best_exhaustive = exhaustive.best().expect("paths evaluated");
    println!(
        "\nexhaustive: {} paths, {exhaustive_ms} ms — best {} (rmse {:.4})",
        exhaustive.results.len(),
        best_exhaustive.spec.steps.join(" -> "),
        best_exhaustive.mean_score
    );

    // --- selective: successive halving -------------------------------------
    let start = std::time::Instant::now();
    let halving = evaluator.successive_halving(&graph, &dataset, 100, 3)?;
    let halving_ms = start.elapsed().as_millis();
    for r in &halving.rounds {
        println!("round {}: {} survivors at {} samples", r.round, r.survivors, r.samples);
    }
    let best = halving.best().expect("finalists scored");
    println!(
        "selective: {halving_ms} ms, {} sample-evals — best {} (rmse {:.4})",
        halving.samples_spent,
        best.spec.steps.join(" -> "),
        best.mean_score
    );

    // --- honest estimate for the winner via nested CV ----------------------
    let winner = graph
        .enumerate_pipelines()?
        .into_iter()
        .find(|p| p.spec().steps == best.spec.steps)
        .expect("winner is a graph path");
    let mut grid = ParamGrid::new();
    grid.add("knn_regressor__k", vec![3usize.into(), 5usize.into(), 9usize.into()]);
    grid.add("select_k_best__k", vec![3usize.into(), 5usize.into(), 8usize.into()]);
    let nested = evaluator.nested_evaluate(&winner, &dataset, &grid, CvStrategy::kfold(3))?;
    println!(
        "\nnested CV on the winner: outer (unbiased) rmse {:.4}, inner (selection) rmse {:.4}",
        nested.outer_mean(),
        nested.inner_mean()
    );
    if let Some(params) = nested.consensus_params() {
        println!("consensus parameters: {params:?}");
    }
    Ok(())
}
