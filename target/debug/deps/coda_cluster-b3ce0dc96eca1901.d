/root/repo/target/debug/deps/coda_cluster-b3ce0dc96eca1901.d: crates/cluster/src/lib.rs crates/cluster/src/chaos.rs crates/cluster/src/coop.rs crates/cluster/src/lifecycle.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/placement.rs crates/cluster/src/registry.rs crates/cluster/src/webservice.rs Cargo.toml

/root/repo/target/debug/deps/libcoda_cluster-b3ce0dc96eca1901.rmeta: crates/cluster/src/lib.rs crates/cluster/src/chaos.rs crates/cluster/src/coop.rs crates/cluster/src/lifecycle.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/placement.rs crates/cluster/src/registry.rs crates/cluster/src/webservice.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/chaos.rs:
crates/cluster/src/coop.rs:
crates/cluster/src/lifecycle.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/placement.rs:
crates/cluster/src/registry.rs:
crates/cluster/src/webservice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
