/root/repo/target/debug/deps/coda_templates-69470906447a7e6b.d: crates/templates/src/lib.rs crates/templates/src/anomaly.rs crates/templates/src/cohort.rs crates/templates/src/failure.rs crates/templates/src/lifetime.rs crates/templates/src/rca.rs

/root/repo/target/debug/deps/coda_templates-69470906447a7e6b: crates/templates/src/lib.rs crates/templates/src/anomaly.rs crates/templates/src/cohort.rs crates/templates/src/failure.rs crates/templates/src/lifetime.rs crates/templates/src/rca.rs

crates/templates/src/lib.rs:
crates/templates/src/anomaly.rs:
crates/templates/src/cohort.rs:
crates/templates/src/failure.rs:
crates/templates/src/lifetime.rs:
crates/templates/src/rca.rs:
