//! The serving tier's wire types: one request enum covering the existing
//! put/pull/claim/complete/trigger surface, the mirrored response enum,
//! and the typed admission-control error. A request names everything the
//! owning shard needs; nothing in here borrows, so envelopes move across
//! the mailbox channels freely.

use bytes::Bytes;
use coda_darr::{AnalyticsRecord, ComputationKey};
use coda_store::{FetchReply, PushMode};

/// One data-plane request. Object-addressed variants route by object id,
/// key-addressed variants by the DARR computation key; the router decides,
/// the shard executes.
#[derive(Debug, Clone)]
pub enum ServeRequest {
    /// Write a new version of `id` (WAL-logged at the owning shard).
    Put {
        /// Object id.
        id: String,
        /// The new full value.
        data: Bytes,
    },
    /// Version-aware fetch of `id`.
    Pull {
        /// Object id.
        id: String,
        /// The version the client already holds, if any.
        client_version: Option<u64>,
    },
    /// Lease-based subscription of `client` to `id`'s updates.
    Subscribe {
        /// Subscribing client.
        client: String,
        /// Object id.
        id: String,
        /// Push mode for updates.
        mode: PushMode,
        /// Lease duration in store-clock ticks.
        duration: u64,
    },
    /// Cancel `client`'s lease on `id`.
    Cancel {
        /// Subscribing client.
        client: String,
        /// Object id.
        id: String,
    },
    /// Try to claim `key` for `client` (cooperative dedup).
    Claim {
        /// The computation key.
        key: ComputationKey,
        /// Claiming client.
        client: String,
        /// Claim lease duration in DARR ticks.
        duration: u64,
    },
    /// Publish `client`'s finished result for `key`.
    Complete {
        /// The computation key.
        key: ComputationKey,
        /// Producing client.
        client: String,
        /// The result score.
        score: f64,
        /// Per-fold scores.
        fold_scores: Vec<f64>,
        /// Human-readable explanation.
        explanation: String,
    },
    /// Read the stored result for `key`, if any.
    Lookup {
        /// The computation key.
        key: ComputationKey,
    },
}

impl ServeRequest {
    /// The routing key: the object id for store ops, the stable
    /// `dataset|pipeline` string for DARR ops — what [`crate::ShardRouter`]
    /// hashes.
    pub fn routing_key(&self) -> String {
        match self {
            ServeRequest::Put { id, .. }
            | ServeRequest::Pull { id, .. }
            | ServeRequest::Subscribe { id, .. }
            | ServeRequest::Cancel { id, .. } => id.clone(),
            ServeRequest::Claim { key, .. }
            | ServeRequest::Complete { key, .. }
            | ServeRequest::Lookup { key } => format!("{}|{}", key.dataset_id, key.pipeline),
        }
    }
}

/// The response mirror of [`ServeRequest`].
#[derive(Debug, Clone)]
pub enum ServeResponse {
    /// A put landed: the new version, how many lease pushes it generated,
    /// and whether the object's recompute trigger fired.
    Put {
        /// New version of the object.
        version: u64,
        /// Lease pushes the put generated.
        pushes: usize,
        /// Whether the object's [`coda_store::ChangeMonitor`] fired.
        trigger_fired: bool,
    },
    /// A pull answered (None = unknown object).
    Pull(Option<FetchReply>),
    /// Subscribe / cancel acknowledged; `true` when the op changed state.
    Lease(bool),
    /// A claim answered.
    Claim(coda_darr::ClaimOutcome),
    /// A completion stored; the canonical record.
    Complete(AnalyticsRecord),
    /// A lookup answered (None = not computed yet).
    Lookup(Option<AnalyticsRecord>),
}

/// Why the tier refused or failed a request — the typed alternative to
/// panicking or silently dropping under load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control shed the request: shard `shard`'s bounded mailbox
    /// was full. The caller may back off and retry; the shed is counted
    /// under `coda_serve_shed_total`.
    Overloaded {
        /// The shard whose queue was full.
        shard: usize,
    },
    /// The shard's worker is gone (the tier is shutting down).
    ShardUnavailable {
        /// The unreachable shard.
        shard: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { shard } => {
                write!(f, "shard {shard} overloaded: bounded queue full, request shed")
            }
            ServeError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} unavailable: worker stopped")
            }
        }
    }
}

impl std::error::Error for ServeError {}
