//! The D9 incident-diagnosis driver: breach-triggered root-cause
//! attribution scored against injected ground truth. Four scenarios share
//! one seed:
//!
//! - `clean` / `fault` — the D8 ops pair, replayed through
//!   [`coda_obs::diagnose`]: clean must yield an empty incident list,
//!   fault's incidents must name the injected fault families among their
//!   suspects.
//! - `hot-shard` — every fault-window burst routes to shard 0 (keys picked
//!   so FNV-1a agrees under 1, 2 and 8 shards) and queues behind a held
//!   worker, so the per-shard queue-wait split — not the aggregate, not
//!   the shed counter — must come back as the top suspect.
//! - `slow-operator` — a [`ClockBurnScaler`] pipeline stage burns manual
//!   clock during fault windows, so the spec-labeled `eval.path` series
//!   spikes and diagnosis must blame that exact operator
//!   (`eval.path[slow_scale>ridge_regression]`).
//!
//! Everything runs on a [`ManualClock`] with closed-loop submission, so
//! `DIAG_REPORT.json` renders byte-identically across same-seed runs *and*
//! across shard counts: untouched shards contribute all-zero series that
//! never clear the z-threshold, and every SLO reads aggregate series.

use std::sync::Arc;

use bytes::Bytes;
use coda_core::{Evaluator, TegBuilder};
use coda_data::{synth, ComponentError, CvStrategy, Dataset, Metric, Transformer};
use coda_ml::RidgeRegression;
use coda_obs::{
    diagnose, labeled_name, BurnWindows, DiagReport, DiagnoseConfig, FlightConfig, FlightRecorder,
    ManualClock, Obs, SloEngine, SloSignal, SloSpec,
};
use coda_serve::{ServeConfig, ServeRequest, ServeTier, SERVE_LATENCY_BOUNDS};
use coda_store::shard_of;
use serde::impl_serde_struct;

use crate::ops::{run_ops_scenario_full, ScenarioArtifacts};

/// Level-0 flight window length, milliseconds of manual-clock time.
const WINDOW_MS: f64 = 100.0;
/// Windows driven per targeted scenario.
const N_WINDOWS: u64 = 20;
/// Fault phase: windows `[FAULT_FROM, FAULT_TO)` inject the fault.
const FAULT_FROM: u64 = 8;
const FAULT_TO: u64 = 16;
/// Exemplars retained per metric.
const EXEMPLAR_CAP: usize = 8;
/// Manual-clock milliseconds queued requests wait behind the held shard.
const HOT_WAIT_MS: f64 = 60.0;
/// Per-call clock burn of the slow-operator stage, healthy vs faulted.
const BURN_HEALTHY_MS: f64 = 0.5;
const BURN_FAULT_MS: f64 = 8.0;

/// A pass-through feature scaler that advances the shared [`ManualClock`]
/// on every `fit`/`transform` call — the deterministic stand-in for an
/// operator whose implementation got slower. The data is untouched, so
/// evaluation results stay bit-identical to a run without the stage.
pub struct ClockBurnScaler {
    clock: Arc<ManualClock>,
    burn_ms: f64,
}

impl ClockBurnScaler {
    /// A scaler burning `burn_ms` of manual-clock time per call.
    pub fn new(clock: Arc<ManualClock>, burn_ms: f64) -> Self {
        ClockBurnScaler { clock, burn_ms }
    }

    fn burn(&self) {
        self.clock.advance_ms(self.burn_ms);
    }
}

impl std::fmt::Debug for ClockBurnScaler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClockBurnScaler").field("burn_ms", &self.burn_ms).finish()
    }
}

impl Transformer for ClockBurnScaler {
    fn name(&self) -> &str {
        "slow_scale"
    }

    fn fit(&mut self, _data: &Dataset) -> Result<(), ComponentError> {
        self.burn();
        Ok(())
    }

    fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        self.burn();
        Ok(data.clone())
    }

    fn clone_box(&self) -> Box<dyn Transformer> {
        Box::new(ClockBurnScaler { clock: Arc::clone(&self.clock), burn_ms: self.burn_ms })
    }
}

/// How a scenario's incidents are scored against its injected labels.
enum Scoring {
    /// No fault injected: attribution holds iff no incident was raised.
    Clean,
    /// Every incident's top-ranked suspect must equal the injected label.
    TopMatches,
    /// Every injected label must appear among some incident's suspects.
    Membership,
}

/// One diagnosed scenario of the D9 run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagScenario {
    /// Scenario name.
    pub name: String,
    /// Ground-truth fault labels injected by the driver (empty = clean).
    pub injected: Vec<String>,
    /// Incidents the diagnosis engine raised.
    pub incidents: u64,
    /// Each incident's top-ranked suspect, incident order.
    pub top_suspects: Vec<String>,
    /// `1` when the report attributes the run to the injected ground
    /// truth under the scenario's scoring rule, else `0`.
    pub attributed: u64,
    /// The full diagnosis report.
    pub report: DiagReport,
}

impl_serde_struct!(DiagScenario { name, injected, incidents, top_suspects, attributed, report });

/// The `DIAG_REPORT.json` schema: all four scenarios of one seeded D9
/// run. Deliberately omits the shard count — the artifact must render
/// byte-identically under 1, 2 and 8 serving shards.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagBundle {
    /// Schema tag (`coda-diag-bundle-v1`).
    pub schema: String,
    /// Workload seed.
    pub seed: u64,
    /// Level-0 window length, milliseconds.
    pub window_ms: f64,
    /// The D8 clean run (must diagnose to zero incidents).
    pub clean: DiagScenario,
    /// The D8 fault run (suspects must cover the injected families).
    pub fault: DiagScenario,
    /// The single-hot-shard overload.
    pub hot_shard: DiagScenario,
    /// The single-slow-operator regression.
    pub slow_operator: DiagScenario,
}

impl_serde_struct!(DiagBundle { schema, seed, window_ms, clean, fault, hot_shard, slow_operator });

impl DiagBundle {
    /// Renders the stable JSON artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }

    /// Parses a rendered bundle back.
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error message on malformed input.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let value = serde_json::parse(s).map_err(|e| e.to_string())?;
        serde::Deserialize::from_value(&value)
    }

    /// True when every scenario attributed correctly.
    pub fn all_attributed(&self) -> bool {
        [&self.clean, &self.fault, &self.hot_shard, &self.slow_operator]
            .iter()
            .all(|s| s.attributed == 1)
    }
}

/// The D9 SLO set: the D8 four plus the two signals the new scenarios
/// stress — per-request queue wait and per-path evaluation latency.
fn diag_slo_specs() -> Vec<SloSpec> {
    let mut specs = crate::ops::slo_specs();
    specs.push(SloSpec {
        name: "serve-queue-wait".to_string(),
        signal: SloSignal::LatencyAbove {
            histogram: "coda_serve_queue_wait_ms".to_string(),
            threshold_ms: 50.0,
        },
        objective: 0.01,
    });
    specs.push(SloSpec {
        name: "eval-path-latency".to_string(),
        signal: SloSignal::LatencyAbove {
            histogram: "coda_core_eval_path_ms".to_string(),
            threshold_ms: 25.0,
        },
        objective: 0.05,
    });
    specs
}

/// Object ids that FNV-1a homes on shard 0 under **eight** shards — and
/// therefore (hash ≡ 0 mod 8 ⇒ hash ≡ 0 mod 2 and mod 1) on shard 0
/// under two and one as well, which is what keeps the hot-shard report
/// shard-count-invariant.
fn hot_shard_keys(n: usize) -> Vec<String> {
    let mut keys = Vec::with_capacity(n);
    let mut i = 0u64;
    while keys.len() < n {
        let k = format!("hot-{i}");
        if shard_of(&k, 8) == 0 {
            keys.push(k);
        }
        i += 1;
    }
    keys
}

fn put(id: &str, fill: u8) -> ServeRequest {
    ServeRequest::Put { id: id.to_string(), data: Bytes::from(vec![fill; 64]) }
}

/// Scores `report` against `injected` and assembles the scenario record.
fn score_scenario(
    name: &str,
    injected: Vec<String>,
    report: DiagReport,
    scoring: &Scoring,
) -> DiagScenario {
    let top_suspects: Vec<String> =
        report.incidents.iter().map(|i| i.top_suspect.clone()).collect();
    let attributed = match scoring {
        Scoring::Clean => report.incidents.is_empty(),
        Scoring::TopMatches => {
            !report.incidents.is_empty() && top_suspects.iter().all(|t| injected.contains(t))
        }
        Scoring::Membership => {
            !report.incidents.is_empty()
                && injected.iter().all(|label| {
                    report.incidents.iter().any(|inc| {
                        inc.series_suspects.iter().any(|s| s.series.starts_with(label.as_str()))
                            || inc.operator_suspects.iter().any(|o| o.operator == *label)
                    })
                })
        }
    };
    DiagScenario {
        name: name.to_string(),
        injected,
        incidents: report.incidents.len() as u64,
        top_suspects,
        attributed: u64::from(attributed),
        report,
    }
}

/// Runs [`diagnose`] over a scenario's raw artifacts.
fn diagnose_artifacts(artifacts: &ScenarioArtifacts) -> DiagReport {
    diagnose(
        &DiagnoseConfig::default(),
        &artifacts.recorder,
        &artifacts.slo,
        &artifacts.exemplars,
        &artifacts.forest,
    )
}

/// The shared window loop of the two targeted scenarios. `hot` injects
/// the shard-0 queue buildup, `slow` arms the clock-burning scaler;
/// exactly one is set per call.
fn run_targeted(seed: u64, n_shards: usize, hot: bool) -> ScenarioArtifacts {
    let clock = Arc::new(ManualClock::new());
    let obs = Obs::with_clock(clock.clone());
    obs.exemplars().enable(0.0, EXEMPLAR_CAP);
    let mut recorder =
        FlightRecorder::new(FlightConfig { window_ms: WINDOW_MS, ..FlightConfig::default() });
    let mut engine = SloEngine::new(diag_slo_specs(), BurnWindows::default());

    let serve_cfg = ServeConfig { n_shards, queue_capacity: 4, ..ServeConfig::default() };
    let tier = ServeTier::start_obs(&serve_cfg, Some(&obs));
    // every id homes on shard 0 under 1, 2 and 8 shards, so each shard
    // core sees an identical op stream (and hence identical store-side
    // counter cadence) at any shard count — the report stays byte-stable
    let keys = hot_shard_keys(18);
    let (hot_keys, bg_keys) = keys.split_at(12);

    let ds = synth::linear_regression(12, 6, 0.01, seed);
    let mut rng = seed ^ 0xd9;

    obs.sync_manual_ms(0.0);
    recorder.tick(0.0, &obs.registry().snapshot());

    for t in 0..N_WINDOWS {
        let now = t as f64 * WINDOW_MS;
        obs.sync_manual_ms(now);
        let in_fault = (FAULT_FROM..FAULT_TO).contains(&t);

        // --- serving traffic: steady closed loop, plus the hot burst ---
        for key in bg_keys {
            let _ = tier.submit(put(key, t as u8));
        }
        if hot && in_fault {
            // 12 requests pile onto held shard 0: its 4-deep mailbox
            // admits 4, sheds 8; the clock moves HOT_WAIT_MS before the
            // hold lifts, so every admitted request waited exactly that
            let hold = tier.hold_shard(0);
            let mut pendings = Vec::new();
            for key in hot_keys {
                if let Ok(p) = tier.submit_nowait(put(key, t as u8)) {
                    pendings.push(p);
                }
            }
            obs.sync_manual_ms(now + HOT_WAIT_MS);
            hold.release();
            for p in pendings {
                let _ = p.wait();
            }
        }

        // --- request latencies (seeded closed-form draws, always healthy) ---
        let latency = obs.registry().histogram("coda_serve_latency_ms", SERVE_LATENCY_BOUNDS);
        for _ in 0..20 {
            latency.observe(uniform(&mut rng, 1.0, 30.0));
        }

        // --- model evaluation: ridge alone, plus the burn-scaler path ---
        let burn = if !hot && in_fault { BURN_FAULT_MS } else { BURN_HEALTHY_MS };
        let builder = TegBuilder::new()
            .add_feature_scalers(vec![Box::new(ClockBurnScaler::new(clock.clone(), burn))])
            .add_models(vec![Box::new(RidgeRegression::new(1.0))]);
        if let Ok(graph) = builder.create_graph() {
            let _ = Evaluator::new(CvStrategy::kfold(2), Metric::Rmse)
                .with_obs(obs.clone())
                .evaluate_graph(&graph, &ds);
        }

        // --- window boundary: record + evaluate burn rates ---
        let end = (t + 1) as f64 * WINDOW_MS;
        obs.sync_manual_ms(end);
        recorder.tick(end, &obs.registry().snapshot());
        engine.step(&recorder, Some(obs.tracer().as_ref()));
    }

    let _ = tier.finish();
    let forest = obs.forest();
    ScenarioArtifacts {
        recorder,
        slo: engine.report(),
        exemplars: obs.exemplars().snapshot(),
        forest,
    }
}

/// splitmix64-backed uniform draw, matching the D8 driver.
fn uniform(state: &mut u64, lo: f64, hi: f64) -> f64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    *state = z ^ (z >> 31);
    lo + (hi - lo) * ((*state >> 11) as f64 / (1u64 << 53) as f64)
}

/// Runs all four scenarios of the D9 diagnosis drill for one seed and
/// shard count, scoring each report against its injected ground truth.
pub fn run_diag_report(seed: u64, n_shards: usize) -> DiagBundle {
    let (_, clean_art) = run_ops_scenario_full(seed, false);
    let (_, fault_art) = run_ops_scenario_full(seed, true);
    let hot_art = run_targeted(seed, n_shards, true);
    let slow_art = run_targeted(seed, n_shards, false);

    let clean =
        score_scenario("clean", Vec::new(), diagnose_artifacts(&clean_art), &Scoring::Clean);
    let fault = score_scenario(
        "fault",
        vec![
            "coda_serve_shed_total".to_string(),
            "coda_serve_latency_ms".to_string(),
            "coda_core_eval_path_errors".to_string(),
            "coda_cluster_failovers_total".to_string(),
        ],
        diagnose_artifacts(&fault_art),
        &Scoring::Membership,
    );
    let hot_shard = score_scenario(
        "hot-shard",
        vec![labeled_name("coda_serve_queue_wait_ms", "shard", "shard-0")],
        diagnose_artifacts(&hot_art),
        &Scoring::TopMatches,
    );
    let slow_operator = score_scenario(
        "slow-operator",
        vec!["eval.path[slow_scale>ridge_regression]".to_string()],
        diagnose_artifacts(&slow_art),
        &Scoring::TopMatches,
    );

    DiagBundle {
        schema: "coda-diag-bundle-v1".to_string(),
        seed,
        window_ms: WINDOW_MS,
        clean,
        fault,
        hot_shard,
        slow_operator,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_obs::Clock;

    #[test]
    fn hot_keys_agree_across_shard_counts() {
        for k in hot_shard_keys(12) {
            assert_eq!(shard_of(&k, 8), 0);
            assert_eq!(shard_of(&k, 2), 0);
            assert_eq!(shard_of(&k, 1), 0);
        }
    }

    #[test]
    fn clock_burn_scaler_is_a_pure_clock_sink() {
        let clock = Arc::new(ManualClock::new());
        let mut s = ClockBurnScaler::new(clock.clone(), 5.0);
        let ds = synth::linear_regression(8, 2, 0.01, 1);
        s.fit(&ds).unwrap();
        let out = s.transform(&ds).unwrap();
        assert_eq!(out.n_samples(), ds.n_samples());
        assert_eq!(clock.now_ms(), 10.0, "fit + transform burn once each");
        let clone = s.clone_box();
        assert_eq!(clone.name(), "slow_scale");
    }
}
