//! Delta encoding between object versions (paper §III): `d(o1, e, k)` is a
//! compact edit script turning version `e` into version `k`, sent instead of
//! the full object when it is considerably smaller.
//!
//! The codec is rsync-style: the base version is indexed by fixed-size block
//! hashes; the target is scanned emitting `Copy { base_offset, len }` ops for
//! block runs found in the base and `Insert(bytes)` ops for novel bytes.

use bytes::Bytes;
use std::collections::HashMap;
use std::fmt;

/// Block size used for base indexing.
const BLOCK: usize = 64;

/// Error produced by delta application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// A copy op references bytes outside the base version.
    CopyOutOfRange {
        /// Base offset requested.
        offset: usize,
        /// Length requested.
        len: usize,
        /// Base size available.
        base_len: usize,
    },
    /// The reconstructed size disagrees with the recorded target size.
    SizeMismatch {
        /// Expected target size.
        expected: usize,
        /// Actual reconstructed size.
        actual: usize,
    },
    /// The reconstructed bytes hash differently from the recorded target
    /// checksum — the script or a literal was corrupted in flight.
    ChecksumMismatch {
        /// Checksum recorded at encode time.
        expected: u64,
        /// Checksum of the reconstructed bytes.
        actual: u64,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::CopyOutOfRange { offset, len, base_len } => {
                write!(f, "copy op [{offset}, {offset}+{len}) exceeds base length {base_len}")
            }
            DeltaError::SizeMismatch { expected, actual } => {
                write!(f, "reconstructed {actual} bytes, expected {expected}")
            }
            DeltaError::ChecksumMismatch { expected, actual } => {
                write!(f, "reconstructed checksum {actual:#018x}, expected {expected:#018x}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// One edit operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// Copy `len` bytes from `base_offset` in the base version.
    Copy {
        /// Offset into the base version.
        base_offset: usize,
        /// Byte count.
        len: usize,
    },
    /// Insert literal bytes.
    Insert(Bytes),
}

/// An edit script from one version to another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// Version the delta applies on top of.
    pub base_version: u64,
    /// Version the delta produces.
    pub target_version: u64,
    /// Size of the target, for integrity checking.
    pub target_len: usize,
    /// Content hash of the target, for end-to-end integrity checking.
    pub target_checksum: u64,
    /// The edit script.
    pub ops: Vec<DeltaOp>,
}

impl Delta {
    /// Wire size: op headers (9 bytes each — 1 tag + 8 length/offset words
    /// in the compact encoding we model) plus literal bytes.
    pub fn wire_size(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Copy { .. } => 9,
                DeltaOp::Insert(b) => 9 + b.len(),
            })
            .sum::<usize>()
            + 32 // versions + target_len + target_checksum header
    }

    /// Number of literal (inserted) bytes.
    pub fn literal_bytes(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Insert(b) => b.len(),
                _ => 0,
            })
            .sum()
    }
}

/// Encoder/decoder for deltas.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeltaCodec;

fn block_hash(block: &[u8]) -> u64 {
    // FNV-1a
    let mut h = 0xcbf29ce484222325u64;
    for &b in block {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Content hash (FNV-1a) used for end-to-end payload integrity: recorded at
/// encode/push time, verified after reconstruction/receipt.
pub fn content_hash(data: &[u8]) -> u64 {
    block_hash(data)
}

impl DeltaCodec {
    /// Computes the delta turning `base` into `target`.
    pub fn encode(base: &[u8], target: &[u8], base_version: u64, target_version: u64) -> Delta {
        // index base blocks by hash
        let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut off = 0;
        while off + BLOCK <= base.len() {
            index.entry(block_hash(&base[off..off + BLOCK])).or_default().push(off);
            off += BLOCK;
        }
        let mut ops: Vec<DeltaOp> = Vec::new();
        let mut pending: Vec<u8> = Vec::new();
        let mut i = 0;
        while i < target.len() {
            let mut matched = false;
            if i + BLOCK <= target.len() {
                let h = block_hash(&target[i..i + BLOCK]);
                if let Some(candidates) = index.get(&h) {
                    for &cand in candidates {
                        if base[cand..cand + BLOCK] == target[i..i + BLOCK] {
                            // extend the match forward
                            let mut len = BLOCK;
                            while i + len < target.len()
                                && cand + len < base.len()
                                && base[cand + len] == target[i + len]
                            {
                                len += 1;
                            }
                            if !pending.is_empty() {
                                ops.push(DeltaOp::Insert(Bytes::from(std::mem::take(
                                    &mut pending,
                                ))));
                            }
                            // merge with a preceding contiguous copy
                            if let Some(DeltaOp::Copy { base_offset, len: plen }) = ops.last_mut() {
                                if *base_offset + *plen == cand {
                                    *plen += len;
                                    i += len;
                                    matched = true;
                                    break;
                                }
                            }
                            ops.push(DeltaOp::Copy { base_offset: cand, len });
                            i += len;
                            matched = true;
                            break;
                        }
                    }
                }
            }
            if !matched {
                pending.push(target[i]);
                i += 1;
            }
        }
        if !pending.is_empty() {
            ops.push(DeltaOp::Insert(Bytes::from(pending)));
        }
        Delta {
            base_version,
            target_version,
            target_len: target.len(),
            target_checksum: content_hash(target),
            ops,
        }
    }

    /// Applies `delta` to `base`, reconstructing the target bytes.
    ///
    /// # Errors
    ///
    /// [`DeltaError::CopyOutOfRange`] for corrupt scripts;
    /// [`DeltaError::SizeMismatch`] when the output size disagrees;
    /// [`DeltaError::ChecksumMismatch`] when the output hashes differently
    /// from the checksum recorded at encode time.
    pub fn apply(base: &[u8], delta: &Delta) -> Result<Bytes, DeltaError> {
        let mut out = Vec::with_capacity(delta.target_len);
        for op in &delta.ops {
            match op {
                DeltaOp::Copy { base_offset, len } => {
                    if base_offset + len > base.len() {
                        return Err(DeltaError::CopyOutOfRange {
                            offset: *base_offset,
                            len: *len,
                            base_len: base.len(),
                        });
                    }
                    out.extend_from_slice(&base[*base_offset..base_offset + len]);
                }
                DeltaOp::Insert(b) => out.extend_from_slice(b),
            }
        }
        if out.len() != delta.target_len {
            return Err(DeltaError::SizeMismatch { expected: delta.target_len, actual: out.len() });
        }
        let actual = content_hash(&out);
        if actual != delta.target_checksum {
            return Err(DeltaError::ChecksumMismatch { expected: delta.target_checksum, actual });
        }
        Ok(Bytes::from(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(base: &[u8], target: &[u8]) -> Delta {
        let d = DeltaCodec::encode(base, target, 1, 2);
        let rebuilt = DeltaCodec::apply(base, &d).unwrap();
        assert_eq!(&rebuilt[..], target, "round-trip must reconstruct the target");
        d
    }

    #[test]
    fn identical_versions_tiny_delta() {
        let data = vec![7u8; 4096];
        let d = roundtrip(&data, &data);
        assert!(d.wire_size() < 64, "wire size {}", d.wire_size());
        assert_eq!(d.literal_bytes(), 0);
    }

    #[test]
    fn small_edit_small_delta() {
        let base: Vec<u8> = (0..8192).map(|i| (i % 251) as u8).collect();
        let mut target = base.clone();
        target[4000] ^= 0xFF;
        let d = roundtrip(&base, &target);
        assert!(
            d.wire_size() < base.len() / 10,
            "delta {} should be far below full {}",
            d.wire_size(),
            base.len()
        );
    }

    #[test]
    fn append_only_update() {
        let base: Vec<u8> = (0..4096).map(|i| (i % 199) as u8).collect();
        let mut target = base.clone();
        target.extend_from_slice(&[1, 2, 3, 4, 5]);
        let d = roundtrip(&base, &target);
        assert!(d.literal_bytes() <= 5 + BLOCK, "literals {}", d.literal_bytes());
    }

    #[test]
    fn insertion_in_middle_resynchronizes() {
        let base: Vec<u8> = (0..8192).map(|i| (i * 7 % 256) as u8).collect();
        let mut target = base[..2000].to_vec();
        target.extend_from_slice(b"NEW DATA IN THE MIDDLE");
        target.extend_from_slice(&base[2000..]);
        let d = roundtrip(&base, &target);
        // block hashing must resynchronize after the insert: literals stay
        // bounded by the insert plus two blocks of slack
        assert!(d.literal_bytes() < 22 + 2 * BLOCK, "literals {}", d.literal_bytes());
    }

    #[test]
    fn completely_different_is_all_literal() {
        let base = vec![0u8; 1000];
        let target = vec![255u8; 1000];
        let d = roundtrip(&base, &target);
        assert_eq!(d.literal_bytes(), 1000);
        assert!(d.wire_size() > 1000);
    }

    #[test]
    fn empty_base_and_empty_target() {
        let d = roundtrip(&[], b"hello world");
        assert_eq!(d.literal_bytes(), 11);
        roundtrip(b"hello world", &[]);
    }

    #[test]
    fn shuffled_blocks_still_copy() {
        // target reorders two halves of the base: both halves should copy
        let base: Vec<u8> = (0..4096).map(|i| (i % 241) as u8).collect();
        let mut target = base[2048..].to_vec();
        target.extend_from_slice(&base[..2048]);
        let d = roundtrip(&base, &target);
        assert!(d.literal_bytes() < 2 * BLOCK, "literals {}", d.literal_bytes());
    }

    #[test]
    fn corrupt_copy_rejected() {
        let delta = Delta {
            base_version: 1,
            target_version: 2,
            target_len: 10,
            target_checksum: 0,
            ops: vec![DeltaOp::Copy { base_offset: 100, len: 10 }],
        };
        assert!(matches!(
            DeltaCodec::apply(b"short", &delta),
            Err(DeltaError::CopyOutOfRange { .. })
        ));
    }

    #[test]
    fn size_mismatch_rejected() {
        let delta = Delta {
            base_version: 1,
            target_version: 2,
            target_len: 99,
            target_checksum: 0,
            ops: vec![DeltaOp::Insert(Bytes::from_static(b"abc"))],
        };
        assert!(matches!(DeltaCodec::apply(b"", &delta), Err(DeltaError::SizeMismatch { .. })));
    }

    #[test]
    fn corrupted_literal_rejected_by_checksum() {
        let base: Vec<u8> = (0..1024).map(|i| (i % 251) as u8).collect();
        let mut target = base.clone();
        target[512] ^= 0x01;
        let mut d = DeltaCodec::encode(&base, &target, 1, 2);
        // flip one bit in a literal in flight: size still matches, so only
        // the checksum catches it
        for op in &mut d.ops {
            if let DeltaOp::Insert(b) = op {
                let mut raw = b.to_vec();
                raw[0] ^= 0x80;
                *b = Bytes::from(raw);
                break;
            }
        }
        assert!(matches!(DeltaCodec::apply(&base, &d), Err(DeltaError::ChecksumMismatch { .. })));
    }

    #[test]
    fn wire_size_accounts_headers_and_literals() {
        let d = Delta {
            base_version: 1,
            target_version: 2,
            target_len: 8,
            target_checksum: 0,
            ops: vec![
                DeltaOp::Copy { base_offset: 0, len: 5 },
                DeltaOp::Insert(Bytes::from_static(b"abc")),
            ],
        };
        assert_eq!(d.wire_size(), 9 + (9 + 3) + 32);
    }
}
