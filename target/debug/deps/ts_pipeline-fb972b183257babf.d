/root/repo/target/debug/deps/ts_pipeline-fb972b183257babf.d: crates/bench/benches/ts_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libts_pipeline-fb972b183257babf.rmeta: crates/bench/benches/ts_pipeline.rs Cargo.toml

crates/bench/benches/ts_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
