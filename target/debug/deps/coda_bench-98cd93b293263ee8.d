/root/repo/target/debug/deps/coda_bench-98cd93b293263ee8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/coda_bench-98cd93b293263ee8: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
