//! The time-series data-preprocessing transformers of Figs. 7–10.
//!
//! Each transformer consumes a series-encoded dataset (features = `L x v`
//! series matrix, target = the forecast variable's unscaled series) and
//! emits a supervised dataset whose rows are model inputs and whose target
//! holds the per-window labels (the value `horizon` steps after each
//! window).
//!
//! | Transformer | Rows | Columns | Consumer (Fig. 11) |
//! |---|---|---|---|
//! | [`CascadedWindows`] | `L − p − h + 1` | `p · v` (time-major) | Temporal DNNs |
//! | [`FlatWindowing`] | `L − p − h + 1` | `p · v` (flattened) | Standard DNNs |
//! | [`TsAsIid`] | `L − h` | `v` | Standard DNNs |
//! | [`TsAsIs`] | `L − p − h + 1` | `p` (target lags) | Statistical models |
//!
//! `CascadedWindows` and `FlatWindowing` produce numerically identical
//! matrices in our dense encoding — the paper's distinction (Figs. 7 vs 8)
//! is whether the downstream estimator *interprets* the columns as a
//! `(p, v)` temporal grid (LSTM/CNN) or as an unordered feature bag (DNN).

use coda_data::{BoxedTransformer, ComponentError, Dataset, ParamValue, Transformer};
use coda_linalg::Matrix;

/// History/horizon configuration shared by the windowing transformers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// History window length `p`.
    pub history: usize,
    /// Prediction horizon: the label is the target value `horizon` steps
    /// after the window's end (1 = next step).
    pub horizon: usize,
}

impl WindowConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if `history == 0` or `horizon == 0`.
    pub fn new(history: usize, horizon: usize) -> Self {
        assert!(history > 0 && horizon > 0, "history and horizon must be positive");
        WindowConfig { history, horizon }
    }
}

fn series_parts(data: &Dataset) -> Result<(&Matrix, &[f64]), ComponentError> {
    let target = data.target().ok_or_else(|| {
        ComponentError::InvalidInput(
            "series dataset must carry the forecast variable as target".to_string(),
        )
    })?;
    Ok((data.features(), target))
}

fn set_param_common(
    cfg: &mut WindowConfig,
    component: &str,
    param: &str,
    value: ParamValue,
) -> Result<(), ComponentError> {
    let pos = |v: &ParamValue| v.as_usize().filter(|&x| x > 0);
    match param {
        "history" | "p" => {
            cfg.history = pos(&value).ok_or_else(|| ComponentError::InvalidParam {
                component: component.to_string(),
                param: param.to_string(),
                reason: "must be a positive integer".to_string(),
            })?;
            Ok(())
        }
        "horizon" => {
            cfg.horizon = pos(&value).ok_or_else(|| ComponentError::InvalidParam {
                component: component.to_string(),
                param: param.to_string(),
                reason: "must be a positive integer".to_string(),
            })?;
            Ok(())
        }
        _ => Err(ComponentError::UnknownParam {
            component: component.to_string(),
            param: param.to_string(),
        }),
    }
}

/// Builds `(windows, labels)` over all variables, time-major flattening.
fn window_all_vars(
    x: &Matrix,
    y: &[f64],
    cfg: WindowConfig,
) -> Result<(Matrix, Vec<f64>), ComponentError> {
    let l = x.rows();
    let v = x.cols();
    let p = cfg.history;
    let h = cfg.horizon;
    if l < p + h {
        return Err(ComponentError::InvalidInput(format!(
            "series of length {l} too short for history {p} + horizon {h}"
        )));
    }
    let n_windows = l - p - h + 1;
    let mut out = Matrix::zeros(n_windows, p * v);
    let mut labels = Vec::with_capacity(n_windows);
    for w in 0..n_windows {
        let row = out.row_mut(w);
        for t in 0..p {
            let src = x.row(w + t);
            row[t * v..(t + 1) * v].copy_from_slice(src);
        }
        labels.push(y[w + p + h - 1]);
    }
    Ok((out, labels))
}

macro_rules! window_transformer {
    ($name:ident, $display:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            cfg: WindowConfig,
            fitted: bool,
        }

        impl $name {
            /// Creates the transformer.
            pub fn new(cfg: WindowConfig) -> Self {
                $name { cfg, fitted: false }
            }

            /// The window configuration.
            pub fn config(&self) -> WindowConfig {
                self.cfg
            }
        }

        impl Transformer for $name {
            fn name(&self) -> &str {
                $display
            }

            fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
                set_param_common(&mut self.cfg, $display, param, value)
            }

            fn fit(&mut self, _data: &Dataset) -> Result<(), ComponentError> {
                self.fitted = true;
                Ok(())
            }

            fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
                if !self.fitted {
                    return Err(ComponentError::NotFitted($display.to_string()));
                }
                self.windowize(data)
            }

            fn clone_box(&self) -> BoxedTransformer {
                Box::new($name::new(self.cfg))
            }
        }
    };
}

window_transformer!(
    CascadedWindows,
    "cascaded_windows",
    "Cascaded windows (Fig. 7): `L − p − h + 1` overlapping `p x v` windows,\n\
     flattened time-major, labels = target at window end + horizon. Feeds\n\
     the temporal DNNs (LSTM/CNN/WaveNet/SeriesNet), which interpret the\n\
     columns as a `(p, v)` temporal grid."
);

impl CascadedWindows {
    fn windowize(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        let (x, y) = series_parts(data)?;
        let (wins, labels) = window_all_vars(x, y, self.cfg)?;
        Dataset::new(wins).with_target(labels).map_err(ComponentError::Dataset)
    }
}

window_transformer!(
    FlatWindowing,
    "flat_windowing",
    "Flat windowing (Fig. 8): the cascaded windows flattened to `1 x p·v`\n\
     rows for the standard DNN. Temporal history is available but ordering\n\
     is not interpreted."
);

impl FlatWindowing {
    fn windowize(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        let (x, y) = series_parts(data)?;
        let (wins, labels) = window_all_vars(x, y, self.cfg)?;
        Dataset::new(wins).with_target(labels).map_err(ComponentError::Dataset)
    }
}

window_transformer!(
    TsAsIid,
    "ts_as_iid",
    "Time series as transactional data (Fig. 9): each timestamp is an\n\
     independent `v`-feature sample, label = target `horizon` steps later.\n\
     No recent-history information is preserved."
);

impl TsAsIid {
    fn windowize(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        let (x, y) = series_parts(data)?;
        let l = x.rows();
        let h = self.cfg.horizon;
        if l <= h {
            return Err(ComponentError::InvalidInput(format!(
                "series of length {l} too short for horizon {h}"
            )));
        }
        let n = l - h;
        let idx: Vec<usize> = (0..n).collect();
        let features = x.select_rows(&idx);
        let labels: Vec<f64> = (0..n).map(|t| y[t + h]).collect();
        Dataset::new(features).with_target(labels).map_err(ComponentError::Dataset)
    }
}

window_transformer!(
    TsAsIs,
    "ts_as_is",
    "Time series with no operation (Fig. 10): the raw (unscaled) target\n\
     series is handed to the statistical models. Encoded as `p` lag columns\n\
     of the target variable so Zero/AR models obey the estimator contract;\n\
     persistence = predict the last lag column."
);

impl TsAsIs {
    fn windowize(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        let (_, y) = series_parts(data)?;
        let target_matrix = Matrix::from_vec(y.len(), 1, y.to_vec());
        let (wins, labels) = window_all_vars(&target_matrix, y, self.cfg)?;
        Dataset::new(wins).with_target(labels).map_err(ComponentError::Dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesData;
    use coda_data::synth;

    fn mv_series(n: usize, v: usize) -> Dataset {
        SeriesData::new(synth::multivariate_sensors(n, v, 7), 0).to_dataset()
    }

    #[test]
    fn cascaded_shape_law() {
        // Fig. 7: L - p windows of shape (p x v) for horizon 1
        let ds = mv_series(50, 3);
        let mut w = CascadedWindows::new(WindowConfig::new(8, 1));
        let out = w.fit_transform(&ds).unwrap();
        assert_eq!(out.n_samples(), 50 - 8);
        assert_eq!(out.n_features(), 8 * 3);
    }

    #[test]
    fn flat_equals_cascaded_numerically() {
        // Fig. 8: flattening L-p windows of (p x v) gives (1 x pv) rows
        let ds = mv_series(40, 2);
        let cfg = WindowConfig::new(5, 1);
        let a = CascadedWindows::new(cfg).fit_transform(&ds).unwrap();
        let b = FlatWindowing::new(cfg).fit_transform(&ds).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn window_contents_and_labels() {
        let series = SeriesData::univariate((0..10).map(|i| i as f64).collect());
        let ds = series.to_dataset();
        let mut w = CascadedWindows::new(WindowConfig::new(3, 1));
        let out = w.fit_transform(&ds).unwrap();
        // first window = [0,1,2], label = 3
        assert_eq!(out.features().row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(out.target().unwrap()[0], 3.0);
        // last window = [6,7,8], label = 9
        assert_eq!(out.features().row(6), &[6.0, 7.0, 8.0]);
        assert_eq!(out.target().unwrap()[6], 9.0);
    }

    #[test]
    fn horizon_shifts_labels() {
        let series = SeriesData::univariate((0..10).map(|i| i as f64).collect());
        let ds = series.to_dataset();
        let mut w = CascadedWindows::new(WindowConfig::new(3, 2));
        let out = w.fit_transform(&ds).unwrap();
        assert_eq!(out.n_samples(), 10 - 3 - 2 + 1);
        assert_eq!(out.target().unwrap()[0], 4.0); // window [0,1,2], 2 ahead
    }

    #[test]
    fn ts_as_iid_shape_and_labels() {
        // Fig. 9: each timestamp is an independent sample
        let ds = mv_series(30, 4);
        let mut w = TsAsIid::new(WindowConfig::new(5, 1));
        let out = w.fit_transform(&ds).unwrap();
        assert_eq!(out.n_samples(), 29);
        assert_eq!(out.n_features(), 4);
        // label at row t is target at t+1
        assert_eq!(out.target().unwrap()[0], ds.target().unwrap()[1]);
    }

    #[test]
    fn ts_as_is_uses_target_lags_only() {
        // Fig. 10: statistical models see the target series only
        let ds = mv_series(30, 4);
        let mut w = TsAsIs::new(WindowConfig::new(6, 1));
        let out = w.fit_transform(&ds).unwrap();
        assert_eq!(out.n_features(), 6);
        assert_eq!(out.n_samples(), 30 - 6);
        // last lag column equals the target one step before the label
        let y = ds.target().unwrap();
        assert_eq!(out.features()[(0, 5)], y[5]);
        assert_eq!(out.target().unwrap()[0], y[6]);
    }

    #[test]
    fn too_short_series_rejected() {
        let series = SeriesData::univariate(vec![1.0, 2.0, 3.0]);
        let ds = series.to_dataset();
        let mut w = CascadedWindows::new(WindowConfig::new(5, 1));
        assert!(w.fit_transform(&ds).is_err());
        let mut iid = TsAsIid::new(WindowConfig::new(1, 5));
        assert!(iid.fit_transform(&ds).is_err());
    }

    #[test]
    fn requires_series_target() {
        let bare = Dataset::new(coda_linalg::Matrix::zeros(20, 2));
        let mut w = CascadedWindows::new(WindowConfig::new(3, 1));
        assert!(w.fit_transform(&bare).is_err());
    }

    #[test]
    fn not_fitted_and_params() {
        let ds = mv_series(30, 2);
        let w = CascadedWindows::new(WindowConfig::new(3, 1));
        assert!(w.transform(&ds).is_err());
        let mut w = FlatWindowing::new(WindowConfig::new(3, 1));
        w.set_param("history", ParamValue::from(4usize)).unwrap();
        w.set_param("horizon", ParamValue::from(2usize)).unwrap();
        assert_eq!(w.config(), WindowConfig::new(4, 2));
        assert!(w.set_param("history", ParamValue::from(0usize)).is_err());
        assert!(w.set_param("zzz", ParamValue::from(1usize)).is_err());
    }

    #[test]
    fn labels_come_from_unscaled_target() {
        // scale the features wildly; labels must still be original units
        let series = SeriesData::univariate((0..20).map(|i| i as f64).collect());
        let mut ds = series.to_dataset();
        // simulate a scaler having squashed the features
        for v in ds.features_mut().as_mut_slice() {
            *v /= 1000.0;
        }
        let mut w = CascadedWindows::new(WindowConfig::new(3, 1));
        let out = w.fit_transform(&ds).unwrap();
        assert_eq!(out.target().unwrap()[0], 3.0); // unscaled
        assert!(out.features()[(0, 2)] < 0.01); // scaled
    }
}
