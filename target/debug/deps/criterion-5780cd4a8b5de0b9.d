/root/repo/target/debug/deps/criterion-5780cd4a8b5de0b9.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-5780cd4a8b5de0b9.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
