/root/repo/target/debug/examples/selective_search-9e4cd701a6496975.d: examples/selective_search.rs

/root/repo/target/debug/examples/selective_search-9e4cd701a6496975: examples/selective_search.rs

examples/selective_search.rs:
