/root/repo/target/debug/deps/serde_json-37c439382de07482.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-37c439382de07482: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
