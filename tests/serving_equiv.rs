//! Shard-equivalence harness for the serving tier (satellite of the
//! coda-serve tentpole): an arbitrary seeded op sequence applied through
//! [`coda_serve::ServeTier`] at 1, 2 and 8 shards must leave *byte
//! identical* canonical state — objects, histories, leases, DARR records
//! and the trigger-firing set — to a hand-driven unsharded
//! `DurableStore` + `Darr` baseline, across thread interleavings.
//!
//! The baseline is deliberately not built from serve-crate internals: it
//! drives the raw store/DARR/monitor APIs directly and renders through
//! [`coda_serve::shard::export_parts`], so the tier's routing, mailboxes
//! and batching are checked against an independent oracle.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use coda::darr::{ComputationKey, Darr};
use coda::store::{ChangeMonitor, DurableStore, PushMode, RecomputeTrigger};
use coda_serve::shard::export_parts;
use coda_serve::{
    merge_canonical_exports, LoadGenConfig, ServeConfig, ServeRequest, ServeTier, TriggerPolicy,
};
use proptest::prelude::*;

/// Objects per generated workload.
const KEY_SPACE: u8 = 24;
/// DARR work items per generated workload.
const ITEM_SPACE: u8 = 12;
/// Simulated clients per generated workload.
const CLIENT_SPACE: u8 = 6;
/// Trigger policy under test: fire every third update to an object.
const TRIGGER_EVERY: u64 = 3;

/// One generated operation, pre-routing: indices instead of strings so
/// proptest shrinks nicely.
#[derive(Debug, Clone)]
enum GenOp {
    Put { key: u8, fill: u8, len: u16 },
    Pull { key: u8 },
    Subscribe { client: u8, key: u8 },
    Cancel { client: u8, key: u8 },
    Claim { item: u8, client: u8 },
    Complete { item: u8, client: u8 },
    Lookup { item: u8 },
    Advance { ticks: u8 },
}

fn object_id(key: u8) -> String {
    format!("obj-{key}")
}

fn client_name(client: u8) -> String {
    format!("client-{client}")
}

fn item_key(item: u8) -> ComputationKey {
    ComputationKey::new("equiv-ds", 1, &format!("p{item}") as &str, "kfold(3)", "rmse")
}

fn score_for(item: u8) -> f64 {
    0.125 * (f64::from(item) + 1.0)
}

impl GenOp {
    /// The tier-facing form of this op (None for clock advances, which go
    /// through the tier's broadcast, not the data plane).
    fn request(&self) -> Option<ServeRequest> {
        match self {
            GenOp::Put { key, fill, len } => Some(ServeRequest::Put {
                id: object_id(*key),
                data: Bytes::from(vec![*fill; *len as usize]),
            }),
            GenOp::Pull { key } => {
                Some(ServeRequest::Pull { id: object_id(*key), client_version: None })
            }
            GenOp::Subscribe { client, key } => Some(ServeRequest::Subscribe {
                client: client_name(*client),
                id: object_id(*key),
                mode: PushMode::Delta,
                duration: 1_000,
            }),
            GenOp::Cancel { client, key } => {
                Some(ServeRequest::Cancel { client: client_name(*client), id: object_id(*key) })
            }
            GenOp::Claim { item, client } => Some(ServeRequest::Claim {
                key: item_key(*item),
                client: client_name(*client),
                duration: 10_000,
            }),
            GenOp::Complete { item, client } => Some(ServeRequest::Complete {
                key: item_key(*item),
                client: client_name(*client),
                score: score_for(*item),
                fold_scores: vec![score_for(*item); 3],
                explanation: format!("equiv p{item}"),
            }),
            GenOp::Lookup { item } => Some(ServeRequest::Lookup { key: item_key(*item) }),
            GenOp::Advance { .. } => None,
        }
    }
}

/// The independent unsharded oracle: raw store + DARR + monitors, driven
/// without any serve-crate apply logic.
struct Baseline {
    store: DurableStore,
    darr: Darr,
    monitors: BTreeMap<String, (ChangeMonitor, u64)>,
}

impl Baseline {
    fn new() -> Self {
        Baseline {
            store: DurableStore::new("baseline".to_string(), 4, 0),
            darr: Darr::new(),
            monitors: BTreeMap::new(),
        }
    }

    fn apply(&mut self, op: &GenOp) {
        match op {
            GenOp::Put { key, fill, len } => {
                let id = object_id(*key);
                let bytes = u64::from(*len);
                self.store.put(&id, Bytes::from(vec![*fill; *len as usize]));
                let (monitor, updates) = self.monitors.entry(id).or_insert_with(|| {
                    (ChangeMonitor::new(RecomputeTrigger::UpdateCount(TRIGGER_EVERY)), 0)
                });
                *updates += 1;
                monitor.record_update(bytes, 0.0);
            }
            GenOp::Pull { key } => {
                let Ok(_) = self.store.fetch(&object_id(*key), None);
            }
            GenOp::Subscribe { client, key } => {
                self.store.subscribe(
                    &client_name(*client),
                    &object_id(*key),
                    PushMode::Delta,
                    1_000,
                );
            }
            GenOp::Cancel { client, key } => {
                self.store.cancel(&client_name(*client), &object_id(*key));
            }
            GenOp::Claim { item, client } => {
                self.darr.try_claim(&item_key(*item), &client_name(*client), 10_000);
            }
            GenOp::Complete { item, client } => {
                self.darr.complete(
                    &item_key(*item),
                    &client_name(*client),
                    score_for(*item),
                    vec![score_for(*item); 3],
                    &format!("equiv p{item}"),
                );
            }
            GenOp::Lookup { item } => {
                self.darr.lookup(&item_key(*item));
            }
            GenOp::Advance { ticks } => {
                self.store.advance_clock(u64::from(*ticks));
                self.darr.advance_clock(u64::from(*ticks));
            }
        }
    }

    fn canonical(&self) -> String {
        merge_canonical_exports(&[export_parts(&self.store, &self.darr, &self.monitors)])
    }
}

/// Applies `ops` through a tier with `n_shards`, returns canonical state
/// plus the per-shard applied-op counts.
fn run_tier(ops: &[GenOp], n_shards: usize) -> (String, Vec<u64>) {
    let cfg = ServeConfig {
        n_shards,
        queue_capacity: 64,
        batch_max: 16,
        history_depth: 4,
        snapshot_every: 0,
        trigger: TriggerPolicy::Count(TRIGGER_EVERY),
        ..ServeConfig::default()
    };
    let tier = ServeTier::start(&cfg);
    for op in ops {
        match op.request() {
            Some(req) => {
                tier.submit(req).expect("sequential submits never overrun the queue");
            }
            None => {
                if let GenOp::Advance { ticks } = op {
                    tier.advance_clock(u64::from(*ticks));
                }
            }
        }
    }
    let report = tier.finish();
    (report.canonical_state(), report.per_shard_ops())
}

/// Runs the full comparison: baseline vs 1-, 2- and 8-shard tiers.
fn assert_equivalent(ops: &[GenOp]) {
    let mut baseline = Baseline::new();
    for op in ops {
        baseline.apply(op);
    }
    let expected = baseline.canonical();
    for n_shards in [1usize, 2, 8] {
        let (canonical, _) = run_tier(ops, n_shards);
        assert_eq!(
            canonical, expected,
            "{n_shards}-shard tier state must be byte-identical to the unsharded baseline"
        );
    }
}

/// Weighted strategy over the whole op surface (the vendored proptest
/// stand-in has no `prop_oneof!`, so the weighting is explicit).
#[derive(Debug, Clone, Copy)]
struct OpStrategy;

impl Strategy for OpStrategy {
    type Value = GenOp;

    fn sample(&self, rng: &mut proptest::TestRng) -> GenOp {
        let key = (rng.next_u64() % u64::from(KEY_SPACE)) as u8;
        let item = (rng.next_u64() % u64::from(ITEM_SPACE)) as u8;
        let client = (rng.next_u64() % u64::from(CLIENT_SPACE)) as u8;
        match rng.next_u64() % 13 {
            0..=3 => GenOp::Put {
                key,
                fill: (rng.next_u64() & 0xff) as u8,
                len: 16 + (rng.next_u64() % 144) as u16,
            },
            4..=5 => GenOp::Pull { key },
            6 => GenOp::Subscribe { client, key },
            7 => GenOp::Cancel { client, key },
            8..=9 => GenOp::Claim { item, client },
            10 => GenOp::Complete { item, client },
            11 => GenOp::Lookup { item },
            _ => GenOp::Advance { ticks: 1 + (rng.next_u64() % 19) as u8 },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite 1: arbitrary op sequences leave 1/2/8-shard tier state
    /// byte-identical to the unsharded baseline, trigger firings included.
    #[test]
    fn sharded_state_equals_unsharded_baseline(
        ops in collection::vec(OpStrategy, 1..120)
    ) {
        assert_equivalent(&ops);
    }

    /// Put-heavy sequences with clock advances: history chains, lease
    /// expiry and trigger accounting all survive sharding.
    #[test]
    fn put_heavy_sequences_with_clocks_stay_equivalent(
        puts in collection::vec((0..KEY_SPACE, any::<u8>(), 16u16..96), 4..80),
        ticks in 1u8..30,
    ) {
        let mut ops: Vec<GenOp> = Vec::with_capacity(puts.len() + 2);
        for (i, (key, fill, len)) in puts.iter().enumerate() {
            ops.push(GenOp::Put { key: *key, fill: *fill, len: *len });
            if i == puts.len() / 2 {
                ops.push(GenOp::Advance { ticks });
            }
        }
        ops.push(GenOp::Advance { ticks });
        assert_equivalent(&ops);
    }
}

/// splitmix64 — seed-driven op generation for the CI `SERVE_SEED` matrix.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn seeded_ops(seed: u64, n: usize) -> Vec<GenOp> {
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..n)
        .map(|_| {
            let key = (splitmix64(&mut rng) % u64::from(KEY_SPACE)) as u8;
            let item = (splitmix64(&mut rng) % u64::from(ITEM_SPACE)) as u8;
            let client = (splitmix64(&mut rng) % u64::from(CLIENT_SPACE)) as u8;
            match splitmix64(&mut rng) % 13 {
                0..=4 => GenOp::Put {
                    key,
                    fill: (splitmix64(&mut rng) & 0xff) as u8,
                    len: 16 + (splitmix64(&mut rng) % 128) as u16,
                },
                5..=6 => GenOp::Pull { key },
                7 => GenOp::Subscribe { client, key },
                8 => GenOp::Cancel { client, key },
                9..=10 => GenOp::Claim { item, client },
                11 => GenOp::Complete { item, client },
                _ => GenOp::Advance { ticks: 1 + (splitmix64(&mut rng) % 12) as u8 },
            }
        })
        .collect()
}

/// The CI matrix entry point: `SERVE_SEED` (default 7) drives a 400-op
/// deterministic sequence through the full 1/2/8-shard comparison, and the
/// 2-shard run must exercise both shards.
#[test]
fn serve_seed_matrix_equivalence() {
    let seed = std::env::var("SERVE_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(7u64);
    let ops = seeded_ops(seed, 400);
    assert_equivalent(&ops);
    let (_, per_shard) = run_tier(&ops, 2);
    assert!(
        per_shard.iter().all(|&n| n > 0),
        "seed {seed}: both shards must see traffic: {per_shard:?}"
    );
}

/// Thread-interleaving equivalence: concurrent submitter threads over
/// *disjoint* key/item subsets (no clock ops) must land in the same final
/// canonical state as any sequential application of the same per-thread
/// sequences — per-key FIFO order is all the tier guarantees, and all an
/// equivalence oracle may assume.
#[test]
fn concurrent_interleavings_preserve_equivalence() {
    const THREADS: u8 = 4;
    let per_thread: Vec<Vec<GenOp>> = (0..THREADS)
        .map(|t| {
            // thread t owns keys ≡ t and items ≡ t (mod THREADS): disjoint
            let ops = seeded_ops(1_000 + u64::from(t), 200);
            ops.into_iter()
                .filter(|op| !matches!(op, GenOp::Advance { .. }))
                .map(|op| match op {
                    GenOp::Put { key, fill, len } => {
                        GenOp::Put { key: key - key % THREADS + t, fill, len }
                    }
                    GenOp::Pull { key } => GenOp::Pull { key: key - key % THREADS + t },
                    GenOp::Subscribe { client, key } => {
                        GenOp::Subscribe { client, key: key - key % THREADS + t }
                    }
                    GenOp::Cancel { client, key } => {
                        GenOp::Cancel { client, key: key - key % THREADS + t }
                    }
                    GenOp::Claim { item, client } => {
                        GenOp::Claim { item: item - item % THREADS + t, client }
                    }
                    GenOp::Complete { item, client } => {
                        GenOp::Complete { item: item - item % THREADS + t, client }
                    }
                    GenOp::Lookup { item } => GenOp::Lookup { item: item - item % THREADS + t },
                    GenOp::Advance { ticks } => GenOp::Advance { ticks },
                })
                .collect()
        })
        .collect();

    // oracle: thread-major sequential application (valid because subsets
    // are disjoint, so cross-thread order cannot matter)
    let mut baseline = Baseline::new();
    for ops in &per_thread {
        for op in ops {
            baseline.apply(op);
        }
    }
    let expected = baseline.canonical();

    for n_shards in [2usize, 8] {
        let cfg = ServeConfig {
            n_shards,
            queue_capacity: 64,
            batch_max: 16,
            history_depth: 4,
            snapshot_every: 0,
            trigger: TriggerPolicy::Count(TRIGGER_EVERY),
            ..ServeConfig::default()
        };
        let tier = Arc::new(ServeTier::start(&cfg));
        let handles: Vec<_> = per_thread
            .iter()
            .cloned()
            .map(|ops| {
                let tier = Arc::clone(&tier);
                std::thread::spawn(move || {
                    for op in &ops {
                        if let Some(req) = op.request() {
                            tier.submit(req).expect("closed-loop submits complete");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("submitter threads finish");
        }
        let report = match Arc::try_unwrap(tier) {
            Ok(t) => t.finish(),
            Err(_) => panic!("all submitters joined"),
        };
        assert_eq!(
            report.canonical_state(),
            expected,
            "{n_shards}-shard concurrent run must match the sequential oracle"
        );
    }
}

/// The load generator itself is deterministic: with a single submitter
/// thread (no cross-thread claim races) two same-seed closed-loop runs
/// produce identical reports and byte-identical canonical state.
#[test]
fn same_seed_load_runs_are_byte_identical() {
    let run = |seed: u64| {
        let cfg = ServeConfig {
            n_shards: 2,
            snapshot_every: 0,
            trigger: TriggerPolicy::Count(TRIGGER_EVERY),
            ..ServeConfig::default()
        };
        let tier = Arc::new(ServeTier::start(&cfg));
        let load = LoadGenConfig {
            seed,
            n_clients: 500,
            ops_per_thread: 800,
            n_threads: 1,
            key_space: 32,
            ..LoadGenConfig::default()
        };
        let report = coda_serve::run_load(&tier, &load, None);
        let tier_report = match Arc::try_unwrap(tier) {
            Ok(t) => t.finish(),
            Err(_) => panic!("all submitters joined"),
        };
        (report, tier_report.canonical_state())
    };
    let (report_a, state_a) = run(11);
    let (report_b, state_b) = run(11);
    assert_eq!(report_a, report_b, "same seed, same load report");
    assert_eq!(state_a, state_b, "same seed, same final state");
    let (report_c, _) = run(12);
    assert_ne!(report_a, report_c, "different seeds must differ somewhere");
}
