//! Gradient boosting for regression (the "gradient boosting" of §III):
//! stage-wise fitting of shallow regression trees to residuals.

use coda_data::{BoxedEstimator, ComponentError, Dataset, Estimator, ParamValue, TaskKind};

use crate::tree::DecisionTreeRegressor;

/// Gradient-boosted regression trees with squared-error loss.
///
/// # Examples
///
/// ```
/// use coda_data::{synth, Estimator};
/// use coda_ml::GradientBoostingRegressor;
///
/// let ds = synth::friedman1(300, 5, 0.3, 6);
/// let mut gb = GradientBoostingRegressor::new(50, 0.1);
/// gb.fit(&ds)?;
/// let r2 = coda_data::metrics::r2(ds.target().unwrap(), &gb.predict(&ds)?)?;
/// assert!(r2 > 0.8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct GradientBoostingRegressor {
    n_stages: usize,
    learning_rate: f64,
    max_depth: usize,
    base: f64,
    stages: Vec<DecisionTreeRegressor>,
    n_features: usize,
}

impl GradientBoostingRegressor {
    /// Creates a booster with `n_stages` trees and the given learning rate
    /// (per-tree depth limit 3).
    ///
    /// # Panics
    ///
    /// Panics if `n_stages == 0` or `learning_rate <= 0`.
    pub fn new(n_stages: usize, learning_rate: f64) -> Self {
        assert!(n_stages > 0, "n_stages must be positive");
        assert!(learning_rate > 0.0, "learning_rate must be positive");
        GradientBoostingRegressor {
            n_stages,
            learning_rate,
            max_depth: 3,
            base: 0.0,
            stages: Vec::new(),
            n_features: 0,
        }
    }

    /// Sets the per-stage tree depth.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth.max(1);
        self
    }

    /// Number of fitted stages.
    pub fn n_fitted_stages(&self) -> usize {
        self.stages.len()
    }

    /// Training-set predictions after each stage — exposes the staged fit so
    /// callers can pick an early-stopping point (C-INTERMEDIATE).
    ///
    /// # Errors
    ///
    /// [`ComponentError::NotFitted`] before fitting.
    pub fn staged_predict(&self, data: &Dataset) -> Result<Vec<Vec<f64>>, ComponentError> {
        if self.stages.is_empty() {
            return Err(ComponentError::NotFitted(self.name().to_string()));
        }
        let mut acc = vec![self.base; data.n_samples()];
        let mut out = Vec::with_capacity(self.stages.len());
        for tree in &self.stages {
            let p = tree.predict(data)?;
            for (a, v) in acc.iter_mut().zip(p) {
                *a += self.learning_rate * v;
            }
            out.push(acc.clone());
        }
        Ok(out)
    }
}

impl Estimator for GradientBoostingRegressor {
    fn name(&self) -> &str {
        "gradient_boosting_regressor"
    }

    fn task(&self) -> TaskKind {
        TaskKind::Regression
    }

    fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
        match param {
            "n_stages" | "n_estimators" => {
                self.n_stages = value.as_usize().filter(|&x| x > 0).ok_or_else(|| {
                    ComponentError::InvalidParam {
                        component: self.name().to_string(),
                        param: param.to_string(),
                        reason: "must be a positive integer".to_string(),
                    }
                })?;
                Ok(())
            }
            "learning_rate" => {
                self.learning_rate = value.as_f64().filter(|&x| x > 0.0).ok_or_else(|| {
                    ComponentError::InvalidParam {
                        component: self.name().to_string(),
                        param: param.to_string(),
                        reason: "must be positive".to_string(),
                    }
                })?;
                Ok(())
            }
            "max_depth" => {
                self.max_depth = value.as_usize().filter(|&x| x > 0).ok_or_else(|| {
                    ComponentError::InvalidParam {
                        component: self.name().to_string(),
                        param: param.to_string(),
                        reason: "must be a positive integer".to_string(),
                    }
                })?;
                Ok(())
            }
            _ => Err(ComponentError::UnknownParam {
                component: self.name().to_string(),
                param: param.to_string(),
            }),
        }
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        let y = data.target_required()?.to_vec();
        if data.n_samples() == 0 {
            return Err(ComponentError::InvalidInput("empty dataset".to_string()));
        }
        self.base = coda_linalg::mean(&y);
        self.n_features = data.n_features();
        self.stages.clear();
        let mut residual: Vec<f64> = y.iter().map(|v| v - self.base).collect();
        let features_only = coda_data::Dataset::new(data.features().clone());
        for _ in 0..self.n_stages {
            let stage_data = features_only
                .clone()
                .with_target(residual.clone())
                .expect("lengths match by construction");
            let mut tree = DecisionTreeRegressor::new().with_max_depth(self.max_depth);
            tree.fit(&stage_data)?;
            let pred = tree.predict(&stage_data)?;
            for (r, p) in residual.iter_mut().zip(&pred) {
                *r -= self.learning_rate * p;
            }
            self.stages.push(tree);
        }
        Ok(())
    }

    fn predict(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError> {
        if self.stages.is_empty() {
            return Err(ComponentError::NotFitted(self.name().to_string()));
        }
        let mut acc = vec![self.base; data.n_samples()];
        for tree in &self.stages {
            let p = tree.predict(data)?;
            for (a, v) in acc.iter_mut().zip(p) {
                *a += self.learning_rate * v;
            }
        }
        Ok(acc)
    }

    fn feature_importances(&self) -> Option<Vec<f64>> {
        if self.stages.is_empty() {
            return None;
        }
        let mut acc = vec![0.0; self.n_features];
        for t in &self.stages {
            if let Some(imp) = t.feature_importances() {
                for (a, v) in acc.iter_mut().zip(imp) {
                    *a += v;
                }
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            acc.iter_mut().for_each(|v| *v /= total);
        }
        Some(acc)
    }

    fn clone_box(&self) -> BoxedEstimator {
        let mut fresh = GradientBoostingRegressor::new(self.n_stages, self.learning_rate);
        fresh.max_depth = self.max_depth;
        Box::new(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::{metrics, synth};

    #[test]
    fn training_error_decreases_with_stages() {
        let ds = synth::friedman1(300, 5, 0.3, 51);
        let mut gb = GradientBoostingRegressor::new(40, 0.1);
        gb.fit(&ds).unwrap();
        let staged = gb.staged_predict(&ds).unwrap();
        let first = metrics::mse(ds.target().unwrap(), &staged[0]).unwrap();
        let last = metrics::mse(ds.target().unwrap(), staged.last().unwrap()).unwrap();
        assert!(last < first / 2.0, "boosting must reduce training error");
        // error is monotone nonincreasing for squared loss with small lr
        let mut prev = f64::INFINITY;
        for s in &staged {
            let m = metrics::mse(ds.target().unwrap(), s).unwrap();
            assert!(m <= prev + 1e-9);
            prev = m;
        }
    }

    #[test]
    fn beats_single_shallow_tree() {
        let ds = synth::friedman1(600, 5, 0.5, 52);
        let (train, test) = ds.train_test_split(0.3, 9);
        let mut stump = DecisionTreeRegressor::new().with_max_depth(3);
        stump.fit(&train).unwrap();
        let stump_r2 = metrics::r2(test.target().unwrap(), &stump.predict(&test).unwrap()).unwrap();
        let mut gb = GradientBoostingRegressor::new(80, 0.1);
        gb.fit(&train).unwrap();
        let gb_r2 = metrics::r2(test.target().unwrap(), &gb.predict(&test).unwrap()).unwrap();
        assert!(gb_r2 > stump_r2 + 0.05, "gb={gb_r2:.3} stump={stump_r2:.3}");
    }

    #[test]
    fn constant_target_predicts_constant() {
        let base = synth::linear_regression(50, 2, 0.0, 53);
        let ds =
            coda_data::Dataset::new(base.features().clone()).with_target(vec![3.0; 50]).unwrap();
        let mut gb = GradientBoostingRegressor::new(10, 0.5);
        gb.fit(&ds).unwrap();
        assert!(gb.predict(&ds).unwrap().iter().all(|p| (p - 3.0).abs() < 1e-9));
    }

    #[test]
    fn params_and_errors() {
        let mut gb = GradientBoostingRegressor::new(10, 0.1);
        gb.set_param("n_estimators", ParamValue::from(20usize)).unwrap();
        gb.set_param("learning_rate", ParamValue::from(0.05)).unwrap();
        gb.set_param("max_depth", ParamValue::from(2usize)).unwrap();
        assert!(gb.set_param("learning_rate", ParamValue::from(0.0)).is_err());
        assert!(gb.set_param("zzz", ParamValue::from(1usize)).is_err());
        let ds = synth::friedman1(30, 5, 0.1, 54);
        assert!(GradientBoostingRegressor::new(5, 0.1).predict(&ds).is_err());
        assert!(GradientBoostingRegressor::new(5, 0.1).staged_predict(&ds).is_err());
    }

    #[test]
    fn importances_normalized() {
        let ds = synth::friedman1(200, 6, 0.3, 55);
        let mut gb = GradientBoostingRegressor::new(20, 0.1);
        gb.fit(&ds).unwrap();
        let imp = gb.feature_importances().unwrap();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
