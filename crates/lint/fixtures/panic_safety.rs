//! Fixture: every panic-safety pattern the lint must catch, plus the
//! test-module exemption. Never compiled; walked as text.

fn unwrap_site(v: Option<u32>) -> u32 {
    v.unwrap() // finding: .unwrap()
}

fn expect_site(v: Option<u32>) -> u32 {
    v.expect("present") // finding: .expect()
}

fn macro_sites(flag: bool) {
    if flag {
        panic!("boom"); // finding: panic!
    }
    match flag {
        true => unreachable!(), // finding: unreachable!
        false => todo!(),       // finding: todo!
    }
}

#[cfg(test)]
mod tests {
    // exempt: test code may panic freely
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
