//! Fixture: the canonical AB/BA deadlock shape, split across two methods
//! of one type so both the intra-procedural nesting and the cycle over
//! the acquisition graph are exercised. Never compiled; walked as text.

use parking_lot::Mutex;

struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    fn forward(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock(); // edge: Pair.alpha -> Pair.beta
        *a + *b
    }

    fn backward(&self) -> u32 {
        let b = self.beta.lock();
        let a = self.alpha.lock(); // edge: Pair.beta -> Pair.alpha — cycle!
        *a + *b
    }
}
