/root/repo/target/debug/deps/coda_templates-cfd5d7276dc3a102.d: crates/templates/src/lib.rs crates/templates/src/anomaly.rs crates/templates/src/cohort.rs crates/templates/src/failure.rs crates/templates/src/lifetime.rs crates/templates/src/rca.rs Cargo.toml

/root/repo/target/debug/deps/libcoda_templates-cfd5d7276dc3a102.rmeta: crates/templates/src/lib.rs crates/templates/src/anomaly.rs crates/templates/src/cohort.rs crates/templates/src/failure.rs crates/templates/src/lifetime.rs crates/templates/src/rca.rs Cargo.toml

crates/templates/src/lib.rs:
crates/templates/src/anomaly.rs:
crates/templates/src/cohort.rs:
crates/templates/src/failure.rs:
crates/templates/src/lifetime.rs:
crates/templates/src/rca.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
