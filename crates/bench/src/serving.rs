//! The D7 serving-tier benchmark: a sustained zipf-skewed closed-loop
//! load (hundreds of thousands of simulated cooperative clients
//! multiplexed over submitter threads) against a sharded
//! [`coda_serve::ServeTier`], instrumented through [`coda_obs::Obs`].
//! Produces the `BENCH_serving.json` artifact the CI benchmark ratchet
//! (`bench_gate`) compares against its committed baseline.

use coda_obs::Obs;
use coda_serve::{LoadGenConfig, ServeConfig, ServeTier, TriggerPolicy};
use std::sync::Arc;

/// Everything one serving-bench run measured — the schema of
/// `BENCH_serving.json`.
#[derive(Debug, Clone)]
pub struct ServingBenchResult {
    /// Workload seed.
    pub seed: u64,
    /// Worker shards.
    pub n_shards: usize,
    /// Closed-loop submitter threads.
    pub n_threads: usize,
    /// Simulated cooperative clients.
    pub n_clients: usize,
    /// Requests completed across shards.
    pub total_ops: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Wall-clock duration of the loaded phase, milliseconds.
    pub elapsed_ms: f64,
    /// Completed requests per second.
    pub throughput_ops_per_sec: f64,
    /// Request-latency quantiles from the tier's histogram, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Requests applied by each shard, in shard order.
    pub per_shard_ops: Vec<u64>,
    /// Worker wakeups that carried at least one request.
    pub batches: u64,
    /// Mean requests coalesced per wakeup.
    pub mean_batch: f64,
    /// Recompute-trigger firings under load.
    pub trigger_firings: u64,
}

impl ServingBenchResult {
    /// Renders the stable JSON artifact (`BENCH_serving.json`).
    pub fn to_json(&self) -> String {
        let shards: Vec<String> = self.per_shard_ops.iter().map(u64::to_string).collect();
        format!(
            concat!(
                "{{\n",
                "  \"schema\": \"coda-serving-bench-v1\",\n",
                "  \"seed\": {},\n",
                "  \"n_shards\": {},\n",
                "  \"n_threads\": {},\n",
                "  \"n_clients\": {},\n",
                "  \"total_ops\": {},\n",
                "  \"shed\": {},\n",
                "  \"elapsed_ms\": {:.3},\n",
                "  \"throughput_ops_per_sec\": {:.1},\n",
                "  \"p50_ms\": {:.6},\n",
                "  \"p95_ms\": {:.6},\n",
                "  \"p99_ms\": {:.6},\n",
                "  \"per_shard_ops\": [{}],\n",
                "  \"batches\": {},\n",
                "  \"mean_batch\": {:.3},\n",
                "  \"trigger_firings\": {}\n",
                "}}\n",
            ),
            self.seed,
            self.n_shards,
            self.n_threads,
            self.n_clients,
            self.total_ops,
            self.shed,
            self.elapsed_ms,
            self.throughput_ops_per_sec,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            shards.join(", "),
            self.batches,
            self.mean_batch,
            self.trigger_firings,
        )
    }
}

/// The canonical D7 workload: 4 shards, 4 closed-loop submitter threads
/// multiplexing 200 000 simulated cooperative clients, 200 000 ops of
/// zipf-skewed (s = 1.1) mixed put/pull/claim/complete traffic over 512
/// hot objects.
pub fn serving_bench_config(seed: u64) -> (ServeConfig, LoadGenConfig) {
    let serve = ServeConfig {
        n_shards: 4,
        queue_capacity: 64,
        batch_max: 16,
        history_depth: 4,
        snapshot_every: 64,
        trigger: TriggerPolicy::Count(64),
        ..ServeConfig::default()
    };
    let load = LoadGenConfig {
        seed,
        n_clients: 200_000,
        ops_per_thread: 50_000,
        n_threads: 4,
        key_space: 512,
        zipf_s: 1.1,
        payload_len: 256,
        ..LoadGenConfig::default()
    };
    (serve, load)
}

/// Runs the D7 serving benchmark. Instruments through `obs` when given
/// (so `--metrics` runs fold the tier's counters into the harness-wide
/// snapshot); otherwise brings up its own wall-clock observer.
pub fn run_serving_bench(seed: u64, obs: Option<&Obs>) -> ServingBenchResult {
    let own;
    let obs = match obs {
        Some(o) => o,
        None => {
            own = Obs::wall();
            &own
        }
    };
    let (serve_cfg, load_cfg) = serving_bench_config(seed);
    let tier = Arc::new(ServeTier::start_obs(&serve_cfg, Some(obs)));
    let t0 = obs.now_ms();
    let load = coda_serve::run_load(&tier, &load_cfg, Some(obs));
    let elapsed_ms = (obs.now_ms() - t0).max(0.001);
    let report = match Arc::try_unwrap(tier) {
        Ok(t) => t.finish(),
        // unreachable: run_load joins every submitter before returning
        Err(tier) => {
            drop(tier);
            panic!("load generator left a live tier handle");
        }
    };

    assert_eq!(
        load.shed, report.shed_total,
        "the generator's shed tally and the tier's shed counter must agree"
    );

    let snap = obs.registry().snapshot();
    let latency = snap.histograms.get("coda_serve_latency_ms");
    let quantile = |q: f64| latency.map(|h| h.quantile(q)).unwrap_or(0.0);
    let batches = snap.counter("coda_serve_batches");
    let total_ops = report.total_ops();
    ServingBenchResult {
        seed,
        n_shards: serve_cfg.n_shards,
        n_threads: load_cfg.n_threads,
        n_clients: load_cfg.n_clients,
        total_ops,
        shed: report.shed_total,
        elapsed_ms,
        throughput_ops_per_sec: total_ops as f64 / (elapsed_ms / 1000.0),
        p50_ms: quantile(0.50),
        p95_ms: quantile(0.95),
        p99_ms: quantile(0.99),
        per_shard_ops: report.per_shard_ops(),
        batches,
        mean_batch: if batches > 0 { total_ops as f64 / batches as f64 } else { 0.0 },
        trigger_firings: report.shards.iter().map(|s| s.trigger_firings).sum(),
    }
}
