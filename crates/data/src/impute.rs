//! Data imputation transformers (paper §III: "mean, median, mode, … k
//! nearest neighbors").
//!
//! Missing feature values are represented as `NaN`. Each imputer is a
//! [`Transformer`], so imputation can be a stage in a Transformer-Estimator
//! Graph.

use crate::dataset::Dataset;
use crate::traits::{BoxedTransformer, ComponentError, ParamValue, Transformer};

/// Column statistic used to fill missing values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImputeStrategy {
    /// Fill with the column mean of observed values.
    Mean,
    /// Fill with the column median of observed values.
    Median,
    /// Fill with the column mode (most frequent observed value).
    Mode,
}

/// Imputes missing values with a per-column statistic.
///
/// # Examples
///
/// ```
/// use coda_data::impute::{ImputeStrategy, SimpleImputer};
/// use coda_data::{Dataset, Transformer};
/// use coda_linalg::Matrix;
///
/// let x = Matrix::from_rows(&[&[1.0], &[f64::NAN], &[3.0]]);
/// let ds = Dataset::new(x);
/// let mut imp = SimpleImputer::new(ImputeStrategy::Mean);
/// let out = imp.fit_transform(&ds).unwrap();
/// assert_eq!(out.features()[(1, 0)], 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimpleImputer {
    strategy: ImputeStrategy,
    fill: Option<Vec<f64>>,
}

impl SimpleImputer {
    /// Creates an imputer with the given strategy.
    pub fn new(strategy: ImputeStrategy) -> Self {
        SimpleImputer { strategy, fill: None }
    }

    /// The fitted per-column fill values, if fitted.
    pub fn fill_values(&self) -> Option<&[f64]> {
        self.fill.as_deref()
    }
}

impl Transformer for SimpleImputer {
    fn name(&self) -> &str {
        match self.strategy {
            ImputeStrategy::Mean => "mean_imputer",
            ImputeStrategy::Median => "median_imputer",
            ImputeStrategy::Mode => "mode_imputer",
        }
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        let x = data.features();
        let mut fill = Vec::with_capacity(x.cols());
        for c in 0..x.cols() {
            let observed: Vec<f64> = x.col(c).into_iter().filter(|v| !v.is_nan()).collect();
            if observed.is_empty() {
                return Err(ComponentError::InvalidInput(format!(
                    "column {c} has no observed values to impute from"
                )));
            }
            let v = match self.strategy {
                ImputeStrategy::Mean => coda_linalg::mean(&observed),
                ImputeStrategy::Median => coda_linalg::median(&observed),
                ImputeStrategy::Mode => coda_linalg::mode_value(&observed).unwrap_or(0.0),
            };
            fill.push(v);
        }
        self.fill = Some(fill);
        Ok(())
    }

    fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        let fill =
            self.fill.as_ref().ok_or_else(|| ComponentError::NotFitted(self.name().to_string()))?;
        if fill.len() != data.n_features() {
            return Err(ComponentError::InvalidInput(format!(
                "imputer fitted on {} features, input has {}",
                fill.len(),
                data.n_features()
            )));
        }
        let mut x = data.features().clone();
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                if x[(r, c)].is_nan() {
                    x[(r, c)] = fill[c];
                }
            }
        }
        Ok(data.replace_features(x))
    }

    fn clone_box(&self) -> BoxedTransformer {
        Box::new(SimpleImputer::new(self.strategy))
    }
}

/// K-nearest-neighbour imputer: each missing cell is filled with the mean of
/// that column over the `k` nearest training rows, where distance is
/// Euclidean over the columns observed in both rows.
#[derive(Debug, Clone)]
pub struct KnnImputer {
    k: usize,
    train: Option<Dataset>,
}

impl KnnImputer {
    /// Creates a kNN imputer with `k` neighbours.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KnnImputer { k, train: None }
    }
}

/// Distance between two rows over mutually observed columns, normalized by
/// the number of shared columns; `None` when no columns are shared.
fn partial_distance(a: &[f64], b: &[f64]) -> Option<f64> {
    let mut total = 0.0;
    let mut n = 0usize;
    for (x, y) in a.iter().zip(b) {
        if !x.is_nan() && !y.is_nan() {
            total += (x - y) * (x - y);
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some((total / n as f64).sqrt())
    }
}

impl Transformer for KnnImputer {
    fn name(&self) -> &str {
        "knn_imputer"
    }

    fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
        match param {
            "k" | "n_neighbors" => {
                let k = value.as_usize().filter(|&k| k > 0).ok_or_else(|| {
                    ComponentError::InvalidParam {
                        component: self.name().to_string(),
                        param: param.to_string(),
                        reason: "must be a positive integer".to_string(),
                    }
                })?;
                self.k = k;
                Ok(())
            }
            _ => Err(ComponentError::UnknownParam {
                component: self.name().to_string(),
                param: param.to_string(),
            }),
        }
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        if data.n_samples() == 0 {
            return Err(ComponentError::InvalidInput("empty training data".to_string()));
        }
        self.train = Some(data.clone());
        Ok(())
    }

    fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        let train = self
            .train
            .as_ref()
            .ok_or_else(|| ComponentError::NotFitted(self.name().to_string()))?;
        let tx = train.features();
        let mut x = data.features().clone();
        for r in 0..x.rows() {
            let missing: Vec<usize> = (0..x.cols()).filter(|&c| x[(r, c)].is_nan()).collect();
            if missing.is_empty() {
                continue;
            }
            // rank training rows by partial distance
            let row = x.row(r).to_vec();
            let mut cand: Vec<(f64, usize)> = (0..tx.rows())
                .filter_map(|tr| partial_distance(&row, tx.row(tr)).map(|d| (d, tr)))
                .collect();
            cand.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            for &c in &missing {
                // take the k nearest rows that observe column c
                let mut vals = Vec::with_capacity(self.k);
                for &(_, tr) in &cand {
                    let v = tx[(tr, c)];
                    if !v.is_nan() {
                        vals.push(v);
                        if vals.len() == self.k {
                            break;
                        }
                    }
                }
                if vals.is_empty() {
                    return Err(ComponentError::InvalidInput(format!(
                        "no training rows observe column {c}"
                    )));
                }
                x[(r, c)] = coda_linalg::mean(&vals);
            }
        }
        Ok(data.replace_features(x))
    }

    fn clone_box(&self) -> BoxedTransformer {
        Box::new(KnnImputer::new(self.k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_linalg::Matrix;

    fn with_gap() -> Dataset {
        let x =
            Matrix::from_rows(&[&[1.0, 100.0], &[2.0, f64::NAN], &[3.0, 300.0], &[100.0, 500.0]]);
        Dataset::new(x)
    }

    #[test]
    fn mean_median_mode_fill() {
        let ds = with_gap();
        let mut mean = SimpleImputer::new(ImputeStrategy::Mean);
        assert_eq!(mean.fit_transform(&ds).unwrap().features()[(1, 1)], 300.0);
        let mut med = SimpleImputer::new(ImputeStrategy::Median);
        assert_eq!(med.fit_transform(&ds).unwrap().features()[(1, 1)], 300.0);
        let x = Matrix::from_rows(&[&[1.0], &[1.0], &[2.0], &[f64::NAN]]);
        let mut mode = SimpleImputer::new(ImputeStrategy::Mode);
        assert_eq!(mode.fit_transform(&Dataset::new(x)).unwrap().features()[(3, 0)], 1.0);
    }

    #[test]
    fn simple_imputer_not_fitted() {
        let imp = SimpleImputer::new(ImputeStrategy::Mean);
        assert!(matches!(imp.transform(&with_gap()), Err(ComponentError::NotFitted(_))));
    }

    #[test]
    fn simple_imputer_all_missing_column_errors() {
        let x = Matrix::from_rows(&[&[f64::NAN], &[f64::NAN]]);
        let mut imp = SimpleImputer::new(ImputeStrategy::Mean);
        assert!(imp.fit(&Dataset::new(x)).is_err());
    }

    #[test]
    fn simple_imputer_feature_count_mismatch() {
        let mut imp = SimpleImputer::new(ImputeStrategy::Mean);
        imp.fit(&with_gap()).unwrap();
        let other = Dataset::new(Matrix::zeros(2, 3));
        assert!(imp.transform(&other).is_err());
    }

    #[test]
    fn knn_uses_nearest_rows() {
        // row 1 (x0=2) is nearest to rows 0 and 2 (x0=1,3), far from row 3
        // (x0=100); with k=2 the fill must be mean(100, 300) = 200.
        let ds = with_gap();
        let mut knn = KnnImputer::new(2);
        let out = knn.fit_transform(&ds).unwrap();
        assert_eq!(out.features()[(1, 1)], 200.0);
    }

    #[test]
    fn knn_k1_takes_single_nearest() {
        let ds = with_gap();
        let mut knn = KnnImputer::new(1);
        let out = knn.fit_transform(&ds).unwrap();
        assert_eq!(out.features()[(1, 1)], 100.0); // nearest is row 0
    }

    #[test]
    fn knn_set_param() {
        let mut knn = KnnImputer::new(5);
        knn.set_param("k", ParamValue::from(2usize)).unwrap();
        assert!(knn.set_param("k", ParamValue::from(0usize)).is_err());
        assert!(knn.set_param("bogus", ParamValue::from(1usize)).is_err());
    }

    #[test]
    fn imputers_leave_observed_cells_untouched() {
        let ds = with_gap();
        let mut imp = SimpleImputer::new(ImputeStrategy::Mean);
        let out = imp.fit_transform(&ds).unwrap();
        assert_eq!(out.features()[(0, 0)], 1.0);
        assert_eq!(out.features()[(3, 1)], 500.0);
        assert!(!out.has_missing());
    }
}
