//! Univariate feature selection (the `SelectKBest` of Fig. 3 and Table I,
//! with the information-gain / entropy scoring options Table I lists).

use coda_data::{BoxedTransformer, ComponentError, Dataset, ParamValue, Transformer};
use coda_linalg::stats;

/// Scoring function used to rank features against the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreFunction {
    /// F-statistic of a univariate linear fit (regression targets).
    FRegression,
    /// Squared Pearson correlation with the target.
    CorrelationSquared,
    /// Mutual information estimated over a binned joint histogram (both
    /// variables binned — regression targets).
    MutualInfo,
    /// Information gain for *classification* targets (Table I's
    /// "Information Gain"/"Entropy" options): the reduction in exact class
    /// entropy from binning the feature, `H(Y) − H(Y|bin(X))`.
    InformationGain,
    /// Feature variance alone (unsupervised screening).
    Variance,
}

/// Selects the `k` best-scoring features.
///
/// # Examples
///
/// ```
/// use coda_data::{synth, Transformer};
/// use coda_ml::{ScoreFunction, SelectKBest};
///
/// // friedman1: only the first five features are informative.
/// let ds = synth::friedman1(300, 10, 0.1, 9);
/// let mut sel = SelectKBest::new(5, ScoreFunction::MutualInfo);
/// let out = sel.fit_transform(&ds)?;
/// assert_eq!(out.n_features(), 5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SelectKBest {
    k: usize,
    score_fn: ScoreFunction,
    selected: Option<Vec<usize>>,
    scores: Option<Vec<f64>>,
}

impl SelectKBest {
    /// Creates a selector keeping the `k` top features by `score_fn`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, score_fn: ScoreFunction) -> Self {
        assert!(k > 0, "k must be positive");
        SelectKBest { k, score_fn, selected: None, scores: None }
    }

    /// Indices of the selected features (ascending), if fitted.
    pub fn selected_indices(&self) -> Option<&[usize]> {
        self.selected.as_deref()
    }

    /// Per-feature scores from the last fit.
    pub fn scores(&self) -> Option<&[f64]> {
        self.scores.as_deref()
    }

    fn score_feature(&self, col: &[f64], y: Option<&[f64]>) -> Result<f64, ComponentError> {
        match self.score_fn {
            ScoreFunction::Variance => Ok(stats::variance(col)),
            ScoreFunction::CorrelationSquared => {
                let y = y.ok_or_else(|| {
                    ComponentError::InvalidInput("score function requires a target".to_string())
                })?;
                let r = stats::pearson(col, y);
                Ok(r * r)
            }
            ScoreFunction::FRegression => {
                let y = y.ok_or_else(|| {
                    ComponentError::InvalidInput("score function requires a target".to_string())
                })?;
                let r = stats::pearson(col, y);
                let r2 = (r * r).min(1.0 - 1e-12);
                let n = col.len() as f64;
                if n < 3.0 {
                    return Ok(0.0);
                }
                Ok(r2 / (1.0 - r2) * (n - 2.0))
            }
            ScoreFunction::MutualInfo => {
                let y = y.ok_or_else(|| {
                    ComponentError::InvalidInput("score function requires a target".to_string())
                })?;
                Ok(binned_mutual_info(col, y, 8))
            }
            ScoreFunction::InformationGain => {
                let y = y.ok_or_else(|| {
                    ComponentError::InvalidInput("score function requires a target".to_string())
                })?;
                Ok(information_gain(col, y, 8))
            }
        }
    }
}

/// Information gain of discrete labels `y` given `bins` equal-width bins of
/// feature `x`: `H(Y) − H(Y|bin(X))`, in nats. Labels are matched exactly
/// (classification), so class entropy is not an approximation.
pub fn information_gain(x: &[f64], y: &[f64], bins: usize) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    let n = x.len();
    if n < 2 || bins < 2 {
        return 0.0;
    }
    let entropy = |labels: &[f64]| -> f64 {
        let mut counts = std::collections::BTreeMap::new();
        for l in labels {
            *counts.entry(l.to_bits()).or_insert(0usize) += 1;
        }
        let total = labels.len() as f64;
        counts
            .values()
            .map(|&c| {
                let p = c as f64 / total;
                -p * p.ln()
            })
            .sum()
    };
    let base = entropy(y);
    let (lo, hi) = min_max(x);
    if hi <= lo {
        return 0.0;
    }
    let mut per_bin: Vec<Vec<f64>> = vec![Vec::new(); bins];
    for (&xv, &yv) in x.iter().zip(y) {
        let b = (((xv - lo) / (hi - lo) * bins as f64) as usize).min(bins - 1);
        per_bin[b].push(yv);
    }
    let conditional: f64 = per_bin
        .iter()
        .filter(|b| !b.is_empty())
        .map(|b| b.len() as f64 / n as f64 * entropy(b))
        .sum();
    (base - conditional).max(0.0)
}

/// Mutual information between two real-valued variables over a `bins x bins`
/// equal-width joint histogram, in nats. Returns 0 for degenerate input.
pub fn binned_mutual_info(a: &[f64], b: &[f64], bins: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    if n < 2 || bins < 2 {
        return 0.0;
    }
    let bin_of = |v: f64, lo: f64, hi: f64| -> usize {
        if hi <= lo {
            return 0;
        }
        (((v - lo) / (hi - lo) * bins as f64) as usize).min(bins - 1)
    };
    let (alo, ahi) = min_max(a);
    let (blo, bhi) = min_max(b);
    if ahi <= alo || bhi <= blo {
        return 0.0;
    }
    let mut joint = vec![0.0f64; bins * bins];
    let mut pa = vec![0.0f64; bins];
    let mut pb = vec![0.0f64; bins];
    for (&x, &y) in a.iter().zip(b) {
        let i = bin_of(x, alo, ahi);
        let j = bin_of(y, blo, bhi);
        joint[i * bins + j] += 1.0;
        pa[i] += 1.0;
        pb[j] += 1.0;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for i in 0..bins {
        for j in 0..bins {
            let pij = joint[i * bins + j] / nf;
            if pij > 0.0 {
                mi += pij * (pij / (pa[i] / nf * pb[j] / nf)).ln();
            }
        }
    }
    mi.max(0.0)
}

fn min_max(v: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in v {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

impl Transformer for SelectKBest {
    fn name(&self) -> &str {
        "select_k_best"
    }

    fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
        match param {
            "k" => {
                self.k = value.as_usize().filter(|&k| k > 0).ok_or_else(|| {
                    ComponentError::InvalidParam {
                        component: "select_k_best".to_string(),
                        param: param.to_string(),
                        reason: "must be a positive integer".to_string(),
                    }
                })?;
                Ok(())
            }
            _ => Err(ComponentError::UnknownParam {
                component: self.name().to_string(),
                param: param.to_string(),
            }),
        }
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        let x = data.features();
        if x.rows() == 0 || x.cols() == 0 {
            return Err(ComponentError::InvalidInput("empty dataset".to_string()));
        }
        let y = data.target();
        let mut scores = Vec::with_capacity(x.cols());
        for c in 0..x.cols() {
            scores.push(self.score_feature(&x.col(c), y)?);
        }
        let k = self.k.min(x.cols());
        let mut order: Vec<usize> = (0..x.cols()).collect();
        order.sort_by(|&i, &j| {
            scores[j].partial_cmp(&scores[i]).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut selected: Vec<usize> = order[..k].to_vec();
        selected.sort_unstable();
        self.scores = Some(scores);
        self.selected = Some(selected);
        Ok(())
    }

    fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        let selected = self
            .selected
            .as_ref()
            .ok_or_else(|| ComponentError::NotFitted(self.name().to_string()))?;
        if selected.iter().any(|&c| c >= data.n_features()) {
            return Err(ComponentError::InvalidInput(
                "input has fewer features than the fit data".to_string(),
            ));
        }
        Ok(data.select_features(selected))
    }

    fn clone_box(&self) -> BoxedTransformer {
        Box::new(SelectKBest::new(self.k, self.score_fn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::synth;
    use coda_linalg::Matrix;

    /// Dataset where feature 0 is the target (perfect) and feature 1 is noise.
    fn informative() -> Dataset {
        let n = 100;
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let v = (r as f64 * 0.7).sin() * 3.0;
            x[(r, 0)] = v;
            x[(r, 1)] = ((r * 7919) % 97) as f64; // pseudo-noise
            y.push(2.0 * v);
        }
        Dataset::new(x).with_target(y).unwrap()
    }

    #[test]
    fn selects_informative_feature_all_score_fns() {
        for sf in [
            ScoreFunction::FRegression,
            ScoreFunction::CorrelationSquared,
            ScoreFunction::MutualInfo,
        ] {
            let mut sel = SelectKBest::new(1, sf);
            sel.fit(&informative()).unwrap();
            assert_eq!(sel.selected_indices().unwrap(), &[0], "score fn {sf:?}");
        }
    }

    #[test]
    fn variance_selection_is_unsupervised() {
        let x = Matrix::from_rows(&[&[0.0, 100.0], &[0.1, -100.0], &[0.0, 50.0]]);
        let ds = Dataset::new(x); // no target
        let mut sel = SelectKBest::new(1, ScoreFunction::Variance);
        sel.fit(&ds).unwrap();
        assert_eq!(sel.selected_indices().unwrap(), &[1]);
    }

    #[test]
    fn supervised_selection_requires_target() {
        let ds = Dataset::new(Matrix::zeros(5, 2));
        let mut sel = SelectKBest::new(1, ScoreFunction::FRegression);
        assert!(sel.fit(&ds).is_err());
    }

    #[test]
    fn k_capped_at_feature_count() {
        let ds = informative();
        let mut sel = SelectKBest::new(10, ScoreFunction::CorrelationSquared);
        let out = sel.fit_transform(&ds).unwrap();
        assert_eq!(out.n_features(), 2);
    }

    #[test]
    fn friedman_informative_features_found() {
        let ds = synth::friedman1(500, 10, 0.1, 13);
        let mut sel = SelectKBest::new(5, ScoreFunction::MutualInfo);
        sel.fit(&ds).unwrap();
        let chosen = sel.selected_indices().unwrap();
        // x3 has the strongest linear effect (10*x3); it must be selected,
        // and at least 3 of the 5 informative features should be found.
        assert!(chosen.contains(&3));
        let informative_found = chosen.iter().filter(|&&c| c < 5).count();
        assert!(informative_found >= 3, "found {informative_found} informative features");
    }

    #[test]
    fn information_gain_ranks_class_relevant_feature() {
        // feature 0 determines the class; feature 1 is noise
        let ds = synth::classification_blobs(300, 2, 2, 0.4, 14);
        let mut sel = SelectKBest::new(1, ScoreFunction::InformationGain);
        sel.fit(&ds).unwrap();
        let scores = sel.scores().unwrap();
        assert!(scores.iter().all(|&s| s >= 0.0));
        // both blob dimensions are informative here; check properties instead
        // with a constructed case:
        let n = 200;
        let mut x = Matrix::zeros(n, 2);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let class = (r % 2) as f64;
            x[(r, 0)] = class * 10.0 + (r % 7) as f64 * 0.1; // separable
            x[(r, 1)] = (r % 13) as f64; // label-independent
            y.push(class);
        }
        let ds = Dataset::new(x).with_target(y).unwrap();
        let mut sel = SelectKBest::new(1, ScoreFunction::InformationGain);
        sel.fit(&ds).unwrap();
        assert_eq!(sel.selected_indices().unwrap(), &[0]);
        let s = sel.scores().unwrap();
        // perfect separation: IG equals the full class entropy ln(2)
        assert!((s[0] - std::f64::consts::LN_2).abs() < 0.01, "score {}", s[0]);
        assert!(s[1] < 0.05);
    }

    #[test]
    fn information_gain_degenerate_inputs() {
        assert_eq!(information_gain(&[1.0, 1.0, 1.0], &[0.0, 1.0, 0.0], 8), 0.0);
        assert_eq!(information_gain(&[1.0], &[0.0], 8), 0.0);
    }

    #[test]
    fn mutual_info_properties() {
        let a: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let same = binned_mutual_info(&a, &a, 8);
        let noise: Vec<f64> = (0..200).map(|i| ((i * 7919) % 211) as f64).collect();
        let indep = binned_mutual_info(&a, &noise, 8);
        assert!(same > 1.0, "self-MI should be near ln(bins)");
        assert!(indep < same / 2.0);
        assert_eq!(binned_mutual_info(&[1.0, 1.0], &[2.0, 2.0], 8), 0.0);
    }

    #[test]
    fn transform_keeps_target_and_names() {
        let ds = informative().with_feature_names(vec!["good", "noise"]).unwrap();
        let mut sel = SelectKBest::new(1, ScoreFunction::CorrelationSquared);
        let out = sel.fit_transform(&ds).unwrap();
        assert_eq!(out.feature_names(), &["good".to_string()]);
        assert!(out.target().is_some());
    }

    #[test]
    fn set_param_and_errors() {
        let mut sel = SelectKBest::new(2, ScoreFunction::Variance);
        sel.set_param("k", ParamValue::from(1usize)).unwrap();
        assert!(sel.set_param("k", ParamValue::from(0usize)).is_err());
        assert!(sel.set_param("x", ParamValue::from(1usize)).is_err());
        assert!(sel.transform(&informative()).is_err()); // not fitted
    }
}
