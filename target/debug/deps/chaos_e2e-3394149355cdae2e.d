/root/repo/target/debug/deps/chaos_e2e-3394149355cdae2e.d: tests/chaos_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_e2e-3394149355cdae2e.rmeta: tests/chaos_e2e.rs Cargo.toml

tests/chaos_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
