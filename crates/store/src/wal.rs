//! Write-ahead logging and snapshots for home data stores.
//!
//! A [`DurableStore`] wraps a [`HomeDataStore`] and records every
//! state-mutating operation in a [`WriteAheadLog`] *before* applying it.
//! Reads are not logged. Periodically the store folds the log into a
//! [`Snapshot`] (a point-in-time image of the durable state) and truncates
//! the log, bounding replay cost.
//!
//! Crash semantics are crash-stop: when a node dies, its in-memory store
//! vanishes but the snapshot + log survive (modelled by [`DurableImage`],
//! the bytes-on-disk stand-in). [`DurableStore::recover`] rebuilds the
//! store by cloning the snapshot and replaying the log — every operation
//! is deterministic, so the recovered state is byte-identical to the
//! pre-crash state ([`HomeDataStore::export_state`] proves it). Each WAL
//! append is one *crash point*: a [`coda_chaos::CrashPlan`] keyed by the
//! store's logical operation count can kill the node after any record,
//! and recovery must converge from all of them.

use bytes::Bytes;
use coda_obs::{Obs, SpanContext};

use crate::delta::content_hash;
use crate::home::{FetchReply, HomeDataStore};
use crate::lease::{PushMode, UpdateMessage};

/// One logged state-mutating operation, in application order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A new version of `id` was written.
    Put {
        /// Object id.
        id: String,
        /// The full new value (the log is physical, not delta-encoded:
        /// replay must not depend on history the snapshot may have folded
        /// away).
        data: Bytes,
    },
    /// A specific version was installed directly (replica catch-up).
    Install {
        /// Object id.
        id: String,
        /// The installed version number.
        version: u64,
        /// The full value at that version.
        data: Bytes,
    },
    /// A lease was granted or replaced.
    Subscribe {
        /// Subscribing client.
        client: String,
        /// Object id.
        object: String,
        /// Push mode.
        mode: PushMode,
        /// Lease duration in logical ticks.
        duration: u64,
    },
    /// A lease was renewed.
    Renew {
        /// Subscribing client.
        client: String,
        /// Object id.
        object: String,
        /// New duration from the renewal instant.
        duration: u64,
    },
    /// A lease was cancelled.
    Cancel {
        /// Subscribing client.
        client: String,
        /// Object id.
        object: String,
    },
    /// The store's logical clock advanced (lease expiry is clock-driven,
    /// so replay must reproduce the exact tick sequence).
    AdvanceClock {
        /// Ticks advanced.
        ticks: u64,
    },
}

impl WalRecord {
    /// The record's canonical single-line text encoding — the "WAL format"
    /// a real disk log would serialize; used for digests and debugging.
    pub fn render(&self) -> String {
        match self {
            WalRecord::Put { id, data } => {
                format!("put id={id} len={} hash={:016x}", data.len(), content_hash(data))
            }
            WalRecord::Install { id, version, data } => {
                format!(
                    "install id={id} v{version} len={} hash={:016x}",
                    data.len(),
                    content_hash(data)
                )
            }
            WalRecord::Subscribe { client, object, mode, duration } => {
                format!(
                    "subscribe client={client} object={object} mode={mode:?} duration={duration}"
                )
            }
            WalRecord::Renew { client, object, duration } => {
                format!("renew client={client} object={object} duration={duration}")
            }
            WalRecord::Cancel { client, object } => {
                format!("cancel client={client} object={object}")
            }
            WalRecord::AdvanceClock { ticks } => format!("advance ticks={ticks}"),
        }
    }
}

/// An append-only operation log with a base sequence number (operations
/// folded into the last snapshot are truncated away; `base_seq` keeps the
/// global numbering stable).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WriteAheadLog {
    base_seq: u64,
    records: Vec<WalRecord>,
}

impl WriteAheadLog {
    /// An empty log starting at sequence zero.
    pub fn new() -> Self {
        WriteAheadLog::default()
    }

    /// Appends a record, returning its 1-based global sequence number.
    pub fn append(&mut self, record: WalRecord) -> u64 {
        self.records.push(record);
        self.base_seq + self.records.len() as u64
    }

    /// Records currently retained (after the last snapshot).
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// Retained record count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Global sequence number of the last appended record (0 = none yet).
    pub fn last_seq(&self) -> u64 {
        self.base_seq + self.records.len() as u64
    }

    /// Drops every retained record (they were folded into a snapshot at
    /// `last_seq`), keeping global numbering monotone.
    pub fn truncate(&mut self) {
        self.base_seq += self.records.len() as u64;
        self.records.clear();
    }

    /// The canonical text rendering of the retained log.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, r) in self.records.iter().enumerate() {
            let _ = writeln!(out, "{} {}", self.base_seq + i as u64 + 1, r.render());
        }
        out
    }
}

/// A point-in-time image of the durable state, covering every operation
/// up to `last_seq`.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Global sequence number the snapshot covers through.
    pub last_seq: u64,
    store: HomeDataStore,
}

/// What survives a crash: the snapshot plus the log tail — the on-disk
/// bytes a real node would reread at boot.
#[derive(Debug, Clone)]
pub struct DurableImage {
    name: String,
    history_depth: usize,
    snapshot_every: usize,
    snapshot: Option<Snapshot>,
    wal: WriteAheadLog,
}

/// A [`HomeDataStore`] with write-ahead logging, periodic snapshots, and
/// crash recovery by replay.
#[derive(Debug, Clone)]
pub struct DurableStore {
    store: HomeDataStore,
    wal: WriteAheadLog,
    snapshot: Option<Snapshot>,
    /// Fold the log into a snapshot after this many retained records
    /// (0 = never snapshot).
    snapshot_every: usize,
    history_depth: usize,
    obs: Option<Obs>,
}

impl DurableStore {
    /// Creates a durable store; `snapshot_every` bounds the log tail
    /// (0 disables snapshotting).
    pub fn new<S: Into<String>>(name: S, history_depth: usize, snapshot_every: usize) -> Self {
        DurableStore {
            store: HomeDataStore::new(name, history_depth),
            wal: WriteAheadLog::new(),
            snapshot: None,
            snapshot_every,
            history_depth,
            obs: None,
        }
    }

    /// Attaches an observability handle: WAL appends, snapshots and
    /// replays count under `coda_store_wal_*` / `coda_store_snapshot*`
    /// names, and the wrapped store's own instrumentation comes along.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.store.attach_obs(obs.clone());
        self.obs = Some(obs);
    }

    fn obs_count(&self, name: &str, n: u64) {
        if let Some(o) = &self.obs {
            o.count(name, n);
        }
    }

    /// The wrapped store (reads don't need logging, but go through
    /// [`DurableStore::fetch_in`] for accounting anyway).
    pub fn store(&self) -> &HomeDataStore {
        &self.store
    }

    /// The store's name.
    pub fn name(&self) -> &str {
        self.store.name()
    }

    /// Total logical operations ever applied — the crash-point counter a
    /// [`coda_chaos::CrashPlan`] keys on.
    pub fn ops(&self) -> u64 {
        self.wal.last_seq()
    }

    /// The retained log.
    pub fn wal(&self) -> &WriteAheadLog {
        &self.wal
    }

    /// Snapshots taken so far (0 or the covering snapshot's existence).
    pub fn has_snapshot(&self) -> bool {
        self.snapshot.is_some()
    }

    /// Write-ahead: append before applying.
    fn log(&mut self, record: WalRecord) {
        self.wal.append(record);
        self.obs_count("coda_store_wal_appends", 1);
    }

    /// After the logged operation has been applied: fold the log into a
    /// snapshot once the tail is long enough. (Snapshotting *before* apply
    /// would produce a snapshot claiming to cover a record whose effect it
    /// lacks — the lost-write bug recovery tests would catch.)
    fn maybe_snapshot(&mut self) {
        if self.snapshot_every > 0 && self.wal.len() >= self.snapshot_every {
            self.snapshot =
                Some(Snapshot { last_seq: self.wal.last_seq(), store: self.store.clone() });
            self.wal.truncate();
            self.obs_count("coda_store_snapshots", 1);
        }
    }

    /// Logged write: appends to the WAL, then applies.
    pub fn put(&mut self, id: &str, data: Bytes) -> (u64, Vec<UpdateMessage>) {
        self.put_in(id, data, None)
    }

    /// [`DurableStore::put`] carrying a causal trace context.
    pub fn put_in(
        &mut self,
        id: &str,
        data: Bytes,
        parent: Option<SpanContext>,
    ) -> (u64, Vec<UpdateMessage>) {
        self.log(WalRecord::Put { id: id.to_string(), data: data.clone() });
        let out = self.store.put_in(id, data, parent);
        self.maybe_snapshot();
        out
    }

    /// Logged subscribe.
    pub fn subscribe(&mut self, client: &str, object: &str, mode: PushMode, duration: u64) {
        self.log(WalRecord::Subscribe {
            client: client.to_string(),
            object: object.to_string(),
            mode,
            duration,
        });
        self.store.subscribe(client.to_string(), object.to_string(), mode, duration);
        self.maybe_snapshot();
    }

    /// Logged renew. Returns whether an unexpired lease was extended.
    pub fn renew(&mut self, client: &str, object: &str, duration: u64) -> bool {
        self.log(WalRecord::Renew {
            client: client.to_string(),
            object: object.to_string(),
            duration,
        });
        let renewed = self.store.renew(client, object, duration);
        self.maybe_snapshot();
        renewed
    }

    /// Logged cancel. Returns whether a lease was removed.
    pub fn cancel(&mut self, client: &str, object: &str) -> bool {
        self.log(WalRecord::Cancel { client: client.to_string(), object: object.to_string() });
        let removed = self.store.cancel(client, object);
        self.maybe_snapshot();
        removed
    }

    /// Logged clock advance (lease expiry depends on it, so replay must
    /// see the same ticks).
    pub fn advance_clock(&mut self, ticks: u64) {
        self.log(WalRecord::AdvanceClock { ticks });
        self.store.advance_clock(ticks);
        self.maybe_snapshot();
    }

    /// Unlogged read (reads don't mutate durable state).
    ///
    /// # Errors
    ///
    /// Never fails today; mirrors [`HomeDataStore::fetch`].
    pub fn fetch(
        &mut self,
        id: &str,
        client_version: Option<u64>,
    ) -> Result<Option<FetchReply>, std::convert::Infallible> {
        self.store.fetch_in(id, client_version, None)
    }

    /// Unlogged version probe.
    pub fn current_version(&self, id: &str) -> Option<u64> {
        self.store.version_of(id)
    }

    /// Logged direct version install (replica catch-up after failover).
    pub fn install_version(&mut self, id: &str, version: u64, data: Bytes) -> bool {
        self.log(WalRecord::Install { id: id.to_string(), version, data: data.clone() });
        let installed = self.store.install_version(id, version, data);
        self.maybe_snapshot();
        installed
    }

    /// Crashes the node: the in-memory store is dropped; only the durable
    /// image (snapshot + log tail) survives.
    pub fn crash(self) -> DurableImage {
        DurableImage {
            name: self.store.name().to_string(),
            history_depth: self.history_depth,
            snapshot_every: self.snapshot_every,
            snapshot: self.snapshot,
            wal: self.wal,
        }
    }

    /// Boots from a durable image: clones the snapshot (or a fresh store)
    /// and replays the log tail in order. Returns the recovered store and
    /// the number of records replayed. The recovered durable state is
    /// byte-identical to the pre-crash state.
    pub fn recover(image: DurableImage) -> (Self, usize) {
        Self::recover_in(image, None, None)
    }

    /// [`DurableStore::recover`] with optional observability: the whole
    /// replay runs in a `store.wal_replay` span (child of `parent`), and
    /// counts `coda_store_wal_replays` / `coda_store_wal_replayed_records`.
    pub fn recover_in(
        image: DurableImage,
        obs: Option<&Obs>,
        parent: Option<SpanContext>,
    ) -> (Self, usize) {
        let span = obs.map(|o| {
            o.tracer().span_with_parent(
                parent,
                "store.wal_replay",
                &[("store", &image.name), ("records", &image.wal.len().to_string())],
            )
        });
        let ctx = span.as_ref().map(|s| s.context()).or(parent);
        let mut store = match &image.snapshot {
            Some(snap) => snap.store.clone(),
            None => HomeDataStore::new(image.name.clone(), image.history_depth),
        };
        if let Some(o) = obs {
            store.attach_obs(o.clone());
        }
        let replayed = image.wal.len();
        for record in image.wal.records() {
            match record {
                WalRecord::Put { id, data } => {
                    store.put_in(id, data.clone(), ctx);
                }
                WalRecord::Install { id, version, data } => {
                    store.install_version(id, *version, data.clone());
                }
                WalRecord::Subscribe { client, object, mode, duration } => {
                    store.subscribe(client.clone(), object.clone(), *mode, *duration);
                }
                WalRecord::Renew { client, object, duration } => {
                    store.renew(client, object, *duration);
                }
                WalRecord::Cancel { client, object } => {
                    store.cancel(client, object);
                }
                WalRecord::AdvanceClock { ticks } => store.advance_clock(*ticks),
            }
        }
        if let Some(o) = obs {
            o.count("coda_store_wal_replays", 1);
            o.count("coda_store_wal_replayed_records", replayed as u64);
        }
        let recovered = DurableStore {
            store,
            wal: image.wal,
            snapshot: image.snapshot,
            snapshot_every: image.snapshot_every,
            history_depth: image.history_depth,
            obs: obs.cloned(),
        };
        (recovered, replayed)
    }

    /// Canonical dump of the wrapped store's durable state.
    pub fn export_state(&self) -> String {
        self.store.export_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(seed: u8, n: usize) -> Bytes {
        Bytes::from(
            (0..n).map(|i| ((i as u64 * 17 + seed as u64) % 251) as u8).collect::<Vec<u8>>(),
        )
    }

    /// Drives a scripted mixed workload against the store; the crash tests
    /// replay the same script and kill the node at every prefix.
    fn drive(store: &mut DurableStore, steps: usize) {
        for step in 0..steps {
            match step % 5 {
                0 => {
                    store.put(&format!("obj-{}", step % 3), payload(step as u8, 512));
                }
                1 => store.subscribe("c1", &format!("obj-{}", step % 3), PushMode::Delta, 40),
                2 => {
                    store.put(&format!("obj-{}", step % 3), payload(step as u8 + 1, 512));
                }
                3 => {
                    store.renew("c1", &format!("obj-{}", (step + 2) % 3), 60);
                }
                _ => store.advance_clock(7),
            }
        }
    }

    #[test]
    fn replay_reconstructs_the_exact_state() {
        let mut live = DurableStore::new("home", 3, 0);
        drive(&mut live, 23);
        let expected = live.export_state();
        let ops = live.ops();
        let (recovered, replayed) = DurableStore::recover(live.crash());
        assert_eq!(replayed, ops as usize, "no snapshot: the whole log replays");
        assert_eq!(recovered.export_state(), expected, "byte-identical recovery");
        assert_eq!(recovered.ops(), ops, "op counter survives");
    }

    #[test]
    fn snapshot_bounds_replay_and_preserves_state() {
        let mut live = DurableStore::new("home", 3, 5);
        drive(&mut live, 23);
        assert!(live.has_snapshot());
        assert!(live.wal().len() < 5, "log tail stays short");
        let expected = live.export_state();
        let ops = live.ops();
        let (recovered, replayed) = DurableStore::recover(live.crash());
        assert!(replayed < 5, "only the tail replays");
        assert_eq!(recovered.export_state(), expected);
        assert_eq!(recovered.ops(), ops);
    }

    #[test]
    fn crash_at_every_op_recovers_to_the_prefix_state() {
        // ground truth: state after every prefix of the script
        let total = 17usize;
        for cut in 1..=total {
            let mut reference = DurableStore::new("home", 2, 4);
            drive(&mut reference, cut);
            let expected = reference.export_state();

            let mut victim = DurableStore::new("home", 2, 4);
            drive(&mut victim, cut); // crash lands exactly after `cut` ops
            let (recovered, _) = DurableStore::recover(victim.crash());
            assert_eq!(recovered.export_state(), expected, "crash point {cut}");
        }
    }

    #[test]
    fn recovered_store_keeps_serving_and_logging() {
        let mut live = DurableStore::new("home", 3, 0);
        live.put("o", payload(1, 256));
        live.subscribe("c", "o", PushMode::Full, 100);
        let (mut recovered, _) = DurableStore::recover(live.crash());
        // the lease survived the crash: the next put pushes
        let (v, messages) = recovered.put("o", payload(2, 256));
        assert_eq!(v, 2);
        assert_eq!(messages.len(), 1);
        // and the new op is logged for the *next* crash
        let (again, _) = DurableStore::recover(recovered.crash());
        assert_eq!(again.current_version("o"), Some(2));
    }

    #[test]
    fn wal_renders_canonically_and_truncates() {
        let mut wal = WriteAheadLog::new();
        wal.append(WalRecord::Put { id: "o".into(), data: payload(0, 8) });
        wal.append(WalRecord::AdvanceClock { ticks: 5 });
        assert_eq!(wal.last_seq(), 2);
        let text = wal.render();
        assert!(text.contains("1 put id=o len=8"));
        assert!(text.contains("2 advance ticks=5"));
        wal.truncate();
        assert!(wal.is_empty());
        assert_eq!(wal.last_seq(), 2, "numbering survives truncation");
        assert_eq!(wal.append(WalRecord::Cancel { client: "c".into(), object: "o".into() }), 3);
    }

    #[test]
    fn install_version_replays_byte_identically() {
        let mut live = DurableStore::new("replica", 3, 0);
        live.put("o", payload(1, 128));
        assert!(live.install_version("o", 5, payload(9, 128)));
        assert_eq!(live.current_version("o"), Some(5));
        assert!(!live.install_version("o", 4, payload(3, 128)), "versions never regress");
        let expected = live.export_state();
        let (recovered, _) = DurableStore::recover(live.crash());
        assert_eq!(recovered.export_state(), expected);
        assert_eq!(recovered.current_version("o"), Some(5));
    }
}
