/root/repo/target/debug/examples/selective_search-79fc4616f48cb347.d: examples/selective_search.rs Cargo.toml

/root/repo/target/debug/examples/libselective_search-79fc4616f48cb347.rmeta: examples/selective_search.rs Cargo.toml

examples/selective_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
