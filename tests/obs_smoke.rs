//! Smoke test for the unified observability layer: a single shared
//! `MetricsRegistry` collects nonzero counters from all four instrumented
//! crates (core eval, store, DARR, cluster) in one process, and the
//! resulting snapshot renders to Prometheus text and round-trips through
//! JSON.
//!
//! Filterable as one suite: `cargo test --release -- obs_smoke`.

mod common;

use bytes::Bytes;
use coda::cluster::{run_chaos_coop_obs, ChaosCoopConfig};
use coda::data::{CvStrategy, Metric};
use coda::graph::Evaluator;
use coda::obs::Obs;
use coda::store::{ChangeMonitor, HomeDataStore, RecomputeTrigger};
use common::{dataset, fan_out_teg};

/// Drives every instrumented subsystem against one shared `Obs` handle.
fn exercise_all_crates(obs: &Obs) {
    // core: a cached graph evaluation (hits from shared prefixes)
    let ds = dataset(41);
    let graph = fan_out_teg(4);
    Evaluator::new(CvStrategy::kfold(3), Metric::Rmse)
        .with_prefix_cache(true)
        .with_obs(obs.clone())
        .evaluate_graph(&graph, &ds)
        .expect("fixture graph evaluates");

    // store: puts, pulls, and trigger firings on an instrumented home store
    let mut store = HomeDataStore::new("home", 4);
    store.attach_obs(obs.clone());
    let mut monitor = ChangeMonitor::new(RecomputeTrigger::UpdateCount(2));
    monitor.attach_obs(obs.clone());
    for salt in 0..3u8 {
        let blob: Vec<u8> = (0..4096).map(|i| (i % 251) as u8 ^ salt).collect();
        let len = blob.len() as u64;
        store.put("ds", Bytes::from(blob));
        monitor.record_update(len, 0.0);
    }
    store.fetch("ds", None).expect("object exists");

    // darr + cluster: the chaos driver wires its DARR and publishes its report
    let cfg = ChaosCoopConfig {
        seed: 9,
        n_clients: 3,
        n_keys: 8,
        drop_probability: 0.2,
        darr_partition: Some((100.0, 300.0)),
        crash: None,
        claim_duration: 200,
        max_rounds: 10_000,
    };
    let report = run_chaos_coop_obs(&cfg, Some(obs));
    assert_eq!(report.completed, report.n_keys, "chaos run must converge");
}

#[test]
fn obs_smoke_all_four_crates_populate_one_registry() {
    let obs = Obs::wall();
    exercise_all_crates(&obs);
    let snap = obs.registry().snapshot();

    // at least one load-bearing counter per crate is nonzero
    for name in [
        "coda_core_cache_hits",
        "coda_core_eval_paths",
        "coda_store_puts",
        "coda_store_pulls",
        "coda_store_trigger_firings",
        "coda_darr_records_stored",
        "coda_darr_claims_granted",
        "coda_cluster_chaos_completed",
        "coda_cluster_faults_injected",
    ] {
        assert!(snap.counter(name) > 0, "{name} must be nonzero, got snapshot: {snap:?}");
    }
    assert!(
        snap.histograms.contains_key("coda_core_eval_path_ms"),
        "eval timing histogram must be registered"
    );
}

#[test]
fn obs_smoke_snapshot_renders_and_round_trips() {
    let obs = Obs::wall();
    exercise_all_crates(&obs);

    let text = obs.registry().render_prometheus();
    for line in ["coda_core_cache_hits ", "coda_store_puts ", "coda_darr_records_stored "] {
        assert!(text.contains(line), "prometheus text must expose {line:?}:\n{text}");
    }
    assert!(text.contains("# TYPE coda_core_eval_path_ms histogram"));

    let snap = obs.registry().snapshot();
    let json = snap.to_json();
    let parsed = coda::obs::MetricsSnapshot::from_json(&json).expect("snapshot JSON parses back");
    assert_eq!(parsed, snap, "JSON round-trip must be lossless");
}

#[test]
fn obs_smoke_snapshot_diff_attributes_each_phase() {
    // before/after snapshot deltas isolate what each phase contributed to
    // the shared registry, even though every phase writes into it
    let obs = Obs::wall();

    let before_eval = obs.registry().snapshot();
    let ds = dataset(41);
    let graph = fan_out_teg(4);
    Evaluator::new(CvStrategy::kfold(3), Metric::Rmse)
        .with_prefix_cache(true)
        .with_obs(obs.clone())
        .evaluate_graph(&graph, &ds)
        .expect("fixture graph evaluates");
    let after_eval = obs.registry().snapshot();

    let cfg = ChaosCoopConfig {
        seed: 9,
        n_clients: 3,
        n_keys: 8,
        drop_probability: 0.0,
        darr_partition: None,
        crash: None,
        claim_duration: 200,
        max_rounds: 10_000,
    };
    run_chaos_coop_obs(&cfg, Some(&obs));
    let after_chaos = obs.registry().snapshot();

    let eval_phase = after_eval.diff(&before_eval);
    assert_eq!(eval_phase.counter("coda_core_eval_graphs"), 1, "the eval phase ran one graph");
    assert!(eval_phase.counter("coda_core_cache_hits") > 0);
    assert_eq!(eval_phase.counter("coda_darr_records_stored"), 0, "no DARR work in this phase");

    let chaos_phase = after_chaos.diff(&after_eval);
    assert_eq!(chaos_phase.counter("coda_core_eval_graphs"), 0, "no eval work in this phase");
    assert_eq!(chaos_phase.counter("coda_cluster_chaos_keys"), 8);
    assert!(chaos_phase.counter("coda_darr_records_stored") > 0);
    // histograms diff too: the eval phase owns all path timings
    assert_eq!(
        eval_phase.histograms["coda_core_eval_path_ms"].count,
        after_chaos.histograms["coda_core_eval_path_ms"].count,
        "the chaos phase adds no eval-path observations"
    );
}

#[test]
fn obs_smoke_spans_cover_the_taxonomy() {
    let obs = Obs::wall();
    exercise_all_crates(&obs);
    let log = obs.tracer().render_log();
    for needle in
        ["span_start eval.graph", "span_start eval.path", "span_start eval.fold", "event chaos."]
    {
        assert!(log.contains(needle), "trace log must contain {needle:?}");
    }
}
