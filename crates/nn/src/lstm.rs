//! LSTM layer with full backpropagation-through-time (§IV-C2).
//!
//! Consumes flattened time-major windows (`len * ch` columns, as produced by
//! the CascadedWindows transformer) and emits the hidden state of the final
//! timestep (`hidden` columns), which a dense head then maps to the forecast.

use coda_linalg::Matrix;

use crate::layer::{Layer, NnRng};

/// Per-timestep forward cache for one sample.
#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    gates: Vec<f64>, // [i, f, g, o] each `hidden` wide, post-activation
    c: Vec<f64>,
}

/// A single-layer LSTM returning the last hidden state, or — with
/// [`Lstm::returning_sequences`] — the full hidden sequence so LSTM layers
/// can be stacked (the paper's deep 4-layer LSTM architecture).
#[derive(Debug, Clone)]
pub struct Lstm {
    len: usize,
    ch: usize,
    hidden: usize,
    return_sequences: bool,
    weights: Matrix, // (ch + hidden) x (4 * hidden), gate order [i, f, g, o]
    bias: Matrix,    // 1 x (4 * hidden)
    grad_w: Matrix,
    grad_b: Matrix,
    cache: Option<Vec<Vec<StepCache>>>, // per sample, per timestep
}

impl Lstm {
    /// Creates an LSTM over `len`-step windows of `ch` channels with the
    /// given hidden size.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(len: usize, ch: usize, hidden: usize, seed: u64) -> Self {
        assert!(len > 0 && ch > 0 && hidden > 0, "dimensions must be positive");
        let mut rng = NnRng::new(seed.wrapping_add(0x157));
        let fan_in = (ch + hidden) as f64;
        let scale = (1.0 / fan_in).sqrt();
        let mut weights = Matrix::zeros(ch + hidden, 4 * hidden);
        for v in weights.as_mut_slice() {
            *v = rng.normal() * scale;
        }
        let mut bias = Matrix::zeros(1, 4 * hidden);
        // forget-gate bias of 1.0 — standard trick to keep early gradients alive
        for j in hidden..2 * hidden {
            bias[(0, j)] = 1.0;
        }
        Lstm {
            len,
            ch,
            hidden,
            return_sequences: false,
            weights,
            bias,
            grad_w: Matrix::zeros(ch + hidden, 4 * hidden),
            grad_b: Matrix::zeros(1, 4 * hidden),
            cache: None,
        }
    }

    /// Switches the layer to emit the full hidden sequence
    /// (`len * hidden` columns, time-major) instead of the last hidden
    /// state, so another LSTM layer can consume it.
    pub fn returning_sequences(mut self) -> Self {
        self.return_sequences = true;
        self
    }

    /// Hidden-state width (the layer's output width when not returning
    /// sequences).
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Window length the layer consumes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the configured window length is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn sigmoid(v: f64) -> f64 {
        if v >= 0.0 {
            1.0 / (1.0 + (-v).exp())
        } else {
            let e = v.exp();
            e / (1.0 + e)
        }
    }

    /// One timestep forward for one sample; returns `(gates, c, h)`.
    fn step(&self, x: &[f64], h_prev: &[f64], c_prev: &[f64]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let hn = self.hidden;
        let mut pre = vec![0.0; 4 * hn];
        for (j, slot) in pre.iter_mut().enumerate() {
            let mut acc = self.bias[(0, j)];
            for (i, &xv) in x.iter().enumerate() {
                acc += xv * self.weights[(i, j)];
            }
            for (i, &hv) in h_prev.iter().enumerate() {
                acc += hv * self.weights[(self.ch + i, j)];
            }
            *slot = acc;
        }
        let mut gates = vec![0.0; 4 * hn];
        for j in 0..hn {
            gates[j] = Self::sigmoid(pre[j]); // i
            gates[hn + j] = Self::sigmoid(pre[hn + j]); // f
            gates[2 * hn + j] = pre[2 * hn + j].tanh(); // g
            gates[3 * hn + j] = Self::sigmoid(pre[3 * hn + j]); // o
        }
        let mut c = vec![0.0; hn];
        let mut h = vec![0.0; hn];
        for j in 0..hn {
            c[j] = gates[hn + j] * c_prev[j] + gates[j] * gates[2 * hn + j];
            h[j] = gates[3 * hn + j] * c[j].tanh();
        }
        (gates, c, h)
    }
}

impl Layer for Lstm {
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix {
        assert_eq!(
            input.cols(),
            self.len * self.ch,
            "lstm expects {} columns, got {}",
            self.len * self.ch,
            input.cols()
        );
        let hn = self.hidden;
        let out_cols = if self.return_sequences { self.len * hn } else { hn };
        let mut out = Matrix::zeros(input.rows(), out_cols);
        let mut all_caches = Vec::with_capacity(if training { input.rows() } else { 0 });
        for r in 0..input.rows() {
            let row = input.row(r);
            let mut h = vec![0.0; hn];
            let mut c = vec![0.0; hn];
            let mut caches = Vec::with_capacity(if training { self.len } else { 0 });
            for t in 0..self.len {
                let x = &row[t * self.ch..(t + 1) * self.ch];
                let (gates, c_new, h_new) = self.step(x, &h, &c);
                if training {
                    caches.push(StepCache {
                        x: x.to_vec(),
                        h_prev: h.clone(),
                        c_prev: c.clone(),
                        gates,
                        c: c_new.clone(),
                    });
                }
                h = h_new;
                c = c_new;
                if self.return_sequences {
                    out.row_mut(r)[t * hn..(t + 1) * hn].copy_from_slice(&h);
                }
            }
            if !self.return_sequences {
                out.row_mut(r).copy_from_slice(&h);
            }
            if training {
                all_caches.push(caches);
            }
        }
        if training {
            self.cache = Some(all_caches);
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let caches = self.cache.as_ref().expect("backward before forward");
        let hn = self.hidden;
        let mut grad_in = Matrix::zeros(caches.len(), self.len * self.ch);
        for (r, sample) in caches.iter().enumerate() {
            let grad_row = grad_output.row(r);
            let mut dh: Vec<f64> = if self.return_sequences {
                grad_row[(self.len - 1) * hn..self.len * hn].to_vec()
            } else {
                grad_row.to_vec()
            };
            let mut dc = vec![0.0; hn];
            for t in (0..self.len).rev() {
                let sc = &sample[t];
                // h = o * tanh(c)
                let mut dpre = vec![0.0; 4 * hn];
                for j in 0..hn {
                    let i_g = sc.gates[j];
                    let f_g = sc.gates[hn + j];
                    let g_g = sc.gates[2 * hn + j];
                    let o_g = sc.gates[3 * hn + j];
                    let tc = sc.c[j].tanh();
                    let do_ = dh[j] * tc;
                    let dct = dc[j] + dh[j] * o_g * (1.0 - tc * tc);
                    let di = dct * g_g;
                    let df = dct * sc.c_prev[j];
                    let dg = dct * i_g;
                    dc[j] = dct * f_g; // propagate to c_{t-1}
                    dpre[j] = di * i_g * (1.0 - i_g);
                    dpre[hn + j] = df * f_g * (1.0 - f_g);
                    dpre[2 * hn + j] = dg * (1.0 - g_g * g_g);
                    dpre[3 * hn + j] = do_ * o_g * (1.0 - o_g);
                }
                // accumulate parameter grads and input/hidden grads
                let mut dh_prev = vec![0.0; hn];
                for (j, &d) in dpre.iter().enumerate() {
                    if d == 0.0 {
                        continue;
                    }
                    self.grad_b[(0, j)] += d;
                    for (i, &xv) in sc.x.iter().enumerate() {
                        self.grad_w[(i, j)] += d * xv;
                        grad_in[(r, t * self.ch + i)] += d * self.weights[(i, j)];
                    }
                    for (i, &hv) in sc.h_prev.iter().enumerate() {
                        self.grad_w[(self.ch + i, j)] += d * hv;
                        dh_prev[i] += d * self.weights[(self.ch + i, j)];
                    }
                }
                if self.return_sequences && t > 0 {
                    // the hidden state at t-1 also fed the output directly
                    for (d, &g) in dh_prev.iter_mut().zip(&grad_row[(t - 1) * hn..t * hn]) {
                        *d += g;
                    }
                }
                dh = dh_prev;
            }
        }
        grad_in
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Matrix, &mut Matrix)> {
        vec![(&mut self.weights, &mut self.grad_w), (&mut self.bias, &mut self.grad_b)]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let mut lstm = Lstm::new(6, 2, 5, 1);
        let x = Matrix::zeros(3, 12);
        let out = lstm.forward(&x, false);
        assert_eq!(out.shape(), (3, 5));
    }

    #[test]
    fn zero_input_gives_bounded_output() {
        let mut lstm = Lstm::new(4, 1, 3, 2);
        let x = Matrix::zeros(1, 4);
        let out = lstm.forward(&x, false);
        assert!(out.as_slice().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut lstm = Lstm::new(3, 2, 2, 3);
        let mut x = Matrix::zeros(2, 6);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v = ((i as f64) * 0.7).sin();
        }
        lstm.zero_grads();
        let out = lstm.forward(&x, true);
        let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
        lstm.backward(&ones);
        for &(wi, wj) in &[(0, 0), (1, 3), (3, 5), (2, 7)] {
            let analytic = lstm.grad_w[(wi, wj)];
            let eps = 1e-6;
            let orig = lstm.weights[(wi, wj)];
            lstm.weights[(wi, wj)] = orig + eps;
            let plus: f64 = lstm.forward(&x, false).as_slice().iter().sum();
            lstm.weights[(wi, wj)] = orig - eps;
            let minus: f64 = lstm.forward(&x, false).as_slice().iter().sum();
            lstm.weights[(wi, wj)] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-4,
                "w[{wi},{wj}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut lstm = Lstm::new(3, 1, 2, 4);
        let x = Matrix::from_rows(&[&[0.3, -0.5, 0.9]]);
        let out = lstm.forward(&x, true);
        let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
        let gin = lstm.backward(&ones);
        for col in 0..3 {
            let eps = 1e-6;
            let mut xp = x.clone();
            xp[(0, col)] += eps;
            let plus: f64 = lstm.forward(&xp, false).as_slice().iter().sum();
            let mut xm = x.clone();
            xm[(0, col)] -= eps;
            let minus: f64 = lstm.forward(&xm, false).as_slice().iter().sum();
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (gin[(0, col)] - numeric).abs() < 1e-4,
                "col {col}: analytic {} vs numeric {numeric}",
                gin[(0, col)]
            );
        }
    }

    #[test]
    fn bias_gradient_matches_finite_difference() {
        let mut lstm = Lstm::new(2, 1, 2, 5);
        let x = Matrix::from_rows(&[&[0.4, -0.8]]);
        lstm.zero_grads();
        let out = lstm.forward(&x, true);
        lstm.backward(&Matrix::filled(out.rows(), out.cols(), 1.0));
        let j = 2;
        let analytic = lstm.grad_b[(0, j)];
        let eps = 1e-6;
        let orig = lstm.bias[(0, j)];
        lstm.bias[(0, j)] = orig + eps;
        let plus: f64 = lstm.forward(&x, false).as_slice().iter().sum();
        lstm.bias[(0, j)] = orig - eps;
        let minus: f64 = lstm.forward(&x, false).as_slice().iter().sum();
        lstm.bias[(0, j)] = orig;
        let numeric = (plus - minus) / (2.0 * eps);
        assert!((analytic - numeric).abs() < 1e-4);
    }

    #[test]
    fn sequence_mode_shape_and_last_step_matches() {
        let x = Matrix::from_rows(&[&[0.1, 0.4, -0.3, 0.8]]);
        let mut last = Lstm::new(4, 1, 3, 7);
        let mut seq = Lstm::new(4, 1, 3, 7).returning_sequences();
        let ol = last.forward(&x, false);
        let os = seq.forward(&x, false);
        assert_eq!(os.shape(), (1, 12));
        // the last 3 columns of the sequence output equal the last-state output
        for j in 0..3 {
            assert!((os[(0, 9 + j)] - ol[(0, j)]).abs() < 1e-12);
        }
    }

    #[test]
    fn sequence_mode_gradient_matches_finite_difference() {
        let mut lstm = Lstm::new(3, 1, 2, 8).returning_sequences();
        let x = Matrix::from_rows(&[&[0.2, -0.6, 0.5]]);
        lstm.zero_grads();
        let out = lstm.forward(&x, true);
        lstm.backward(&Matrix::filled(out.rows(), out.cols(), 1.0));
        for &(wi, wj) in &[(0, 0), (1, 5), (2, 3)] {
            let analytic = lstm.grad_w[(wi, wj)];
            let eps = 1e-6;
            let orig = lstm.weights[(wi, wj)];
            lstm.weights[(wi, wj)] = orig + eps;
            let plus: f64 = lstm.forward(&x, false).as_slice().iter().sum();
            lstm.weights[(wi, wj)] = orig - eps;
            let minus: f64 = lstm.forward(&x, false).as_slice().iter().sum();
            lstm.weights[(wi, wj)] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-4,
                "w[{wi},{wj}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn stacked_lstms_train() {
        use crate::layer::Dense;
        use crate::loss::Loss;
        use crate::network::Sequential;
        use crate::optim::Adam;
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for i in 0..40 {
            let base = (i as f64 * 0.37).cos();
            let seq: Vec<f64> = (0..4).map(|t| base + 0.05 * t as f64).collect();
            targets.push(vec![seq[3]]);
            rows.push(seq);
        }
        let xr: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let yr: Vec<&[f64]> = targets.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&xr);
        let y = Matrix::from_rows(&yr);
        let mut net = Sequential::new()
            .push(Lstm::new(4, 1, 6, 9).returning_sequences())
            .push(Lstm::new(4, 6, 6, 10))
            .push(Dense::new(6, 1, 11));
        let mut opt = Adam::new(0.02);
        let hist = net.fit(&x, &y, Loss::Mse, &mut opt, 120, 8, 5);
        assert!(hist.last().unwrap() < &0.05, "final loss {}", hist.last().unwrap());
    }

    #[test]
    fn order_sensitivity() {
        // an LSTM must distinguish a sequence from its reverse
        let mut lstm = Lstm::new(4, 1, 3, 6);
        let fwd = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let rev = Matrix::from_rows(&[&[4.0, 3.0, 2.0, 1.0]]);
        let of = lstm.forward(&fwd, false);
        let or = lstm.forward(&rev, false);
        let diff: f64 = of.as_slice().iter().zip(or.as_slice()).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6, "outputs must differ for reversed input");
    }
}
