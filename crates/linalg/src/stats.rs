//! Scalar/vector statistics helpers shared by the ML stack.
//!
//! All helpers skip NaN-free preconditions: callers are expected to have
//! removed or imputed missing values first, except where documented.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.iter().sum::<f64>() / a.len() as f64
}

/// Sample variance (divides by `n-1`); `0.0` when fewer than two values.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (a.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Median; `0.0` for an empty slice.
pub fn median(a: &[f64]) -> f64 {
    percentile(a, 50.0)
}

/// Linear-interpolated percentile `p` in `[0, 100]`; `0.0` for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(a: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be within [0, 100]");
    if a.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = a.to_vec();
    v.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Most frequent value (mode), comparing by bit pattern; `None` for empty input.
///
/// Ties are broken toward the smallest value for determinism.
pub fn mode_value(a: &[f64]) -> Option<f64> {
    if a.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = a.to_vec();
    v.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let mut best = v[0];
    let mut best_count = 1usize;
    let mut cur = v[0];
    let mut count = 1usize;
    for &x in &v[1..] {
        if x == cur {
            count += 1;
        } else {
            cur = x;
            count = 1;
        }
        if count > best_count {
            best_count = count;
            best = cur;
        }
    }
    Some(best)
}

/// Pearson correlation coefficient of two equal-length slices; `0.0` when a
/// slice has zero variance.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    if a.len() < 2 {
        return 0.0;
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (x, y) in a.iter().zip(b) {
        num += (x - ma) * (y - mb);
        da += (x - ma) * (x - ma);
        db += (y - mb) * (y - mb);
    }
    if da == 0.0 || db == 0.0 {
        return 0.0;
    }
    num / (da.sqrt() * db.sqrt())
}

/// Autocorrelation of `a` at the given lag; `0.0` if the lag leaves fewer
/// than two points or the series is constant.
pub fn autocorrelation(a: &[f64], lag: usize) -> f64 {
    if lag >= a.len() || a.len() - lag < 2 {
        return 0.0;
    }
    let m = mean(a);
    let denom: f64 = a.iter().map(|x| (x - m) * (x - m)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = (0..a.len() - lag).map(|i| (a[i] - m) * (a[i + lag] - m)).sum();
    num / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mean_variance_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((variance(&v) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&v) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(mode_value(&[]), None);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert!((percentile(&v, 25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn mode_prefers_most_frequent_then_smallest() {
        assert_eq!(mode_value(&[1.0, 2.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mode_value(&[3.0, 1.0]), Some(1.0)); // tie -> smallest
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let x = [1.0, 2.0, 3.0];
        assert!((pearson(&x, &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn autocorrelation_behaviour() {
        // strongly positively autocorrelated ramp
        let ramp: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert!(autocorrelation(&ramp, 1) > 0.9);
        // alternating series is negatively autocorrelated at lag 1
        let alt: Vec<f64> = (0..50).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        assert!(autocorrelation(&alt, 1) < -0.9);
        assert_eq!(autocorrelation(&ramp, 100), 0.0);
    }
}
