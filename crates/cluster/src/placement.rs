//! Work placement (paper §III): run analytics locally on the client, or
//! ship the data to the cloud analytics servers? Local execution avoids
//! network latency and works offline; cloud execution parallelizes the grid
//! across VMs.

use coda_chaos::{RetryPolicy, RetryStats};

use crate::network::SimNetwork;
use crate::node::{AnalyticsTask, ComputeNode};

/// Where the scheduler placed the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Execute on the client.
    Local,
    /// Ship input to the cloud, execute there, return results.
    Cloud,
}

/// The decision plus the predicted completion time of both options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementDecision {
    /// The chosen placement.
    pub placement: Placement,
    /// Predicted local completion time (ms).
    pub local_ms: f64,
    /// Predicted cloud completion time (ms), `None` when disconnected.
    pub cloud_ms: Option<f64>,
}

/// What actually happened when a placement decision was executed under
/// possible network faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionOutcome {
    /// Where the work actually ran (a cloud decision degrades to local when
    /// the link keeps failing).
    pub realized: Placement,
    /// Realized completion time (ms).
    pub elapsed_ms: f64,
    /// Retry accounting for the cloud round-trip attempts.
    pub retry: RetryStats,
}

/// The placement scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scheduler;

/// Result bytes returned per subtask (model scores and metadata).
const RESULT_BYTES_PER_SUBTASK: u64 = 256;

impl Scheduler {
    /// Predicts both completion times and picks the faster option; falls
    /// back to local when the cloud is unreachable.
    pub fn place(
        task: &AnalyticsTask,
        client: &ComputeNode,
        cloud: &ComputeNode,
        net: &SimNetwork,
    ) -> PlacementDecision {
        let local_ms = client.execution_time(task);
        if !net.is_connected(client.name(), cloud.name()) {
            return PlacementDecision { placement: Placement::Local, local_ms, cloud_ms: None };
        }
        // predict without mutating accounting
        let mut probe = net.clone();
        let upload = probe.transfer(client.name(), cloud.name(), task.input_bytes);
        let download = probe.transfer(
            cloud.name(),
            client.name(),
            task.n_subtasks as u64 * RESULT_BYTES_PER_SUBTASK,
        );
        let cloud_ms = match (upload, download) {
            (Some(u), Some(d)) => Some(u + cloud.execution_time(task) + d),
            _ => None,
        };
        let placement = match cloud_ms {
            Some(c) if c < local_ms => Placement::Cloud,
            _ => Placement::Local,
        };
        PlacementDecision { placement, local_ms, cloud_ms }
    }

    /// One attempted cloud round trip: upload, remote execution, download.
    /// `None` when either network leg fails (disconnect or injected fault).
    fn cloud_round_trip(
        task: &AnalyticsTask,
        client: &ComputeNode,
        cloud: &ComputeNode,
        net: &mut SimNetwork,
    ) -> Option<f64> {
        let up = net.transfer(client.name(), cloud.name(), task.input_bytes)?;
        let down = net.transfer(
            cloud.name(),
            client.name(),
            task.n_subtasks as u64 * RESULT_BYTES_PER_SUBTASK,
        )?;
        Some(up + cloud.execution_time(task) + down)
    }

    /// Executes the decision against the real (accounted) network, returning
    /// the realized completion time. A cloud decision whose transfer fails
    /// mid-execution (the link dropped after placement, or a fault was
    /// injected) degrades gracefully to local execution instead of failing.
    pub fn execute(
        decision: &PlacementDecision,
        task: &AnalyticsTask,
        client: &ComputeNode,
        cloud: &ComputeNode,
        net: &mut SimNetwork,
    ) -> f64 {
        match decision.placement {
            Placement::Local => client.execution_time(task),
            Placement::Cloud => Self::cloud_round_trip(task, client, cloud, net)
                .unwrap_or_else(|| client.execution_time(task)),
        }
    }

    /// Executes a cloud decision under a retry policy: failed round trips
    /// are retried with backoff (advancing any attached chaos clock so
    /// scheduled outages can heal); when the policy exhausts, the work runs
    /// locally — the offload degrades, the task still completes.
    pub fn execute_with_retry(
        decision: &PlacementDecision,
        task: &AnalyticsTask,
        client: &ComputeNode,
        cloud: &ComputeNode,
        net: &mut SimNetwork,
        policy: &RetryPolicy,
    ) -> ExecutionOutcome {
        let mut state = policy.state();
        if decision.placement == Placement::Local {
            state.begin_attempt();
            return ExecutionOutcome {
                realized: Placement::Local,
                elapsed_ms: client.execution_time(task),
                retry: state.finish(true),
            };
        }
        loop {
            state.begin_attempt();
            if let Some(elapsed) = Self::cloud_round_trip(task, client, cloud, net) {
                return ExecutionOutcome {
                    realized: Placement::Cloud,
                    elapsed_ms: elapsed,
                    retry: state.finish(true),
                };
            }
            match state.next_backoff_ms() {
                Some(backoff) => net.advance_chaos_clock(backoff),
                None => {
                    let stats = state.finish(false);
                    return ExecutionOutcome {
                        realized: Placement::Local,
                        elapsed_ms: stats.total_backoff_ms + client.execution_time(task),
                        retry: stats,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ComputeNode, ComputeNode, AnalyticsTask) {
        (
            ComputeNode::client("edge", 1.0),
            ComputeNode::cloud("dc", 4.0, 8),
            AnalyticsTask { n_subtasks: 32, work_per_subtask: 100.0, input_bytes: 100_000 },
        )
    }

    #[test]
    fn fast_network_prefers_cloud() {
        let (client, cloud, task) = setup();
        let net = SimNetwork::new(5.0, 10_000.0);
        let d = Scheduler::place(&task, &client, &cloud, &net);
        assert_eq!(d.placement, Placement::Cloud);
        assert!(d.cloud_ms.unwrap() < d.local_ms);
    }

    #[test]
    fn huge_latency_prefers_local() {
        let (client, cloud, task) = setup();
        let net = SimNetwork::new(10_000.0, 10_000.0);
        let d = Scheduler::place(&task, &client, &cloud, &net);
        assert_eq!(d.placement, Placement::Local);
    }

    #[test]
    fn disconnected_forces_local() {
        let (client, cloud, task) = setup();
        let mut net = SimNetwork::new(1.0, 10_000.0);
        net.disconnect("edge", "dc");
        let d = Scheduler::place(&task, &client, &cloud, &net);
        assert_eq!(d.placement, Placement::Local);
        assert!(d.cloud_ms.is_none());
    }

    #[test]
    fn more_vms_shift_crossover() {
        let (client, _, task) = setup();
        // a slow link where a 2-VM cloud loses but a 32-VM cloud wins
        let net = SimNetwork::new(100.0, 50.0);
        let small = ComputeNode::cloud("dc", 4.0, 2);
        let big = ComputeNode::cloud("dc", 4.0, 32);
        let d_small = Scheduler::place(&task, &client, &small, &net);
        let d_big = Scheduler::place(&task, &client, &big, &net);
        assert!(d_big.cloud_ms.unwrap() < d_small.cloud_ms.unwrap());
        assert_eq!(d_big.placement, Placement::Cloud);
    }

    #[test]
    fn cloud_execute_degrades_to_local_when_link_dies() {
        let (client, cloud, task) = setup();
        let mut net = SimNetwork::new(5.0, 10_000.0);
        let d = Scheduler::place(&task, &client, &cloud, &net);
        assert_eq!(d.placement, Placement::Cloud);
        // the link dies between placement and execution
        net.disconnect("edge", "dc");
        let realized = Scheduler::execute(&d, &task, &client, &cloud, &mut net);
        assert!((realized - d.local_ms).abs() < 1e-9, "fell back to local time");
    }

    #[test]
    fn execute_with_retry_rides_out_transient_drops() {
        use coda_chaos::{FaultInjector, FaultPlan, RetryPolicy};
        let (client, cloud, task) = setup();
        let mut net = SimNetwork::new(5.0, 10_000.0);
        let d = Scheduler::place(&task, &client, &cloud, &net);
        assert_eq!(d.placement, Placement::Cloud);
        net.set_fault_injector(FaultInjector::new(FaultPlan::new(3).with_drop_probability(0.5)));
        let policy = RetryPolicy::exponential(5.0, 2.0, 50.0, 10);
        let out = Scheduler::execute_with_retry(&d, &task, &client, &cloud, &mut net, &policy);
        assert_eq!(out.realized, Placement::Cloud);
        assert_eq!(out.retry.successes, 1);
    }

    #[test]
    fn execute_with_retry_exhausts_to_local_fallback() {
        use coda_chaos::{FaultInjector, FaultPlan, RetryPolicy};
        let (client, cloud, task) = setup();
        let mut net = SimNetwork::new(5.0, 10_000.0);
        let d = Scheduler::place(&task, &client, &cloud, &net);
        net.set_fault_injector(FaultInjector::new(FaultPlan::new(3).with_drop_probability(1.0)));
        let policy = RetryPolicy::fixed(10.0, 4);
        let out = Scheduler::execute_with_retry(&d, &task, &client, &cloud, &mut net, &policy);
        assert_eq!(out.realized, Placement::Local);
        assert_eq!(out.retry.exhausted, 1);
        assert_eq!(out.retry.attempts, 4);
        // the fallback still completes the work, paying backoff + local time
        assert!(out.elapsed_ms >= d.local_ms);
    }

    #[test]
    fn execute_matches_prediction_and_accounts() {
        let (client, cloud, task) = setup();
        let mut net = SimNetwork::new(5.0, 10_000.0);
        let d = Scheduler::place(&task, &client, &cloud, &net);
        let realized = Scheduler::execute(&d, &task, &client, &cloud, &mut net);
        assert!((realized - d.cloud_ms.unwrap()).abs() < 1e-9);
        assert_eq!(net.messages, 2);
        assert!(net.bytes >= task.input_bytes);
        // local execution moves no bytes
        let mut net2 = SimNetwork::new(10_000.0, 1.0);
        let d2 = Scheduler::place(&task, &client, &cloud, &net2);
        let t2 = Scheduler::execute(&d2, &task, &client, &cloud, &mut net2);
        assert_eq!(net2.messages, 0);
        assert!((t2 - d2.local_ms).abs() < 1e-9);
    }
}
