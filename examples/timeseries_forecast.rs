//! Time-series prediction with the Fig. 11 pipeline: Data Scaling → Data
//! Preprocessing (cascaded / flat / IID / as-is windows) → Modelling
//! (temporal DNNs, standard DNNs, statistical models), evaluated with the
//! Fig. 12 sliding split. The output is the best-performing set of
//! transformers and estimators.
//!
//! Run with: `cargo run --release --example timeseries_forecast`

use coda::data::{synth, Metric};
use coda::timeseries::{SeriesData, TimeSeriesPipelineBuilder, TsEvaluator};
use coda_linalg::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A multivariate industrial sensor series (Fig. 6): shared latent
    // regime + per-channel seasonality. Forecast channel 0.
    let raw: Matrix = synth::multivariate_sensors(600, 3, 7);
    let series = SeriesData::new(raw, 0);
    println!(
        "series: {} timestamps x {} variables, forecasting variable {}",
        series.len(),
        series.n_vars(),
        series.target_var()
    );

    let graph = TimeSeriesPipelineBuilder::new(24, 1, series.n_vars())
        .with_deep_variants(false) // keep the demo fast; enable for the full sweep
        .with_epochs(40)
        .with_seed(3)
        .build()?;
    println!("pipeline graph: {} paths", graph.enumerate_pipelines()?.len());

    // Fig. 12: train 300 / buffer 10 / validate 60, slid 3 times.
    let evaluator = TsEvaluator::sliding(300, 10, 60, 3, Metric::Rmse).with_threads(4);
    let report = evaluator.evaluate_graph(&graph, &series)?;
    println!("{report}");

    let best = report.best().expect("paths evaluated");
    println!("winner: {}  (rmse {:.4})", best.spec.steps.join(" -> "), best.mean_score);
    if let (Some(zero), Some(best_score)) =
        (report.score_for("zero_model"), report.best().map(|b| b.mean_score))
    {
        println!(
            "persistence baseline rmse {zero:.4}; best model improves by {:.1}%",
            (1.0 - best_score / zero) * 100.0
        );
    }
    Ok(())
}
