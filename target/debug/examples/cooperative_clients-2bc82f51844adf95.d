/root/repo/target/debug/examples/cooperative_clients-2bc82f51844adf95.d: examples/cooperative_clients.rs

/root/repo/target/debug/examples/cooperative_clients-2bc82f51844adf95: examples/cooperative_clients.rs

examples/cooperative_clients.rs:
