//! Graphviz DOT export — the visual-inspection output of Listing 1's
//! `create_graph` (paper: "the output would be similar to Figure 3").

use crate::graph::Teg;
use crate::node::Component;

/// Renders the graph in Graphviz DOT format. Transform nodes are boxes,
/// Estimate nodes are ellipses, and a synthetic `input` node feeds the roots.
pub fn to_dot(teg: &Teg) -> String {
    let mut s = String::from("digraph teg {\n  rankdir=LR;\n  input [shape=diamond];\n");
    for (i, node) in teg.nodes().iter().enumerate() {
        let shape = match node.component() {
            Component::Transform(_) => "box",
            Component::Estimate(_) => "ellipse",
        };
        s.push_str(&format!("  n{i} [label=\"{}\", shape={shape}];\n", node.name()));
    }
    for &r in teg.roots() {
        s.push_str(&format!("  input -> n{r};\n"));
    }
    for (i, _) in teg.nodes().iter().enumerate() {
        for &j in teg.successors(i) {
            s.push_str(&format!("  n{i} -> n{j};\n"));
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TegBuilder;
    use coda_data::NoOp;
    use coda_ml::LinearRegression;

    #[test]
    fn dot_contains_nodes_edges_and_shapes() {
        let g = TegBuilder::new()
            .add_feature_scalers(vec![Box::new(NoOp::new())])
            .add_models(vec![Box::new(LinearRegression::new())])
            .create_graph()
            .unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph teg {"));
        assert!(dot.contains("label=\"noop\", shape=box"));
        assert!(dot.contains("label=\"linear_regression\", shape=ellipse"));
        assert!(dot.contains("input -> n0;"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.ends_with("}\n"));
    }
}
