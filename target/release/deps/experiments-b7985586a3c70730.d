/root/repo/target/release/deps/experiments-b7985586a3c70730.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-b7985586a3c70730: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
