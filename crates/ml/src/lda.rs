//! Linear discriminant analysis (the "LDA" of Table I): supervised
//! dimensionality reduction maximizing between-class over within-class
//! scatter.

use coda_data::{BoxedTransformer, ComponentError, Dataset, ParamValue, Transformer};
use coda_linalg::{symmetric_eigen, Matrix};

/// Fisher LDA transformer: projects onto the top discriminant directions
/// (at most `n_classes − 1`).
///
/// # Examples
///
/// ```
/// use coda_data::{synth, Transformer};
/// use coda_ml::Lda;
///
/// let ds = synth::classification_blobs(150, 5, 3, 0.5, 4);
/// let mut lda = Lda::new(2);
/// let out = lda.fit_transform(&ds)?;
/// assert_eq!(out.n_features(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Lda {
    n_components: usize,
    projection: Option<Matrix>, // d x k
    means: Option<Vec<f64>>,
}

impl Lda {
    /// Creates an LDA keeping `n_components` discriminants.
    ///
    /// # Panics
    ///
    /// Panics if `n_components == 0`.
    pub fn new(n_components: usize) -> Self {
        assert!(n_components > 0, "n_components must be positive");
        Lda { n_components, projection: None, means: None }
    }
}

impl Transformer for Lda {
    fn name(&self) -> &str {
        "lda"
    }

    fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
        match param {
            "n_components" => {
                self.n_components = value.as_usize().filter(|&k| k > 0).ok_or_else(|| {
                    ComponentError::InvalidParam {
                        component: "lda".to_string(),
                        param: param.to_string(),
                        reason: "must be a positive integer".to_string(),
                    }
                })?;
                Ok(())
            }
            _ => Err(ComponentError::UnknownParam {
                component: self.name().to_string(),
                param: param.to_string(),
            }),
        }
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        let y = data.target_required()?;
        let classes = data.classes()?;
        if classes.len() < 2 {
            return Err(ComponentError::InvalidInput("lda needs at least two classes".to_string()));
        }
        let x = data.features();
        let d = x.cols();
        let n = x.rows() as f64;
        let grand_mean = x.column_means();
        // within-class scatter Sw and between-class scatter Sb
        let mut sw = Matrix::zeros(d, d);
        let mut sb = Matrix::zeros(d, d);
        for class in &classes {
            let idx: Vec<usize> = (0..y.len()).filter(|&i| y[i] == *class).collect();
            if idx.len() < 2 {
                continue;
            }
            let sub = x.select_rows(&idx);
            let cmean = sub.column_means();
            for row in sub.iter_rows() {
                for i in 0..d {
                    let di = row[i] - cmean[i];
                    for j in 0..d {
                        sw[(i, j)] += di * (row[j] - cmean[j]);
                    }
                }
            }
            let w = idx.len() as f64 / n;
            for i in 0..d {
                let di = cmean[i] - grand_mean[i];
                for j in 0..d {
                    sb[(i, j)] += w * di * (cmean[j] - grand_mean[j]);
                }
            }
        }
        // regularize Sw and solve the symmetrized problem:
        // Sw^{-1/2} Sb Sw^{-1/2} via Sw^{-1} Sb eigen through a two-step:
        // use M = Sw^{-1} Sb directly is non-symmetric; instead whiten with
        // the eigen decomposition of Sw.
        let scale = sw.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
        for i in 0..d {
            sw[(i, i)] += 1e-8 * scale;
        }
        let sw_eig = symmetric_eigen(&sw)
            .map_err(|e| ComponentError::Numerical(format!("lda Sw eigen failed: {e}")))?;
        // W = V diag(1/sqrt(lambda)) Vᵀ  (Sw^{-1/2})
        let mut dinv = Matrix::zeros(d, d);
        for i in 0..d {
            dinv[(i, i)] = 1.0 / sw_eig.values[i].max(1e-12).sqrt();
        }
        let whiten = sw_eig
            .vectors
            .matmul(&dinv)
            .and_then(|m| m.matmul(&sw_eig.vectors.transpose()))
            .map_err(|e| ComponentError::Numerical(e.to_string()))?;
        let m = whiten
            .matmul(&sb)
            .and_then(|t| t.matmul(&whiten))
            .map_err(|e| ComponentError::Numerical(e.to_string()))?;
        let eig = symmetric_eigen(&m)
            .map_err(|e| ComponentError::Numerical(format!("lda eigen failed: {e}")))?;
        let k = self.n_components.min(classes.len() - 1).min(d);
        let keep: Vec<usize> = (0..k).collect();
        let directions = whiten
            .matmul(&eig.vectors.select_cols(&keep))
            .map_err(|e| ComponentError::Numerical(e.to_string()))?;
        self.projection = Some(directions);
        self.means = Some(grand_mean);
        Ok(())
    }

    fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        let (proj, means) = match (&self.projection, &self.means) {
            (Some(p), Some(m)) => (p, m),
            _ => return Err(ComponentError::NotFitted(self.name().to_string())),
        };
        if means.len() != data.n_features() {
            return Err(ComponentError::InvalidInput(format!(
                "lda fitted on {} features, input has {}",
                means.len(),
                data.n_features()
            )));
        }
        let x = data.features();
        let mut centred = x.clone();
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                centred[(r, c)] -= means[c];
            }
        }
        let projected =
            centred.matmul(proj).map_err(|e| ComponentError::Numerical(e.to_string()))?;
        Ok(data.replace_features(projected))
    }

    fn clone_box(&self) -> BoxedTransformer {
        Box::new(Lda::new(self.n_components))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::{metrics, synth, Estimator};

    #[test]
    fn projection_separates_classes_better_than_pca() {
        // blobs close along the max-variance direction but separated along
        // a low-variance one: LDA must beat PCA at 1 component
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let big = (i as f64 * 0.77).sin() * 10.0; // high-variance shared axis
            let class = (i % 2) as f64;
            let small = class * 2.0 + (i as f64 * 0.31).cos() * 0.3;
            rows.push(vec![big, small]);
            labels.push(class);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let ds = Dataset::new(Matrix::from_rows(&refs)).with_target(labels).unwrap();
        let mut lda = Lda::new(1);
        let lda_out = lda.fit_transform(&ds).unwrap();
        let mut pca = crate::Pca::new(1);
        let pca_out = pca.fit_transform(&ds).unwrap();
        let sep = |v: &[f64], y: &[f64]| {
            let a: Vec<f64> = v.iter().zip(y).filter(|(_, &l)| l == 0.0).map(|(x, _)| *x).collect();
            let b: Vec<f64> = v.iter().zip(y).filter(|(_, &l)| l == 1.0).map(|(x, _)| *x).collect();
            (coda_linalg::mean(&a) - coda_linalg::mean(&b)).abs()
                / (coda_linalg::std_dev(&a) + coda_linalg::std_dev(&b)).max(1e-9)
        };
        let y = ds.target().unwrap();
        let lda_sep = sep(&lda_out.features().col(0), y);
        let pca_sep = sep(&pca_out.features().col(0), y);
        assert!(lda_sep > 5.0 * pca_sep, "lda {lda_sep:.3} vs pca {pca_sep:.3}");
    }

    #[test]
    fn components_capped_at_classes_minus_one() {
        let ds = synth::classification_blobs(120, 6, 3, 0.4, 5);
        let mut lda = Lda::new(10);
        let out = lda.fit_transform(&ds).unwrap();
        assert_eq!(out.n_features(), 2); // 3 classes -> 2 discriminants
    }

    #[test]
    fn improves_downstream_classifier_in_pipeline() {
        let ds = synth::classification_blobs(300, 8, 4, 1.0, 6);
        let (train, test) = ds.train_test_split(0.3, 1);
        let mut lda = Lda::new(3);
        let tr = lda.fit_transform(&train).unwrap();
        let te = lda.transform(&test).unwrap();
        let mut knn = crate::KnnClassifier::new(5);
        knn.fit(&tr).unwrap();
        let pred = knn.predict(&te).unwrap();
        let acc = metrics::accuracy(te.target().unwrap(), &pred).unwrap();
        assert!(acc > 0.85, "accuracy after LDA = {acc}");
    }

    #[test]
    fn errors_and_params() {
        let ds = synth::classification_blobs(40, 3, 2, 0.5, 7);
        assert!(Lda::new(1).transform(&ds).is_err()); // unfitted
        let no_target = Dataset::new(Matrix::zeros(10, 2));
        assert!(Lda::new(1).fit(&no_target).is_err());
        let single = Dataset::new(Matrix::zeros(4, 2)).with_target(vec![1.0; 4]).unwrap();
        assert!(Lda::new(1).fit(&single).is_err()); // one class
        let mut lda = Lda::new(1);
        lda.set_param("n_components", ParamValue::from(2usize)).unwrap();
        assert!(lda.set_param("n_components", ParamValue::from(0usize)).is_err());
        assert!(lda.set_param("x", ParamValue::from(1usize)).is_err());
    }
}
