/root/repo/target/debug/deps/coda_nn-382e90cd43e2e65c.d: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/estimators.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/network.rs crates/nn/src/optim.rs crates/nn/src/residual.rs

/root/repo/target/debug/deps/coda_nn-382e90cd43e2e65c: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/estimators.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/network.rs crates/nn/src/optim.rs crates/nn/src/residual.rs

crates/nn/src/lib.rs:
crates/nn/src/conv.rs:
crates/nn/src/estimators.rs:
crates/nn/src/layer.rs:
crates/nn/src/loss.rs:
crates/nn/src/lstm.rs:
crates/nn/src/network.rs:
crates/nn/src/optim.rs:
crates/nn/src/residual.rs:
