/root/repo/target/release/deps/coda_templates-cb867681f2a0040b.d: crates/templates/src/lib.rs crates/templates/src/anomaly.rs crates/templates/src/cohort.rs crates/templates/src/failure.rs crates/templates/src/lifetime.rs crates/templates/src/rca.rs

/root/repo/target/release/deps/libcoda_templates-cb867681f2a0040b.rlib: crates/templates/src/lib.rs crates/templates/src/anomaly.rs crates/templates/src/cohort.rs crates/templates/src/failure.rs crates/templates/src/lifetime.rs crates/templates/src/rca.rs

/root/repo/target/release/deps/libcoda_templates-cb867681f2a0040b.rmeta: crates/templates/src/lib.rs crates/templates/src/anomaly.rs crates/templates/src/cohort.rs crates/templates/src/failure.rs crates/templates/src/lifetime.rs crates/templates/src/rca.rs

crates/templates/src/lib.rs:
crates/templates/src/anomaly.rs:
crates/templates/src/cohort.rs:
crates/templates/src/failure.rs:
crates/templates/src/lifetime.rs:
crates/templates/src/rca.rs:
