/root/repo/target/debug/deps/teg_eval-ab90d212d5d3dff9.d: crates/bench/benches/teg_eval.rs Cargo.toml

/root/repo/target/debug/deps/libteg_eval-ab90d212d5d3dff9.rmeta: crates/bench/benches/teg_eval.rs Cargo.toml

crates/bench/benches/teg_eval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
