/root/repo/target/debug/deps/coda_templates-693538474723bdd2.d: crates/templates/src/lib.rs crates/templates/src/anomaly.rs crates/templates/src/cohort.rs crates/templates/src/failure.rs crates/templates/src/lifetime.rs crates/templates/src/rca.rs

/root/repo/target/debug/deps/libcoda_templates-693538474723bdd2.rlib: crates/templates/src/lib.rs crates/templates/src/anomaly.rs crates/templates/src/cohort.rs crates/templates/src/failure.rs crates/templates/src/lifetime.rs crates/templates/src/rca.rs

/root/repo/target/debug/deps/libcoda_templates-693538474723bdd2.rmeta: crates/templates/src/lib.rs crates/templates/src/anomaly.rs crates/templates/src/cohort.rs crates/templates/src/failure.rs crates/templates/src/lifetime.rs crates/templates/src/rca.rs

crates/templates/src/lib.rs:
crates/templates/src/anomaly.rs:
crates/templates/src/cohort.rs:
crates/templates/src/failure.rs:
crates/templates/src/lifetime.rs:
crates/templates/src/rca.rs:
