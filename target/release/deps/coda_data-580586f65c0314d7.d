/root/repo/target/release/deps/coda_data-580586f65c0314d7.d: crates/data/src/lib.rs crates/data/src/cv.rs crates/data/src/dataset.rs crates/data/src/impute.rs crates/data/src/impute_advanced.rs crates/data/src/metrics.rs crates/data/src/outlier.rs crates/data/src/survival.rs crates/data/src/synth.rs crates/data/src/traits.rs

/root/repo/target/release/deps/libcoda_data-580586f65c0314d7.rlib: crates/data/src/lib.rs crates/data/src/cv.rs crates/data/src/dataset.rs crates/data/src/impute.rs crates/data/src/impute_advanced.rs crates/data/src/metrics.rs crates/data/src/outlier.rs crates/data/src/survival.rs crates/data/src/synth.rs crates/data/src/traits.rs

/root/repo/target/release/deps/libcoda_data-580586f65c0314d7.rmeta: crates/data/src/lib.rs crates/data/src/cv.rs crates/data/src/dataset.rs crates/data/src/impute.rs crates/data/src/impute_advanced.rs crates/data/src/metrics.rs crates/data/src/outlier.rs crates/data/src/survival.rs crates/data/src/synth.rs crates/data/src/traits.rs

crates/data/src/lib.rs:
crates/data/src/cv.rs:
crates/data/src/dataset.rs:
crates/data/src/impute.rs:
crates/data/src/impute_advanced.rs:
crates/data/src/metrics.rs:
crates/data/src/outlier.rs:
crates/data/src/survival.rs:
crates/data/src/synth.rs:
crates/data/src/traits.rs:
