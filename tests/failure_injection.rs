//! Failure injection across the cooperative system: failing pipelines in a
//! multi-client run, clients desynchronizing from the push stream, and full
//! site outages with recovery.

use bytes::Bytes;
use coda::chaos::RetryPolicy;
use coda::cluster::run_cooperative;
use coda::darr::{ClaimOutcome, ComputationKey, CoopOutcome, CooperativeClient, Darr};
use coda::data::{synth, CvStrategy, Metric};
use coda::graph::TegBuilder;
use coda::ml::{LinearRegression, RidgeRegression};
use coda::store::{CachingClient, HomeDataStore, PushMode, ReplicatedStore};

#[test]
fn cooperative_run_survives_failing_paths() {
    // 12 samples, 6 features: linear regression needs 7+ training samples;
    // 3-fold leaves 8 — but give it 10 features so it fails, while ridge
    // (regularized) still fits.
    let ds = synth::linear_regression(12, 10, 0.01, 301);
    let graph = TegBuilder::new()
        .add_models(vec![
            Box::new(LinearRegression::new()), // needs 11 samples of 8 available -> fails
            Box::new(RidgeRegression::new(1.0)), // always fits
        ])
        .create_graph()
        .unwrap();
    for use_darr in [false, true] {
        let report = run_cooperative(&graph, &ds, CvStrategy::kfold(3), Metric::Rmse, 3, use_darr);
        assert!(report.best_score.is_finite(), "ridge path must produce a score");
        // only the viable path is ever *successfully* computed
        if use_darr {
            assert!(report.total_evaluations <= report.n_pipelines * 3);
        }
    }
}

#[test]
fn client_desynchronized_from_push_stream_recovers_by_pull() {
    let mut store = HomeDataStore::new("home", 2); // short history
    let mut client = CachingClient::new("c");
    let mut blob: Vec<u8> = (0..40_000u32).map(|i| (i % 241) as u8).collect();
    store.put("o", Bytes::from(blob.clone()));
    client.pull(&mut store, "o").unwrap();
    store.subscribe("c", "o", PushMode::Delta, 1_000);

    // the client "goes offline": three updates happen; the first two pushes
    // are lost on the network, only the last arrives
    let mut last_push = None;
    for i in 0..3usize {
        blob[i * 100] ^= 0xFF;
        let (_, pushes) = store.put("o", Bytes::from(blob.clone()));
        last_push = pushes.into_iter().next();
    }
    // back online: the surviving delta (base v3) cannot apply on held v1
    let push = last_push.expect("lease was active");
    assert!(matches!(push, coda::store::UpdateMessage::Delta { .. }));
    let err = client.apply_push(&push).unwrap_err();
    assert!(matches!(err, coda::store::client::ClientError::BaseVersionMismatch { .. }));
    assert_eq!(client.held_version("o"), Some(1), "a bad delta must not corrupt the cache");
    // version-aware pull resynchronizes; the held version (1) fell out of
    // the depth-2 history, so the store correctly sends a full copy
    client.pull(&mut store, "o").unwrap();
    assert_eq!(client.held_version("o"), Some(4));
    assert_eq!(&client.held_data("o").unwrap()[..], &blob[..]);
    assert!(store.stats().full_transfers >= 2);
}

#[test]
fn replicated_store_full_outage_then_recovery() {
    let mut rs = ReplicatedStore::new(2, 4);
    rs.put("o", Bytes::from_static(b"v1")).unwrap();
    for site in ["site-0", "site-1", "site-2"] {
        rs.fail_site(site).unwrap();
    }
    assert!(rs.put("o", Bytes::from_static(b"lost")).is_err());
    assert!(rs.fetch("o", None).is_err());
    // one site comes back: service resumes from the last committed version
    rs.recover_site("site-2").unwrap();
    let reply = rs.fetch("o", None).unwrap().unwrap();
    assert_eq!(reply.version(), 1, "committed data survives the outage");
    let v = rs.put("o", Bytes::from_static(b"v2")).unwrap();
    assert_eq!(v, 2);
    assert_eq!(rs.primary_name(), "site-2");
    // remaining sites recover and catch up on the next write
    rs.recover_site("site-0").unwrap();
    rs.recover_site("site-1").unwrap();
    rs.put("o", Bytes::from_static(b"v3")).unwrap();
    assert!(rs.site_versions("o").iter().all(|(_, v)| *v == Some(3)));
}

#[test]
fn darr_claim_taken_over_after_lease_expiry() {
    // a client claims a computation and dies: its lease expires on the
    // logical clock and another client takes the work over — no key is
    // permanently wedged by a crashed holder
    let darr = Darr::new();
    let key = ComputationKey::new("ds", 1, "pipe|ridge", "kfold(3)", "rmse");
    assert_eq!(darr.try_claim(&key, "dead-client", 50), ClaimOutcome::Claimed);
    // while the lease is live, the work is protected from duplication
    assert_eq!(
        darr.try_claim(&key, "survivor", 50),
        ClaimOutcome::HeldBy("dead-client".to_string())
    );
    darr.advance_clock(60); // lease expires; the holder never completed
    let survivor = CooperativeClient::new(&darr, "survivor", 50);
    let outcome = survivor.process(&key, || Ok((0.25, vec![0.2, 0.3], "takeover".into())));
    match outcome {
        CoopOutcome::Computed(record) => assert_eq!(record.producer, "survivor"),
        other => panic!("expected takeover compute, got {other:?}"),
    }
    assert_eq!(darr.lookup(&key).unwrap().score, 0.25);
}

#[test]
fn skipped_held_keys_eventually_reused_across_two_clients() {
    // client A holds claims mid-computation; client B's first pass skips
    // them, then B's bounded-backoff revisit finds A's finished results
    // and reuses them — nothing is recomputed and nothing is lost
    let darr = Darr::new();
    let keys: Vec<ComputationKey> = (0..4)
        .map(|i| {
            ComputationKey::new(
                "ds".to_string(),
                1,
                format!("p{i}"),
                "kfold(3)".into(),
                "rmse".into(),
            )
        })
        .collect();
    // A is busy computing the middle two keys
    assert_eq!(darr.try_claim(&keys[1], "a", 1_000), ClaimOutcome::Claimed);
    assert_eq!(darr.try_claim(&keys[2], "a", 1_000), ClaimOutcome::Claimed);
    let b = CooperativeClient::new(&darr, "b", 1_000);
    let policy = RetryPolicy::fixed(10.0, 5);
    let mut b_revisits = 0;
    let (summary, outcomes, report) = b.run_worklist_with_retry(
        &keys,
        |key| {
            // emulate A finishing concurrently: A completes both held keys
            // while B computes its last unheld key (after the first pass
            // already skipped the held ones), so only the revisit sees them
            b_revisits += 1;
            if b_revisits == 2 {
                darr.complete(&keys[1], "a", 0.1, vec![], "by a");
                darr.complete(&keys[2], "a", 0.2, vec![], "by a");
            }
            Ok((0.5, vec![], format!("by b: {}", key.pipeline)))
        },
        &policy,
    );
    assert_eq!(summary.computed, 2, "B computes exactly the unheld keys");
    assert_eq!(summary.reused, 2, "held keys resolve to A's results on revisit");
    assert_eq!(summary.skipped, 0, "no key may remain skipped");
    assert!(report.stats.retries >= 1, "revisits must go through the retry policy");
    assert!(matches!(outcomes[1], CoopOutcome::Reused(ref r) if r.producer == "a"));
    assert!(matches!(outcomes[2], CoopOutcome::Reused(ref r) if r.producer == "a"));
    assert_eq!(darr.len(), 4);
}

#[test]
fn lease_cancellation_mid_burst_stops_exactly_there() {
    let mut store = HomeDataStore::new("home", 4);
    let mut client = CachingClient::new("c");
    let mut blob = vec![0u8; 4096];
    store.put("o", Bytes::from(blob.clone()));
    client.pull(&mut store, "o").unwrap();
    store.subscribe("c", "o", PushMode::Full, 1_000);
    let mut received = 0usize;
    for i in 0..6usize {
        if i == 3 {
            assert!(store.cancel("c", "o"));
        }
        blob[i] ^= 1;
        let (_, pushes) = store.put("o", Bytes::from(blob.clone()));
        received += pushes.len();
        for p in &pushes {
            client.apply_push(p).unwrap();
        }
    }
    assert_eq!(received, 3, "exactly the pre-cancellation updates are pushed");
    assert!(client.is_stale(&store, "o"));
}
