/root/repo/target/debug/deps/coda_core-ff7e6dd89092d2f2.d: crates/core/src/lib.rs crates/core/src/dot.rs crates/core/src/eval.rs crates/core/src/graph.rs crates/core/src/grid.rs crates/core/src/node.rs crates/core/src/pipeline.rs crates/core/src/search.rs crates/core/src/tuning.rs Cargo.toml

/root/repo/target/debug/deps/libcoda_core-ff7e6dd89092d2f2.rmeta: crates/core/src/lib.rs crates/core/src/dot.rs crates/core/src/eval.rs crates/core/src/graph.rs crates/core/src/grid.rs crates/core/src/node.rs crates/core/src/pipeline.rs crates/core/src/search.rs crates/core/src/tuning.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/dot.rs:
crates/core/src/eval.rs:
crates/core/src/graph.rs:
crates/core/src/grid.rs:
crates/core/src/node.rs:
crates/core/src/pipeline.rs:
crates/core/src/search.rs:
crates/core/src/tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
