/root/repo/target/debug/deps/darr_coop-7c2b38ab6f365256.d: crates/bench/benches/darr_coop.rs Cargo.toml

/root/repo/target/debug/deps/libdarr_coop-7c2b38ab6f365256.rmeta: crates/bench/benches/darr_coop.rs Cargo.toml

crates/bench/benches/darr_coop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
