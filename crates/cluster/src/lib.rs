//! The simulated distributed analytics system of the paper's Fig. 1:
//! geographically distributed client nodes, elastic cloud analytics servers,
//! external AI web services, a simulated network with latency/bandwidth and
//! connectivity, a work-placement scheduler, and cooperative multi-client
//! evaluation runs over a shared DARR.
//!
//! The network and compute models are deterministic and analytic (times are
//! `f64` milliseconds), so the placement trade-offs of §III — "performing
//! analytics computations on a node without a high degree of processing
//! power as communication … would incur latency and may not be possible if
//! connectivity is poor" — are *measured*, not asserted. The cooperative
//! runs use real threads and real pipeline evaluations.
//!
//! # Examples
//!
//! ```
//! use coda_cluster::{ComputeNode, SimNetwork, AnalyticsTask, Scheduler, Placement};
//!
//! let client = ComputeNode::client("edge", 1.0);
//! let cloud = ComputeNode::cloud("dc", 8.0, 4);
//! let mut net = SimNetwork::new(20.0, 1_000.0); // 20ms latency, 1MB/ms
//! let task = AnalyticsTask { n_subtasks: 16, work_per_subtask: 50.0, input_bytes: 100_000 };
//! let decision = Scheduler::place(&task, &client, &cloud, &net);
//! assert_eq!(decision.placement, Placement::Cloud); // parallel VMs win
//! net.disconnect("edge", "dc");
//! let offline = Scheduler::place(&task, &client, &cloud, &net);
//! assert_eq!(offline.placement, Placement::Local);  // no connectivity
//! ```

pub mod chaos;
pub mod coop;
pub mod failure;
pub mod lifecycle;
pub mod network;
pub mod node;
pub mod placement;
pub mod recovery;
pub mod registry;
pub mod webservice;

pub use chaos::{
    run_chaos_coop, run_chaos_coop_obs, run_chaos_coop_sharded, ChaosCoopConfig, ChaosCoopReport,
};
pub use coop::{run_cooperative, run_cooperative_with_clock, CoopRunReport};
pub use failure::{DetectorConfig, FailureDetector, Liveness};
pub use lifecycle::{BatchRecord, ModelLifecycle, RetrainPolicy};
pub use network::SimNetwork;
pub use node::{AnalyticsTask, ComputeNode};
pub use placement::{ExecutionOutcome, Placement, PlacementDecision, Scheduler};
pub use recovery::{
    run_crash_recovery, run_crash_recovery_obs, run_crash_recovery_sharded, CrashRecoveryConfig,
    CrashRecoveryReport,
};
pub use registry::{
    run_job, run_job_observed, run_job_with_retry, run_job_with_retry_obs, ComponentRegistry,
    JobError, JobSpec, SpecValue,
};
pub use webservice::SimWebService;
