//! Per-file source model shared by the analyses: the token stream, the
//! token ranges that belong to test-only code (`#[cfg(test)]` modules,
//! `#[test]` functions, `#[cfg(loom)]` items), and the parsed
//! `// lint:allow(<rule>) <reason>` escape-hatch directives.

use crate::lexer::{lex, Comment, Lexed, Tok};

/// How the containing crate target is linted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateKind {
    /// A library crate: all three analyses apply.
    Library,
    /// A binary/bench target: panic-safety and determinism are waived
    /// (binaries own their top-level error reporting and may measure real
    /// wall time); lock-order still applies.
    Binary,
}

/// One `// lint:allow(<rule>) <reason>` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// The justification after the closing parenthesis, trimmed.
    pub reason: String,
}

/// A lexed file plus the derived facts the analyses consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Lint profile of the owning target.
    pub kind: CrateKind,
    /// The code tokens.
    pub tokens: Vec<Tok>,
    /// Escape-hatch directives found in comments.
    pub allows: Vec<AllowDirective>,
    /// Half-open token index ranges that are test-only code.
    test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes `text` and derives test ranges and allow directives.
    pub fn parse(rel: &str, kind: CrateKind, text: &str) -> SourceFile {
        let Lexed { tokens, comments } = lex(text);
        let test_ranges = find_test_ranges(&tokens);
        let allows = parse_allows(&comments);
        SourceFile { rel: rel.to_string(), kind, tokens, allows, test_ranges }
    }

    /// True when token index `i` lies inside test-only code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// The allow directive covering `line` for `rule`, if any: a directive
    /// suppresses findings on its own line (trailing comment) and on the
    /// line directly below it (comment-above style).
    pub fn allow_for(&self, rule: &str, line: u32) -> Option<&AllowDirective> {
        self.allows.iter().find(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }
}

/// Extracts `lint:allow(rule) reason` directives from comment text.
fn parse_allows(comments: &[Comment]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for c in comments {
        let Some(at) = c.text.find("lint:allow(") else { continue };
        let rest = &c.text[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..].trim().trim_start_matches(['-', ':']).trim().to_string();
        out.push(AllowDirective { line: c.line, rule, reason });
    }
    out
}

/// Finds token ranges belonging to test-gated items. An attribute whose
/// tokens mention the bare idents `test` or `loom` (covering `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, ...))]`, `#[cfg(loom)]`) marks the item
/// that follows — through any further attributes — up to the end of its
/// brace-delimited body, or to the terminating `;` for bodiless items.
fn find_test_ranges(tokens: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut j = i + 1;
        let inner = j < tokens.len() && tokens[j].is_punct('!');
        if inner {
            j += 1;
        }
        if j >= tokens.len() || !tokens[j].is_punct('[') {
            i += 1;
            continue;
        }
        // scan the attribute body to its matching `]`
        let mut depth = 0i32;
        let mut gated = false;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            } else if t.is_ident("test") || t.is_ident("loom") {
                gated = true;
            }
            j += 1;
        }
        if !gated {
            i = j;
            continue;
        }
        if inner {
            // `#![cfg(test)]` gates the whole file
            return vec![(0, tokens.len())];
        }
        // skip any further attributes on the same item
        while j < tokens.len() && tokens[j].is_punct('#') {
            let mut d = 0i32;
            j += 1;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('[') {
                    d += 1;
                } else if t.is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // the item runs to its matching closing brace (or a `;` reached
        // outside parens/brackets before any brace opens)
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let end = loop {
            if j >= tokens.len() {
                break tokens.len();
            }
            let t = &tokens[j];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            } else if t.is_punct(';') && paren == 0 && bracket == 0 {
                break j + 1;
            } else if t.is_punct('{') && paren == 0 && bracket == 0 {
                let mut braces = 0i32;
                break loop {
                    if j >= tokens.len() {
                        break tokens.len();
                    }
                    if tokens[j].is_punct('{') {
                        braces += 1;
                    } else if tokens[j].is_punct('}') {
                        braces -= 1;
                        if braces == 0 {
                            break j + 1;
                        }
                    }
                    j += 1;
                };
            }
            j += 1;
        };
        ranges.push((attr_start, end));
        i = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("x.rs", CrateKind::Library, src)
    }

    fn ident_pos(sf: &SourceFile, name: &str) -> usize {
        sf.tokens.iter().position(|t| t.is_ident(name)).unwrap()
    }

    #[test]
    fn cfg_test_module_is_a_test_range() {
        let sf =
            parse("fn live() {}\n#[cfg(test)]\nmod tests {\n fn gated() {}\n}\nfn after() {}\n");
        assert!(!sf.in_test(ident_pos(&sf, "live")));
        assert!(sf.in_test(ident_pos(&sf, "gated")));
        assert!(!sf.in_test(ident_pos(&sf, "after")));
    }

    #[test]
    fn test_fn_and_loom_items_are_gated() {
        let sf = parse(
            "#[test]\nfn a_test() { x.unwrap(); }\n#[cfg(loom)]\nfn model() {}\nfn live() {}\n",
        );
        assert!(sf.in_test(ident_pos(&sf, "a_test")));
        assert!(sf.in_test(ident_pos(&sf, "model")));
        assert!(!sf.in_test(ident_pos(&sf, "live")));
    }

    #[test]
    fn stacked_attributes_stay_attached() {
        let sf = parse("#[test]\n#[ignore]\nfn slow() { body(); }\nfn live() {}\n");
        assert!(sf.in_test(ident_pos(&sf, "body")));
        assert!(!sf.in_test(ident_pos(&sf, "live")));
    }

    #[test]
    fn allow_directives_parse_rule_and_reason() {
        let sf = parse(
            "let a = 1; // lint:allow(panic_safety) checked above\n\
             // lint:allow(determinism)\nlet b = 2;\n",
        );
        assert_eq!(sf.allows.len(), 2);
        assert_eq!(sf.allows[0].rule, "panic_safety");
        assert_eq!(sf.allows[0].reason, "checked above");
        assert_eq!(sf.allows[1].rule, "determinism");
        assert_eq!(sf.allows[1].reason, "");
        assert!(sf.allow_for("panic_safety", 1).is_some());
        assert!(sf.allow_for("determinism", 3).is_some(), "covers the next line");
        assert!(sf.allow_for("determinism", 4).is_none());
    }

    #[test]
    fn non_test_attributes_do_not_gate() {
        let sf = parse("#[derive(Debug, Clone)]\nstruct S { f: u32 }\nfn live() {}\n");
        assert!(!sf.in_test(ident_pos(&sf, "S")));
        assert!(!sf.in_test(ident_pos(&sf, "live")));
    }
}
