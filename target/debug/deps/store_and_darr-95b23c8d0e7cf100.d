/root/repo/target/debug/deps/store_and_darr-95b23c8d0e7cf100.d: tests/store_and_darr.rs Cargo.toml

/root/repo/target/debug/deps/libstore_and_darr-95b23c8d0e7cf100.rmeta: tests/store_and_darr.rs Cargo.toml

tests/store_and_darr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
