//! A lock-cheap registry of named counters, gauges, and fixed-bucket
//! histograms, with two exposition surfaces: Prometheus-style text and a
//! `serde_json` snapshot.
//!
//! Metric names follow `coda_<crate>_<name>` (DESIGN.md §9). Instruments
//! are `Arc`-shared: a registration returns a handle whose updates are
//! plain atomic operations; the registry lock (a `parking_lot::RwLock`
//! around a `BTreeMap`) is touched only on registration and snapshot.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use serde::impl_serde_struct;

/// Default bucket upper bounds (milliseconds) for timing histograms.
pub const DEFAULT_MS_BOUNDS: &[f64] =
    &[0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0];

/// Builds a flat registry name carrying one label dimension:
/// `base{label="value"}` (value escaped per the Prometheus text format).
///
/// The registry itself stays a flat name → instrument map; labeled series
/// are a *naming convention* on top of it. `BTreeMap` ordering keeps every
/// labeled variant after its unlabeled base (`{` sorts above `_` and all
/// alphanumerics), [`render_prometheus`](MetricsRegistry::render_prometheus)
/// groups them under one `# TYPE` head, and [`name_parts`]/[`label_value`]
/// recover the dimension for analysis. Keep values free of commas — the
/// parser splits label pairs on `,`.
pub fn labeled_name(base: &str, label: &str, value: &str) -> String {
    format!("{base}{{{label}=\"{}\"}}", escape_label(value))
}

/// Splits a flat registry name into `(base, labels)` when it follows the
/// [`labeled_name`] convention, `(name, None)` otherwise. The returned
/// label string is the raw `k="v"` pair list without the braces.
pub fn name_parts(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(i) if name.ends_with('}') => (&name[..i], Some(&name[i + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// Extracts the value of `label` from a [`labeled_name`]-style series
/// name, or `None` when the name is unlabeled or lacks that label.
pub fn label_value<'a>(name: &'a str, label: &str) -> Option<&'a str> {
    let (_, labels) = name_parts(name);
    for pair in labels?.split(',') {
        if let Some((k, v)) = pair.split_once('=') {
            if k == label {
                return v.strip_prefix('"').and_then(|v| v.strip_suffix('"'));
            }
        }
    }
    None
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `f64` (stored as bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` to the gauge (compare-and-swap loop).
    pub fn add(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: `bounds` are inclusive upper bounds, with an
/// implicit `+Inf` bucket at the end.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given sorted upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.iter().position(|b| v <= *b).unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Folds another histogram's snapshot into this one. Bucket-by-bucket
    /// when the bounds match; otherwise each of `snap`'s observations is
    /// re-bucketed conservatively at its bound's value.
    pub fn merge(&self, snap: &HistogramSnapshot) {
        if snap.bounds == self.bounds {
            for (bucket, n) in self.buckets.iter().zip(&snap.counts) {
                bucket.fetch_add(*n, Ordering::Relaxed);
            }
            self.count.fetch_add(snap.count, Ordering::Relaxed);
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + snap.sum).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(actual) => cur = actual,
                }
            }
        }
        for (i, n) in snap.counts.iter().enumerate() {
            let at = snap.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            for _ in 0..*n {
                self.observe(at);
            }
        }
    }

    /// Point-in-time snapshot of the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// A frozen copy of one histogram's buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds (the final `+Inf` bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl_serde_struct!(HistogramSnapshot { bounds, counts, count, sum });

impl HistogramSnapshot {
    /// Mean observed value. Always finite: `0.0` with no observations, and
    /// a non-finite sum (a `NaN`/`inf` observation leaked in upstream)
    /// degrades to `0.0` rather than poisoning JSON expositions — the
    /// vendored `serde_json` renders non-finite floats as `null`, which
    /// would then fail the snapshot round-trip.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let m = self.sum / self.count as f64;
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by locating the bucket
    /// that crosses rank `q * count` and interpolating linearly inside it
    /// (the Prometheus `histogram_quantile` rule). The open `+Inf` bucket
    /// has no upper edge, so ranks landing there report its lower bound —
    /// as does an explicit non-finite upper bound, so interpolation can
    /// never manufacture a `NaN` (`0 × inf`). Returns `0.0` with no
    /// observations; the result is always finite.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (i, n) in self.counts.iter().enumerate() {
            let before = cumulative;
            cumulative += n;
            if *n > 0 && cumulative as f64 >= rank {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = match self.bounds.get(i) {
                    Some(b) if b.is_finite() => *b,
                    _ => return lower,
                };
                let fraction = ((rank - before as f64) / *n as f64).clamp(0.0, 1.0);
                let v = lower + fraction * (upper - lower);
                return if v.is_finite() { v } else { lower };
            }
        }
        let fallback = self.bounds.last().copied().unwrap_or(0.0);
        if fallback.is_finite() {
            fallback
        } else {
            0.0
        }
    }

    /// Bucket-wise delta `self - before` for two snapshots of the same
    /// histogram (saturating at zero, so a reset or mismatched pairing
    /// cannot underflow). With different bounds, returns `self` unchanged —
    /// the two snapshots are not comparable.
    pub fn diff(&self, before: &HistogramSnapshot) -> HistogramSnapshot {
        if self.bounds != before.bounds {
            return self.clone();
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&before.counts)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(before.count),
            sum: (self.sum - before.sum).max(0.0),
        }
    }
}

/// A frozen copy of every instrument in a [`MetricsRegistry`] — the JSON
/// exposition surface (`serde_json`-serializable, deterministic key order).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram buckets by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl_serde_struct!(MetricsSnapshot { counters, gauges, histograms });

impl MetricsSnapshot {
    /// A named counter's value, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Serializes the snapshot to a JSON string.
    pub fn to_json(&self) -> String {
        // value-model rendering is infallible; an empty string would only
        // appear if the vendored serde_json grew a real error path
        serde_json::to_string(self).unwrap_or_default()
    }

    /// Parses a snapshot back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error message on malformed input.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let value = serde_json::parse(s).map_err(|e| e.to_string())?;
        serde::Deserialize::from_value(&value)
    }

    /// What happened between `before` and `self`: per-name counter deltas,
    /// gauge differences, and histogram bucket deltas. Deltas saturate at
    /// zero for monotonic instruments; names only present in `before` are
    /// dropped (nothing new to attribute). This is the before/after
    /// attribution primitive — snapshot, run a phase, snapshot, diff.
    pub fn diff(&self, before: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.saturating_sub(before.counter(k))))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v - before.gauges.get(k).copied().unwrap_or(0.0)))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| match before.histograms.get(k) {
                    Some(b) => (k.clone(), h.diff(b)),
                    None => (k.clone(), h.clone()),
                })
                .collect(),
        }
    }
}

/// The process-wide metric registry: named instruments, shared by `Arc`.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    help: RwLock<BTreeMap<String, String>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MetricsRegistry({} counters, {} gauges, {} histograms)",
            self.counters.read().len(),
            self.gauges.read().len(),
            self.histograms.read().len()
        )
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        // the read guard is scoped out before the write acquisition: the
        // fast path and the slow path never hold both sides of the lock
        {
            let counters = self.counters.read();
            if let Some(c) = counters.get(name) {
                return Arc::clone(c);
            }
        }
        Arc::clone(self.counters.write().entry(name.to_string()).or_default())
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        {
            let gauges = self.gauges.read();
            if let Some(g) = gauges.get(name) {
                return Arc::clone(g);
            }
        }
        Arc::clone(self.gauges.write().entry(name.to_string()).or_default())
    }

    /// Returns the histogram named `name`, registering it with `bounds` on
    /// first use (later `bounds` are ignored — first registration wins).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        {
            let histograms = self.histograms.read();
            if let Some(h) = histograms.get(name) {
                return Arc::clone(h);
            }
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Attaches `# HELP` text to metric `name` for the Prometheus
    /// exposition (escaped per the text-format rules on render).
    pub fn set_help(&self, name: &str, text: &str) {
        self.help.write().insert(name.to_string(), text.to_string());
    }

    /// Shorthand: add `n` to the counter named `name`.
    pub fn count(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Shorthand: record `v` in the histogram named `name` (registered with
    /// [`DEFAULT_MS_BOUNDS`] on first use).
    pub fn observe_ms(&self, name: &str, v: f64) {
        self.histogram(name, DEFAULT_MS_BOUNDS).observe(v);
    }

    /// A frozen copy of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.read().iter().map(|(k, c)| (k.clone(), c.get())).collect(),
            gauges: self.gauges.read().iter().map(|(k, g)| (k.clone(), g.get())).collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Renders every instrument in Prometheus text exposition format,
    /// names sorted, deterministically: a `# HELP` line (when set, escaped
    /// per the text format: `\` → `\\`, newline → `\n`), a `# TYPE` line
    /// per metric *family*, and label values escaped (`\`, `"`, newline).
    ///
    /// [`labeled_name`]-style series share their base family's HELP/TYPE
    /// head (emitted once per family), and histogram suffixes splice the
    /// labels into the sample lines (`base_bucket{labels,le="..."}`,
    /// `base_sum{labels}`, `base_count{labels}`).
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        let help = self.help.read().clone();
        let mut out = String::new();
        let mut seen = std::collections::BTreeSet::new();
        let mut head = |out: &mut String, base: &str, kind: &str| {
            if !seen.insert(base.to_string()) {
                return;
            }
            if let Some(text) = help.get(base) {
                let _ = writeln!(out, "# HELP {base} {}", escape_help(text));
            }
            let _ = writeln!(out, "# TYPE {base} {kind}");
        };
        for (name, v) in &snap.counters {
            head(&mut out, name_parts(name).0, "counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &snap.gauges {
            head(&mut out, name_parts(name).0, "gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &snap.histograms {
            let (base, labels) = name_parts(name);
            head(&mut out, base, "histogram");
            let mut cumulative = 0u64;
            for (i, n) in h.counts.iter().enumerate() {
                cumulative += n;
                let le = match h.bounds.get(i) {
                    Some(b) => format!("{b}"),
                    None => "+Inf".to_string(),
                };
                let le = escape_label(&le);
                let _ = match labels {
                    Some(l) => writeln!(out, "{base}_bucket{{{l},le=\"{le}\"}} {cumulative}"),
                    None => writeln!(out, "{base}_bucket{{le=\"{le}\"}} {cumulative}"),
                };
            }
            let _ = match labels {
                Some(l) => {
                    writeln!(out, "{base}_sum{{{l}}} {}\n{base}_count{{{l}}} {}", h.sum, h.count)
                }
                None => writeln!(out, "{base}_sum {}\n{base}_count {}", h.sum, h.count),
            };
        }
        out
    }
}

/// Escapes `# HELP` text per the Prometheus text format: backslash and
/// newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value per the Prometheus text format: backslash,
/// double-quote, and newline.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let reg = MetricsRegistry::new();
        reg.counter("coda_test_ops").add(3);
        reg.counter("coda_test_ops").inc();
        reg.gauge("coda_test_level").set(2.5);
        reg.gauge("coda_test_level").add(0.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("coda_test_ops"), 4);
        assert_eq!(snap.gauges["coda_test_level"], 3.0);
        assert_eq!(snap.counter("absent"), 0);
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 1.0, 5.0, 100.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1], "le=1: {{0.5, 1.0}}, le=10: {{5.0}}, +Inf: {{100}}");
        assert_eq!(s.count, 4);
        assert!((s.sum - 106.5).abs() < 1e-12);
        assert!((s.mean() - 26.625).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_same_bounds_is_exact() {
        let a = Histogram::new(&[1.0, 10.0]);
        let b = Histogram::new(&[1.0, 10.0]);
        a.observe(0.5);
        b.observe(5.0);
        b.observe(50.0);
        a.merge(&b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.counts, vec![1, 1, 1]);
        assert_eq!(s.count, 3);
        assert!((s.sum - 55.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let h = Histogram::new(&[10.0, 20.0, 40.0]);
        for v in [5.0, 12.0, 14.0, 18.0, 30.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        // counts: le=10 -> 1, le=20 -> 3, le=40 -> 1. Median rank 2.5 lands
        // in the le=20 bucket at fraction (2.5-1)/3 of [10, 20].
        assert_eq!(s.quantile(0.5), 15.0);
        assert_eq!(s.quantile(0.0), 0.0, "rank 0 interpolates to the first bucket's floor");
        assert_eq!(s.quantile(1.0), 40.0);
        assert_eq!(s.quantile(2.0), 40.0, "q clamps into [0, 1]");
        assert_eq!(
            HistogramSnapshot { bounds: vec![], counts: vec![], count: 0, sum: 0.0 }.quantile(0.5),
            0.0
        );
        // Observations past the last bound land in +Inf: report its floor.
        let inf = Histogram::new(&[10.0]);
        inf.observe(99.0);
        assert_eq!(inf.snapshot().quantile(0.9), 10.0);
    }

    #[test]
    fn snapshot_diff_attributes_a_phase() {
        let reg = MetricsRegistry::new();
        reg.count("coda_test_ops", 5);
        reg.gauge("coda_test_level").set(2.0);
        reg.observe_ms("coda_test_ms", 1.0);
        let before = reg.snapshot();
        reg.count("coda_test_ops", 3);
        reg.count("coda_test_new", 2);
        reg.gauge("coda_test_level").set(2.5);
        reg.observe_ms("coda_test_ms", 100.0);
        let delta = reg.snapshot().diff(&before);
        assert_eq!(delta.counter("coda_test_ops"), 3);
        assert_eq!(delta.counter("coda_test_new"), 2, "names absent before count in full");
        assert_eq!(delta.gauges["coda_test_level"], 0.5);
        let h = &delta.histograms["coda_test_ms"];
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 100.0);
        assert_eq!(h.counts.iter().sum::<u64>(), 1, "exactly the phase's observation remains");
        // Diffing against a later snapshot saturates instead of wrapping.
        assert_eq!(before.diff(&reg.snapshot()).counter("coda_test_ops"), 0);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = MetricsRegistry::new();
        reg.count("coda_test_a", 7);
        reg.gauge("coda_test_g").set(1.25);
        reg.observe_ms("coda_test_ms", 3.0);
        let snap = reg.snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("snapshot JSON parses");
        assert_eq!(back, snap);
        assert!(MetricsSnapshot::from_json("not json").is_err());
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_typed() {
        let reg = MetricsRegistry::new();
        reg.count("coda_test_b", 2);
        reg.count("coda_test_a", 1);
        reg.observe_ms("coda_test_ms", 2.0);
        let text = reg.render_prometheus();
        assert_eq!(text, reg.render_prometheus());
        // names sorted, counters before the histogram of this snapshot
        let a = text.find("coda_test_a 1").unwrap();
        let b = text.find("coda_test_b 2").unwrap();
        assert!(a < b);
        assert!(text.contains("# TYPE coda_test_ms histogram"));
        assert!(text.contains("coda_test_ms_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("coda_test_ms_count 1"));
    }

    /// Satellite: quantile/mean edge cases pinned — q=0, q=1, a
    /// single-bucket histogram, and the empty histogram all stay finite.
    #[test]
    fn quantile_and_mean_edges_are_finite() {
        let empty = HistogramSnapshot { bounds: vec![], counts: vec![], count: 0, sum: 0.0 };
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.quantile(0.0), 0.0);
        assert_eq!(empty.quantile(1.0), 0.0);

        // empty but with declared bounds (registered, never observed)
        let registered = Histogram::new(&[1.0, 10.0]).snapshot();
        assert_eq!(registered.quantile(0.5), 0.0);
        assert_eq!(registered.mean(), 0.0);

        // single bucket: everything interpolates inside [0, bound]
        let single = Histogram::new(&[8.0]);
        single.observe(2.0);
        single.observe(6.0);
        let s = single.snapshot();
        assert_eq!(s.quantile(0.0), 0.0, "q=0 reports the first bucket's floor");
        assert_eq!(s.quantile(1.0), 8.0, "q=1 reports the bucket's ceiling");
        assert_eq!(s.quantile(0.5), 4.0);
        assert_eq!(s.mean(), 4.0);

        // q=0 and q=1 on a multi-bucket histogram
        let multi = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [1.5, 1.6, 3.0] {
            multi.observe(v);
        }
        let m = multi.snapshot();
        assert_eq!(m.quantile(0.0), 1.0, "q=0 lands at the first occupied bucket's floor");
        assert_eq!(m.quantile(1.0), 4.0);
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert!(m.quantile(q).is_finite(), "q={q} must be finite");
        }
    }

    /// Satellite: non-finite inputs cannot leak NaN into quantile/mean —
    /// the vendored serde_json would render them as `null` and break the
    /// JSON round-trip.
    #[test]
    fn non_finite_inputs_never_leak_nan() {
        // an explicit +inf upper bound: interpolation would compute 0 × inf
        let inf_bound = Histogram::new(&[10.0, f64::INFINITY]);
        inf_bound.observe(50.0);
        let s = inf_bound.snapshot();
        assert_eq!(s.quantile(0.5), 10.0, "non-finite bucket edge reports its floor");
        assert!(s.quantile(1.0).is_finite());
        // only non-finite bounds occupied: the fallback stays finite
        let only_inf = Histogram::new(&[f64::INFINITY]);
        only_inf.observe(1.0);
        assert!(only_inf.snapshot().quantile(0.99).is_finite());
        // a NaN observation poisons the sum; mean degrades to 0 not NaN
        let h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        let s = h.snapshot();
        assert!(!s.mean().is_nan());
        assert!(s.quantile(0.5).is_finite());
    }

    /// Satellite: after-only names (a shard spun up mid-window) count in
    /// full across all three instrument kinds.
    #[test]
    fn diff_counts_after_only_names_in_full() {
        let reg = MetricsRegistry::new();
        reg.count("coda_test_old", 1);
        let before = reg.snapshot();
        reg.count("coda_test_new_counter", 7);
        reg.gauge("coda_test_new_gauge").set(3.5);
        reg.observe_ms("coda_test_new_ms", 2.0);
        let delta = reg.snapshot().diff(&before);
        assert_eq!(delta.counter("coda_test_new_counter"), 7);
        assert_eq!(delta.gauges["coda_test_new_gauge"], 3.5, "gauge diffs against implicit 0");
        assert_eq!(delta.histograms["coda_test_new_ms"].count, 1, "whole histogram attributed");
        assert_eq!(delta.counter("coda_test_old"), 0, "unchanged names delta to zero");
    }

    /// Satellite: before-only names (a restarted shard whose instruments
    /// vanished) are dropped from the diff — nothing new to attribute —
    /// and a fresh same-name registration saturates at zero instead of
    /// underflowing.
    #[test]
    fn diff_drops_before_only_names_and_saturates_restarts() {
        let a = MetricsRegistry::new();
        a.count("coda_test_ops", 9);
        a.gauge("coda_test_depth").set(4.0);
        a.observe_ms("coda_test_ms", 1.0);
        let before = a.snapshot();
        // the "restarted shard": a fresh registry missing every old name
        let b = MetricsRegistry::new();
        b.count("coda_test_other", 1);
        let delta = b.snapshot().diff(&before);
        assert!(!delta.counters.contains_key("coda_test_ops"), "before-only counters drop");
        assert!(!delta.gauges.contains_key("coda_test_depth"), "before-only gauges drop");
        assert!(!delta.histograms.contains_key("coda_test_ms"), "before-only histograms drop");
        assert_eq!(delta.counter("coda_test_other"), 1);
        // restart with the same name at a lower value: saturate, not wrap
        let c = MetricsRegistry::new();
        c.count("coda_test_ops", 2);
        let delta = c.snapshot().diff(&before);
        assert_eq!(delta.counter("coda_test_ops"), 0, "9 → 2 saturates at zero");
    }

    /// Satellite: `# HELP` lines render with text-format escaping, label
    /// values escape, and the exposition parses back (round-trip).
    #[test]
    fn prometheus_exposition_conforms_and_roundtrips() {
        let reg = MetricsRegistry::new();
        reg.count("coda_test_ops", 4);
        reg.gauge("coda_test_depth").set(1.5);
        reg.observe_ms("coda_test_ms", 3.0);
        reg.set_help("coda_test_ops", "requests served\nsecond line with \\ backslash");
        reg.set_help("coda_test_ms", "latency");
        let text = reg.render_prometheus();

        // escaping: the newline and backslash are literal escapes, and the
        // HELP line directly precedes its TYPE line
        assert!(
            text.contains("# HELP coda_test_ops requests served\\nsecond line with \\\\ backslash")
        );
        assert!(text.contains("# HELP coda_test_ms latency\n# TYPE coda_test_ms histogram"));
        assert!(!text.contains("# HELP coda_test_depth"), "no help set, no HELP line");

        // every sample line's metric family has a TYPE line
        let mut typed = std::collections::BTreeSet::new();
        for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
            let mut parts = line.split_whitespace().skip(2);
            let (name, kind) = (parts.next().unwrap(), parts.next().unwrap());
            assert!(["counter", "gauge", "histogram"].contains(&kind), "{line}");
            typed.insert(name.to_string());
        }
        assert_eq!(
            typed,
            ["coda_test_depth", "coda_test_ms", "coda_test_ops"]
                .iter()
                .map(ToString::to_string)
                .collect()
        );

        // round-trip: parse sample lines back and compare to the snapshot
        let mut parsed: BTreeMap<String, f64> = BTreeMap::new();
        for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let (name, value) = line.rsplit_once(' ').unwrap();
            parsed.insert(name.to_string(), value.parse().unwrap());
        }
        assert_eq!(parsed["coda_test_ops"], 4.0);
        assert_eq!(parsed["coda_test_depth"], 1.5);
        assert_eq!(parsed["coda_test_ms_count"], 1.0);
        assert_eq!(parsed["coda_test_ms_sum"], 3.0);
        assert_eq!(parsed["coda_test_ms_bucket{le=\"+Inf\"}"], 1.0, "cumulative +Inf == count");
        assert_eq!(text, reg.render_prometheus(), "rendering is deterministic");
    }

    /// Labeled-series convention: `labeled_name` builds a parseable flat
    /// name, `name_parts`/`label_value` recover the pieces, and escaping
    /// survives the round trip.
    #[test]
    fn labeled_names_build_and_parse() {
        let n = labeled_name("coda_serve_queue_wait_ms", "shard", "shard-3");
        assert_eq!(n, "coda_serve_queue_wait_ms{shard=\"shard-3\"}");
        assert_eq!(name_parts(&n), ("coda_serve_queue_wait_ms", Some("shard=\"shard-3\"")));
        assert_eq!(label_value(&n, "shard"), Some("shard-3"));
        assert_eq!(label_value(&n, "spec"), None);
        assert_eq!(name_parts("coda_plain"), ("coda_plain", None));
        assert_eq!(label_value("coda_plain", "shard"), None);
        // spec keys carry '=' and '>' freely; quotes escape
        let s = labeled_name("coda_core_eval_path_ms", "spec", "scale>ridge;alpha=0.1");
        assert_eq!(label_value(&s, "spec"), Some("scale>ridge;alpha=0.1"));
        let q = labeled_name("coda_x", "k", "a\"b");
        assert_eq!(q, "coda_x{k=\"a\\\"b\"}");
        // labeled variants sort after their unlabeled base in a BTreeMap
        let mut m = BTreeMap::new();
        for k in [n.as_str(), "coda_serve_queue_wait_ms", "coda_serve_queue_wait_ms_extra"] {
            m.insert(k.to_string(), ());
        }
        let keys: Vec<_> = m.keys().cloned().collect();
        assert_eq!(keys[0], "coda_serve_queue_wait_ms");
        assert_eq!(keys[2], n, "labeled variant sorts last ('{{' > '_')");
    }

    /// Labeled series render under one Prometheus family head: a single
    /// `# TYPE` line per base, labels spliced into histogram suffixes.
    #[test]
    fn prometheus_renders_labeled_series_under_one_family() {
        let reg = MetricsRegistry::new();
        reg.set_help("coda_test_wait_ms", "queue wait");
        reg.histogram("coda_test_wait_ms", &[1.0, 10.0]).observe(5.0);
        let labeled = labeled_name("coda_test_wait_ms", "shard", "shard-0");
        reg.histogram(&labeled, &[1.0, 10.0]).observe(5.0);
        reg.count(&labeled_name("coda_test_ops", "shard", "shard-1"), 3);
        let text = reg.render_prometheus();

        assert_eq!(text.matches("# TYPE coda_test_wait_ms histogram").count(), 1);
        assert_eq!(text.matches("# HELP coda_test_wait_ms queue wait").count(), 1);
        assert!(text.contains("coda_test_wait_ms_bucket{le=\"10\"} 1"));
        assert!(text.contains("coda_test_wait_ms_bucket{shard=\"shard-0\",le=\"10\"} 1"));
        assert!(text.contains("coda_test_wait_ms_sum{shard=\"shard-0\"} 5"));
        assert!(text.contains("coda_test_wait_ms_count{shard=\"shard-0\"} 1"));
        assert!(text.contains("# TYPE coda_test_ops counter"));
        assert!(text.contains("coda_test_ops{shard=\"shard-1\"} 3"));
        // no malformed double-brace suffixes leak out
        assert!(!text.contains("}{"));
        assert_eq!(text, reg.render_prometheus(), "rendering stays deterministic");
    }

    #[test]
    fn registry_handles_are_shared_across_threads() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reg = std::sync::Arc::clone(&reg);
                scope.spawn(move || {
                    let c = reg.counter("coda_test_shared");
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counter("coda_test_shared"), 4000);
    }
}
