//! Root Cause Analysis: "a better understanding into the statistical
//! reasons for favourable and unfavourable outcomes" (§IV-E), with the
//! interpretability features §II demands: factor ranking (root-cause),
//! sensitivity analysis, and what-if/intervention estimates.

use coda_data::{Dataset, Estimator};
use coda_linalg::stats;
use coda_ml::{DecisionTreeRegressor, LinearRegression, RandomForestRegressor};

use crate::TemplateError;

/// One analyzed factor.
#[derive(Debug, Clone)]
pub struct FactorEffect {
    /// Factor (feature) name.
    pub name: String,
    /// Normalized importance (forest impurity decrease), in `[0, 1]`.
    pub importance: f64,
    /// Linear coefficient on standardized inputs — sign gives the direction
    /// of effect, magnitude the per-σ sensitivity.
    pub sensitivity_per_sigma: f64,
    /// Pearson correlation with the outcome.
    pub correlation: f64,
}

/// Result of a root-cause run.
#[derive(Debug, Clone)]
pub struct RootCauseReport {
    /// Factors ranked by importance, most causal first.
    pub factors: Vec<FactorEffect>,
    /// Training R² of the forest surrogate (how much of the outcome the
    /// factors explain at all).
    pub explained_r2: f64,
    /// The outcome described as simple if-then rules (§II: "can it be
    /// described using simple rules?") from a shallow tree surrogate.
    pub rules: Vec<String>,
}

impl RootCauseReport {
    /// The top-k factor names.
    pub fn top_factors(&self, k: usize) -> Vec<&str> {
        self.factors.iter().take(k).map(|f| f.name.as_str()).collect()
    }

    /// What-if estimate: predicted outcome change if `factor` moves by
    /// `delta_sigmas` standard deviations (linear sensitivity model).
    pub fn what_if(&self, factor: &str, delta_sigmas: f64) -> Option<f64> {
        self.factors
            .iter()
            .find(|f| f.name == factor)
            .map(|f| f.sensitivity_per_sigma * delta_sigmas)
    }

    /// Intervention suggestion: how many sigmas to move `factor` to shift
    /// the outcome by `desired_change` (None when the factor has ~zero
    /// sensitivity).
    pub fn intervention(&self, factor: &str, desired_change: f64) -> Option<f64> {
        self.factors.iter().find(|f| f.name == factor).and_then(|f| {
            if f.sensitivity_per_sigma.abs() < 1e-9 {
                None
            } else {
                Some(desired_change / f.sensitivity_per_sigma)
            }
        })
    }
}

/// The Root Cause Analysis template.
#[derive(Debug, Clone)]
pub struct RootCauseAnalysis {
    forest_trees: usize,
}

impl RootCauseAnalysis {
    /// Creates the template.
    pub fn new() -> Self {
        RootCauseAnalysis { forest_trees: 30 }
    }

    /// Lighter settings for quick runs.
    pub fn with_fast_settings(mut self) -> Self {
        self.forest_trees = 8;
        self
    }

    /// Runs RCA on outcome-labeled process data.
    ///
    /// # Errors
    ///
    /// [`TemplateError::InvalidData`] without a target;
    /// [`TemplateError::Evaluation`] if the surrogates fail to fit.
    pub fn run(&self, data: &Dataset) -> Result<RootCauseReport, TemplateError> {
        let y = data
            .target()
            .ok_or_else(|| TemplateError::InvalidData("outcome column required".to_string()))?;
        // nonlinear surrogate for importance + explained variance
        let mut forest = RandomForestRegressor::new(self.forest_trees);
        forest.fit(data).map_err(|e| TemplateError::Evaluation(e.to_string()))?;
        let pred = forest.predict(data).map_err(|e| TemplateError::Evaluation(e.to_string()))?;
        let explained_r2 = coda_data::metrics::r2(y, &pred)
            .map_err(|e| TemplateError::Evaluation(e.to_string()))?;
        let importances = forest.feature_importances().unwrap_or_default();
        // linear surrogate on standardized features for signed sensitivity
        use coda_data::Transformer;
        let mut scaler = coda_ml::StandardScaler::new();
        let standardized =
            scaler.fit_transform(data).map_err(|e| TemplateError::Evaluation(e.to_string()))?;
        let mut linear = LinearRegression::new();
        let coefs: Vec<f64> = match linear.fit(&standardized) {
            Ok(()) => linear.coefficients().expect("fitted")[1..].to_vec(),
            // collinear designs: fall back to ridge
            Err(_) => {
                let mut ridge = coda_ml::RidgeRegression::new(1.0);
                ridge.fit(&standardized).map_err(|e| TemplateError::Evaluation(e.to_string()))?;
                ridge.coefficients().expect("fitted")[1..].to_vec()
            }
        };
        // simple-rules surrogate: a depth-3 tree over the same factors
        let mut rule_tree = DecisionTreeRegressor::new().with_max_depth(3);
        rule_tree.fit(data).map_err(|e| TemplateError::Evaluation(e.to_string()))?;
        let rules = rule_tree.rules(data.feature_names()).unwrap_or_default();
        let mut factors: Vec<FactorEffect> = data
            .feature_names()
            .iter()
            .enumerate()
            .map(|(i, name)| FactorEffect {
                name: name.clone(),
                importance: importances.get(i).copied().unwrap_or(0.0),
                sensitivity_per_sigma: coefs.get(i).copied().unwrap_or(0.0),
                correlation: stats::pearson(&data.features().col(i), y),
            })
            .collect();
        factors.sort_by(|a, b| {
            b.importance.partial_cmp(&a.importance).unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(RootCauseReport { factors, explained_r2, rules })
    }
}

impl Default for RootCauseAnalysis {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::synth;

    #[test]
    fn recovers_known_causal_factors() {
        let (data, causal) = synth::root_cause_data(400, 8, 3, 51);
        let report = RootCauseAnalysis::new().with_fast_settings().run(&data).unwrap();
        assert!(report.explained_r2 > 0.8, "r2 = {}", report.explained_r2);
        let top: Vec<String> = report.top_factors(3).into_iter().map(str::to_string).collect();
        for c in &causal {
            let name = format!("x{c}");
            assert!(top.contains(&name), "causal factor {name} missing from top-3 {top:?}");
        }
    }

    #[test]
    fn sensitivity_signs_match_construction() {
        // root_cause_data uses positive weights on causal factors
        let (data, causal) = synth::root_cause_data(300, 6, 2, 52);
        let report = RootCauseAnalysis::new().with_fast_settings().run(&data).unwrap();
        for c in &causal {
            let name = format!("x{c}");
            let f = report.factors.iter().find(|f| f.name == name).unwrap();
            assert!(f.sensitivity_per_sigma > 0.0, "{name} sensitivity should be positive");
            assert!(f.correlation > 0.0);
        }
    }

    #[test]
    fn what_if_and_intervention_are_inverse() {
        let (data, causal) = synth::root_cause_data(300, 5, 2, 53);
        let report = RootCauseAnalysis::new().with_fast_settings().run(&data).unwrap();
        let name = format!("x{}", causal[0]);
        let effect = report.what_if(&name, 2.0).unwrap();
        let sigmas = report.intervention(&name, effect).unwrap();
        assert!((sigmas - 2.0).abs() < 1e-9);
        assert!(report.what_if("nonexistent", 1.0).is_none());
    }

    #[test]
    fn zero_sensitivity_factor_has_no_intervention() {
        let (data, causal) = synth::root_cause_data(500, 6, 1, 54);
        let report = RootCauseAnalysis::new().with_fast_settings().run(&data).unwrap();
        // a pure-noise factor: tiny sensitivity -> intervention may still
        // exist numerically, but a causal one must dominate it
        let causal_name = format!("x{}", causal[0]);
        let noise_idx = (0..6).find(|i| !causal.contains(i)).unwrap();
        let noise_name = format!("x{noise_idx}");
        let c = report.factors.iter().find(|f| f.name == causal_name).unwrap();
        let n = report.factors.iter().find(|f| f.name == noise_name).unwrap();
        assert!(c.sensitivity_per_sigma.abs() > 10.0 * n.sensitivity_per_sigma.abs());
    }

    #[test]
    fn rules_mention_a_causal_factor() {
        let (data, causal) = synth::root_cause_data(400, 6, 2, 55);
        let report = RootCauseAnalysis::new().with_fast_settings().run(&data).unwrap();
        assert!(!report.rules.is_empty());
        assert!(report.rules.len() <= 8, "depth-3 surrogate");
        let causal_names: Vec<String> = causal.iter().map(|c| format!("x{c}")).collect();
        assert!(
            report.rules.iter().any(|r| causal_names.iter().any(|n| r.contains(n.as_str()))),
            "rules must reference a causal factor: {:?}",
            report.rules
        );
    }

    #[test]
    fn requires_target() {
        let bare = coda_data::Dataset::new(coda_linalg::Matrix::zeros(10, 3));
        assert!(matches!(RootCauseAnalysis::new().run(&bare), Err(TemplateError::InvalidData(_))));
    }
}
