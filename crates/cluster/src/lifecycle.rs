//! Model life-cycle management (paper §II): "Availability of more data may
//! require the model to be retrained … Too frequent retraining can result
//! in high overhead, while too infrequent retraining can result in obsolete
//! models which are less accurate. There may be concept drifts."
//!
//! [`ModelLifecycle`] deploys a fitted pipeline, watches its rolling
//! prediction error on incoming labeled batches, and retrains according to
//! a [`RetrainPolicy`] — on a fixed cadence, or when error drift exceeds a
//! tolerance relative to the deployment-time baseline. Retraining cost and
//! realized error are both tracked, so the paper's trade-off can be
//! measured.

use coda_core::Pipeline;
use coda_data::{ComponentError, Dataset, Metric};
use coda_obs::Obs;

/// When to retrain the deployed model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetrainPolicy {
    /// Never retrain (the obsolete-model end of the trade-off).
    Never,
    /// Retrain every `n` batches regardless of need.
    EveryNBatches(usize),
    /// Retrain when the rolling error degrades by more than
    /// `tolerance_ratio` relative to the deployment-time baseline
    /// (e.g. `0.25` = retrain on a 25% degradation). The drift-aware
    /// policy §II motivates.
    OnDrift {
        /// Allowed relative degradation before retraining.
        tolerance_ratio: f64,
        /// Rolling window length (batches) for the error estimate.
        window: usize,
    },
}

/// One processed batch's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchRecord {
    /// Error of the deployed model on this batch (before any retrain).
    pub error: f64,
    /// Whether a retrain was triggered after this batch.
    pub retrained: bool,
}

/// A deployed model plus its retraining machinery.
#[derive(Debug, Clone)]
pub struct ModelLifecycle {
    pipeline: Pipeline,
    metric: Metric,
    policy: RetrainPolicy,
    /// All data seen so far (training base grows as batches arrive).
    accumulated: Dataset,
    baseline_error: f64,
    recent_errors: Vec<f64>,
    batches_since_retrain: usize,
    /// Retrains performed.
    pub retrain_count: u64,
    /// Per-batch history.
    pub history: Vec<BatchRecord>,
    obs: Option<Obs>,
}

impl ModelLifecycle {
    /// Deploys `pipeline` fitted on `initial`, measuring the baseline error
    /// on the training data itself.
    ///
    /// # Errors
    ///
    /// Any [`ComponentError`] from fitting or scoring.
    pub fn deploy(
        mut pipeline: Pipeline,
        initial: &Dataset,
        metric: Metric,
        policy: RetrainPolicy,
    ) -> Result<Self, ComponentError> {
        pipeline.fit(initial)?;
        let pred = pipeline.predict(initial)?;
        let truth = initial.target_required()?;
        let baseline_error = metric
            .compute(truth, &pred)
            .map_err(|e| ComponentError::InvalidInput(e.to_string()))?;
        Ok(ModelLifecycle {
            pipeline,
            metric,
            policy,
            accumulated: initial.clone(),
            baseline_error,
            recent_errors: Vec::new(),
            batches_since_retrain: 0,
            retrain_count: 0,
            history: Vec::new(),
            obs: None,
        })
    }

    /// Attaches an observability handle: batches and retrains count live
    /// into its registry (`coda_cluster_batches`, `coda_cluster_retrains`)
    /// and the rolling batch error is exported as a gauge.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// Baseline error at the last (re)training.
    pub fn baseline_error(&self) -> f64 {
        self.baseline_error
    }

    /// Predicts with the currently deployed model.
    ///
    /// # Errors
    ///
    /// Any [`ComponentError`] from the pipeline.
    pub fn predict(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError> {
        self.pipeline.predict(data)
    }

    /// Mean error over the deployed model's lifetime.
    pub fn lifetime_error(&self) -> f64 {
        if self.history.is_empty() {
            return self.baseline_error;
        }
        self.history.iter().map(|b| b.error).sum::<f64>() / self.history.len() as f64
    }

    fn should_retrain(&self) -> bool {
        match self.policy {
            RetrainPolicy::Never => false,
            RetrainPolicy::EveryNBatches(n) => self.batches_since_retrain >= n,
            RetrainPolicy::OnDrift { tolerance_ratio, window } => {
                if self.recent_errors.len() < window {
                    return false;
                }
                let recent: f64 =
                    self.recent_errors[self.recent_errors.len() - window..].iter().sum::<f64>()
                        / window as f64;
                if self.metric.higher_is_better() {
                    recent < self.baseline_error * (1.0 - tolerance_ratio)
                } else {
                    recent > self.baseline_error * (1.0 + tolerance_ratio)
                }
            }
        }
    }

    /// Processes one labeled batch: scores the deployed model, appends the
    /// batch to the accumulated data, and retrains if the policy fires.
    /// Returns the batch record.
    ///
    /// # Errors
    ///
    /// Any [`ComponentError`] from predicting or retraining.
    pub fn process_batch(&mut self, batch: &Dataset) -> Result<BatchRecord, ComponentError> {
        let pred = self.pipeline.predict(batch)?;
        let truth = batch.target_required()?;
        let error = self
            .metric
            .compute(truth, &pred)
            .map_err(|e| ComponentError::InvalidInput(e.to_string()))?;
        self.recent_errors.push(error);
        self.batches_since_retrain += 1;
        // grow the training base
        let features = self
            .accumulated
            .features()
            .vstack(batch.features())
            .map_err(|e| ComponentError::InvalidInput(e.to_string()))?;
        let mut target = self.accumulated.target_required()?.to_vec();
        target.extend_from_slice(truth);
        self.accumulated =
            Dataset::new(features).with_target(target).map_err(ComponentError::from)?;
        let retrained = if self.should_retrain() {
            self.retrain()?;
            true
        } else {
            false
        };
        let record = BatchRecord { error, retrained };
        self.history.push(record);
        if let Some(o) = &self.obs {
            o.count("coda_cluster_batches", 1);
            o.registry().gauge("coda_cluster_batch_error").set(error);
        }
        Ok(record)
    }

    /// Forces a retrain on all accumulated data.
    ///
    /// # Errors
    ///
    /// Any [`ComponentError`] from fitting.
    pub fn retrain(&mut self) -> Result<(), ComponentError> {
        let mut fresh = self.pipeline.fresh_clone();
        fresh.fit(&self.accumulated)?;
        let pred = fresh.predict(&self.accumulated)?;
        let truth = self.accumulated.target_required()?;
        self.baseline_error = self
            .metric
            .compute(truth, &pred)
            .map_err(|e| ComponentError::InvalidInput(e.to_string()))?;
        self.pipeline = fresh;
        self.recent_errors.clear();
        self.batches_since_retrain = 0;
        self.retrain_count += 1;
        if let Some(o) = &self.obs {
            o.count("coda_cluster_retrains", 1);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_core::Node;
    use coda_data::{BoxedEstimator, Dataset};
    use coda_linalg::Matrix;
    use coda_ml::LinearRegression;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Linear data whose slope drifts with `phase`: concept drift.
    fn batch(n: usize, slope: f64, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 1);
        let mut y = Vec::with_capacity(n);
        for r in 0..n {
            let v: f64 = rng.gen_range(-3.0..3.0);
            x[(r, 0)] = v;
            y.push(slope * v + 0.05 * rng.gen_range(-1.0..1.0));
        }
        Dataset::new(x).with_target(y).unwrap()
    }

    fn linear_pipeline() -> Pipeline {
        Pipeline::from_nodes(vec![Node::auto(
            (Box::new(LinearRegression::new()) as BoxedEstimator).into(),
        )])
    }

    #[test]
    fn stable_data_never_triggers_drift_retrain() {
        let mut lc = ModelLifecycle::deploy(
            linear_pipeline(),
            &batch(100, 2.0, 1),
            Metric::Rmse,
            RetrainPolicy::OnDrift { tolerance_ratio: 0.5, window: 3 },
        )
        .unwrap();
        for i in 0..10 {
            lc.process_batch(&batch(50, 2.0, 100 + i)).unwrap();
        }
        assert_eq!(lc.retrain_count, 0);
        assert!(lc.lifetime_error() < 0.1);
    }

    #[test]
    fn concept_drift_triggers_retrain_and_recovers() {
        let mut lc = ModelLifecycle::deploy(
            linear_pipeline(),
            &batch(200, 2.0, 2),
            Metric::Rmse,
            RetrainPolicy::OnDrift { tolerance_ratio: 0.5, window: 2 },
        )
        .unwrap();
        // drift: the slope changes
        let mut errors = Vec::new();
        for i in 0..12 {
            let rec = lc.process_batch(&batch(200, -1.0, 200 + i)).unwrap();
            errors.push(rec.error);
        }
        assert!(lc.retrain_count >= 1, "drift must trigger retraining");
        // after retraining on drifted data the error drops substantially
        let first = errors[0];
        let last = *errors.last().unwrap();
        assert!(
            last < first / 2.0,
            "post-retrain error {last:.3} must be well below pre-retrain {first:.3}"
        );
    }

    #[test]
    fn never_policy_stays_obsolete() {
        let mut lc = ModelLifecycle::deploy(
            linear_pipeline(),
            &batch(200, 2.0, 3),
            Metric::Rmse,
            RetrainPolicy::Never,
        )
        .unwrap();
        for i in 0..6 {
            lc.process_batch(&batch(100, -1.0, 300 + i)).unwrap();
        }
        assert_eq!(lc.retrain_count, 0);
        // the obsolete model keeps a high error forever
        assert!(lc.history.last().unwrap().error > 1.0);
    }

    #[test]
    fn cadence_policy_retrains_on_schedule() {
        let mut lc = ModelLifecycle::deploy(
            linear_pipeline(),
            &batch(100, 1.0, 4),
            Metric::Rmse,
            RetrainPolicy::EveryNBatches(3),
        )
        .unwrap();
        for i in 0..9 {
            lc.process_batch(&batch(50, 1.0, 400 + i)).unwrap();
        }
        assert_eq!(lc.retrain_count, 3);
        let retrain_positions: Vec<usize> =
            lc.history.iter().enumerate().filter(|(_, b)| b.retrained).map(|(i, _)| i).collect();
        assert_eq!(retrain_positions, vec![2, 5, 8]);
    }

    #[test]
    fn drift_beats_never_and_costs_less_than_cadence() {
        // the §II trade-off, measured: drift-aware retraining reaches
        // near-cadence accuracy with fewer retrains than every-batch.
        let run = |policy: RetrainPolicy| {
            let mut lc = ModelLifecycle::deploy(
                linear_pipeline(),
                &batch(200, 2.0, 5),
                Metric::Rmse,
                policy,
            )
            .unwrap();
            for i in 0..8 {
                // slope drifts halfway through
                let slope = if i < 4 { 2.0 } else { -1.5 };
                lc.process_batch(&batch(200, slope, 500 + i)).unwrap();
            }
            (lc.lifetime_error(), lc.retrain_count)
        };
        let (never_err, never_cost) = run(RetrainPolicy::Never);
        let (cadence_err, cadence_cost) = run(RetrainPolicy::EveryNBatches(1));
        let (drift_err, drift_cost) =
            run(RetrainPolicy::OnDrift { tolerance_ratio: 0.5, window: 1 });
        assert_eq!(never_cost, 0);
        assert!(drift_err < never_err, "drift ({drift_err:.3}) must beat never ({never_err:.3})");
        assert!(
            drift_cost < cadence_cost,
            "drift retrains ({drift_cost}) must cost less than every-batch ({cadence_cost})"
        );
        // and its accuracy is in the same league as the expensive cadence
        assert!(drift_err < cadence_err * 2.0 + 0.5);
    }

    #[test]
    fn predict_uses_current_model() {
        let initial = batch(100, 2.0, 6);
        let lc =
            ModelLifecycle::deploy(linear_pipeline(), &initial, Metric::Rmse, RetrainPolicy::Never)
                .unwrap();
        let test = batch(20, 2.0, 7);
        let pred = lc.predict(&test).unwrap();
        let rmse = coda_data::metrics::rmse(test.target().unwrap(), &pred).unwrap();
        assert!(rmse < 0.1);
        assert!(lc.baseline_error() < 0.1);
    }
}
