//! Advanced imputation (§III names "multiple imputation by chained
//! equations" and "matrix factorization" among the fixed imputation
//! techniques): an iterative chained-equations imputer with ridge
//! regressions, and a rank-k ALS matrix-factorization imputer.

use crate::dataset::Dataset;
use crate::traits::{BoxedTransformer, ComponentError, ParamValue, Transformer};
use coda_linalg::Matrix;

/// Solves the small ridge system `(XᵀX + λI) w = Xᵀy` for one chained
/// regression; `x` rows are predictors (with intercept prepended by caller).
fn ridge_solve(x: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>, ComponentError> {
    let mut gram = x.gram();
    let scale = gram.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
    for i in 0..gram.rows() {
        gram[(i, i)] += lambda * scale.max(1e-12);
    }
    let xty = x.transpose().matvec(y).expect("shapes match by construction");
    coda_linalg::decomp::cholesky_solve(&gram, &xty)
        .map_err(|e| ComponentError::Numerical(format!("chained ridge failed: {e}")))
}

/// Multiple-imputation-by-chained-equations style imputer: missing cells are
/// initialized at column means, then each incomplete column is repeatedly
/// regressed (ridge) on all other columns and its missing cells refreshed,
/// for a fixed number of sweeps.
///
/// # Examples
///
/// ```
/// use coda_data::impute_advanced::IterativeImputer;
/// use coda_data::{synth, Transformer};
///
/// let ds = synth::linear_regression(100, 4, 0.1, 5);
/// let holed = synth::inject_missing(&ds, 0.1, 6);
/// let mut imp = IterativeImputer::new(5);
/// let filled = imp.fit_transform(&holed)?;
/// assert!(!filled.has_missing());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct IterativeImputer {
    sweeps: usize,
    lambda: f64,
    /// Fitted per-column regressions: `coef[c]` = [intercept, w over other
    /// columns in ascending order], or None for complete columns.
    models: Option<Vec<Option<Vec<f64>>>>,
    means: Option<Vec<f64>>,
}

impl IterativeImputer {
    /// Creates an imputer running `sweeps` chained passes (ridge 1e-3).
    ///
    /// # Panics
    ///
    /// Panics if `sweeps == 0`.
    pub fn new(sweeps: usize) -> Self {
        assert!(sweeps > 0, "sweeps must be positive");
        IterativeImputer { sweeps, lambda: 1e-3, models: None, means: None }
    }

    /// Runs the chained sweeps on `x` in place; returns per-column models.
    fn chained_fill(
        &self,
        x: &mut Matrix,
        missing: &[Vec<usize>],
        means: &[f64],
    ) -> Result<Vec<Option<Vec<f64>>>, ComponentError> {
        let d = x.cols();
        // mean initialization
        for (c, rows) in missing.iter().enumerate() {
            for &r in rows {
                x[(r, c)] = means[c];
            }
        }
        let mut models: Vec<Option<Vec<f64>>> = vec![None; d];
        for _ in 0..self.sweeps {
            for c in 0..d {
                if missing[c].is_empty() {
                    continue;
                }
                // design: intercept + all other columns, over rows where c
                // was OBSERVED
                let observed: Vec<usize> =
                    (0..x.rows()).filter(|r| !missing[c].contains(r)).collect();
                if observed.len() < d {
                    continue; // not enough rows to regress; keep means
                }
                let mut design = Matrix::zeros(observed.len(), d);
                let mut target = Vec::with_capacity(observed.len());
                for (i, &r) in observed.iter().enumerate() {
                    design[(i, 0)] = 1.0;
                    let mut j = 1;
                    for cc in 0..d {
                        if cc != c {
                            design[(i, j)] = x[(r, cc)];
                            j += 1;
                        }
                    }
                    target.push(x[(r, c)]);
                }
                let coef = ridge_solve(&design, &target, self.lambda)?;
                // refresh the missing cells
                for &r in &missing[c] {
                    let mut pred = coef[0];
                    let mut j = 1;
                    for cc in 0..d {
                        if cc != c {
                            pred += coef[j] * x[(r, cc)];
                            j += 1;
                        }
                    }
                    x[(r, c)] = pred;
                }
                models[c] = Some(coef);
            }
        }
        Ok(models)
    }
}

impl Transformer for IterativeImputer {
    fn name(&self) -> &str {
        "iterative_imputer"
    }

    fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
        match param {
            "sweeps" => {
                self.sweeps = value.as_usize().filter(|&s| s > 0).ok_or_else(|| {
                    ComponentError::InvalidParam {
                        component: "iterative_imputer".to_string(),
                        param: param.to_string(),
                        reason: "must be a positive integer".to_string(),
                    }
                })?;
                Ok(())
            }
            _ => Err(ComponentError::UnknownParam {
                component: self.name().to_string(),
                param: param.to_string(),
            }),
        }
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        let x0 = data.features();
        if x0.rows() == 0 {
            return Err(ComponentError::InvalidInput("empty dataset".to_string()));
        }
        let d = x0.cols();
        let mut means = Vec::with_capacity(d);
        let mut missing: Vec<Vec<usize>> = vec![Vec::new(); d];
        for (c, slots) in missing.iter_mut().enumerate() {
            let col = x0.col(c);
            let observed: Vec<f64> = col.iter().copied().filter(|v| !v.is_nan()).collect();
            if observed.is_empty() {
                return Err(ComponentError::InvalidInput(format!(
                    "column {c} has no observed values"
                )));
            }
            means.push(coda_linalg::mean(&observed));
            for (r, v) in col.iter().enumerate() {
                if v.is_nan() {
                    slots.push(r);
                }
            }
        }
        let mut x = x0.clone();
        let models = self.chained_fill(&mut x, &missing, &means)?;
        self.models = Some(models);
        self.means = Some(means);
        Ok(())
    }

    fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        let (models, means) = match (&self.models, &self.means) {
            (Some(m), Some(mu)) => (m, mu),
            _ => return Err(ComponentError::NotFitted(self.name().to_string())),
        };
        if means.len() != data.n_features() {
            return Err(ComponentError::InvalidInput(format!(
                "imputer fitted on {} features, input has {}",
                means.len(),
                data.n_features()
            )));
        }
        let d = data.n_features();
        let mut x = data.features().clone();
        // mean-fill first so chained predictions have complete predictors
        let mut missing_cells: Vec<(usize, usize)> = Vec::new();
        for r in 0..x.rows() {
            for c in 0..d {
                if x[(r, c)].is_nan() {
                    x[(r, c)] = means[c];
                    missing_cells.push((r, c));
                }
            }
        }
        // one refinement pass with the fitted models
        for &(r, c) in &missing_cells {
            if let Some(coef) = &models[c] {
                let mut pred = coef[0];
                let mut j = 1;
                for cc in 0..d {
                    if cc != c {
                        pred += coef[j] * x[(r, cc)];
                        j += 1;
                    }
                }
                x[(r, c)] = pred;
            }
        }
        Ok(data.replace_features(x))
    }

    fn clone_box(&self) -> BoxedTransformer {
        Box::new(IterativeImputer::new(self.sweeps))
    }
}

/// Rank-k matrix-factorization imputer: alternating least squares on the
/// observed cells, missing cells filled from the low-rank reconstruction.
#[derive(Debug, Clone)]
pub struct MatrixFactorizationImputer {
    rank: usize,
    iters: usize,
    lambda: f64,
    fitted: bool,
}

impl MatrixFactorizationImputer {
    /// Creates an ALS imputer of the given rank (20 iterations, λ = 0.1).
    ///
    /// # Panics
    ///
    /// Panics if `rank == 0`.
    pub fn new(rank: usize) -> Self {
        assert!(rank > 0, "rank must be positive");
        MatrixFactorizationImputer { rank, iters: 20, lambda: 0.1, fitted: false }
    }

    /// ALS on the observed cells of `x`; returns the reconstruction.
    fn reconstruct(&self, x: &Matrix) -> Result<Matrix, ComponentError> {
        let (n, d) = x.shape();
        let k = self.rank.min(d).min(n);
        // deterministic init
        let mut u = Matrix::zeros(n, k);
        let mut v = Matrix::zeros(d, k);
        for (i, val) in u.as_mut_slice().iter_mut().enumerate() {
            *val = (((i as u64).wrapping_mul(2654435761) >> 16) % 1000) as f64 / 1000.0 - 0.5;
        }
        for (i, val) in v.as_mut_slice().iter_mut().enumerate() {
            *val = (((i as u64 + 77).wrapping_mul(2654435761) >> 16) % 1000) as f64 / 1000.0 - 0.5;
        }
        let observed: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|r| {
                let x = &x;
                (0..d).filter_map(move |c| {
                    let val = x[(r, c)];
                    if val.is_nan() {
                        None
                    } else {
                        Some((r, c, val))
                    }
                })
            })
            .collect();
        if observed.is_empty() {
            return Err(ComponentError::InvalidInput("no observed cells".to_string()));
        }
        for _ in 0..self.iters {
            // solve each row of U against fixed V over its observed columns
            for r in 0..n {
                let cols: Vec<(usize, f64)> = observed
                    .iter()
                    .filter(|(rr, _, _)| *rr == r)
                    .map(|(_, c, val)| (*c, *val))
                    .collect();
                if cols.is_empty() {
                    continue;
                }
                let mut design = Matrix::zeros(cols.len(), k);
                let mut target = Vec::with_capacity(cols.len());
                for (i, (c, val)) in cols.iter().enumerate() {
                    design.row_mut(i).copy_from_slice(v.row(*c));
                    target.push(*val);
                }
                let w = ridge_solve(&design, &target, self.lambda)?;
                u.row_mut(r).copy_from_slice(&w);
            }
            // solve each row of V against fixed U over its observed rows
            for c in 0..d {
                let rows: Vec<(usize, f64)> = observed
                    .iter()
                    .filter(|(_, cc, _)| *cc == c)
                    .map(|(r, _, val)| (*r, *val))
                    .collect();
                if rows.is_empty() {
                    continue;
                }
                let mut design = Matrix::zeros(rows.len(), k);
                let mut target = Vec::with_capacity(rows.len());
                for (i, (r, val)) in rows.iter().enumerate() {
                    design.row_mut(i).copy_from_slice(u.row(*r));
                    target.push(*val);
                }
                let w = ridge_solve(&design, &target, self.lambda)?;
                v.row_mut(c).copy_from_slice(&w);
            }
        }
        u.matmul(&v.transpose()).map_err(|e| ComponentError::Numerical(e.to_string()))
    }
}

impl Transformer for MatrixFactorizationImputer {
    fn name(&self) -> &str {
        "matrix_factorization_imputer"
    }

    fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
        match param {
            "rank" => {
                self.rank = value.as_usize().filter(|&r| r > 0).ok_or_else(|| {
                    ComponentError::InvalidParam {
                        component: self.name().to_string(),
                        param: param.to_string(),
                        reason: "must be a positive integer".to_string(),
                    }
                })?;
                Ok(())
            }
            "iters" => {
                self.iters = value.as_usize().filter(|&i| i > 0).ok_or_else(|| {
                    ComponentError::InvalidParam {
                        component: self.name().to_string(),
                        param: param.to_string(),
                        reason: "must be a positive integer".to_string(),
                    }
                })?;
                Ok(())
            }
            _ => Err(ComponentError::UnknownParam {
                component: self.name().to_string(),
                param: param.to_string(),
            }),
        }
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        if data.n_samples() == 0 {
            return Err(ComponentError::InvalidInput("empty dataset".to_string()));
        }
        self.fitted = true;
        Ok(())
    }

    fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        if !self.fitted {
            return Err(ComponentError::NotFitted(self.name().to_string()));
        }
        if !data.has_missing() {
            return Ok(data.clone());
        }
        let recon = self.reconstruct(data.features())?;
        let mut x = data.features().clone();
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                if x[(r, c)].is_nan() {
                    x[(r, c)] = recon[(r, c)];
                }
            }
        }
        Ok(data.replace_features(x))
    }

    fn clone_box(&self) -> BoxedTransformer {
        Box::new(MatrixFactorizationImputer::new(self.rank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impute::{ImputeStrategy, SimpleImputer};
    use crate::synth;

    /// RMSE between imputed cells and the true (pre-hole) values.
    fn imputation_rmse(truth: &Dataset, holed: &Dataset, filled: &Dataset) -> f64 {
        let mut se = 0.0;
        let mut n = 0usize;
        for r in 0..truth.n_samples() {
            for c in 0..truth.n_features() {
                if holed.features()[(r, c)].is_nan() {
                    let d = filled.features()[(r, c)] - truth.features()[(r, c)];
                    se += d * d;
                    n += 1;
                }
            }
        }
        (se / n.max(1) as f64).sqrt()
    }

    /// Correlated data: columns are noisy multiples of a latent factor, so
    /// chained equations and low-rank structure both apply.
    fn correlated(n: usize, seed: u64) -> Dataset {
        let base = synth::linear_regression(n, 1, 0.0, seed);
        let latent = base.features().col(0);
        let mut x = Matrix::zeros(n, 4);
        for (r, &l) in latent.iter().enumerate() {
            x[(r, 0)] = l;
            x[(r, 1)] = 2.0 * l + 0.05 * ((r * 13 % 17) as f64 / 17.0 - 0.5);
            x[(r, 2)] = -1.5 * l + 0.05 * ((r * 7 % 23) as f64 / 23.0 - 0.5);
            x[(r, 3)] = 0.5 * l + 0.05 * ((r * 11 % 19) as f64 / 19.0 - 0.5);
        }
        Dataset::new(x)
    }

    #[test]
    fn iterative_beats_mean_on_correlated_data() {
        let truth = correlated(200, 91);
        let holed = synth::inject_missing(&truth, 0.15, 92);
        let mut mice = IterativeImputer::new(5);
        let mice_filled = mice.fit_transform(&holed).unwrap();
        let mut mean = SimpleImputer::new(ImputeStrategy::Mean);
        let mean_filled = mean.fit_transform(&holed).unwrap();
        let mice_err = imputation_rmse(&truth, &holed, &mice_filled);
        let mean_err = imputation_rmse(&truth, &holed, &mean_filled);
        assert!(
            mice_err < mean_err / 3.0,
            "chained ({mice_err:.4}) must be far below mean ({mean_err:.4})"
        );
        assert!(!mice_filled.has_missing());
    }

    #[test]
    fn matrix_factorization_beats_mean_on_low_rank_data() {
        let truth = correlated(150, 93);
        let holed = synth::inject_missing(&truth, 0.2, 94);
        let mut mf = MatrixFactorizationImputer::new(1);
        mf.fit(&holed).unwrap();
        let mf_filled = mf.transform(&holed).unwrap();
        let mut mean = SimpleImputer::new(ImputeStrategy::Mean);
        let mean_filled = mean.fit_transform(&holed).unwrap();
        let mf_err = imputation_rmse(&truth, &holed, &mf_filled);
        let mean_err = imputation_rmse(&truth, &holed, &mean_filled);
        assert!(
            mf_err < mean_err / 2.0,
            "rank-1 ALS ({mf_err:.4}) must be far below mean ({mean_err:.4})"
        );
        assert!(!mf_filled.has_missing());
    }

    #[test]
    fn iterative_transform_applies_to_new_data() {
        let truth = correlated(120, 95);
        let holed = synth::inject_missing(&truth, 0.1, 96);
        let mut mice = IterativeImputer::new(3);
        mice.fit(&holed).unwrap();
        let new_truth = correlated(40, 97);
        let new_holed = synth::inject_missing(&new_truth, 0.1, 98);
        let filled = mice.transform(&new_holed).unwrap();
        assert!(!filled.has_missing());
        let err = imputation_rmse(&new_truth, &new_holed, &filled);
        assert!(err < 1.0, "out-of-sample imputation rmse {err}");
    }

    #[test]
    fn complete_data_untouched() {
        let ds = correlated(50, 99);
        let mut mice = IterativeImputer::new(2);
        assert_eq!(mice.fit_transform(&ds).unwrap(), ds);
        let mut mf = MatrixFactorizationImputer::new(2);
        assert_eq!(mf.fit_transform(&ds).unwrap(), ds);
    }

    #[test]
    fn errors_and_params() {
        let ds = correlated(30, 100);
        assert!(IterativeImputer::new(2).transform(&ds).is_err());
        assert!(MatrixFactorizationImputer::new(2).transform(&ds).is_err());
        let all_nan = Dataset::new(Matrix::filled(5, 2, f64::NAN));
        assert!(IterativeImputer::new(2).fit(&all_nan).is_err());
        let mut mice = IterativeImputer::new(2);
        mice.set_param("sweeps", ParamValue::from(4usize)).unwrap();
        assert!(mice.set_param("sweeps", ParamValue::from(0usize)).is_err());
        let mut mf = MatrixFactorizationImputer::new(2);
        mf.set_param("rank", ParamValue::from(3usize)).unwrap();
        mf.set_param("iters", ParamValue::from(5usize)).unwrap();
        assert!(mf.set_param("rank", ParamValue::from(0usize)).is_err());
    }
}
