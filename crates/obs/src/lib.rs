//! `coda-obs` — the unified observability layer for the coda workspace:
//! a lock-cheap [`MetricsRegistry`] of named counters/gauges/histograms, a
//! span/event [`Tracer`] over a pluggable [`Clock`], the [`Publish`] trait
//! unifying crate-local stats structs, and two exposition surfaces
//! (Prometheus text + `serde_json` snapshot). See DESIGN.md §9 for the
//! metric naming scheme (`coda_<crate>_<name>`), the span taxonomy, and
//! the determinism contract with the chaos clock.
//!
//! # Examples
//!
//! ```
//! use coda_obs::Obs;
//!
//! let obs = Obs::deterministic();
//! obs.count("coda_demo_ops", 3);
//! {
//!     let _span = obs.span("demo.step", &[("phase", "fit")]);
//! }
//! let snap = obs.registry().snapshot();
//! assert_eq!(snap.counter("coda_demo_ops"), 3);
//! let parsed = coda_obs::MetricsSnapshot::from_json(&snap.to_json()).unwrap();
//! assert_eq!(parsed, snap);
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod analyze;
pub mod clock;
pub mod diagnose;
pub mod flight;
pub mod metrics;
pub mod profile;
pub mod publish;
pub mod slo;
pub mod trace;

use std::sync::Arc;

pub use analyze::{SpanNode, TraceForest};
pub use clock::{Clock, ManualClock, WallClock};
pub use diagnose::{
    diagnose, DiagReport, DiagnoseConfig, Incident, OperatorSuspect, SeriesSuspect, ShardSuspect,
};
pub use flight::{FlightConfig, FlightRecorder, FlightWindow};
pub use metrics::{
    label_value, labeled_name, name_parts, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry, MetricsSnapshot, DEFAULT_MS_BOUNDS,
};
pub use profile::{CostEntry, CostProfile, Exemplar, ExemplarStore};
pub use publish::Publish;
pub use slo::{
    BreachRun, BurnState, BurnWindows, SloEngine, SloEvaluation, SloReport, SloSignal, SloSpec,
    SloStatus,
};
pub use trace::{
    EventKind, SpanContext, SpanGuard, SpanId, TailPolicy, TailSampleReport, TraceEvent, TraceId,
    Tracer,
};

/// The handle instrumented components hold: a shared registry, a tracer,
/// and an exemplar store (disarmed by default), cheap to clone (`Arc`s).
#[derive(Clone, Debug)]
pub struct Obs {
    registry: Arc<MetricsRegistry>,
    tracer: Arc<Tracer>,
    exemplars: Arc<ExemplarStore>,
}

impl Obs {
    /// An `Obs` over an explicit clock.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Obs {
            registry: Arc::new(MetricsRegistry::new()),
            tracer: Arc::new(Tracer::new(clock)),
            exemplars: Arc::new(ExemplarStore::disabled()),
        }
    }

    /// An `Obs` timed by real elapsed time — the production default.
    pub fn wall() -> Self {
        Self::with_clock(Arc::new(WallClock::new()))
    }

    /// An `Obs` over a [`ManualClock`] pinned at zero: every timestamp is
    /// explicit, so traces replay byte-identically — use under test and in
    /// deterministic chaos runs.
    pub fn deterministic() -> Self {
        Self::with_clock(Arc::new(ManualClock::new()))
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The shared tracer.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The shared exemplar store (disarmed unless
    /// [`ExemplarStore::enable`]d — offers are near-free while disarmed).
    pub fn exemplars(&self) -> &Arc<ExemplarStore> {
        &self.exemplars
    }

    /// The tracer clock's current reading, in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.tracer.now_ms()
    }

    /// Shorthand: add `n` to the counter named `name`.
    pub fn count(&self, name: &str, n: u64) {
        self.registry.count(name, n);
    }

    /// Shorthand: open a span on the tracer.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, name: &str, fields: &[(&str, &str)]) -> SpanGuard<'_> {
        self.tracer.span(name, fields)
    }

    /// Shorthand: open a span as a child of a carried [`SpanContext`].
    #[must_use = "the span closes when the guard drops"]
    pub fn span_child(
        &self,
        parent: SpanContext,
        name: &str,
        fields: &[(&str, &str)],
    ) -> SpanGuard<'_> {
        self.tracer.span_child(parent, name, fields)
    }

    /// Shorthand: record a point event on the tracer.
    pub fn event(&self, name: &str, fields: &[(&str, &str)]) {
        self.tracer.event(name, fields);
    }

    /// Shorthand: record a point event inside a carried [`SpanContext`].
    pub fn event_in(&self, ctx: SpanContext, name: &str, fields: &[(&str, &str)]) {
        self.tracer.event_in(ctx, name, fields);
    }

    /// Syncs the tracer clock to `ms` when it is a [`ManualClock`] — lets a
    /// deterministic driver stamp every span from its own logical time.
    /// No-op (returns `false`) on real clocks.
    pub fn sync_manual_ms(&self, ms: f64) -> bool {
        match self.tracer.clock().as_manual() {
            Some(manual) => {
                manual.set_ms(ms);
                true
            }
            None => false,
        }
    }

    /// Reconstructs the causal span forest from everything the tracer has
    /// recorded so far.
    pub fn forest(&self) -> TraceForest {
        TraceForest::from_events(&self.tracer.events())
    }

    /// Shorthand: publish a stats snapshot into the registry.
    pub fn publish<P: Publish>(&self, stats: &P) {
        stats.publish(&self.registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_bundles_registry_and_tracer() {
        let obs = Obs::deterministic();
        obs.count("coda_obs_test", 2);
        obs.event("test.point", &[("k", "v")]);
        {
            let _span = obs.span("test.span", &[]);
        }
        let clone = obs.clone();
        clone.count("coda_obs_test", 1);
        assert_eq!(obs.registry().snapshot().counter("coda_obs_test"), 3);
        assert_eq!(obs.tracer().len(), 3, "event + span start/end, shared across clones");
        assert_eq!(obs.now_ms(), 0.0, "deterministic clock starts at zero");
    }

    #[test]
    fn publish_through_obs_lands_in_registry() {
        struct Demo(u64);
        impl Publish for Demo {
            fn publish(&self, registry: &MetricsRegistry) {
                registry.count("coda_obs_demo", self.0);
            }
        }
        let obs = Obs::deterministic();
        obs.publish(&Demo(5));
        obs.publish(&Some(Demo(2)));
        obs.publish(&None::<Demo>);
        assert_eq!(obs.registry().snapshot().counter("coda_obs_demo"), 7);
    }
}
