/root/repo/target/debug/deps/coda_darr-8cf3876e3d144cf6.d: crates/darr/src/lib.rs crates/darr/src/coop.rs crates/darr/src/record.rs crates/darr/src/repo.rs

/root/repo/target/debug/deps/libcoda_darr-8cf3876e3d144cf6.rlib: crates/darr/src/lib.rs crates/darr/src/coop.rs crates/darr/src/record.rs crates/darr/src/repo.rs

/root/repo/target/debug/deps/libcoda_darr-8cf3876e3d144cf6.rmeta: crates/darr/src/lib.rs crates/darr/src/coop.rs crates/darr/src/record.rs crates/darr/src/repo.rs

crates/darr/src/lib.rs:
crates/darr/src/coop.rs:
crates/darr/src/record.rs:
crates/darr/src/repo.rs:
