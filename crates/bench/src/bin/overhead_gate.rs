//! CI overhead gate for the observability layer: evaluates the same
//! fan-out TEG with and without an attached `Obs` handle, interleaving
//! trials and comparing best-of-N wall-clock times. Fails (exit 1) when
//! the instrumented run exceeds the budget — a multiplicative ratio plus a
//! small absolute allowance for fixed costs — so tracing regressions are
//! caught before they land. Reports must also stay bit-identical, so the
//! instrumentation is provably observational.
//!
//! Usage: `overhead_gate [max_ratio]` (default 1.30, i.e. +30%).

use coda_bench::fan_out_graph;
use coda_core::{Evaluator, GraphReport};
use coda_data::{synth, CvStrategy, Metric};
use coda_obs::Obs;

const TRIALS: usize = 5;
const DEFAULT_MAX_RATIO: f64 = 1.30;
/// Absolute allowance for fixed instrumentation costs (ms) so tiny
/// workloads on noisy runners don't trip the ratio.
const ABS_SLACK_MS: f64 = 60.0;

fn main() {
    let max_ratio: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("max_ratio must be a float"))
        .unwrap_or(DEFAULT_MAX_RATIO);

    let ds = synth::friedman1(800, 20, 0.4, 55);
    let graph = fan_out_graph(8);
    let cv = CvStrategy::kfold(5);

    let run = |obs: Option<&Obs>| -> (f64, GraphReport) {
        let mut eval = Evaluator::new(cv.clone(), Metric::Rmse).with_prefix_cache(true);
        if let Some(o) = obs {
            eval = eval.with_obs(o.clone());
        }
        let start = std::time::Instant::now();
        let report = eval.evaluate_graph(&graph, &ds).expect("gate graph evaluates");
        (start.elapsed().as_secs_f64() * 1000.0, report)
    };

    // warmup, then interleaved timed trials (best-of-N per mode rides out
    // scheduler noise on shared CI runners)
    run(None);
    let mut plain_ms = f64::INFINITY;
    let mut traced_ms = f64::INFINITY;
    let mut spans = 0;
    let mut baseline: Option<GraphReport> = None;
    for _ in 0..TRIALS {
        let (p, plain_report) = run(None);
        plain_ms = plain_ms.min(p);
        let obs = Obs::wall();
        let (t, traced_report) = run(Some(&obs));
        traced_ms = traced_ms.min(t);
        spans = obs.tracer().len();

        // observational-only: the instrumented report is bit-identical
        for (a, b) in plain_report.results.iter().zip(&traced_report.results) {
            assert_eq!(a.spec, b.spec, "specs must match");
            assert_eq!(
                a.mean_score.to_bits(),
                b.mean_score.to_bits(),
                "instrumented scores must be bit-identical"
            );
        }
        baseline = Some(plain_report);
    }
    let report = baseline.expect("at least one trial ran");
    let paths = report.results.len();
    let ratio = traced_ms / plain_ms;
    let budget_ms = plain_ms * max_ratio + ABS_SLACK_MS;

    println!("observability overhead gate ({paths} paths, best of {TRIALS} trials)");
    println!("  plain:        {plain_ms:.1} ms");
    println!("  instrumented: {traced_ms:.1} ms ({spans} trace events)");
    println!("  ratio:        {ratio:.3}x  (budget {max_ratio:.2}x + {ABS_SLACK_MS:.0} ms)");

    if traced_ms > budget_ms {
        eprintln!(
            "FAIL: instrumented eval took {traced_ms:.1} ms, over the {budget_ms:.1} ms budget"
        );
        std::process::exit(1);
    }
    println!("PASS: within budget ({traced_ms:.1} ms <= {budget_ms:.1} ms)");
}
