//! Model checks for `TransformCache::get_or_fit`'s per-slot
//! serialization: a `(fold, prefix)` pair must be fitted at most once no
//! matter how callers interleave.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p coda-core --test
//! loom_cache`. Under the vendored `loom` stand-in this is a bounded
//! stress harness; with the real crate it becomes an exhaustive
//! interleaving search without a source change (DESIGN.md §10).
#![cfg(loom)]

use std::sync::atomic::{AtomicUsize, Ordering};

use coda_core::TransformCache;
use coda_data::synth;
use loom::sync::Arc;
use loom::thread;

/// Two racing callers of the same key: exactly one `fit` closure runs,
/// the other caller blocks on the slot and reuses the result.
#[test]
fn same_key_fits_exactly_once() {
    loom::model(|| {
        let cache = Arc::new(TransformCache::new());
        let fits = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let fits = Arc::clone(&fits);
                thread::spawn(move || {
                    thread::yield_now();
                    cache.get_or_fit(0, "scaler|pca", || {
                        fits.fetch_add(1, Ordering::SeqCst);
                        let ds = synth::linear_regression(8, 2, 0.0, 7);
                        Ok((ds.clone(), ds))
                    })
                })
            })
            .collect();
        let outs: Vec<_> =
            handles.into_iter().map(|h| h.join().expect("model thread panicked")).collect();
        assert_eq!(fits.load(Ordering::SeqCst), 1, "a prefix was fitted twice");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        let first = outs[0].as_ref().expect("fit is infallible here");
        let second = outs[1].as_ref().expect("fit is infallible here");
        assert!(Arc::ptr_eq(first, second), "callers must share one fitted output");
    });
}

/// Distinct keys never serialize on each other: both fits run, and the
/// cache ends with two independent entries.
#[test]
fn distinct_keys_fit_independently() {
    loom::model(|| {
        let cache = Arc::new(TransformCache::new());
        let fits = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = [0usize, 1]
            .into_iter()
            .map(|fold| {
                let cache = Arc::clone(&cache);
                let fits = Arc::clone(&fits);
                thread::spawn(move || {
                    cache.get_or_fit(fold, "scaler", || {
                        fits.fetch_add(1, Ordering::SeqCst);
                        let ds = synth::linear_regression(8, 2, 0.0, 7);
                        Ok((ds.clone(), ds))
                    })
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread panicked").expect("fit is infallible here");
        }
        assert_eq!(fits.load(Ordering::SeqCst), 2, "per-fold entries must not alias");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    });
}
