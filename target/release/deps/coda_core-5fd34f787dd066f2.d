/root/repo/target/release/deps/coda_core-5fd34f787dd066f2.d: crates/core/src/lib.rs crates/core/src/dot.rs crates/core/src/eval.rs crates/core/src/graph.rs crates/core/src/grid.rs crates/core/src/node.rs crates/core/src/pipeline.rs crates/core/src/search.rs crates/core/src/tuning.rs

/root/repo/target/release/deps/libcoda_core-5fd34f787dd066f2.rlib: crates/core/src/lib.rs crates/core/src/dot.rs crates/core/src/eval.rs crates/core/src/graph.rs crates/core/src/grid.rs crates/core/src/node.rs crates/core/src/pipeline.rs crates/core/src/search.rs crates/core/src/tuning.rs

/root/repo/target/release/deps/libcoda_core-5fd34f787dd066f2.rmeta: crates/core/src/lib.rs crates/core/src/dot.rs crates/core/src/eval.rs crates/core/src/graph.rs crates/core/src/grid.rs crates/core/src/node.rs crates/core/src/pipeline.rs crates/core/src/search.rs crates/core/src/tuning.rs

crates/core/src/lib.rs:
crates/core/src/dot.rs:
crates/core/src/eval.rs:
crates/core/src/graph.rs:
crates/core/src/grid.rs:
crates/core/src/node.rs:
crates/core/src/pipeline.rs:
crates/core/src/search.rs:
crates/core/src/tuning.rs:
