/root/repo/target/debug/deps/templates-0c46078a719dae24.d: crates/bench/benches/templates.rs Cargo.toml

/root/repo/target/debug/deps/libtemplates-0c46078a719dae24.rmeta: crates/bench/benches/templates.rs Cargo.toml

crates/bench/benches/templates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
