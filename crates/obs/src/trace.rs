//! A causal span/event tracer (Dapper-style).
//!
//! Every span carries a [`SpanId`], the [`TraceId`] of the request tree it
//! belongs to, and an optional parent span — so a cross-tier request
//! (store update → trigger → re-eval → DARR record) reconstructs as one
//! tree instead of a flat stream. A [`SpanContext`] is the cheap-to-copy
//! `(trace_id, span_id)` pair that travels *in-band* with messages across
//! simulated distributed boundaries (`store::lease::UpdateMessage`, DARR
//! claim/complete calls, cluster job dispatch).
//!
//! Parenting is explicit or implicit:
//! - implicit: [`Tracer::span`] parents under the innermost open span on
//!   the *current thread* (a per-thread context stack), so lexical nesting
//!   just works;
//! - explicit: [`Tracer::span_child`] links to a carried [`SpanContext`]
//!   from another thread, node, or message — the propagation primitive;
//! - non-lexical: [`Tracer::begin_span`]/[`Tracer::end_span`] for drivers
//!   whose spans outlive any stack frame (e.g. a chaos claim held across
//!   rounds).
//!
//! Ids are allocated from sequence counters (never time or randomness), so
//! a single-threaded driver over a [`ManualClock`] produces byte-identical
//! logs across same-seed runs — the determinism contract the chaos
//! regression test asserts (DESIGN.md §9).
//!
//! [`ManualClock`]: crate::clock::ManualClock

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;

use parking_lot::Mutex;

use crate::clock::Clock;

/// Identity of one trace (a tree of spans rooted at one request).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identity of one span within a tracer (unique across traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The propagation token: which trace a message belongs to and which span
/// caused it. Two words, `Copy`, and serializable as `t<trace>.s<span>` —
/// cheap enough to ride along every simulated wire message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanContext {
    /// The trace this context belongs to.
    pub trace_id: TraceId,
    /// The originating span.
    pub span_id: SpanId,
}

impl SpanContext {
    /// Serializes to the compact wire form `t<trace>.s<span>`.
    pub fn encode(&self) -> String {
        format!("t{}.s{}", self.trace_id.0, self.span_id.0)
    }

    /// Parses the wire form produced by [`SpanContext::encode`].
    pub fn decode(s: &str) -> Option<Self> {
        let rest = s.strip_prefix('t')?;
        let (trace, span) = rest.split_once(".s")?;
        Some(SpanContext {
            trace_id: TraceId(trace.parse().ok()?),
            span_id: SpanId(span.parse().ok()?),
        })
    }
}

impl fmt::Display for SpanContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.encode())
    }
}

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    SpanStart,
    /// A span closed (fields carry `dur_ms` when the guard knew its start).
    SpanEnd,
    /// A point event.
    Event,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::SpanStart => write!(f, "span_start"),
            EventKind::SpanEnd => write!(f, "span_end"),
            EventKind::Event => write!(f, "event"),
        }
    }
}

/// One recorded trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span/event name (dot-separated taxonomy, e.g. `eval.fold`).
    pub name: String,
    /// Start, end, or point event.
    pub kind: EventKind,
    /// Clock reading when recorded, in milliseconds.
    pub at_ms: f64,
    /// For span start/end: the span's own identity. For point events: the
    /// span the event belongs to (`None` when emitted outside any span).
    pub ctx: Option<SpanContext>,
    /// Parent span (span-start events only; roots carry `None`).
    pub parent: Option<SpanId>,
    /// Key-value annotations.
    pub fields: Vec<(String, String)>,
}

impl TraceEvent {
    fn render(&self) -> String {
        let mut line = format!("{:.3} {} {}", self.at_ms, self.kind, self.name);
        if let Some(ctx) = &self.ctx {
            line.push_str(&format!(" trace={} span={}", ctx.trace_id, ctx.span_id));
        }
        if let Some(parent) = &self.parent {
            line.push_str(&format!(" parent={parent}"));
        }
        for (k, v) in &self.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        line
    }
}

/// Records causally-linked spans and events against a pluggable [`Clock`].
pub struct Tracer {
    clock: Arc<dyn Clock>,
    events: Mutex<Vec<TraceEvent>>,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    /// Per-thread stack of open spans (implicit parenting).
    stacks: Mutex<HashMap<ThreadId, Vec<SpanContext>>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tracer({} events, clock {:?})", self.events.lock().len(), self.clock)
    }
}

fn own_fields(fields: &[(&str, &str)]) -> Vec<(String, String)> {
    fields.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
}

impl Tracer {
    /// Creates a tracer reading time from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Tracer {
            clock,
            events: Mutex::new(Vec::new()),
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            stacks: Mutex::new(HashMap::new()),
        }
    }

    /// The tracer's clock reading, in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.clock.now_ms()
    }

    /// The tracer's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    fn alloc_span(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed))
    }

    fn alloc_trace(&self) -> TraceId {
        TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed))
    }

    /// The innermost open span on the *current thread*, if any.
    pub fn current_context(&self) -> Option<SpanContext> {
        let stacks = self.stacks.lock();
        stacks.get(&std::thread::current().id()).and_then(|s| s.last().copied())
    }

    fn push_current(&self, ctx: SpanContext) {
        self.stacks.lock().entry(std::thread::current().id()).or_default().push(ctx);
    }

    fn pop_current(&self, ctx: SpanContext) {
        let mut stacks = self.stacks.lock();
        let id = std::thread::current().id();
        if let Some(stack) = stacks.get_mut(&id) {
            if let Some(pos) = stack.iter().rposition(|c| *c == ctx) {
                stack.remove(pos);
            }
            if stack.is_empty() {
                stacks.remove(&id);
            }
        }
    }

    fn start_span(
        &self,
        at_ms: f64,
        name: &str,
        parent: Option<SpanContext>,
        fields: &[(&str, &str)],
    ) -> SpanContext {
        let span_id = self.alloc_span();
        let trace_id = match parent {
            Some(p) => p.trace_id,
            None => self.alloc_trace(),
        };
        let ctx = SpanContext { trace_id, span_id };
        self.record(TraceEvent {
            name: name.to_string(),
            kind: EventKind::SpanStart,
            at_ms,
            ctx: Some(ctx),
            parent: parent.map(|p| p.span_id),
            fields: own_fields(fields),
        });
        ctx
    }

    /// Opens a span parented under the innermost open span on this thread
    /// (a new root trace when there is none): records the start now, and
    /// the end (with `dur_ms`) when the returned guard drops.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, name: &str, fields: &[(&str, &str)]) -> SpanGuard<'_> {
        self.span_with_parent(self.current_context(), name, fields)
    }

    /// Opens a span as an explicit child of `parent` — the propagation
    /// primitive for contexts carried across threads or messages.
    #[must_use = "the span closes when the guard drops"]
    pub fn span_child(
        &self,
        parent: SpanContext,
        name: &str,
        fields: &[(&str, &str)],
    ) -> SpanGuard<'_> {
        self.span_with_parent(Some(parent), name, fields)
    }

    /// Opens a span under an optional explicit parent; `None` falls back to
    /// the current thread's innermost span, then to a fresh root trace.
    #[must_use = "the span closes when the guard drops"]
    pub fn span_with_parent(
        &self,
        parent: Option<SpanContext>,
        name: &str,
        fields: &[(&str, &str)],
    ) -> SpanGuard<'_> {
        let parent = parent.or_else(|| self.current_context());
        let start = self.now_ms();
        let ctx = self.start_span(start, name, parent, fields);
        self.push_current(ctx);
        SpanGuard { tracer: self, ctx, start }
    }

    /// Opens a non-lexical span stamped at the clock's current reading and
    /// returns its context; close it with [`Tracer::end_span`]. Does not
    /// touch the implicit per-thread stack — drivers whose spans outlive
    /// any stack frame (claims held across rounds) manage contexts
    /// themselves.
    pub fn begin_span(
        &self,
        name: &str,
        parent: Option<SpanContext>,
        fields: &[(&str, &str)],
    ) -> SpanContext {
        self.start_span(self.now_ms(), name, parent, fields)
    }

    /// Closes a span opened with [`Tracer::begin_span`].
    pub fn end_span(&self, ctx: SpanContext, fields: &[(&str, &str)]) {
        self.record(TraceEvent {
            name: String::new(),
            kind: EventKind::SpanEnd,
            at_ms: self.now_ms(),
            ctx: Some(ctx),
            parent: None,
            fields: own_fields(fields),
        });
    }

    /// Records a point event stamped with the clock's current reading,
    /// attached to the innermost open span on this thread (if any).
    pub fn event(&self, name: &str, fields: &[(&str, &str)]) {
        self.event_at(self.now_ms(), name, fields);
    }

    /// Records a point event attached to the span identified by `ctx` —
    /// used when the owning context was carried in-band with a message.
    pub fn event_in(&self, ctx: SpanContext, name: &str, fields: &[(&str, &str)]) {
        self.record(TraceEvent {
            name: name.to_string(),
            kind: EventKind::Event,
            at_ms: self.now_ms(),
            ctx: Some(ctx),
            parent: None,
            fields: own_fields(fields),
        });
    }

    /// Records a point event at an explicit timestamp — used by drivers
    /// that carry their own logical clock (e.g. the chaos driver).
    pub fn event_at(&self, at_ms: f64, name: &str, fields: &[(&str, &str)]) {
        self.record(TraceEvent {
            name: name.to_string(),
            kind: EventKind::Event,
            at_ms,
            ctx: self.current_context(),
            parent: None,
            fields: own_fields(fields),
        });
    }

    fn record(&self, event: TraceEvent) {
        self.events.lock().push(event);
    }

    /// A copy of every recorded event, in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the full event log as text, one event per line — the byte
    /// surface the deterministic-trace regression test compares.
    pub fn render_log(&self) -> String {
        let events = self.events.lock();
        let mut out = String::with_capacity(events.len() * 64);
        for e in events.iter() {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// Tail-based trace sampling: with the *whole* trace in hand, keep the
    /// interesting ones (matched an event name, carried a flagged field
    /// key, contained a span at least `keep_min_dur_ms` long, or was
    /// explicitly pinned) and drop everything else — bounding trace memory
    /// under sustained load without losing the traces worth debugging.
    /// Traces with spans still open are always kept (their verdict is not
    /// in yet), as are events recorded outside any span. The decision is a
    /// pure function of the recorded events, so same-seed runs sample
    /// identically.
    pub fn sample_tail(&self, policy: &TailPolicy) -> TailSampleReport {
        let mut events = self.events.lock();
        // BTree containers: the open-span sweep below iterates these, and
        // the kept-trace set must not depend on hash iteration order
        let mut starts: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        let mut open: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
        let mut seen: Vec<u64> = Vec::new();
        let mut keep: std::collections::BTreeSet<u64> =
            policy.keep_trace_ids.iter().map(|t| t.0).collect();
        for e in events.iter() {
            let Some(ctx) = e.ctx else { continue };
            let trace = ctx.trace_id.0;
            if !seen.contains(&trace) {
                seen.push(trace);
            }
            match e.kind {
                EventKind::SpanStart => {
                    starts.insert(ctx.span_id.0, e.at_ms);
                    *open.entry(trace).or_insert(0) += 1;
                }
                EventKind::SpanEnd => {
                    if let Some(n) = open.get_mut(&trace) {
                        *n = n.saturating_sub(1);
                    }
                    if let Some(start) = starts.get(&ctx.span_id.0) {
                        if e.at_ms - start >= policy.keep_min_dur_ms {
                            keep.insert(trace);
                        }
                    }
                }
                EventKind::Event => {}
            }
            if policy.keep_event_names.contains(&e.name) {
                keep.insert(trace);
            }
            if e.fields.iter().any(|(k, _)| policy.keep_field_keys.iter().any(|f| f == k)) {
                keep.insert(trace);
            }
        }
        for (trace, open_spans) in &open {
            if *open_spans > 0 {
                keep.insert(*trace);
            }
        }
        let events_before = events.len();
        let traces_kept = seen.iter().filter(|t| keep.contains(t)).count();
        events.retain(|e| match e.ctx {
            None => true,
            Some(ctx) => keep.contains(&ctx.trace_id.0),
        });
        TailSampleReport {
            traces_seen: seen.len(),
            traces_kept,
            events_before,
            events_after: events.len(),
        }
    }
}

/// What [`Tracer::sample_tail`] keeps. The default keeps nothing but open
/// traces — arm it with the builder methods.
#[derive(Debug, Clone)]
pub struct TailPolicy {
    /// Keep traces containing a span at least this long (ms); `+inf`
    /// disables duration-based keeping.
    pub keep_min_dur_ms: f64,
    /// Keep traces containing an event or span with one of these names.
    pub keep_event_names: Vec<String>,
    /// Keep traces containing an event or span carrying one of these
    /// field keys (e.g. `error`).
    pub keep_field_keys: Vec<String>,
    /// Always-keep trace ids (e.g. traces referenced by an exemplar).
    pub keep_trace_ids: Vec<TraceId>,
}

impl Default for TailPolicy {
    fn default() -> Self {
        TailPolicy {
            keep_min_dur_ms: f64::INFINITY,
            keep_event_names: Vec::new(),
            keep_field_keys: Vec::new(),
            keep_trace_ids: Vec::new(),
        }
    }
}

impl TailPolicy {
    /// A policy that keeps nothing (beyond still-open traces).
    pub fn new() -> Self {
        Self::default()
    }

    /// Keep traces containing a span at least `ms` long.
    #[must_use]
    pub fn with_min_dur_ms(mut self, ms: f64) -> Self {
        self.keep_min_dur_ms = ms;
        self
    }

    /// Keep traces containing an event or span named `name`.
    #[must_use]
    pub fn keep_event(mut self, name: &str) -> Self {
        self.keep_event_names.push(name.to_string());
        self
    }

    /// Keep traces carrying field key `key` anywhere.
    #[must_use]
    pub fn keep_field(mut self, key: &str) -> Self {
        self.keep_field_keys.push(key.to_string());
        self
    }

    /// Pin `trace` regardless of content.
    #[must_use]
    pub fn keep_trace(mut self, trace: TraceId) -> Self {
        self.keep_trace_ids.push(trace);
        self
    }
}

/// What one [`Tracer::sample_tail`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailSampleReport {
    /// Distinct traces inspected.
    pub traces_seen: usize,
    /// Traces retained.
    pub traces_kept: usize,
    /// Events held before the pass.
    pub events_before: usize,
    /// Events held after the pass.
    pub events_after: usize,
}

/// Closes its span (recording `dur_ms`) on drop; exposes the span's
/// [`SpanContext`] for in-band propagation while it is open.
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    ctx: SpanContext,
    start: f64,
}

impl SpanGuard<'_> {
    /// The open span's context — copy this into messages so downstream
    /// work can link child spans back to it.
    pub fn context(&self) -> SpanContext {
        self.ctx
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end = self.tracer.now_ms();
        self.tracer.pop_current(self.ctx);
        self.tracer.record(TraceEvent {
            name: String::new(),
            kind: EventKind::SpanEnd,
            at_ms: end,
            ctx: Some(self.ctx),
            parent: None,
            fields: vec![("dur_ms".to_string(), format!("{:.3}", end - self.start))],
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual_tracer() -> (Arc<ManualClock>, Tracer) {
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::new(Arc::clone(&clock) as Arc<dyn Clock>);
        (clock, tracer)
    }

    #[test]
    fn span_records_start_and_end_with_duration() {
        let (clock, tracer) = manual_tracer();
        {
            let _span = tracer.span("eval.fold", &[("fold", "2")]);
            clock.advance_ms(7.0);
        }
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::SpanStart);
        assert_eq!(events[0].fields, vec![("fold".to_string(), "2".to_string())]);
        assert_eq!(events[0].parent, None, "first span is a root");
        assert_eq!(events[1].kind, EventKind::SpanEnd);
        assert_eq!(events[1].at_ms, 7.0);
        assert_eq!(events[1].ctx, events[0].ctx, "end carries the same identity");
        assert_eq!(events[1].fields[0], ("dur_ms".to_string(), "7.000".to_string()));
    }

    #[test]
    fn nested_spans_parent_implicitly_and_events_attach() {
        let (_clock, tracer) = manual_tracer();
        {
            let outer = tracer.span("outer", &[]);
            tracer.event("note", &[]);
            {
                let _inner = tracer.span("inner", &[]);
            }
            drop(outer);
        }
        let events = tracer.events();
        let outer_ctx = events[0].ctx.unwrap();
        assert_eq!(events[1].ctx, Some(outer_ctx), "event attaches to the open span");
        let inner_start = &events[2];
        assert_eq!(inner_start.kind, EventKind::SpanStart);
        assert_eq!(inner_start.parent, Some(outer_ctx.span_id));
        assert_eq!(inner_start.ctx.unwrap().trace_id, outer_ctx.trace_id, "same trace");
        assert!(tracer.current_context().is_none(), "stack drains with the guards");
    }

    #[test]
    fn explicit_child_links_across_carried_context() {
        let (_clock, tracer) = manual_tracer();
        let carried = {
            let root = tracer.span("root", &[]);
            root.context()
        };
        {
            let child = tracer.span_child(carried, "remote.child", &[]);
            assert_eq!(child.context().trace_id, carried.trace_id);
        }
        let events = tracer.events();
        let child_start = events.iter().find(|e| e.name == "remote.child").unwrap();
        assert_eq!(child_start.parent, Some(carried.span_id));
    }

    #[test]
    fn non_lexical_spans_for_drivers() {
        let (clock, tracer) = manual_tracer();
        let root = tracer.begin_span("driver.key", None, &[("key", "p0")]);
        clock.advance_ms(20.0);
        let attempt = tracer.begin_span("driver.attempt", Some(root), &[]);
        tracer.event_in(attempt, "driver.tick", &[]);
        clock.advance_ms(20.0);
        tracer.end_span(attempt, &[]);
        tracer.end_span(root, &[]);
        let events = tracer.events();
        assert_eq!(events.len(), 5);
        assert_eq!(events[1].parent, Some(root.span_id));
        assert_eq!(events[2].ctx, Some(attempt));
        assert_eq!(events[4].at_ms, 40.0);
        assert!(tracer.current_context().is_none(), "begin_span leaves the stack alone");
    }

    #[test]
    fn span_context_encodes_and_decodes() {
        let ctx = SpanContext { trace_id: TraceId(12), span_id: SpanId(34) };
        assert_eq!(ctx.encode(), "t12.s34");
        assert_eq!(SpanContext::decode("t12.s34"), Some(ctx));
        assert_eq!(SpanContext::decode("nonsense"), None);
        assert_eq!(SpanContext::decode("t1.sx"), None);
    }

    #[test]
    fn manual_clock_makes_logs_replayable() {
        let run = || {
            let (clock, tracer) = manual_tracer();
            for i in 0..3 {
                tracer.event("tick", &[("i", &i.to_string())]);
                clock.advance_ms(10.0);
            }
            tracer.event_at(99.5, "done", &[]);
            tracer.render_log()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same driver sequence must produce byte-identical logs");
        assert!(a.contains("0.000 event tick i=0"));
        assert!(a.contains("20.000 event tick i=2"));
        assert!(a.contains("99.500 event done"));
    }

    #[test]
    fn ids_are_sequential_and_deterministic() {
        let run = || {
            let (_clock, tracer) = manual_tracer();
            let a = tracer.span("a", &[]);
            let b = tracer.span("b", &[]);
            (a.context(), b.context())
        };
        let (a1, b1) = run();
        let (a2, b2) = run();
        assert_eq!((a1, b1), (a2, b2), "sequence counters replay identically");
        assert_eq!(a1.span_id, SpanId(1));
        assert_eq!(b1.span_id, SpanId(2));
        assert_eq!(b1.trace_id, a1.trace_id, "b nests under a via the thread stack");
    }

    #[test]
    fn tracer_len_and_emptiness() {
        let (_clock, tracer) = manual_tracer();
        assert!(tracer.is_empty());
        tracer.event("x", &[]);
        assert_eq!(tracer.len(), 1);
        assert!(!tracer.is_empty());
    }

    #[test]
    fn tail_sampling_keeps_interesting_traces_and_drops_the_rest() {
        let (clock, tracer) = manual_tracer();
        // trace 1: fast and boring — must drop
        {
            let _s = tracer.span("serve.request", &[]);
            clock.advance_ms(0.1);
        }
        // trace 2: slow — kept by duration
        let slow = {
            let s = tracer.span("serve.request", &[]);
            clock.advance_ms(25.0);
            s.context().trace_id
        };
        // trace 3: shed — kept by event name
        {
            let s = tracer.span("serve.request", &[]);
            tracer.event_in(s.context(), "serve.shed", &[("shard", "0")]);
            clock.advance_ms(0.1);
        }
        // trace 4: errored — kept by field key
        {
            let _s = tracer.span("serve.request", &[("error", "timeout")]);
            clock.advance_ms(0.1);
        }
        // ctx-less driver event: always survives
        tracer.event_at(99.0, "driver.tick", &[]);
        let report = tracer.sample_tail(
            &TailPolicy::new().with_min_dur_ms(10.0).keep_event("serve.shed").keep_field("error"),
        );
        assert_eq!(report.traces_seen, 4);
        assert_eq!(report.traces_kept, 3, "only the fast boring trace drops");
        assert!(report.events_after < report.events_before);
        let log = tracer.render_log();
        assert!(log.contains(&format!("trace={slow}")), "slow trace survives: {log}");
        assert!(log.contains("serve.shed"));
        assert!(log.contains("error=timeout"));
        assert!(log.contains("driver.tick"), "ctx-less events survive");
        assert_eq!(tracer.len(), report.events_after);
    }

    #[test]
    fn tail_sampling_never_drops_open_traces_or_pinned_ids() {
        let (_clock, tracer) = manual_tracer();
        let open = tracer.begin_span("driver.key", None, &[]);
        let closed = {
            let s = tracer.span("fast", &[]);
            s.context().trace_id
        };
        let report = tracer.sample_tail(&TailPolicy::new());
        assert_eq!(report.traces_kept, 1, "the open trace survives a keep-nothing policy");
        assert!(tracer.render_log().contains("driver.key"));
        assert!(!tracer.render_log().contains("fast"));
        tracer.end_span(open, &[]);

        let (_clock2, tracer2) = manual_tracer();
        let pinned = {
            let s = tracer2.span("fast", &[]);
            s.context().trace_id
        };
        let _ = closed;
        let report = tracer2.sample_tail(&TailPolicy::new().keep_trace(pinned));
        assert_eq!(report.traces_kept, 1, "pinned ids survive");
        assert_eq!(report.events_after, report.events_before);
    }

    #[test]
    fn tail_sampling_is_deterministic() {
        let run = || {
            let (clock, tracer) = manual_tracer();
            for i in 0..8 {
                let s = tracer.span("op", &[("i", &i.to_string())]);
                if i % 3 == 0 {
                    tracer.event_in(s.context(), "op.flag", &[]);
                }
                clock.advance_ms(if i % 2 == 0 { 1.0 } else { 20.0 });
            }
            tracer.sample_tail(&TailPolicy::new().with_min_dur_ms(10.0).keep_event("op.flag"));
            tracer.render_log()
        };
        assert_eq!(run(), run(), "sampling must replay byte-identically");
    }
}
