/root/repo/target/debug/deps/coda_darr-0eb42cdac12cb0d5.d: crates/darr/src/lib.rs crates/darr/src/coop.rs crates/darr/src/record.rs crates/darr/src/repo.rs crates/darr/src/resilient.rs

/root/repo/target/debug/deps/libcoda_darr-0eb42cdac12cb0d5.rlib: crates/darr/src/lib.rs crates/darr/src/coop.rs crates/darr/src/record.rs crates/darr/src/repo.rs crates/darr/src/resilient.rs

/root/repo/target/debug/deps/libcoda_darr-0eb42cdac12cb0d5.rmeta: crates/darr/src/lib.rs crates/darr/src/coop.rs crates/darr/src/record.rs crates/darr/src/repo.rs crates/darr/src/resilient.rs

crates/darr/src/lib.rs:
crates/darr/src/coop.rs:
crates/darr/src/record.rs:
crates/darr/src/repo.rs:
crates/darr/src/resilient.rs:
