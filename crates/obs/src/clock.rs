//! Pluggable time sources for the tracer and timing histograms.
//!
//! Production code uses [`WallClock`]; tests and the deterministic chaos
//! driver use [`ManualClock`] so two runs with the same seed read the same
//! timestamps and produce byte-identical trace logs (DESIGN.md §9).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic source of logical milliseconds.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Milliseconds elapsed since the clock's origin.
    fn now_ms(&self) -> f64;

    /// Downcast hook: `Some` when this clock is a [`ManualClock`] a driver
    /// may set explicitly (used to sync a shared tracer clock to a
    /// simulation's logical time); `None` for real clocks.
    fn as_manual(&self) -> Option<&ManualClock> {
        None
    }
}

/// Real elapsed time since construction.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Creates a wall clock whose origin is now.
    pub fn new() -> Self {
        WallClock { start: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1000.0
    }
}

/// A logical clock advanced explicitly by the driver — reads are exact and
/// replayable, which is what makes traces deterministic under test.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_bits: AtomicU64,
}

impl ManualClock {
    /// Creates a manual clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the clock to an absolute time in milliseconds.
    pub fn set_ms(&self, ms: f64) {
        self.now_bits.store(ms.to_bits(), Ordering::Relaxed);
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance_ms(&self, ms: f64) {
        self.set_ms(self.now_ms() + ms);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> f64 {
        f64::from_bits(self.now_bits.load(Ordering::Relaxed))
    }

    fn as_manual(&self) -> Option<&ManualClock> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_explicit() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0.0);
        c.advance_ms(12.5);
        assert_eq!(c.now_ms(), 12.5);
        c.set_ms(3.0);
        assert_eq!(c.now_ms(), 3.0);
    }

    #[test]
    fn as_manual_downcasts_only_manual_clocks() {
        let manual = ManualClock::new();
        let wall = WallClock::new();
        assert!((&manual as &dyn Clock).as_manual().is_some());
        assert!((&wall as &dyn Clock).as_manual().is_none());
        (&manual as &dyn Clock).as_manual().unwrap().set_ms(4.0);
        assert_eq!(manual.now_ms(), 4.0);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
        assert!(a >= 0.0);
    }
}
