//! Retry/backoff policies with per-call statistics. Backoff is expressed in
//! logical milliseconds (the same unit the simulated network and store
//! clocks use); nothing here sleeps — callers advance their logical clocks
//! by the returned backoff, which keeps chaos runs deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The delay schedule between attempts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backoff {
    /// The same delay before every retry.
    Fixed {
        /// Delay in logical milliseconds.
        delay_ms: f64,
    },
    /// `base * factor^(retry-1)`, capped at `max_ms`.
    Exponential {
        /// First retry delay.
        base_ms: f64,
        /// Multiplier per retry.
        factor: f64,
        /// Upper bound on any single delay.
        max_ms: f64,
    },
}

/// A retry policy: backoff schedule, attempt budget, optional deadline and
/// seeded jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    backoff: Backoff,
    max_attempts: u32,
    /// Total logical-ms budget across all backoffs (None = unbounded).
    deadline_ms: Option<f64>,
    /// Jitter fraction in [0, 1): each delay is scaled by a seeded draw
    /// from [1 - jitter, 1 + jitter].
    jitter: f64,
    seed: u64,
}

impl RetryPolicy {
    /// Fixed-delay policy: up to `max_attempts` attempts, `delay_ms` apart.
    ///
    /// # Panics
    ///
    /// Panics when `max_attempts` is zero or `delay_ms` is negative.
    pub fn fixed(delay_ms: f64, max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "need at least one attempt");
        assert!(delay_ms >= 0.0, "negative delay");
        RetryPolicy {
            backoff: Backoff::Fixed { delay_ms },
            max_attempts,
            deadline_ms: None,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Exponential policy: delays `base, base*factor, ...` capped at
    /// `max_ms`, up to `max_attempts` attempts.
    ///
    /// # Panics
    ///
    /// Panics on a zero attempt budget or non-positive schedule parameters.
    pub fn exponential(base_ms: f64, factor: f64, max_ms: f64, max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "need at least one attempt");
        assert!(base_ms >= 0.0 && factor >= 1.0 && max_ms >= base_ms, "bad schedule");
        RetryPolicy {
            backoff: Backoff::Exponential { base_ms, factor, max_ms },
            max_attempts,
            deadline_ms: None,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Adds seeded jitter: each delay is scaled by a deterministic draw from
    /// `[1 - fraction, 1 + fraction]`.
    ///
    /// # Panics
    ///
    /// Panics when `fraction` is outside `[0, 1)`.
    pub fn with_jitter(mut self, fraction: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&fraction), "jitter fraction must be in [0, 1)");
        self.jitter = fraction;
        self.seed = seed;
        self
    }

    /// Bounds the *total* backoff budget; once cumulative delays would
    /// exceed it, the policy gives up even with attempts remaining.
    pub fn with_deadline(mut self, deadline_ms: f64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Maximum number of attempts (1 = no retries).
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The raw (jitter-free) delay before retry number `retry` (1-based).
    pub fn base_delay_ms(&self, retry: u32) -> f64 {
        match self.backoff {
            Backoff::Fixed { delay_ms } => delay_ms,
            Backoff::Exponential { base_ms, factor, max_ms } => {
                (base_ms * factor.powi(retry.saturating_sub(1) as i32)).min(max_ms)
            }
        }
    }

    /// Starts a fresh retry state for one logical operation. Use this when
    /// side effects (clock advances, failover) must happen between attempts;
    /// otherwise [`RetryPolicy::run`] is simpler.
    pub fn state(&self) -> RetryState {
        RetryState {
            policy: self.clone(),
            rng: StdRng::seed_from_u64(self.seed),
            attempts: 0,
            total_backoff_ms: 0.0,
            deadline_hit: false,
        }
    }

    /// Runs `op` under this policy: `op` receives the 1-based attempt
    /// number; `Err` triggers a retry until attempts or deadline run out.
    /// Returns the final result plus the attempt/backoff accounting.
    pub fn run<T, E>(&self, mut op: impl FnMut(u32) -> Result<T, E>) -> (Result<T, E>, RetryStats) {
        let mut state = self.state();
        loop {
            let attempt = state.begin_attempt();
            match op(attempt) {
                Ok(v) => return (Ok(v), state.finish(true)),
                Err(e) => {
                    if state.next_backoff_ms().is_none() {
                        return (Err(e), state.finish(false));
                    }
                }
            }
        }
    }
}

/// In-flight retry accounting for one logical operation.
#[derive(Debug, Clone)]
pub struct RetryState {
    policy: RetryPolicy,
    rng: StdRng,
    attempts: u32,
    total_backoff_ms: f64,
    deadline_hit: bool,
}

impl RetryState {
    /// Marks the start of the next attempt, returning its 1-based number.
    pub fn begin_attempt(&mut self) -> u32 {
        self.attempts += 1;
        self.attempts
    }

    /// Attempts made so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Charges non-backoff elapsed time (an attempt's own latency, a
    /// failover wait) against the deadline budget, so `with_deadline`
    /// bounds *total* time, not just the sum of backoffs. No-op without a
    /// deadline.
    pub fn charge_ms(&mut self, elapsed_ms: f64) {
        if elapsed_ms > 0.0 {
            self.total_backoff_ms += elapsed_ms;
        }
    }

    /// Remaining deadline budget in logical ms (`None` = unbounded).
    pub fn remaining_budget_ms(&self) -> Option<f64> {
        self.policy.deadline_ms.map(|d| (d - self.total_backoff_ms).max(0.0))
    }

    /// After a failed attempt: the (jittered) backoff before the next one,
    /// or `None` when the attempt budget or deadline is exhausted. The
    /// caller should advance its logical clock by the returned amount.
    pub fn next_backoff_ms(&mut self) -> Option<f64> {
        if self.attempts >= self.policy.max_attempts {
            return None;
        }
        let mut delay = self.policy.base_delay_ms(self.attempts);
        if self.policy.jitter > 0.0 {
            let scale = 1.0 + self.policy.jitter * self.rng.gen_range(-1.0..=1.0);
            delay *= scale;
        }
        if let Some(deadline) = self.policy.deadline_ms {
            if self.total_backoff_ms + delay > deadline {
                self.deadline_hit = true;
                return None;
            }
        }
        self.total_backoff_ms += delay;
        Some(delay)
    }

    /// Finalizes the accounting (`succeeded` = the last attempt returned Ok).
    pub fn finish(&self, succeeded: bool) -> RetryStats {
        RetryStats {
            calls: 1,
            attempts: self.attempts,
            retries: self.attempts.saturating_sub(1),
            successes: u32::from(succeeded),
            exhausted: u32::from(!succeeded),
            deadline_hits: u32::from(self.deadline_hit),
            total_backoff_ms: self.total_backoff_ms,
        }
    }
}

/// Attempt/backoff accounting — per call, and mergeable into a run-level
/// aggregate for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RetryStats {
    /// Logical operations accounted (1 for a single call).
    pub calls: u32,
    /// Attempts made (including the first).
    pub attempts: u32,
    /// Retries (attempts beyond the first).
    pub retries: u32,
    /// Operations that eventually succeeded.
    pub successes: u32,
    /// Operations that ran out of attempts or deadline.
    pub exhausted: u32,
    /// Operations stopped by the deadline specifically.
    pub deadline_hits: u32,
    /// Total logical-ms spent backing off.
    pub total_backoff_ms: f64,
}

impl RetryStats {
    /// Folds another operation's stats into this aggregate.
    pub fn merge(&mut self, other: &RetryStats) {
        self.calls += other.calls;
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.successes += other.successes;
        self.exhausted += other.exhausted;
        self.deadline_hits += other.deadline_hits;
        self.total_backoff_ms += other.total_backoff_ms;
    }
}

impl coda_obs::Publish for RetryStats {
    fn publish(&self, registry: &coda_obs::MetricsRegistry) {
        registry.count("coda_chaos_retry_calls", u64::from(self.calls));
        registry.count("coda_chaos_retry_attempts", u64::from(self.attempts));
        registry.count("coda_chaos_retry_retries", u64::from(self.retries));
        registry.count("coda_chaos_retry_successes", u64::from(self.successes));
        registry.count("coda_chaos_retry_exhausted", u64::from(self.exhausted));
        registry.count("coda_chaos_retry_deadline_hits", u64::from(self.deadline_hits));
        registry.gauge("coda_chaos_retry_backoff_ms").add(self.total_backoff_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_first_try_without_backoff() {
        let policy = RetryPolicy::fixed(10.0, 3);
        let (result, stats) = policy.run(|_| Ok::<_, ()>(42));
        assert_eq!(result, Ok(42));
        assert_eq!(stats.attempts, 1);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.successes, 1);
        assert_eq!(stats.total_backoff_ms, 0.0);
    }

    #[test]
    fn retries_until_success() {
        let policy = RetryPolicy::fixed(5.0, 5);
        let mut fails = 3;
        let (result, stats) = policy.run(|_| {
            if fails > 0 {
                fails -= 1;
                Err("transient")
            } else {
                Ok("done")
            }
        });
        assert_eq!(result, Ok("done"));
        assert_eq!(stats.attempts, 4);
        assert_eq!(stats.retries, 3);
        assert!((stats.total_backoff_ms - 15.0).abs() < 1e-12);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let policy = RetryPolicy::fixed(1.0, 3);
        let (result, stats) = policy.run(|_| Err::<(), _>("permanent"));
        assert_eq!(result, Err("permanent"));
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.exhausted, 1);
        assert_eq!(stats.successes, 0);
    }

    #[test]
    fn exponential_schedule_caps() {
        let policy = RetryPolicy::exponential(10.0, 2.0, 35.0, 10);
        assert_eq!(policy.base_delay_ms(1), 10.0);
        assert_eq!(policy.base_delay_ms(2), 20.0);
        assert_eq!(policy.base_delay_ms(3), 35.0); // capped from 40
        assert_eq!(policy.base_delay_ms(4), 35.0);
    }

    #[test]
    fn deadline_stops_early() {
        let policy = RetryPolicy::fixed(10.0, 100).with_deadline(25.0);
        let (result, stats) = policy.run(|_| Err::<(), _>("slow"));
        assert_eq!(result, Err("slow"));
        // two 10ms backoffs fit in 25ms; the third would exceed it
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.deadline_hits, 1);
        assert!((stats.total_backoff_ms - 20.0).abs() < 1e-12);
    }

    #[test]
    fn charged_time_counts_against_the_deadline() {
        // each attempt itself costs 8ms; with a 25ms total budget the
        // 10ms backoffs are squeezed out after the first retry
        let policy = RetryPolicy::fixed(10.0, 100).with_deadline(25.0);
        let mut state = policy.state();
        let mut given_up = false;
        for _ in 0..100 {
            state.begin_attempt();
            state.charge_ms(8.0);
            if state.next_backoff_ms().is_none() {
                given_up = true;
                break;
            }
        }
        assert!(given_up, "the budget must cap total time");
        let stats = state.finish(false);
        assert_eq!(stats.attempts, 2, "8 + 10 + 8 = 26 > 25 stops the second retry");
        assert_eq!(stats.deadline_hits, 1);
    }

    #[test]
    fn remaining_budget_reports_the_cap() {
        let policy = RetryPolicy::fixed(10.0, 5).with_deadline(30.0);
        let mut state = policy.state();
        assert_eq!(state.remaining_budget_ms(), Some(30.0));
        state.begin_attempt();
        state.next_backoff_ms();
        assert_eq!(state.remaining_budget_ms(), Some(20.0));
        state.charge_ms(25.0);
        assert_eq!(state.remaining_budget_ms(), Some(0.0), "clamped at zero");
        // a policy without a deadline has no budget to report
        assert_eq!(RetryPolicy::fixed(1.0, 2).state().remaining_budget_ms(), None);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy::fixed(100.0, 8).with_jitter(0.2, 99);
        let collect = || {
            let mut state = policy.state();
            let mut delays = Vec::new();
            loop {
                state.begin_attempt();
                match state.next_backoff_ms() {
                    Some(d) => delays.push(d),
                    None => break,
                }
            }
            delays
        };
        let a = collect();
        let b = collect();
        assert_eq!(a, b, "same seed must replay identically");
        assert_eq!(a.len(), 7);
        assert!(a.iter().all(|&d| (80.0..=120.0).contains(&d)), "delays {a:?}");
        // jitter actually varies the delays
        assert!(a.iter().any(|&d| (d - 100.0).abs() > 1e-9));
    }

    #[test]
    fn state_allows_side_effects_between_attempts() {
        let policy = RetryPolicy::fixed(2.0, 4);
        let mut state = policy.state();
        let mut clock = 0.0;
        let mut outcome = Err("down");
        loop {
            state.begin_attempt();
            if clock >= 4.0 {
                outcome = Ok("recovered");
                break;
            }
            match state.next_backoff_ms() {
                Some(d) => clock += d, // the caller advances its own clock
                None => break,
            }
        }
        assert_eq!(outcome, Ok("recovered"));
        let stats = state.finish(true);
        assert_eq!(stats.attempts, 3);
    }

    #[test]
    fn merge_accumulates() {
        let mut total = RetryStats::default();
        let policy = RetryPolicy::fixed(1.0, 2);
        let (_, a) = policy.run(|_| Ok::<_, ()>(1));
        let (_, b) = policy.run(|_| Err::<(), _>(()));
        total.merge(&a);
        total.merge(&b);
        assert_eq!(total.calls, 2);
        assert_eq!(total.attempts, 3);
        assert_eq!(total.successes, 1);
        assert_eq!(total.exhausted, 1);
    }
}
