//! Cross-crate integration: the full Transformer-Estimator-Graph workflow —
//! data generation, imputation/outlier stages, graph construction, parallel
//! CV evaluation, grid search, and model selection.

use coda::data::impute::{ImputeStrategy, SimpleImputer};
use coda::data::outlier::{OutlierMethod, OutlierRemover};
use coda::data::{synth, CvStrategy, Metric, NoOp};
use coda::graph::{Evaluator, ParamGrid, TegBuilder};
use coda::ml::{
    GradientBoostingRegressor, KnnRegressor, LinearRegression, Pca, RandomForestRegressor,
    ScoreFunction, SelectKBest, StandardScaler,
};

#[test]
fn scaling_matters_on_badly_scaled_data() {
    // On wildly different feature scales, the best scaled kNN path must
    // beat the unscaled kNN path — the reason the scaling stage exists.
    let ds = synth::badly_scaled_regression(300, 7, 0.5, 7);
    let graph = TegBuilder::new()
        .add_feature_scalers(vec![Box::new(StandardScaler::new()), Box::new(NoOp::new())])
        .add_models(vec![Box::new(KnnRegressor::new(5))])
        .create_graph()
        .unwrap();
    let report =
        Evaluator::new(CvStrategy::kfold(5), Metric::Rmse).evaluate_graph(&graph, &ds).unwrap();
    let scaled =
        report.results.iter().find(|r| r.spec.steps[0] == "standard_scaler").unwrap().mean_score;
    let unscaled = report.results.iter().find(|r| r.spec.steps[0] == "noop").unwrap().mean_score;
    assert!(
        scaled < unscaled * 0.8,
        "scaled kNN ({scaled:.3}) must clearly beat unscaled ({unscaled:.3})"
    );
}

#[test]
fn dirty_data_pipeline_with_imputation_and_outlier_removal() {
    // Missing values + gross outliers, cleaned inside the pipeline itself.
    let clean = synth::linear_regression(250, 4, 0.2, 8);
    let mut dirty = synth::inject_missing(&clean, 0.05, 9);
    // inject a gross outlier row
    for c in 0..4 {
        dirty.features_mut()[(0, c)] = 1e6;
    }
    let graph = TegBuilder::new()
        .add_transformers(vec![Box::new(SimpleImputer::new(ImputeStrategy::Median))])
        .add_transformers(vec![Box::new(OutlierRemover::new(OutlierMethod::Mad {
            threshold: 6.0,
        }))])
        .add_feature_scalers(vec![Box::new(StandardScaler::new())])
        .add_models(vec![Box::new(LinearRegression::new())])
        .create_graph()
        .unwrap();
    // Train each pipeline on the dirty data, score on clean held-out data:
    // in-pipeline cleaning must recover near-clean accuracy.
    let holdout = synth::linear_regression(250, 4, 0.2, 8); // same generator, same coefficients
    let mut cleaned = graph.enumerate_pipelines().unwrap().remove(0);
    cleaned.fit(&dirty).unwrap();
    let pred = cleaned.predict(&holdout).unwrap();
    let r2 = coda::data::metrics::r2(holdout.target().unwrap(), &pred).unwrap();
    assert!(r2 > 0.9, "cleaned pipeline r2 = {r2}");
    // Without cleaning, the same training data wrecks the fit.
    let raw_graph = TegBuilder::new()
        .add_transformers(vec![Box::new(SimpleImputer::new(ImputeStrategy::Median))])
        .add_models(vec![Box::new(LinearRegression::new())])
        .create_graph()
        .unwrap();
    let mut raw = raw_graph.enumerate_pipelines().unwrap().remove(0);
    raw.fit(&dirty).unwrap();
    let raw_pred = raw.predict(&holdout).unwrap();
    let raw_r2 = coda::data::metrics::r2(holdout.target().unwrap(), &raw_pred).unwrap();
    assert!(r2 > raw_r2, "cleaning ({r2:.3}) must beat no cleaning ({raw_r2:.3})");
}

#[test]
fn grid_search_finds_better_configuration_than_default() {
    let ds = synth::friedman1(400, 10, 0.5, 10);
    let graph = TegBuilder::new()
        .add_feature_selectors(vec![Box::new(SelectKBest::new(
            2, // deliberately bad default: friedman1 has 5 informative features
            ScoreFunction::MutualInfo,
        ))])
        .add_models(vec![Box::new(RandomForestRegressor::new(15))])
        .create_graph()
        .unwrap();
    let evaluator = Evaluator::new(CvStrategy::kfold(4), Metric::Rmse);
    let default_report = evaluator.evaluate_graph(&graph, &ds).unwrap();
    let mut grid = ParamGrid::new();
    grid.add("select_k_best__k", vec![2usize.into(), 5usize.into(), 10usize.into()]);
    let tuned = evaluator.evaluate_graph_with_grid(&graph, &ds, &grid).unwrap();
    assert_eq!(tuned.results.len(), 3);
    assert!(
        tuned.best().unwrap().mean_score < default_report.best().unwrap().mean_score,
        "k=5 or 10 must beat the k=2 default"
    );
    // and the winner is not the bad default
    let winner_k = tuned.best().unwrap().spec.params.get("select_k_best__k").unwrap();
    assert_ne!(winner_k, "i2");
}

#[test]
fn parallel_evaluation_reproducible_across_thread_counts() {
    let ds = synth::friedman1(200, 6, 0.4, 11);
    let graph = TegBuilder::new()
        .add_feature_scalers(vec![Box::new(StandardScaler::new()), Box::new(NoOp::new())])
        .add_feature_selectors(vec![Box::new(Pca::new(3)), Box::new(NoOp::new())])
        .add_models(vec![
            Box::new(LinearRegression::new()),
            Box::new(RandomForestRegressor::new(10)),
            Box::new(GradientBoostingRegressor::new(20, 0.1)),
        ])
        .create_graph()
        .unwrap();
    let base =
        Evaluator::new(CvStrategy::kfold(3), Metric::Rmse).evaluate_graph(&graph, &ds).unwrap();
    for threads in [2usize, 8] {
        let par = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse)
            .with_threads(threads)
            .evaluate_graph(&graph, &ds)
            .unwrap();
        assert_eq!(base.results.len(), par.results.len());
        for (a, b) in base.results.iter().zip(&par.results) {
            assert_eq!(a.spec.key(), b.spec.key());
            assert_eq!(a.fold_scores, b.fold_scores);
        }
    }
}

#[test]
fn monte_carlo_and_kfold_agree_on_the_winner() {
    let ds = synth::linear_regression(300, 4, 0.3, 12);
    let graph = TegBuilder::new()
        .add_models(vec![Box::new(LinearRegression::new()), Box::new(KnnRegressor::new(3))])
        .create_graph()
        .unwrap();
    let kfold =
        Evaluator::new(CvStrategy::kfold(5), Metric::Rmse).evaluate_graph(&graph, &ds).unwrap();
    let mc = Evaluator::new(
        CvStrategy::MonteCarlo { n_splits: 8, test_fraction: 0.2, seed: 3 },
        Metric::Rmse,
    )
    .evaluate_graph(&graph, &ds)
    .unwrap();
    // linear data: linear regression must win under both strategies
    assert_eq!(kfold.best().unwrap().spec.steps, vec!["linear_regression"]);
    assert_eq!(mc.best().unwrap().spec.steps, vec!["linear_regression"]);
    assert_eq!(mc.best().unwrap().fold_scores.len(), 8);
}
