/root/repo/target/debug/examples/cooperative_clients-09997f13693c550d.d: examples/cooperative_clients.rs

/root/repo/target/debug/examples/cooperative_clients-09997f13693c550d: examples/cooperative_clients.rs

examples/cooperative_clients.rs:
