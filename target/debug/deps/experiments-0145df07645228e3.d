/root/repo/target/debug/deps/experiments-0145df07645228e3.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-0145df07645228e3: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
