/root/repo/target/release/deps/serde-a7238ce5e80e0773.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-a7238ce5e80e0773.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-a7238ce5e80e0773.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
