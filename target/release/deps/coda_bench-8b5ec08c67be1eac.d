/root/repo/target/release/deps/coda_bench-8b5ec08c67be1eac.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcoda_bench-8b5ec08c67be1eac.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcoda_bench-8b5ec08c67be1eac.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
