//! Offline stand-in for the `loom` model checker.
//!
//! The real `loom` replaces `std::sync`/`std::thread` with instrumented
//! versions and exhaustively enumerates every interleaving of a bounded
//! concurrent program. This vendored stand-in keeps the *API shape* —
//! `loom::model(|| ...)`, `loom::thread::spawn`, `loom::sync::*` — but
//! executes the closure [`ITERATIONS`] times on real OS threads with
//! yield-point perturbation instead of exhaustive schedule search.
//!
//! That makes tests written against it honest bounded stress tests today,
//! and true model checks the day the real crate is vendored: the test
//! source does not change, only this dependency does. Tests gate on
//! `--cfg loom` exactly as upstream recommends, so they are invisible to
//! normal `cargo test` runs.

use std::sync::atomic::{AtomicU32, Ordering};

/// How many times [`model`] re-executes its closure. Each execution seeds
/// different scheduler noise via staggered spawn ordering, so rare
/// interleavings get repeated chances to appear.
pub const ITERATIONS: usize = 64;

static EXECUTION: AtomicU32 = AtomicU32::new(0);

/// Runs `f` repeatedly, the stand-in for loom's exhaustive exploration.
/// Panics inside `f` propagate and fail the test like upstream loom.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..ITERATIONS {
        EXECUTION.fetch_add(1, Ordering::Relaxed);
        f();
    }
}

/// The execution counter: lets tests confirm the harness actually
/// re-executed the body (upstream loom has no equivalent; harness-only).
pub fn executions() -> u32 {
    EXECUTION.load(Ordering::Relaxed)
}

pub mod thread {
    //! `std::thread` behind loom's module path, with a yield that doubles
    //! as the schedule perturbation point.

    pub use std::thread::{spawn, JoinHandle};

    use std::sync::atomic::{AtomicU32, Ordering};

    static YIELDS: AtomicU32 = AtomicU32::new(0);

    /// Yield point: loom would branch the schedule here; the stand-in
    /// nudges the OS scheduler, spinning a little on every third call so
    /// racing threads change relative order between executions.
    pub fn yield_now() {
        let n = YIELDS.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(3) {
            std::thread::yield_now();
        }
        std::hint::spin_loop();
    }
}

pub mod sync {
    //! `std::sync` types behind loom's module path. Poisoning is ignored
    //! by design, matching both loom (which has no poisoning) and the
    //! vendored `parking_lot` stand-in.

    pub use std::sync::Arc;

    use std::convert::Infallible;
    use std::sync;

    /// A mutex whose `lock` never returns a poison error, matching the
    /// loom guard API shape (`.lock().unwrap()` upstream — here the
    /// `Result` is kept so upstream test code compiles unchanged).
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized> {
        inner: sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates a mutex holding `value`.
        pub fn new(value: T) -> Self {
            Mutex { inner: sync::Mutex::new(value) }
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock; the `Err` side never occurs.
        pub fn lock(&self) -> Result<sync::MutexGuard<'_, T>, Infallible> {
            Ok(self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner))
        }
    }

    /// An rwlock whose guards never report poisoning.
    #[derive(Debug, Default)]
    pub struct RwLock<T: ?Sized> {
        inner: sync::RwLock<T>,
    }

    impl<T> RwLock<T> {
        /// Creates an rwlock holding `value`.
        pub fn new(value: T) -> Self {
            RwLock { inner: sync::RwLock::new(value) }
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires a shared read guard; the `Err` side never occurs.
        pub fn read(&self) -> Result<sync::RwLockReadGuard<'_, T>, Infallible> {
            Ok(self.inner.read().unwrap_or_else(sync::PoisonError::into_inner))
        }

        /// Acquires the exclusive write guard; the `Err` side never occurs.
        pub fn write(&self) -> Result<sync::RwLockWriteGuard<'_, T>, Infallible> {
            Ok(self.inner.write().unwrap_or_else(sync::PoisonError::into_inner))
        }
    }

    pub mod atomic {
        //! Atomics behind loom's module path.
        pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    }
}

pub mod hint {
    //! Spin hints behind loom's module path.
    pub use std::hint::spin_loop;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_reexecutes_the_body() {
        let before = executions();
        model(|| {});
        assert_eq!(executions() - before, ITERATIONS as u32);
    }

    #[test]
    fn threads_and_locks_compose() {
        model(|| {
            let n = sync::Arc::new(sync::Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = sync::Arc::clone(&n);
                    thread::spawn(move || {
                        thread::yield_now();
                        let Ok(mut g) = n.lock();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                let _ = h.join();
            }
            assert_eq!(n.lock().map(|g| *g), Ok(2));
        });
    }
}
