//! The layer contract plus dense, activation and dropout layers.

use coda_linalg::Matrix;

/// Deterministic xorshift RNG used for weight init and dropout masks so
/// networks are reproducible without threading a generator through layers.
#[derive(Debug, Clone)]
pub(crate) struct NnRng(u64);

impl NnRng {
    pub(crate) fn new(seed: u64) -> Self {
        NnRng(seed.wrapping_mul(0x9E3779B97F4A7C15).max(1))
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in [0, 1).
    pub(crate) fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard normal via Box-Muller.
    pub(crate) fn normal(&mut self) -> f64 {
        let u1 = self.uniform().max(f64::EPSILON);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// A differentiable network layer.
///
/// `forward` caches whatever `backward` needs; `backward` receives the loss
/// gradient w.r.t. the layer output, accumulates parameter gradients, and
/// returns the gradient w.r.t. the layer input.
pub trait Layer: Send + Sync {
    /// Forward pass. `training` enables training-only behaviour (dropout).
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix;

    /// Backward pass; must be preceded by a `forward` in training mode.
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;

    /// Parameter/gradient pairs for the optimizer, in a stable order.
    fn params_and_grads(&mut self) -> Vec<(&mut Matrix, &mut Matrix)> {
        Vec::new()
    }

    /// Zeroes accumulated gradients.
    fn zero_grads(&mut self) {
        for (_, g) in self.params_and_grads() {
            g.as_mut_slice().iter_mut().for_each(|v| *v = 0.0);
        }
    }

    /// Fresh clone with the same weights.
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Fully-connected layer `y = x W + b` with He-normal initialization.
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Matrix, // in x out
    bias: Matrix,    // 1 x out
    grad_w: Matrix,
    grad_b: Matrix,
    input: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer mapping `in_dim` → `out_dim`, seeded for
    /// reproducible initialization.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "dimensions must be positive");
        let mut rng = NnRng::new(seed.wrapping_add(0xD1CE));
        let scale = (2.0 / in_dim as f64).sqrt();
        let mut weights = Matrix::zeros(in_dim, out_dim);
        for v in weights.as_mut_slice() {
            *v = rng.normal() * scale;
        }
        Dense {
            weights,
            bias: Matrix::zeros(1, out_dim),
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: Matrix::zeros(1, out_dim),
            input: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix {
        assert_eq!(
            input.cols(),
            self.weights.rows(),
            "dense layer expects {} inputs, got {}",
            self.weights.rows(),
            input.cols()
        );
        if training {
            self.input = Some(input.clone());
        }
        let mut out = input
            .matmul(&self.weights)
            .unwrap_or_else(|_| Matrix::zeros(input.rows(), self.weights.cols()));
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                out[(r, c)] += self.bias[(0, c)];
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        // dx = g Wᵀ needs no stored activation; a backward call with no
        // prior training forward just skips the parameter-gradient update
        let dx = grad_output
            .matmul(&self.weights.transpose())
            .unwrap_or_else(|_| Matrix::zeros(grad_output.rows(), self.weights.rows()));
        let Some(input) = self.input.as_ref() else {
            return dx;
        };
        // dW = xᵀ g ; db = sum over batch
        if let Ok(gw) = input.transpose().matmul(grad_output) {
            self.grad_w = &self.grad_w + &gw;
        }
        for c in 0..grad_output.cols() {
            let mut s = 0.0;
            for r in 0..grad_output.rows() {
                s += grad_output[(r, c)];
            }
            self.grad_b[(0, c)] += s;
        }
        dx
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Matrix, &mut Matrix)> {
        vec![(&mut self.weights, &mut self.grad_w), (&mut self.bias, &mut self.grad_b)]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Element-wise activation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ActKind {
    Relu,
    Tanh,
    Sigmoid,
    /// Identity (useful as a final "linear activation layer", §IV-C2).
    Linear,
}

/// Element-wise activation layer.
#[derive(Debug, Clone)]
pub struct Activation {
    kind: ActKind,
    output: Option<Matrix>,
}

impl Activation {
    /// Rectified linear unit.
    pub fn relu() -> Self {
        Activation { kind: ActKind::Relu, output: None }
    }

    /// Hyperbolic tangent.
    pub fn tanh() -> Self {
        Activation { kind: ActKind::Tanh, output: None }
    }

    /// Logistic sigmoid.
    pub fn sigmoid() -> Self {
        Activation { kind: ActKind::Sigmoid, output: None }
    }

    /// Identity activation.
    pub fn linear() -> Self {
        Activation { kind: ActKind::Linear, output: None }
    }

    fn apply(&self, v: f64) -> f64 {
        match self.kind {
            ActKind::Relu => v.max(0.0),
            ActKind::Tanh => v.tanh(),
            ActKind::Sigmoid => {
                if v >= 0.0 {
                    1.0 / (1.0 + (-v).exp())
                } else {
                    let e = v.exp();
                    e / (1.0 + e)
                }
            }
            ActKind::Linear => v,
        }
    }

    /// Derivative expressed in terms of the *output* value.
    fn derivative_from_output(&self, y: f64) -> f64 {
        match self.kind {
            ActKind::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActKind::Tanh => 1.0 - y * y,
            ActKind::Sigmoid => y * (1.0 - y),
            ActKind::Linear => 1.0,
        }
    }
}

impl Layer for Activation {
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix {
        let mut out = input.clone();
        for v in out.as_mut_slice() {
            *v = self.apply(*v);
        }
        if training {
            self.output = Some(out.clone());
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        // backward with no stored activation passes the gradient through
        // unscaled rather than inventing one
        let Some(out) = self.output.as_ref() else {
            return grad_output.clone();
        };
        let mut grad = grad_output.clone();
        for (g, &y) in grad.as_mut_slice().iter_mut().zip(out.as_slice()) {
            *g *= self.derivative_from_output(y);
        }
        grad
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Inverted dropout: zeroes a fraction `rate` of activations during training
/// and rescales the survivors by `1/(1-rate)`; identity at inference.
#[derive(Debug, Clone)]
pub struct Dropout {
    rate: f64,
    rng: NnRng,
    mask: Option<Matrix>,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
        Dropout { rate, rng: NnRng::new(seed.wrapping_add(0xD20)), mask: None }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix {
        if !training || self.rate == 0.0 {
            return input.clone();
        }
        let keep = 1.0 - self.rate;
        let mut mask = Matrix::zeros(input.rows(), input.cols());
        for v in mask.as_mut_slice() {
            *v = if self.rng.uniform() < keep { 1.0 / keep } else { 0.0 };
        }
        let mut out = input.clone();
        for (o, &m) in out.as_mut_slice().iter_mut().zip(mask.as_slice()) {
            *o *= m;
        }
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        match &self.mask {
            Some(mask) => {
                let mut grad = grad_output.clone();
                for (g, &m) in grad.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                    *g *= m;
                }
                grad
            }
            None => grad_output.clone(),
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(layer: &mut Dense, input: &Matrix) {
        // numerical gradient of sum(output) w.r.t. first weight
        let eps = 1e-6;
        let out = layer.forward(input, true);
        let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
        layer.zero_grads();
        layer.forward(input, true);
        layer.backward(&ones);
        let analytic = layer.grad_w[(0, 0)];
        let orig = layer.weights[(0, 0)];
        layer.weights[(0, 0)] = orig + eps;
        let plus: f64 = layer.forward(input, false).as_slice().iter().sum();
        layer.weights[(0, 0)] = orig - eps;
        let minus: f64 = layer.forward(input, false).as_slice().iter().sum();
        layer.weights[(0, 0)] = orig;
        let numeric = (plus - minus) / (2.0 * eps);
        assert!((analytic - numeric).abs() < 1e-4, "analytic {analytic} vs numeric {numeric}");
    }

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut d = Dense::new(3, 2, 1);
        d.bias[(0, 0)] = 5.0;
        let x = Matrix::zeros(4, 3);
        let out = d.forward(&x, false);
        assert_eq!(out.shape(), (4, 2));
        assert_eq!(out[(0, 0)], 5.0); // zero input -> bias only
    }

    #[test]
    fn dense_gradient_matches_finite_difference() {
        let mut d = Dense::new(3, 2, 7);
        let x = Matrix::from_rows(&[&[0.5, -1.0, 2.0], &[1.5, 0.3, -0.7]]);
        finite_diff_check(&mut d, &x);
    }

    #[test]
    fn dense_input_gradient() {
        // y = xW, dy/dx for sum loss = row sums of Wᵀ broadcast
        let mut d = Dense::new(2, 2, 3);
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        d.forward(&x, true);
        let gin = d.backward(&Matrix::filled(1, 2, 1.0));
        let expect0 = d.weights[(0, 0)] + d.weights[(0, 1)];
        assert!((gin[(0, 0)] - expect0).abs() < 1e-12);
    }

    #[test]
    fn activations_values() {
        let x = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        assert_eq!(Activation::relu().forward(&x, false).as_slice(), &[0.0, 0.0, 2.0]);
        let t = Activation::tanh().forward(&x, false);
        assert!((t[(0, 2)] - 2.0f64.tanh()).abs() < 1e-12);
        let s = Activation::sigmoid().forward(&x, false);
        assert!((s[(0, 1)] - 0.5).abs() < 1e-12);
        assert_eq!(Activation::linear().forward(&x, false), x);
    }

    #[test]
    fn activation_backward_masks_relu() {
        let x = Matrix::from_rows(&[&[-1.0, 3.0]]);
        let mut a = Activation::relu();
        a.forward(&x, true);
        let g = a.backward(&Matrix::filled(1, 2, 1.0));
        assert_eq!(g.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn sigmoid_backward_matches_formula() {
        let x = Matrix::from_rows(&[&[0.7]]);
        let mut a = Activation::sigmoid();
        let y = a.forward(&x, true)[(0, 0)];
        let g = a.backward(&Matrix::filled(1, 1, 1.0));
        assert!((g[(0, 0)] - y * (1.0 - y)).abs() < 1e-12);
    }

    #[test]
    fn dropout_inference_is_identity() {
        let x = Matrix::filled(3, 4, 2.0);
        let mut d = Dropout::new(0.5, 1);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn dropout_training_preserves_expectation() {
        let x = Matrix::filled(100, 100, 1.0);
        let mut d = Dropout::new(0.3, 2);
        let out = d.forward(&x, true);
        let mean: f64 = out.as_slice().iter().sum::<f64>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout keeps the mean, got {mean}");
        // some cells must be zero
        assert!(out.as_slice().contains(&0.0));
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let x = Matrix::filled(1, 50, 1.0);
        let mut d = Dropout::new(0.5, 3);
        let out = d.forward(&x, true);
        let g = d.backward(&Matrix::filled(1, 50, 1.0));
        for (o, gv) in out.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*o == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn zero_grads_clears() {
        let mut d = Dense::new(2, 2, 4);
        let x = Matrix::filled(1, 2, 1.0);
        d.forward(&x, true);
        d.backward(&Matrix::filled(1, 2, 1.0));
        assert!(d.grad_w.as_slice().iter().any(|&v| v != 0.0));
        d.zero_grads();
        assert!(d.grad_w.as_slice().iter().all(|&v| v == 0.0));
    }
}
