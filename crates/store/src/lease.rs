//! Leases and push-update messages (paper §III, citing Gray & Cheriton's
//! leases): a client subscribes to an object's updates for a bounded period;
//! the home store pushes full values, deltas, or notification-only summaries
//! until the lease expires or is cancelled.

use bytes::Bytes;
use coda_obs::SpanContext;

use crate::delta::Delta;

/// What the home store sends a subscribed client on update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushMode {
    /// Push the entire current value.
    Full,
    /// Push a delta from the previous version (falls back to full when the
    /// delta is not considerably smaller).
    Delta,
    /// Push only the new version number and a change-size summary; the
    /// client decides if and when to fetch.
    NotifyOnly,
}

/// A subscription to one object's updates, valid until `expires_at`
/// (logical time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Subscribing client id.
    pub client: String,
    /// Object id.
    pub object: String,
    /// Push mode.
    pub mode: PushMode,
    /// Logical expiry time (exclusive).
    pub expires_at: u64,
}

/// A push message from a home store to a client.
///
/// Every variant carries the originating [`SpanContext`] in-band (the
/// distributed-tracing propagation header): the span of the `put` that
/// produced the update, so a receiving client's apply work links back to
/// the causing request across the simulated wire.
#[derive(Debug, Clone)]
pub enum UpdateMessage {
    /// Full current value.
    Full {
        /// Destination client.
        client: String,
        /// Object id.
        object: String,
        /// New version.
        version: u64,
        /// Object bytes.
        data: Bytes,
        /// Content hash of `data` recorded at the home store, verified by
        /// the receiving client.
        checksum: u64,
        /// Trace context of the originating `put`, when instrumented.
        ctx: Option<SpanContext>,
    },
    /// Delta from the previous version.
    Delta {
        /// Destination client.
        client: String,
        /// Object id.
        object: String,
        /// The edit script.
        delta: Delta,
        /// Trace context of the originating `put`, when instrumented.
        ctx: Option<SpanContext>,
    },
    /// Notification only: version number and how much changed.
    Notify {
        /// Destination client.
        client: String,
        /// Object id.
        object: String,
        /// New version.
        version: u64,
        /// Approximate changed byte count.
        changed_bytes: usize,
        /// Trace context of the originating `put`, when instrumented.
        ctx: Option<SpanContext>,
    },
}

impl UpdateMessage {
    /// Destination client id.
    pub fn client(&self) -> &str {
        match self {
            UpdateMessage::Full { client, .. }
            | UpdateMessage::Delta { client, .. }
            | UpdateMessage::Notify { client, .. } => client,
        }
    }

    /// Object id.
    pub fn object(&self) -> &str {
        match self {
            UpdateMessage::Full { object, .. }
            | UpdateMessage::Delta { object, .. }
            | UpdateMessage::Notify { object, .. } => object,
        }
    }

    /// Bytes on the wire.
    pub fn wire_size(&self) -> usize {
        match self {
            UpdateMessage::Full { data, .. } => data.len() + 24,
            UpdateMessage::Delta { delta, .. } => delta.wire_size(),
            UpdateMessage::Notify { .. } => 32,
        }
    }

    /// The version the message advertises.
    pub fn version(&self) -> u64 {
        match self {
            UpdateMessage::Full { version, .. } | UpdateMessage::Notify { version, .. } => *version,
            UpdateMessage::Delta { delta, .. } => delta.target_version,
        }
    }

    /// The originating trace context carried with the message, if any.
    pub fn context(&self) -> Option<SpanContext> {
        match self {
            UpdateMessage::Full { ctx, .. }
            | UpdateMessage::Delta { ctx, .. }
            | UpdateMessage::Notify { ctx, .. } => *ctx,
        }
    }
}

#[cfg(test)]
mod proptests {
    use crate::failover::{FailoverDecision, HomeLeaseFailover};
    use crate::home::HomeDataStore;
    use crate::lease::PushMode;
    use proptest::prelude::*;

    proptest! {
        /// Expiry is *exclusive* at the exact deadline: a lease of duration
        /// `d` granted at clock `t0` is alive after advancing `a < d` ticks
        /// and gone the moment the clock reaches `t0 + d` — never one tick
        /// early, never one tick late.
        #[test]
        fn lease_expires_exactly_at_the_deadline(d in 1u64..500, a in 0u64..1000, t0 in 0u64..100) {
            let mut store = HomeDataStore::new("home", 2);
            store.advance_clock(t0);
            store.subscribe("c", "o", PushMode::Full, d);
            store.advance_clock(a);
            prop_assert_eq!(store.active_leases(), usize::from(a < d));
        }

        /// A renewal racing expiry: renewing with any duration succeeds on
        /// the last tick the lease is alive and fails from the exact expiry
        /// tick on — an expired lease can never be resurrected by renewal.
        #[test]
        fn renewal_races_expiry_on_the_exact_tick(d in 1u64..200, extra in 1u64..200, late in 0u64..100) {
            let mut store = HomeDataStore::new("home", 2);
            store.subscribe("c", "o", PushMode::Delta, d);
            // one tick before expiry: renewal must win the race
            let mut alive = HomeDataStore::new("home", 2);
            alive.subscribe("c", "o", PushMode::Delta, d);
            alive.advance_clock(d - 1);
            prop_assert!(alive.renew("c", "o", extra));
            alive.advance_clock(extra - 1);
            prop_assert_eq!(alive.active_leases(), 1); // renewal extended the lease
            // at (or past) expiry: renewal must lose it
            store.advance_clock(d + late);
            prop_assert!(!store.renew("c", "o", extra));
            prop_assert_eq!(store.active_leases(), 0);
        }

        /// The failover gate never opens on suspicion alone: however the
        /// detector flaps, no promotion can happen while the home lease is
        /// unexpired, and a merely *suspected* (not dead) holder is never
        /// usurped even after expiry.
        #[test]
        fn no_failover_before_lease_expiry_or_on_suspicion(
            lease in 1u64..100,
            probes in proptest::collection::vec((any::<bool>(), 0u64..300), 1..40),
        ) {
            let mut fo = HomeLeaseFailover::new("home-a", lease, 0);
            for (dead, now) in probes {
                let expired = fo.lease_expired(now);
                let decision = fo.evaluate(dead, Some("home-b"), now);
                match decision {
                    FailoverDecision::Promoted { .. } => {
                        prop_assert!(dead && expired, "promotion requires dead verdict AND expiry");
                        // one promotion is enough for this property
                        break;
                    }
                    _ => {
                        prop_assert_eq!(fo.holder(), "home-a");
                        prop_assert_eq!(fo.failovers(), 0);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let m = UpdateMessage::Notify {
            client: "c1".into(),
            object: "o1".into(),
            version: 7,
            changed_bytes: 42,
            ctx: None,
        };
        assert_eq!(m.client(), "c1");
        assert_eq!(m.object(), "o1");
        assert_eq!(m.version(), 7);
        assert_eq!(m.wire_size(), 32);
        assert_eq!(m.context(), None);
        let ctx = SpanContext { trace_id: coda_obs::TraceId(1), span_id: coda_obs::SpanId(2) };
        let f = UpdateMessage::Full {
            client: "c".into(),
            object: "o".into(),
            version: 2,
            data: Bytes::from_static(b"abcd"),
            checksum: crate::delta::content_hash(b"abcd"),
            ctx: Some(ctx),
        };
        assert_eq!(f.wire_size(), 28);
        assert_eq!(f.version(), 2);
        assert_eq!(f.context(), Some(ctx), "the tracing header rides along the push");
    }
}
