//! F4/F12 bench: cross-validation split generation and full K-fold pipeline
//! evaluation.

use coda_core::{Evaluator, Node, Pipeline};
use coda_data::{synth, BoxedEstimator, CvStrategy, Metric};
use coda_ml::LinearRegression;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_split_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cv/splits");
    for n in [1_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("kfold10", n), &n, |b, &n| {
            b.iter(|| CvStrategy::kfold(10).splits(n).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sliding", n), &n, |b, &n| {
            b.iter(|| {
                CvStrategy::TimeSeriesSlidingSplit {
                    train_size: n / 2,
                    buffer: 10,
                    validation_size: n / 10,
                    k: 5,
                }
                .splits(n)
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_kfold_evaluation(c: &mut Criterion) {
    let ds = synth::linear_regression(500, 5, 0.3, 1);
    let pipeline = Pipeline::from_nodes(vec![Node::auto(
        (Box::new(LinearRegression::new()) as BoxedEstimator).into(),
    )]);
    let mut group = c.benchmark_group("cv/evaluate_linear_500x5");
    for k in [3usize, 5, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let eval = Evaluator::new(CvStrategy::kfold(k), Metric::Rmse);
            b.iter(|| eval.evaluate_pipeline(&pipeline, &ds).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_split_generation, bench_kfold_evaluation);
criterion_main!(benches);
