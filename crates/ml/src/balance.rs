//! Class-imbalance handling (§II: "Sometimes there are class imbalances —
//! e.g., rare failure cases, but many successful cases"): a random
//! oversampler usable as a graph stage.

use coda_data::{BoxedTransformer, ComponentError, Dataset, ParamValue, Transformer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Randomly oversamples minority classes during training until every class
/// reaches `target_ratio` of the majority count; prediction-time transform
/// is the identity (rows must never be fabricated at inference).
#[derive(Debug, Clone)]
pub struct RandomOversampler {
    target_ratio: f64,
    seed: u64,
    fitted: bool,
}

impl RandomOversampler {
    /// Creates an oversampler balancing classes to full parity.
    pub fn new() -> Self {
        RandomOversampler { target_ratio: 1.0, seed: 0, fitted: false }
    }

    /// Sets the minority/majority ratio to reach, in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is outside `(0, 1]`.
    pub fn with_target_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
        self.target_ratio = ratio;
        self
    }

    /// Sets the resampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for RandomOversampler {
    fn default() -> Self {
        Self::new()
    }
}

impl Transformer for RandomOversampler {
    fn name(&self) -> &str {
        "random_oversampler"
    }

    fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
        match param {
            "target_ratio" => {
                self.target_ratio =
                    value.as_f64().filter(|&r| r > 0.0 && r <= 1.0).ok_or_else(|| {
                        ComponentError::InvalidParam {
                            component: "random_oversampler".to_string(),
                            param: param.to_string(),
                            reason: "must be in (0, 1]".to_string(),
                        }
                    })?;
                Ok(())
            }
            _ => Err(ComponentError::UnknownParam {
                component: self.name().to_string(),
                param: param.to_string(),
            }),
        }
    }

    fn fit(&mut self, _data: &Dataset) -> Result<(), ComponentError> {
        self.fitted = true;
        Ok(())
    }

    fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        if !self.fitted {
            return Err(ComponentError::NotFitted(self.name().to_string()));
        }
        Ok(data.clone())
    }

    fn fit_transform(&mut self, data: &Dataset) -> Result<Dataset, ComponentError> {
        self.fit(data)?;
        let y = data.target_required()?;
        let classes = data.classes()?;
        let counts: Vec<usize> =
            classes.iter().map(|c| y.iter().filter(|&&v| v == *c).count()).collect();
        let majority = *counts.iter().max().expect("at least one class");
        let target = ((majority as f64) * self.target_ratio).round() as usize;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut indices: Vec<usize> = (0..data.n_samples()).collect();
        for (class, &count) in classes.iter().zip(&counts) {
            if count >= target || count == 0 {
                continue;
            }
            let members: Vec<usize> = (0..y.len()).filter(|&i| y[i] == *class).collect();
            for _ in 0..(target - count) {
                indices.push(members[rng.gen_range(0..members.len())]);
            }
        }
        Ok(data.select(&indices))
    }

    fn clone_box(&self) -> BoxedTransformer {
        Box::new(RandomOversampler {
            target_ratio: self.target_ratio,
            seed: self.seed,
            fitted: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::{metrics, synth, Estimator};

    #[test]
    fn balances_to_parity() {
        let ds = synth::imbalanced_binary(1000, 3, 0.05, 81);
        let mut os = RandomOversampler::new().with_seed(1);
        let out = os.fit_transform(&ds).unwrap();
        let y = out.target().unwrap();
        let pos = y.iter().filter(|&&v| v == 1.0).count();
        let neg = y.len() - pos;
        assert_eq!(pos, neg, "classes must reach parity");
        // all original rows retained
        assert!(out.n_samples() >= ds.n_samples());
    }

    #[test]
    fn partial_ratio() {
        let ds = synth::imbalanced_binary(1000, 3, 0.05, 82);
        let mut os = RandomOversampler::new().with_target_ratio(0.5).with_seed(2);
        let out = os.fit_transform(&ds).unwrap();
        let y = out.target().unwrap();
        let pos = y.iter().filter(|&&v| v == 1.0).count() as f64;
        let neg = (y.len() - pos as usize) as f64;
        assert!((pos / neg - 0.5).abs() < 0.02, "ratio {:.3}", pos / neg);
    }

    #[test]
    fn improves_minority_recall() {
        let ds = synth::imbalanced_binary(3000, 3, 0.03, 83);
        let (train, test) = ds.train_test_split(0.3, 3);
        let fit_and_recall = |train: &Dataset| {
            let mut clf = crate::LogisticRegression::new();
            clf.fit(train).unwrap();
            let pred = clf.predict(&test).unwrap();
            metrics::recall(test.target().unwrap(), &pred, 1.0).unwrap()
        };
        let plain = fit_and_recall(&train);
        let mut os = RandomOversampler::new().with_seed(4);
        let balanced = os.fit_transform(&train).unwrap();
        let resampled = fit_and_recall(&balanced);
        assert!(
            resampled > plain + 0.1,
            "oversampling recall {resampled:.3} must clearly beat plain {plain:.3}"
        );
    }

    #[test]
    fn prediction_time_identity() {
        let ds = synth::imbalanced_binary(200, 2, 0.1, 84);
        let mut os = RandomOversampler::new();
        assert!(os.transform(&ds).is_err()); // unfitted
        os.fit_transform(&ds).unwrap();
        let passed = os.transform(&ds).unwrap();
        assert_eq!(passed.n_samples(), 200);
    }

    #[test]
    fn params() {
        let mut os = RandomOversampler::new();
        os.set_param("target_ratio", ParamValue::from(0.7)).unwrap();
        assert!(os.set_param("target_ratio", ParamValue::from(0.0)).is_err());
        assert!(os.set_param("zzz", ParamValue::from(0.1)).is_err());
    }
}
