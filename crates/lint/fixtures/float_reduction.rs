//! Planted violation: a float sum over HashMap values. Float addition is
//! not associative, so the total depends on hash-iteration order even
//! though a sum looks order-insensitive.

use std::collections::HashMap;

pub fn total_score(m: &HashMap<String, f64>) -> f64 {
    let total: f64 = m.values().sum();
    total
}
