/root/repo/target/debug/deps/coda_timeseries-ddd304458a486d9b.d: crates/timeseries/src/lib.rs crates/timeseries/src/deep.rs crates/timeseries/src/forecast.rs crates/timeseries/src/models.rs crates/timeseries/src/pipeline.rs crates/timeseries/src/series.rs crates/timeseries/src/window.rs

/root/repo/target/debug/deps/libcoda_timeseries-ddd304458a486d9b.rlib: crates/timeseries/src/lib.rs crates/timeseries/src/deep.rs crates/timeseries/src/forecast.rs crates/timeseries/src/models.rs crates/timeseries/src/pipeline.rs crates/timeseries/src/series.rs crates/timeseries/src/window.rs

/root/repo/target/debug/deps/libcoda_timeseries-ddd304458a486d9b.rmeta: crates/timeseries/src/lib.rs crates/timeseries/src/deep.rs crates/timeseries/src/forecast.rs crates/timeseries/src/models.rs crates/timeseries/src/pipeline.rs crates/timeseries/src/series.rs crates/timeseries/src/window.rs

crates/timeseries/src/lib.rs:
crates/timeseries/src/deep.rs:
crates/timeseries/src/forecast.rs:
crates/timeseries/src/models.rs:
crates/timeseries/src/pipeline.rs:
crates/timeseries/src/series.rs:
crates/timeseries/src/window.rs:
