//! Shared-prefix transform caching for TEG evaluation.
//!
//! Sibling root→leaf paths of a Transformer-Estimator Graph share most of
//! their transformer prefix by construction (§IV, Fig. 3), yet a naive
//! evaluation refits the same prefix once per path per cross-validation
//! fold. [`TransformCache`] stores the transformed train/validation
//! datasets of every fitted prefix, keyed by `(fold id, canonical prefix
//! spec)`, so each distinct prefix is fitted exactly once per fold and
//! every path sharing it reuses the output — the local analogue of the
//! paper's DARR "avoid redundant computation" principle (§III), applied
//! inside one evaluation instead of across clients.
//!
//! The cache is scoped to a single graph evaluation: within one [`Teg`],
//! node names uniquely identify node instances, so a prefix key of
//! `name-chain + resolved node params` is canonical. Keys are *not*
//! meaningful across different graphs.
//!
//! Concurrency: lookups are slot-serialized. The first worker to reach a
//! `(fold, prefix)` key fits it while holding only that key's slot lock;
//! racing workers for the same key block on the slot and observe a hit.
//! Distinct keys never contend, so `misses` always equals the number of
//! distinct prefixes fitted regardless of thread interleaving — the
//! accounting is deterministic under [`Evaluator::with_threads`].
//!
//! [`Teg`]: crate::graph::Teg
//! [`Evaluator::with_threads`]: crate::eval::Evaluator::with_threads

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use coda_data::{ComponentError, Dataset};

/// Counters from one cached evaluation (exposed on
/// [`GraphReport::cache`](crate::eval::GraphReport::cache)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Prefix lookups answered from the cache.
    pub hits: u64,
    /// Prefix lookups that had to fit (one per distinct `(fold, prefix)`).
    pub misses: u64,
    /// Approximate bytes of transformed datasets held by the cache.
    pub bytes: u64,
    /// Transformer refits avoided — one per cache hit.
    pub refits_avoided: u64,
    /// Whole jobs skipped because the DARR already held their exact spec
    /// key (the cooperative warm-start path; see `coda-darr`).
    pub warm_start_skips: u64,
}

impl CacheStats {
    /// Total prefix lookups (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache, or 0.0 with no lookups.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.bytes += other.bytes;
        self.refits_avoided += other.refits_avoided;
        self.warm_start_skips += other.warm_start_skips;
    }
}

impl coda_obs::Publish for CacheStats {
    fn publish(&self, registry: &coda_obs::MetricsRegistry) {
        registry.count("coda_core_cache_hits", self.hits);
        registry.count("coda_core_cache_misses", self.misses);
        registry.count("coda_core_cache_bytes", self.bytes);
        registry.count("coda_core_cache_refits_avoided", self.refits_avoided);
        registry.count("coda_core_cache_warm_start_skips", self.warm_start_skips);
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits {} / misses {} ({:.0}% hit rate), {} bytes, {} refits avoided, {} warm-start skips",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.bytes,
            self.refits_avoided,
            self.warm_start_skips
        )
    }
}

/// The transformed `(train, validation)` pair after one fitted prefix, or
/// the deterministic error that prefix produces on this fold.
pub type PrefixOutput = Result<Arc<(Dataset, Dataset)>, ComponentError>;

type Slot = Arc<Mutex<Option<PrefixOutput>>>;

/// A cache of fitted transformer-prefix outputs, keyed by
/// `(fold id, canonical prefix spec key)`.
///
/// Failed fits are cached too: transformers are deterministic, so a prefix
/// that fails on a fold fails identically for every path sharing it, and
/// caching the error keeps the accounting (and the reported error strings)
/// bit-identical to an uncached run.
#[derive(Debug, Default)]
pub struct TransformCache {
    slots: Mutex<HashMap<(usize, String), Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes: AtomicU64,
}

impl TransformCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the output for `(fold, prefix_key)`, fitting it with `fit`
    /// on first use. Concurrent callers for the same key serialize on that
    /// key's slot, so every distinct prefix is fitted at most once.
    pub fn get_or_fit<F>(&self, fold: usize, prefix_key: &str, fit: F) -> PrefixOutput
    where
        F: FnOnce() -> Result<(Dataset, Dataset), ComponentError>,
    {
        let slot = {
            let mut slots = self.slots.lock();
            Arc::clone(slots.entry((fold, prefix_key.to_string())).or_default())
        };
        let mut guard = slot.lock();
        if let Some(out) = guard.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return out.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let out: PrefixOutput = fit().map(Arc::new);
        if let Ok(pair) = &out {
            self.bytes.fetch_add(
                approx_dataset_bytes(&pair.0) + approx_dataset_bytes(&pair.1),
                Ordering::Relaxed,
            );
        }
        *guard = Some(out.clone());
        out
    }

    /// Number of distinct `(fold, prefix)` entries currently held.
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let hits = self.hits.load(Ordering::Relaxed);
        CacheStats {
            hits,
            misses: self.misses.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            refits_avoided: hits,
            warm_start_skips: 0,
        }
    }
}

/// Approximate in-memory footprint of a dataset (features + target).
fn approx_dataset_bytes(ds: &Dataset) -> u64 {
    let cells = ds.n_samples() * ds.n_features();
    let target = ds.target().map_or(0, <[f64]>::len);
    (8 * (cells + target)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_linalg::Matrix;

    fn tiny(n: usize) -> Dataset {
        Dataset::new(Matrix::zeros(n, 2)).with_target(vec![0.0; n]).unwrap()
    }

    #[test]
    fn first_lookup_misses_then_hits() {
        let cache = TransformCache::new();
        let mut fits = 0;
        for _ in 0..3 {
            let out = cache.get_or_fit(0, "scaler", || {
                fits += 1;
                Ok((tiny(4), tiny(2)))
            });
            assert!(out.is_ok());
        }
        assert_eq!(fits, 1);
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        assert_eq!(s.refits_avoided, 2);
        assert_eq!(s.lookups(), 3);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn folds_and_prefixes_are_distinct_keys() {
        let cache = TransformCache::new();
        for fold in 0..2 {
            for key in ["a", "a>b"] {
                cache.get_or_fit(fold, key, || Ok((tiny(4), tiny(2)))).unwrap();
            }
        }
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn errors_are_cached_and_replayed() {
        let cache = TransformCache::new();
        let mut fits = 0;
        for _ in 0..2 {
            let out = cache.get_or_fit(0, "bad", || {
                fits += 1;
                Err(ComponentError::InvalidInput("boom".to_string()))
            });
            assert!(matches!(out, Err(ComponentError::InvalidInput(_))));
        }
        assert_eq!(fits, 1, "a failing prefix is fitted once, then replayed");
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().bytes, 0, "failed fits hold no data");
    }

    #[test]
    fn bytes_account_for_both_splits() {
        let cache = TransformCache::new();
        cache.get_or_fit(0, "p", || Ok((tiny(10), tiny(5)))).unwrap();
        // (10*2 + 10) + (5*2 + 5) doubles = 45 * 8 bytes
        assert_eq!(cache.stats().bytes, 45 * 8);
    }

    #[test]
    fn concurrent_same_key_fits_once() {
        let cache = Arc::new(TransformCache::new());
        let fits = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let fits = Arc::clone(&fits);
                scope.spawn(move || {
                    for fold in 0..3 {
                        cache
                            .get_or_fit(fold, "shared", || {
                                fits.fetch_add(1, Ordering::SeqCst);
                                Ok((tiny(4), tiny(2)))
                            })
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(fits.load(Ordering::SeqCst), 3, "one fit per fold");
        let s = cache.stats();
        assert_eq!(s.misses, 3);
        assert_eq!(s.hits, 8 * 3 - 3);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a =
            CacheStats { hits: 1, misses: 2, bytes: 3, refits_avoided: 1, warm_start_skips: 0 };
        let b =
            CacheStats { hits: 10, misses: 20, bytes: 30, refits_avoided: 10, warm_start_skips: 5 };
        a.merge(&b);
        assert_eq!(
            a,
            CacheStats { hits: 11, misses: 22, bytes: 33, refits_avoided: 11, warm_start_skips: 5 }
        );
        assert!(a.to_string().contains("warm-start"));
    }
}
