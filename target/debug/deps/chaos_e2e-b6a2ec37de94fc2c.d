/root/repo/target/debug/deps/chaos_e2e-b6a2ec37de94fc2c.d: tests/chaos_e2e.rs

/root/repo/target/debug/deps/chaos_e2e-b6a2ec37de94fc2c: tests/chaos_e2e.rs

tests/chaos_e2e.rs:
