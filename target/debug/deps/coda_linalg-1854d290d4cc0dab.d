/root/repo/target/debug/deps/coda_linalg-1854d290d4cc0dab.d: crates/linalg/src/lib.rs crates/linalg/src/decomp.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libcoda_linalg-1854d290d4cc0dab.rmeta: crates/linalg/src/lib.rs crates/linalg/src/decomp.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/decomp.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
