/root/repo/target/debug/deps/coda-d9e308258e17f17f.d: src/lib.rs

/root/repo/target/debug/deps/libcoda-d9e308258e17f17f.rlib: src/lib.rs

/root/repo/target/debug/deps/libcoda-d9e308258e17f17f.rmeta: src/lib.rs

src/lib.rs:
