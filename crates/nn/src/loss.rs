//! Training losses.

use coda_linalg::Matrix;

/// A differentiable training loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Mean squared error (regression/forecasting).
    Mse,
    /// Binary cross-entropy on sigmoid probabilities.
    BinaryCrossEntropy,
}

impl Loss {
    /// Loss value averaged over all cells.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn value(&self, pred: &Matrix, target: &Matrix) -> f64 {
        assert_eq!(pred.shape(), target.shape(), "loss shape mismatch");
        let n = (pred.rows() * pred.cols()) as f64;
        match self {
            Loss::Mse => {
                pred.as_slice()
                    .iter()
                    .zip(target.as_slice())
                    .map(|(p, t)| (p - t) * (p - t))
                    .sum::<f64>()
                    / n
            }
            Loss::BinaryCrossEntropy => {
                let eps = 1e-12;
                pred.as_slice()
                    .iter()
                    .zip(target.as_slice())
                    .map(|(p, t)| {
                        let p = p.clamp(eps, 1.0 - eps);
                        -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
                    })
                    .sum::<f64>()
                    / n
            }
        }
    }

    /// Gradient of the loss w.r.t. predictions (same shape as `pred`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn gradient(&self, pred: &Matrix, target: &Matrix) -> Matrix {
        assert_eq!(pred.shape(), target.shape(), "loss shape mismatch");
        let n = (pred.rows() * pred.cols()) as f64;
        let mut grad = Matrix::zeros(pred.rows(), pred.cols());
        match self {
            Loss::Mse => {
                for ((g, p), t) in
                    grad.as_mut_slice().iter_mut().zip(pred.as_slice()).zip(target.as_slice())
                {
                    *g = 2.0 * (p - t) / n;
                }
            }
            Loss::BinaryCrossEntropy => {
                let eps = 1e-12;
                for ((g, p), t) in
                    grad.as_mut_slice().iter_mut().zip(pred.as_slice()).zip(target.as_slice())
                {
                    let p = p.clamp(eps, 1.0 - eps);
                    *g = (-(t / p) + (1.0 - t) / (1.0 - p)) / n;
                }
            }
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_value_and_gradient() {
        let pred = Matrix::from_rows(&[&[1.0, 2.0]]);
        let target = Matrix::from_rows(&[&[0.0, 2.0]]);
        assert!((Loss::Mse.value(&pred, &target) - 0.5).abs() < 1e-12);
        let g = Loss::Mse.gradient(&pred, &target);
        assert!((g[(0, 0)] - 1.0).abs() < 1e-12);
        assert_eq!(g[(0, 1)], 0.0);
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let mut pred = Matrix::from_rows(&[&[0.3, -0.7], &[1.2, 0.1]]);
        let target = Matrix::from_rows(&[&[0.0, 0.5], &[1.0, -0.5]]);
        let g = Loss::Mse.gradient(&pred, &target);
        let eps = 1e-7;
        let orig = pred[(1, 0)];
        pred[(1, 0)] = orig + eps;
        let plus = Loss::Mse.value(&pred, &target);
        pred[(1, 0)] = orig - eps;
        let minus = Loss::Mse.value(&pred, &target);
        let numeric = (plus - minus) / (2.0 * eps);
        assert!((g[(1, 0)] - numeric).abs() < 1e-6);
    }

    #[test]
    fn bce_prefers_correct_confidence() {
        let target = Matrix::from_rows(&[&[1.0]]);
        let good = Loss::BinaryCrossEntropy.value(&Matrix::from_rows(&[&[0.9]]), &target);
        let bad = Loss::BinaryCrossEntropy.value(&Matrix::from_rows(&[&[0.1]]), &target);
        assert!(good < bad);
        // clamped at extremes
        assert!(Loss::BinaryCrossEntropy.value(&Matrix::from_rows(&[&[0.0]]), &target).is_finite());
    }

    #[test]
    fn bce_gradient_sign() {
        let target = Matrix::from_rows(&[&[1.0]]);
        let g = Loss::BinaryCrossEntropy.gradient(&Matrix::from_rows(&[&[0.3]]), &target);
        assert!(g[(0, 0)] < 0.0, "increasing p toward 1 must reduce the loss");
    }
}
