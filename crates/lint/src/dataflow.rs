//! Nondeterminism dataflow: tracks values produced by iterating
//! `HashMap`/`HashSet` through let-bindings, loop accumulation, `collect()`
//! and function returns, and flags flows whose final order is unspecified —
//! the quiet way nondeterminism reaches serialized reports, digests and
//! exports that the rest of the repo promises are byte-identical.
//!
//! The rules, at token level:
//!
//! - **Sources**: `.iter()`, `.keys()`, `.values()`, `.drain()`,
//!   `.into_iter()` (and `_mut` forms) on a receiver known to be a
//!   `HashMap`/`HashSet` (a local `let`, a fn parameter, or a struct field
//!   declared with a hash type anywhere in the workspace), `for … in &map`
//!   loops over such receivers, and calls to workspace functions whose
//!   return value is itself unordered (propagated through the same bounded
//!   name-resolved call graph the lock pass uses).
//! - **Neutralizers**: collecting into a `BTreeMap`/`BTreeSet`, a later
//!   `.sort*()` on the binding, or reducing to an order-insensitive scalar
//!   (`len`, `count`, `max`, `min`, membership tests, integer `sum`).
//! - **Sinks** ([`Rule::UnorderedFlow`]): explicit serialization/digest
//!   calls (`to_json`, `export_state`, `serialize`, `digest`, `.hash(…)`),
//!   accumulation into an ordered container (`Vec` push/extend, `String`
//!   push_str/`write!`) that is never subsequently sorted, and accumulation
//!   into another *unordered* container (insertion order is lost, so the
//!   lint cannot prove downstream determinism — re-key through a BTree
//!   container instead).
//! - **Float reductions** ([`Rule::FloatReduction`]): `sum()`/`fold`/`+=`
//!   over `f32`/`f64` fed by an unordered source — float addition is not
//!   associative, so even a sorted-set-of-values argument produces
//!   order-dependent bits.
//!
//! Like the lock pass this is a heuristic token-level approximation whose
//! findings feed the ratcheting baseline; `// lint:allow(unordered_flow)`
//! with a reason is the escape hatch for flows that are provably
//! commutative.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{self, matching_paren, FnSpan};
use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use crate::{Finding, Rule};

/// Callee names matching more than this many workspace functions stay
/// unresolved (same bound as the lock pass).
const MAX_CALLEE_CANDIDATES: usize = 3;

/// Iterator-producing methods on hash containers.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Order-insensitive scalar reducers: ending a chain in one of these
/// launders the unordered source.
const SCALAR_REDUCERS: &[&str] = &[
    "len",
    "count",
    "is_empty",
    "contains",
    "contains_key",
    "any",
    "all",
    "max",
    "min",
    "max_by_key",
    "min_by_key",
    "max_by",
    "min_by",
];

/// Serialization / digest / export sinks by callee name.
const SINKS: &[&str] =
    &["to_json", "to_json_value", "export_state", "serialize", "digest", "canonical_json"];

/// Runs the analysis over every file of the workspace at once.
pub fn check(files: &[SourceFile]) -> Vec<Finding> {
    // pass 0: hash-typed struct fields (tokens outside any fn body) and the
    // per-file function spans
    let spans: Vec<Vec<FnSpan>> = files.iter().map(items::functions).collect();
    let mut hash_fields: BTreeSet<String> = BTreeSet::new();
    for (sf, fns) in files.iter().zip(&spans) {
        collect_hash_fields(sf, fns, &mut hash_fields);
    }

    // candidate map for bounded name resolution of tainted returns
    let mut by_name: BTreeMap<String, usize> = BTreeMap::new();
    for fns in &spans {
        for f in fns {
            *by_name.entry(f.name.clone()).or_insert(0) += 1;
        }
    }
    let resolvable: BTreeSet<&str> = by_name
        .iter()
        .filter(|(_, &n)| n <= MAX_CALLEE_CANDIDATES)
        .map(|(k, _)| k.as_str())
        .collect();

    // fixpoint over "returns an unordered value": rescans are cheap and the
    // chain depth of helper-returns-helper is small in practice
    let mut tainted_fns: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut next: BTreeSet<String> = BTreeSet::new();
        for (sf, fns) in files.iter().zip(&spans) {
            for f in fns {
                if f.in_test {
                    continue;
                }
                let scan = scan_fn(sf, f, &hash_fields, &tainted_fns, &resolvable);
                if scan.returns_tainted {
                    next.insert(f.name.clone());
                }
            }
        }
        if next == tainted_fns {
            break;
        }
        tainted_fns = next;
    }

    let mut out: Vec<Finding> = Vec::new();
    for (sf, fns) in files.iter().zip(&spans) {
        for f in fns {
            if f.in_test {
                continue;
            }
            out.extend(scan_fn(sf, f, &hash_fields, &tainted_fns, &resolvable).findings);
        }
    }
    out
}

/// What one statement's right-hand side evaluates to.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Eval {
    Clean,
    /// A hash container value; `float_vals` when the value type is float.
    Hash {
        float_vals: bool,
    },
    /// An ordered sequence whose order came from unordered iteration.
    TaintedSeq,
    /// A float value derived from an unordered reduction (already flagged).
    Flagged,
}

struct FnScanOut {
    findings: Vec<Finding>,
    returns_tainted: bool,
}

#[derive(Debug, Clone)]
struct VarState {
    hash: bool,
    /// Hash value type is float (`HashMap<K, f64>`).
    float_vals: bool,
    /// Ordered container declared `BTreeMap`/`BTreeSet`.
    btree: bool,
    /// Scalar float (`: f64` or `= 0.0`).
    float: bool,
    /// Order-tainted sequence pending a sort or a sink.
    tainted: Option<Taint>,
}

#[derive(Debug, Clone)]
struct Taint {
    line: u32,
    src: String,
}

impl VarState {
    fn clean() -> VarState {
        VarState { hash: false, float_vals: false, btree: false, float: false, tainted: None }
    }
}

fn scan_fn(
    sf: &SourceFile,
    span: &FnSpan,
    hash_fields: &BTreeSet<String>,
    tainted_fns: &BTreeSet<String>,
    resolvable: &BTreeSet<&str>,
) -> FnScanOut {
    let toks = &sf.tokens;
    let mut vars: BTreeMap<String, VarState> = BTreeMap::new();
    let mut findings: Vec<Finding> = Vec::new();
    let mut returns_tainted = false;
    // vars whose taint escaped via `return` — the finding belongs to callers
    let mut returned: BTreeSet<String> = BTreeSet::new();

    // parameters: `name : [&] [mut] HashMap<..>` at paren depth 1
    parse_params(toks, span, &mut vars);

    let ctx = Ctx { sf, hash_fields, tainted_fns, resolvable, fn_line: span.line };

    let mut i = span.body_start;
    while i < span.body_end {
        let t = &toks[i];
        if t.is_ident("let") {
            i = scan_let(&ctx, i, span.body_end, &mut vars, &mut findings);
            continue;
        }
        if t.is_ident("for") {
            if let Some(next) = scan_for(&ctx, i, span.body_end, &mut vars, &mut findings) {
                i = next;
                continue;
            }
        }
        if t.is_ident("return") {
            let end = stmt_end(toks, i + 1, span.body_end);
            if range_taints(&ctx, i + 1, end, &vars).is_some() {
                returns_tainted = true;
                for (name, v) in vars.iter() {
                    if v.tainted.is_some() && range_mentions(toks, i + 1, end, name) {
                        returned.insert(name.clone());
                    }
                }
            }
            i = end;
            continue;
        }
        // sinks: callee(…tainted…) or tainted.sink()
        if t.kind == TokKind::Ident
            && matches!(toks.get(i + 1), Some(p) if p.is_punct('('))
            && (SINKS.contains(&t.text.as_str()) || t.is_ident("hash"))
        {
            let close = matching_paren(toks, i + 1, span.body_end);
            let mut hit: Option<Taint> = None;
            for (name, v) in vars.iter() {
                if let Some(taint) = &v.tainted {
                    if range_mentions(toks, i + 1, close, name) {
                        hit = Some(taint.clone());
                        break;
                    }
                }
            }
            if hit.is_none() {
                // method form: tainted_var.to_json()
                if let Some(chain) = chain_before(toks, i) {
                    if let Some(v) = vars.get(chain[chain.len() - 1].as_str()) {
                        hit = v.tainted.clone();
                    }
                }
            }
            if hit.is_none() {
                // direct unordered argument: to_json(&tainted_fn()) or
                // to_json(map.keys()…)
                if let Some(src) = iteration_source(&ctx, i + 2, close, &vars) {
                    hit = Some(Taint { line: t.line, src });
                }
            }
            if let Some(taint) = hit {
                findings.push(Finding {
                    rule: Rule::UnorderedFlow,
                    file: sf.rel.clone(),
                    line: t.line,
                    message: format!(
                        "values derived from unordered `{}` iteration (line {}) flow into \
                         `{}` — output depends on HashMap/HashSet iteration order",
                        taint.src, taint.line, t.text
                    ),
                });
                // one finding per flow: the sink consumes the taint
                for v in vars.values_mut() {
                    if let Some(tn) = &v.tainted {
                        if tn.line == taint.line && tn.src == taint.src {
                            v.tainted = None;
                        }
                    }
                }
                i = close + 1;
                continue;
            }
        }
        // later sort on a pending binding clears it
        if let Some((var, next)) = sort_call_at(toks, i) {
            if let Some(v) = vars.get_mut(&var) {
                v.tainted = None;
            }
            i = next;
            continue;
        }
        i += 1;
    }

    // tail expression of the function body counts as a return
    if let Some(tail_start) = tail_expr_start(toks, span.body_start, span.body_end) {
        if range_taints(&ctx, tail_start, span.body_end, &vars).is_some() {
            returns_tainted = true;
            for (name, v) in vars.iter() {
                if v.tainted.is_some() && range_mentions(toks, tail_start, span.body_end, name) {
                    returned.insert(name.clone());
                }
            }
        }
    }

    // pending accumulators that were never sorted, sunk, or handed to the
    // caller: the unsorted order escapes wherever the value goes next
    for (name, v) in &vars {
        if returned.contains(name) {
            continue;
        }
        if let Some(taint) = &v.tainted {
            findings.push(Finding {
                rule: Rule::UnorderedFlow,
                file: sf.rel.clone(),
                line: taint.line,
                message: format!(
                    "`{}` collects values from unordered `{}` iteration and is never \
                     sorted — sort it or collect into a BTree container",
                    name, taint.src
                ),
            });
        }
    }

    FnScanOut { findings, returns_tainted }
}

struct Ctx<'a> {
    sf: &'a SourceFile,
    hash_fields: &'a BTreeSet<String>,
    tainted_fns: &'a BTreeSet<String>,
    resolvable: &'a BTreeSet<&'a str>,
    fn_line: u32,
}

/// Parses `let [mut] <pat> [: <ty>] = <rhs> ;` starting at the `let`.
/// Returns the index just past the statement.
fn scan_let(
    ctx: &Ctx,
    let_i: usize,
    end: usize,
    vars: &mut BTreeMap<String, VarState>,
    findings: &mut Vec<Finding>,
) -> usize {
    let toks = &ctx.sf.tokens;
    let stmt_close = stmt_end(toks, let_i, end);
    // binding name: first ident after `let`/`mut` (tuple and struct patterns
    // taint every ident in the pattern)
    let mut names: Vec<String> = Vec::new();
    let mut j = let_i + 1;
    let mut eq: Option<usize> = None;
    let mut ascription: Vec<&Tok> = Vec::new();
    let mut in_ty = false;
    while j < stmt_close {
        let t = &toks[j];
        if t.is_punct('=') && !matches!(toks.get(j + 1), Some(n) if n.is_punct('=')) {
            eq = Some(j);
            break;
        }
        if t.is_punct(':') && !matches!(toks.get(j + 1), Some(n) if n.is_punct(':')) {
            in_ty = true;
        } else if in_ty {
            ascription.push(t);
        } else if t.kind == TokKind::Ident
            && !t.is_ident("mut")
            && !t.is_ident("ref")
            && !t.text.starts_with(|c: char| c.is_ascii_uppercase())
        {
            // capitalized idents in patterns are enum variants / paths
            // (`if let Some(n) = …`), not bindings
            names.push(t.text.clone());
        }
        j += 1;
    }
    let Some(eq) = eq else { return stmt_close };
    let rhs = (eq + 1, stmt_close);

    let asc_hash = ascription.iter().any(|t| t.is_ident("HashMap") || t.is_ident("HashSet"));
    let asc_btree = ascription.iter().any(|t| t.is_ident("BTreeMap") || t.is_ident("BTreeSet"));
    let asc_float = ascription.iter().any(|t| t.is_ident("f32") || t.is_ident("f64"));

    let eval = eval_range(ctx, rhs.0, rhs.1, vars, findings);
    let mut state = VarState::clean();
    match eval {
        Eval::Hash { float_vals } => {
            state.hash = true;
            state.float_vals = float_vals || asc_float;
        }
        Eval::TaintedSeq => {
            if asc_btree || range_has_btree_collect(toks, rhs.0, rhs.1) {
                state.btree = true; // re-keyed through a sorted container
            } else if asc_hash {
                state.hash = true; // unordered in, unordered container out
            } else {
                let src = iteration_source(ctx, rhs.0, rhs.1, vars)
                    .unwrap_or_else(|| "HashMap".to_string());
                state.tainted = Some(Taint { line: toks[eq].line, src });
            }
        }
        Eval::Clean | Eval::Flagged => {
            state.hash = asc_hash;
            state.btree = asc_btree;
            state.float_vals = asc_float && asc_hash;
            state.float = !asc_hash && (asc_float || range_is_float_literal(toks, rhs.0, rhs.1));
        }
    }
    for name in names {
        vars.insert(name, state.clone());
    }
    stmt_close
}

/// Handles `for <pat> in <iterable> { body }` at the `for` token. Returns
/// the index past the loop when the iterable is an unordered source, `None`
/// to let the main scan continue token-by-token otherwise.
fn scan_for(
    ctx: &Ctx,
    for_i: usize,
    end: usize,
    vars: &mut BTreeMap<String, VarState>,
    findings: &mut Vec<Finding>,
) -> Option<usize> {
    let toks = &ctx.sf.tokens;
    // pattern: tokens between `for` and `in`; iterable: between `in` and `{`
    let mut j = for_i + 1;
    let mut in_i = None;
    while j < end {
        if toks[j].is_ident("in") {
            in_i = Some(j);
            break;
        }
        if toks[j].is_punct('{') {
            return None;
        }
        j += 1;
    }
    let in_i = in_i?;
    let mut brace = in_i + 1;
    while brace < end && !toks[brace].is_punct('{') {
        brace += 1;
    }
    if brace >= end {
        return None;
    }
    let body_end = items::matching_brace(toks, brace, end);

    let src = iteration_source(ctx, in_i + 1, brace, vars)?;
    let float_vals = source_float_vals(ctx, in_i + 1, brace, vars);

    // loop pattern vars are order-tainted within the body; the value side
    // of a `(k, v)` pattern over a float-valued map is a float
    let pat: Vec<String> = toks[for_i + 1..in_i]
        .iter()
        .filter(|t| t.kind == TokKind::Ident && !t.is_ident("mut") && !t.is_ident("ref"))
        .map(|t| t.text.clone())
        .collect();
    let value_var = if pat.len() >= 2 { pat.last().cloned() } else { pat.first().cloned() };

    // locals declared inside the loop body are not accumulators
    let mut inner: BTreeSet<String> = pat.iter().cloned().collect();
    let mut k = brace + 1;
    while k < body_end {
        if toks[k].is_ident("let") {
            let mut m = k + 1;
            while m < body_end && !toks[m].is_punct('=') && !toks[m].is_punct(';') {
                if toks[m].kind == TokKind::Ident
                    && !toks[m].is_ident("mut")
                    && !toks[m].is_ident("ref")
                {
                    inner.insert(toks[m].text.clone());
                }
                if toks[m].is_punct(':') {
                    break;
                }
                m += 1;
            }
        }
        k += 1;
    }

    // writes from the body into outer accumulators
    let mut k = brace + 1;
    while k < body_end {
        let t = &toks[k];
        if t.kind == TokKind::Ident
            && matches!(toks.get(k + 1), Some(p) if p.is_punct('('))
            && matches!(t.text.as_str(), "push" | "push_str" | "extend" | "insert")
        {
            if let Some(chain) = chain_before(toks, k) {
                let target = chain[chain.len() - 1].clone();
                if !inner.contains(&target) {
                    let target_state = vars.get(&target).cloned();
                    let is_btree = target_state.as_ref().is_some_and(|v| v.btree);
                    if is_btree {
                        // BTree re-sorts: deterministic
                    } else if target_state.as_ref().is_some_and(|v| v.hash) {
                        findings.push(Finding {
                            rule: Rule::UnorderedFlow,
                            file: ctx.sf.rel.clone(),
                            line: t.line,
                            message: format!(
                                "iteration over unordered `{src}` writes into `{target}`, \
                                 itself unordered — the flow never regains a deterministic \
                                 order; use BTreeMap/BTreeSet"
                            ),
                        });
                    } else if let Some(v) = vars.get_mut(&target) {
                        // Vec/String accumulator: pending until sorted/sunk
                        if v.tainted.is_none() {
                            v.tainted = Some(Taint { line: t.line, src: src.clone() });
                        }
                    } else {
                        vars.insert(
                            target.clone(),
                            VarState {
                                tainted: Some(Taint { line: t.line, src: src.clone() }),
                                ..VarState::clean()
                            },
                        );
                    }
                }
            }
            k += 2;
            continue;
        }
        // `acc += v` — integer counters are commutative, floats are not
        if t.is_punct('+')
            && matches!(toks.get(k + 1), Some(p) if p.is_punct('='))
            && matches!(toks.get(k.wrapping_sub(1)), Some(v) if v.kind == TokKind::Ident)
        {
            let target = &toks[k - 1].text;
            if !inner.contains(target) {
                let stmt_close = stmt_end(toks, k + 2, body_end);
                let target_float = vars.get(target).is_some_and(|v| v.float);
                let value_float = float_vals
                    && value_var
                        .as_ref()
                        .is_some_and(|v| range_mentions(toks, k + 2, stmt_close, v));
                let literal_float = range_is_float_literal(toks, k + 2, stmt_close);
                if target_float || value_float || literal_float {
                    findings.push(Finding {
                        rule: Rule::FloatReduction,
                        file: ctx.sf.rel.clone(),
                        line: t.line,
                        message: format!(
                            "float accumulation over unordered `{src}` iteration — float \
                             addition is not associative, so the sum depends on iteration \
                             order; iterate a BTree container or sum a sorted Vec"
                        ),
                    });
                }
            }
        }
        k += 1;
    }
    Some(body_end + 1)
}

/// Evaluates an expression range: does it produce an unordered value, and
/// does it contain a float reduction over one? Pushes [`Rule::FloatReduction`]
/// findings for in-range `sum`/`fold` reductions directly.
fn eval_range(
    ctx: &Ctx,
    start: usize,
    end: usize,
    vars: &BTreeMap<String, VarState>,
    findings: &mut Vec<Finding>,
) -> Eval {
    let toks = &ctx.sf.tokens;
    let Some(src) = iteration_source(ctx, start, end, vars) else {
        // bare hash construction / alias?
        if range_constructs_hash(toks, start, end) {
            let float_vals = range_has_float(toks, start, end);
            return Eval::Hash { float_vals };
        }
        if let Some(state) = range_alias(toks, start, end, vars) {
            return state;
        }
        return Eval::Clean;
    };
    let float_vals = source_float_vals(ctx, start, end, vars);

    // reduction forms inside the same statement
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && matches!(toks.get(i + 1), Some(p) if p.is_punct('('))
            && (t.is_ident("sum") || t.is_ident("fold") || t.is_ident("product"))
            && matches!(toks.get(i.wrapping_sub(1)), Some(d) if d.is_punct('.'))
        {
            let close = matching_paren(toks, i + 1, end);
            let float = float_vals
                || range_has_float(toks, start, end)
                || range_is_float_literal_anywhere(toks, i + 1, close);
            if float {
                findings.push(Finding {
                    rule: Rule::FloatReduction,
                    file: ctx.sf.rel.clone(),
                    line: t.line,
                    message: format!(
                        "float `{}` over unordered `{src}` iteration — float addition is \
                         not associative, so the result depends on iteration order",
                        t.text
                    ),
                });
                return Eval::Flagged;
            }
            return Eval::Clean; // integer reduction: commutative
        }
        if t.kind == TokKind::Ident
            && matches!(toks.get(i + 1), Some(p) if p.is_punct('('))
            && SCALAR_REDUCERS.contains(&t.text.as_str())
            && matches!(toks.get(i.wrapping_sub(1)), Some(d) if d.is_punct('.'))
        {
            return Eval::Clean; // order-insensitive scalar
        }
        i += 1;
    }
    if range_has_btree_collect(toks, start, end) {
        return Eval::Clean;
    }
    let _ = ctx.fn_line;
    Eval::TaintedSeq
}

/// First unordered iteration source in the range: a hash receiver feeding
/// an iterator method, a bare `&hashvar` iterable, or a call to a function
/// known to return an unordered value. Returns a display name.
fn iteration_source(
    ctx: &Ctx,
    start: usize,
    end: usize,
    vars: &BTreeMap<String, VarState>,
) -> Option<String> {
    let toks = &ctx.sf.tokens;
    let is_hash = |name: &str| -> bool {
        vars.get(name).is_some_and(|v| v.hash) || ctx.hash_fields.contains(name)
    };
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && ITER_METHODS.contains(&t.text.as_str())
            && matches!(toks.get(i + 1), Some(p) if p.is_punct('('))
        {
            if let Some(chain) = chain_before(toks, i) {
                let recv = &chain[chain.len() - 1];
                if is_hash(recv) {
                    return Some(recv.clone());
                }
            }
        }
        // calls to workspace fns whose return is unordered
        if t.kind == TokKind::Ident
            && matches!(toks.get(i + 1), Some(p) if p.is_punct('('))
            && ctx.resolvable.contains(t.text.as_str())
            && ctx.tainted_fns.contains(&t.text)
        {
            return Some(format!("{}()", t.text));
        }
        // bare iterable: `&map` / `map` as the whole range (for-loop form)
        if t.kind == TokKind::Ident && is_hash(&t.text) {
            let prev_ok = i == start
                || toks[i - 1].is_punct('&')
                || toks[i - 1].is_ident("mut")
                || toks[i - 1].is_punct('.');
            // the range must END at the bare name (`for x in &map {`) —
            // a following `.` means a method chain, judged by the rules
            // above (`open.get_mut(..)` is not an iteration)
            let next_iter_or_end = i + 1 >= end || toks[i + 1].is_punct('{');
            if prev_ok && next_iter_or_end && !matches!(toks.get(i + 1), Some(p) if p.is_punct('('))
            {
                return Some(t.text.clone());
            }
        }
        i += 1;
    }
    None
}

/// Whether the unordered source in the range carries float values.
fn source_float_vals(
    ctx: &Ctx,
    start: usize,
    end: usize,
    vars: &BTreeMap<String, VarState>,
) -> bool {
    let toks = &ctx.sf.tokens;
    toks[start..end].iter().any(|t| {
        t.kind == TokKind::Ident && vars.get(&t.text).is_some_and(|v| v.hash && v.float_vals)
    }) || range_has_float(toks, start, end)
}

/// `HashMap::new()` / `HashSet::from(..)` style construction in range.
fn range_constructs_hash(toks: &[Tok], start: usize, end: usize) -> bool {
    toks[start..end].iter().any(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
}

/// Whole-range alias of an existing variable: `= var;` or `= var.clone();`.
fn range_alias(
    toks: &[Tok],
    start: usize,
    end: usize,
    vars: &BTreeMap<String, VarState>,
) -> Option<Eval> {
    let mut idents: Vec<&str> = Vec::new();
    for t in &toks[start..end] {
        if t.kind == TokKind::Ident && !t.is_ident("clone") {
            idents.push(&t.text);
        }
    }
    if idents.len() != 1 {
        return None;
    }
    let v = vars.get(idents[0])?;
    if v.hash {
        Some(Eval::Hash { float_vals: v.float_vals })
    } else if v.tainted.is_some() {
        Some(Eval::TaintedSeq)
    } else {
        None
    }
}

fn range_has_btree_collect(toks: &[Tok], start: usize, end: usize) -> bool {
    toks[start..end].iter().any(|t| t.is_ident("BTreeMap") || t.is_ident("BTreeSet"))
}

fn range_has_float(toks: &[Tok], start: usize, end: usize) -> bool {
    toks[start..end].iter().any(|t| t.is_ident("f32") || t.is_ident("f64"))
}

/// The range is exactly a float literal (counter init `= 0.0`).
fn range_is_float_literal(toks: &[Tok], start: usize, end: usize) -> bool {
    let lits: Vec<&Tok> = toks[start..end].iter().collect();
    lits.len() == 1 && is_float_literal(lits[0])
}

fn range_is_float_literal_anywhere(toks: &[Tok], start: usize, end: usize) -> bool {
    toks[start..end.min(toks.len())].iter().any(is_float_literal)
}

fn is_float_literal(t: &Tok) -> bool {
    t.kind == TokKind::Literal
        && t.text.contains('.')
        && t.text.chars().next().is_some_and(|c| c.is_ascii_digit())
}

/// Whether any tainted/hash var or iteration source appears in the range.
fn range_taints(
    ctx: &Ctx,
    start: usize,
    end: usize,
    vars: &BTreeMap<String, VarState>,
) -> Option<String> {
    let toks = &ctx.sf.tokens;
    for t in &toks[start..end] {
        if t.kind == TokKind::Ident {
            if let Some(v) = vars.get(&t.text) {
                if let Some(taint) = &v.tainted {
                    return Some(taint.src.clone());
                }
            }
        }
    }
    iteration_source(ctx, start, end, vars)
}

fn range_mentions(toks: &[Tok], start: usize, end: usize, name: &str) -> bool {
    toks[start..end.min(toks.len())].iter().any(|t| t.is_ident(name))
}

/// `var.sort()` / `.sort_by(..)` etc at token `i`: returns the receiver and
/// the index past the call opener.
fn sort_call_at(toks: &[Tok], i: usize) -> Option<(String, usize)> {
    let t = toks.get(i)?;
    if t.kind != TokKind::Ident || !t.text.starts_with("sort") {
        return None;
    }
    if !matches!(toks.get(i + 1), Some(p) if p.is_punct('(')) {
        return None;
    }
    let chain = chain_before(toks, i)?;
    Some((chain[chain.len() - 1].clone(), i + 2))
}

/// Walks the `.`-joined ident chain ending at the `.` before token `i`
/// (`self.open.iter` at `iter` → `["self", "open"]`).
fn chain_before(toks: &[Tok], i: usize) -> Option<Vec<String>> {
    if i == 0 || !toks[i - 1].is_punct('.') {
        return None;
    }
    let mut segs: Vec<String> = Vec::new();
    let mut j = i - 1; // the `.`
    loop {
        if j == 0 {
            break;
        }
        let prev = &toks[j - 1];
        if prev.kind == TokKind::Ident {
            segs.push(prev.text.clone());
            if j == 1 {
                break;
            }
            if toks[j - 2].is_punct('.') {
                j -= 2;
            } else {
                break;
            }
        } else if prev.is_punct(')') {
            return None; // computed receiver
        } else {
            break;
        }
    }
    if segs.is_empty() {
        return None;
    }
    segs.reverse();
    Some(segs)
}

/// Index just past the `;` ending the statement that starts at `i`
/// (tracking paren/brace nesting), or `end`.
fn stmt_end(toks: &[Tok], i: usize, end: usize) -> usize {
    let (mut paren, mut brace, mut bracket) = (0i32, 0i32, 0i32);
    let mut j = i;
    while j < end {
        let t = &toks[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            if brace == 0 {
                return j;
            }
            brace -= 1;
        } else if t.is_punct(';') && paren == 0 && brace == 0 && bracket == 0 {
            return j + 1;
        }
        j += 1;
    }
    end
}

/// Start of the body's trailing expression (no `;` after it), if any.
fn tail_expr_start(toks: &[Tok], start: usize, end: usize) -> Option<usize> {
    // last top-level `;` or block close before `end`
    let mut last_stmt = start;
    let mut j = start;
    let (mut paren, mut brace) = (0i32, 0i32);
    while j < end {
        let t = &toks[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
            if brace == 0 && paren == 0 {
                last_stmt = j + 1;
            }
        } else if t.is_punct(';') && paren == 0 && brace == 0 {
            last_stmt = j + 1;
        }
        j += 1;
    }
    (last_stmt < end).then_some(last_stmt)
}

/// Hash-typed names declared at item level (struct/enum fields): tokens
/// outside every function body matching `name : … HashMap/HashSet <`.
fn collect_hash_fields(sf: &SourceFile, fns: &[FnSpan], out: &mut BTreeSet<String>) {
    let toks = &sf.tokens;
    let mut in_fn = vec![false; toks.len()];
    for f in fns {
        for slot in in_fn.iter_mut().take(f.body_end.min(toks.len())).skip(f.body_start) {
            *slot = true;
        }
    }
    for i in 0..toks.len() {
        if in_fn[i] {
            continue;
        }
        let t = &toks[i];
        if (t.is_ident("HashMap") || t.is_ident("HashSet"))
            && matches!(toks.get(i + 1), Some(a) if a.is_punct('<'))
        {
            // walk left over the path / references to the `name :` intro
            let mut j = i;
            while j > 0 {
                let p = &toks[j - 1];
                if p.kind == TokKind::Ident
                    || p.is_punct(':')
                    || p.is_punct('&')
                    || p.is_punct('\'')
                {
                    j -= 1;
                } else {
                    break;
                }
            }
            if j >= 1 && toks[j].kind == TokKind::Ident && !in_fn[j] {
                // `pub name : std :: collections :: HashMap <`
                let name = &toks[j];
                if matches!(toks.get(j + 1), Some(c) if c.is_punct(':'))
                    && !matches!(toks.get(j + 2), Some(c) if c.is_punct(':'))
                {
                    out.insert(name.text.clone());
                }
            }
        }
    }
}

fn parse_params(toks: &[Tok], span: &FnSpan, vars: &mut BTreeMap<String, VarState>) {
    // signature: from `fn` to the body `{`
    let mut i = span.sig_start;
    let mut open = None;
    while i < span.body_start {
        if toks[i].is_punct('(') {
            open = Some(i);
            break;
        }
        i += 1;
    }
    let Some(open) = open else { return };
    let close = matching_paren(toks, open, span.body_start);
    let mut i = open + 1;
    while i < close {
        // `name :` at depth 1
        if toks[i].kind == TokKind::Ident
            && matches!(toks.get(i + 1), Some(c) if c.is_punct(':'))
            && !matches!(toks.get(i + 2), Some(c) if c.is_punct(':'))
        {
            let name = toks[i].text.clone();
            // type tokens to the next top-level `,`
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut hash = false;
            let mut float = false;
            while j < close {
                let t = &toks[j];
                if t.is_punct('<') || t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct('>') || t.is_punct(')') {
                    depth -= 1;
                } else if t.is_punct(',') && depth == 0 {
                    break;
                } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
                    hash = true;
                } else if t.is_ident("f32") || t.is_ident("f64") {
                    float = true;
                }
                j += 1;
            }
            if hash {
                vars.insert(name, VarState { hash: true, float_vals: float, ..VarState::clean() });
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::CrateKind;

    fn findings(src: &str) -> Vec<Finding> {
        check(&[SourceFile::parse("t.rs", CrateKind::Library, src)])
    }

    #[test]
    fn unsorted_keys_collect_is_flagged() {
        let f = findings(
            "fn f(m: &std::collections::HashMap<String, u64>) -> Vec<String> {\n\
             let keys: Vec<String> = m.keys().cloned().collect();\n keys\n}\n\
             fn user() { let v = f(&make()); export_state(&v); }",
        );
        assert!(
            f.iter().any(|x| x.rule == Rule::UnorderedFlow && x.message.contains("export_state")),
            "{f:#?}"
        );
    }

    #[test]
    fn sorted_collect_is_clean() {
        let f = findings(
            "fn f(m: &std::collections::HashMap<String, u64>) {\n\
             let mut keys: Vec<String> = m.keys().cloned().collect();\n\
             keys.sort();\n to_json(&keys);\n}",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn tainted_var_into_sink_is_flagged() {
        let f = findings(
            "fn f(m: &std::collections::HashMap<String, u64>) -> String {\n\
             let keys: Vec<&String> = m.keys().collect();\n to_json(&keys)\n}",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, Rule::UnorderedFlow);
        assert!(f[0].message.contains("to_json"));
    }

    #[test]
    fn loop_push_into_outer_vec_is_flagged_unless_sorted() {
        let dirty = findings(
            "fn f(m: &std::collections::HashMap<u64, u64>) -> Vec<u64> {\n\
             let mut out = Vec::new();\n for (k, _) in m.iter() { out.push(*k); }\n out\n}\n\
             fn user() { to_json(&f(&make())); }",
        );
        assert!(dirty.iter().any(|x| x.rule == Rule::UnorderedFlow), "{dirty:#?}");
        let clean = findings(
            "fn f(m: &std::collections::HashMap<u64, u64>) -> Vec<u64> {\n\
             let mut out = Vec::new();\n for (k, _) in m.iter() { out.push(*k); }\n\
             out.sort();\n out\n}",
        );
        assert!(clean.is_empty(), "{clean:#?}");
    }

    #[test]
    fn accumulating_into_another_hash_container_is_flagged() {
        let f = findings(
            "fn f(open: &std::collections::HashMap<u64, usize>) {\n\
             let mut keep: std::collections::HashSet<u64> = std::collections::HashSet::new();\n\
             for (trace, n) in open.iter() { if *n > 0 { keep.insert(*trace); } }\n}",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("keep"), "{f:#?}");
    }

    #[test]
    fn btree_accumulator_is_clean() {
        let f = findings(
            "fn f(m: &std::collections::HashMap<u64, usize>) {\n\
             let mut keep: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();\n\
             for (k, _) in m.iter() { keep.insert(*k); }\n}",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn for_over_reference_to_map_is_a_source() {
        let f = findings(
            "fn f() {\n let mut m: std::collections::HashMap<u64, u64> = \
             std::collections::HashMap::new();\n let mut out = String::new();\n\
             for (k, v) in &m { out.push_str(&format!(\"{k}={v}\")); }\n}",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("never"), "{f:#?}");
    }

    #[test]
    fn float_sum_over_unordered_values_is_flagged() {
        let f = findings(
            "fn f(m: &std::collections::HashMap<String, f64>) -> f64 {\n\
             let total: f64 = m.values().sum();\n total\n}",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, Rule::FloatReduction);
    }

    #[test]
    fn integer_sum_over_unordered_values_is_clean() {
        let f = findings(
            "fn f(m: &std::collections::HashMap<String, u64>) -> u64 {\n\
             let total: u64 = m.values().sum();\n total\n}",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn float_accumulate_in_loop_is_flagged() {
        let f = findings(
            "fn f(m: &std::collections::HashMap<String, f64>) -> f64 {\n\
             let mut total = 0.0;\n for (_, v) in m.iter() { total += *v; }\n total\n}",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, Rule::FloatReduction);
    }

    #[test]
    fn integer_counter_in_loop_is_clean() {
        let f = findings(
            "fn f(m: &std::collections::HashMap<String, u64>) -> u64 {\n\
             let mut n = 0;\n for (_, v) in m.iter() { n += *v; }\n n\n}",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn scalar_reducers_launder_the_source() {
        let f = findings(
            "fn f(m: &std::collections::HashMap<String, u64>) -> usize {\n\
             let n = m.keys().count();\n let has = m.contains_key(\"x\");\n\
             if has { n } else { 0 }\n}",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn btree_collect_launders_the_source() {
        let f = findings(
            "fn f(m: &std::collections::HashMap<String, u64>) -> String {\n\
             let sorted: std::collections::BTreeMap<String, u64> = \
             m.iter().map(|(k, v)| (k.clone(), *v)).collect();\n to_json(&sorted)\n}",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn taint_propagates_through_function_returns() {
        let f = findings(
            "fn helper(m: &std::collections::HashMap<String, u64>) -> Vec<String> {\n\
             let keys: Vec<String> = m.keys().cloned().collect();\n keys\n}\n\
             fn export(m: &std::collections::HashMap<String, u64>) -> String {\n\
             let keys = helper(m);\n to_json(&keys)\n}",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].message.contains("to_json"), "{f:#?}");
        assert!(f[0].file == "t.rs");
    }

    #[test]
    fn caller_sorting_the_returned_value_is_clean() {
        let f = findings(
            "fn helper(m: &std::collections::HashMap<String, u64>) -> Vec<String> {\n\
             let keys: Vec<String> = m.keys().cloned().collect();\n keys\n}\n\
             fn export(m: &std::collections::HashMap<String, u64>) -> String {\n\
             let mut keys = helper(m);\n keys.sort();\n to_json(&keys)\n}",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn struct_fields_declared_hash_are_sources() {
        let f = findings(
            "struct S { open: std::collections::HashMap<u64, usize> }\n\
             impl S {\n fn dump(&self) -> String {\n\
             let ids: Vec<u64> = self.open.keys().copied().collect();\n to_json(&ids)\n}\n}",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let f = findings(
            "#[cfg(test)]\nmod tests {\n fn f(m: &std::collections::HashMap<String, u64>) {\n\
             let keys: Vec<&String> = m.keys().collect();\n to_json(&keys);\n }\n}",
        );
        assert!(f.is_empty(), "{f:#?}");
    }
}
