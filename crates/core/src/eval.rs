//! Model validation and selection (paper §IV-B, Fig. 4): evaluate every
//! pipeline of a graph under a cross-validation strategy and scoring metric,
//! pick the best path, optionally expanding a parameter grid and running
//! paths in parallel across threads.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use coda_data::cv::CvError;
use coda_data::metrics::MetricError;
use coda_data::{ComponentError, CvStrategy, Dataset, Metric, Params};

use crate::graph::{GraphError, Teg};
use crate::pipeline::{Pipeline, PipelineSpec};

/// Error produced by pipeline/graph evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The cross-validation strategy cannot split this dataset.
    Cv(CvError),
    /// A component failed during fit/predict.
    Component(ComponentError),
    /// Metric computation failed.
    Metric(MetricError),
    /// Graph is malformed.
    Graph(GraphError),
    /// No pipeline could be evaluated successfully.
    NothingEvaluated,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Cv(e) => write!(f, "cross-validation error: {e}"),
            EvalError::Component(e) => write!(f, "component error: {e}"),
            EvalError::Metric(e) => write!(f, "metric error: {e}"),
            EvalError::Graph(e) => write!(f, "graph error: {e}"),
            EvalError::NothingEvaluated => write!(f, "no pipeline evaluated successfully"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<CvError> for EvalError {
    fn from(e: CvError) -> Self {
        EvalError::Cv(e)
    }
}

impl From<ComponentError> for EvalError {
    fn from(e: ComponentError) -> Self {
        EvalError::Component(e)
    }
}

impl From<MetricError> for EvalError {
    fn from(e: MetricError) -> Self {
        EvalError::Metric(e)
    }
}

impl From<GraphError> for EvalError {
    fn from(e: GraphError) -> Self {
        EvalError::Graph(e)
    }
}

/// One evaluated pipeline: its spec, per-fold scores, and their mean.
#[derive(Debug, Clone)]
pub struct PathResult {
    /// Canonical pipeline spec (steps + params).
    pub spec: PipelineSpec,
    /// Score per cross-validation split (the "K performance estimates").
    pub fold_scores: Vec<f64>,
    /// Mean of the fold scores — the final performance estimate.
    pub mean_score: f64,
    /// Error message if the pipeline failed on any fold (scores then empty).
    pub error: Option<String>,
}

impl PathResult {
    /// True if the pipeline evaluated on every fold.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Report over all evaluated paths of a graph, ranked by the metric.
#[derive(Debug, Clone)]
pub struct GraphReport {
    /// The metric used for ranking.
    pub metric: Metric,
    /// All path results (successful and failed), in ranked order:
    /// successful paths best-first, then failures.
    pub results: Vec<PathResult>,
}

impl GraphReport {
    /// The best successful path, if any.
    pub fn best(&self) -> Option<&PathResult> {
        self.results.iter().find(|r| r.is_ok())
    }

    /// Count of successfully evaluated paths.
    pub fn n_ok(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Count of failed paths.
    pub fn n_failed(&self) -> usize {
        self.results.len() - self.n_ok()
    }
}

impl fmt::Display for GraphReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "GraphReport ({} paths, metric {}):", self.results.len(), self.metric)?;
        for r in &self.results {
            match &r.error {
                None => writeln!(f, "  {:>12.6}  {}", r.mean_score, r.spec.key())?,
                Some(e) => writeln!(f, "  {:>12}  {} [{e}]", "failed", r.spec.key())?,
            }
        }
        Ok(())
    }
}

/// Evaluates pipelines/graphs under a CV strategy and metric (Listing 2's
/// `set_cross_validation` / `set_accuracy`).
#[derive(Debug, Clone)]
pub struct Evaluator {
    cv: CvStrategy,
    metric: Metric,
    n_threads: usize,
}

impl Evaluator {
    /// Creates an evaluator. Defaults to single-threaded evaluation.
    pub fn new(cv: CvStrategy, metric: Metric) -> Self {
        Evaluator { cv, metric, n_threads: 1 }
    }

    /// Enables parallel path evaluation over `n` worker threads — the
    /// paper's "different predictive models can be run in parallel" (§III).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_threads(mut self, n: usize) -> Self {
        assert!(n > 0, "thread count must be positive");
        self.n_threads = n;
        self
    }

    /// The configured metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The configured CV strategy.
    pub fn cv(&self) -> &CvStrategy {
        &self.cv
    }

    /// Cross-validates one pipeline, returning per-fold scores.
    ///
    /// For a K-fold strategy this trains K models and produces K performance
    /// estimates whose mean is the final estimate (Fig. 4).
    ///
    /// # Errors
    ///
    /// Any [`EvalError`] variant.
    pub fn evaluate_pipeline(
        &self,
        pipeline: &Pipeline,
        data: &Dataset,
    ) -> Result<Vec<f64>, EvalError> {
        let splits = self.cv.splits_for(data)?;
        let mut scores = Vec::with_capacity(splits.len());
        for split in &splits {
            let train = data.select(&split.train);
            let validation = data.select(&split.validation);
            let mut fold_pipeline = pipeline.fresh_clone();
            fold_pipeline.fit(&train)?;
            let pred = fold_pipeline.predict(&validation)?;
            let truth = validation.target_required().map_err(ComponentError::from)?;
            scores.push(self.metric.compute(truth, &pred)?);
        }
        Ok(scores)
    }

    /// Evaluates one pipeline and returns its mean score.
    ///
    /// # Errors
    ///
    /// As for [`Evaluator::evaluate_pipeline`].
    pub fn score_pipeline(&self, pipeline: &Pipeline, data: &Dataset) -> Result<f64, EvalError> {
        let scores = self.evaluate_pipeline(pipeline, data)?;
        Ok(scores.iter().sum::<f64>() / scores.len() as f64)
    }

    /// Evaluates every root→leaf path of `graph` on `data`, returning the
    /// ranked [`GraphReport`]. Individual path failures are recorded, not
    /// fatal.
    ///
    /// # Errors
    ///
    /// [`EvalError::Graph`] if the graph itself is malformed;
    /// [`EvalError::NothingEvaluated`] if every path failed.
    pub fn evaluate_graph(&self, graph: &Teg, data: &Dataset) -> Result<GraphReport, EvalError> {
        let pipelines = graph.enumerate_pipelines()?;
        let jobs: Vec<(Pipeline, Params)> =
            pipelines.into_iter().map(|p| (p, Params::new())).collect();
        self.evaluate_jobs(jobs, data)
    }

    /// Evaluates every path of `graph` × every parameter assignment in
    /// `grid` (qualified `node__param` keys; assignments that reference
    /// nodes absent from a path apply vacuously and are deduplicated).
    ///
    /// # Errors
    ///
    /// As for [`Evaluator::evaluate_graph`].
    pub fn evaluate_graph_with_grid(
        &self,
        graph: &Teg,
        data: &Dataset,
        grid: &crate::grid::ParamGrid,
    ) -> Result<GraphReport, EvalError> {
        let pipelines = graph.enumerate_pipelines()?;
        let assignments = grid.expand();
        let mut jobs = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for pipeline in &pipelines {
            let names: std::collections::BTreeSet<&str> =
                pipeline.node_names().into_iter().collect();
            for params in &assignments {
                // restrict to the params that touch this path
                let relevant: Params = params
                    .iter()
                    .filter(|(k, _)| {
                        coda_data::traits::split_param_key(k)
                            .map(|(n, _)| names.contains(n))
                            .unwrap_or(false)
                    })
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                let spec = pipeline.spec().with_params(&relevant);
                if seen.insert(spec.key()) {
                    jobs.push((pipeline.fresh_clone(), relevant));
                }
            }
        }
        self.evaluate_jobs(jobs, data)
    }

    /// Core evaluation over (pipeline, params) jobs, parallel if configured.
    fn evaluate_jobs(
        &self,
        jobs: Vec<(Pipeline, Params)>,
        data: &Dataset,
    ) -> Result<GraphReport, EvalError> {
        let results: Vec<PathResult> = if self.n_threads <= 1 || jobs.len() <= 1 {
            jobs.into_iter().map(|(p, params)| self.run_job(p, &params, data)).collect()
        } else {
            let counter = AtomicUsize::new(0);
            let out: Mutex<Vec<(usize, PathResult)>> = Mutex::new(Vec::new());
            let jobs_ref = &jobs;
            let counter_ref = &counter;
            let out_ref = &out;
            std::thread::scope(|scope| {
                for _ in 0..self.n_threads.min(jobs_ref.len()) {
                    scope.spawn(move || loop {
                        let i = counter_ref.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs_ref.len() {
                            break;
                        }
                        let (pipeline, params) = &jobs_ref[i];
                        let result = self.run_job(pipeline.fresh_clone(), params, data);
                        out_ref.lock().expect("no panics hold this lock").push((i, result));
                    });
                }
            });
            let mut collected = out.into_inner().expect("threads joined");
            collected.sort_by_key(|(i, _)| *i);
            collected.into_iter().map(|(_, r)| r).collect()
        };
        if results.iter().all(|r| !r.is_ok()) {
            return Err(EvalError::NothingEvaluated);
        }
        let mut ranked = results;
        let metric = self.metric;
        ranked.sort_by(|a, b| match (a.is_ok(), b.is_ok()) {
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (false, false) => std::cmp::Ordering::Equal,
            (true, true) => {
                if metric.is_better(a.mean_score, b.mean_score) {
                    std::cmp::Ordering::Less
                } else if metric.is_better(b.mean_score, a.mean_score) {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            }
        });
        Ok(GraphReport { metric, results: ranked })
    }

    fn run_job(&self, mut pipeline: Pipeline, params: &Params, data: &Dataset) -> PathResult {
        let spec = pipeline.spec().with_params(params);
        if let Err(e) = pipeline.apply_matching_params(params) {
            return PathResult {
                spec,
                fold_scores: Vec::new(),
                mean_score: self.metric.worst(),
                error: Some(e.to_string()),
            };
        }
        match self.evaluate_pipeline(&pipeline, data) {
            Ok(fold_scores) => {
                let mean_score = fold_scores.iter().sum::<f64>() / fold_scores.len().max(1) as f64;
                PathResult { spec, fold_scores, mean_score, error: None }
            }
            Err(e) => PathResult {
                spec,
                fold_scores: Vec::new(),
                mean_score: self.metric.worst(),
                error: Some(e.to_string()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TegBuilder;
    use crate::node::Node;
    use coda_data::{synth, BoxedEstimator, NoOp};
    use coda_ml::{
        DecisionTreeRegressor, KnnRegressor, LinearRegression, Pca, RidgeRegression, StandardScaler,
    };

    fn small_graph() -> crate::graph::Teg {
        TegBuilder::new()
            .add_feature_scalers(vec![Box::new(StandardScaler::new()), Box::new(NoOp::new())])
            .add_models(vec![Box::new(LinearRegression::new()), Box::new(KnnRegressor::new(3))])
            .create_graph()
            .unwrap()
    }

    #[test]
    fn kfold_produces_k_models_and_k_estimates() {
        let ds = synth::linear_regression(60, 2, 0.1, 101);
        let eval = Evaluator::new(CvStrategy::kfold(5), Metric::Rmse);
        let p = Pipeline::from_nodes(vec![Node::auto(
            (Box::new(LinearRegression::new()) as BoxedEstimator).into(),
        )]);
        let scores = eval.evaluate_pipeline(&p, &ds).unwrap();
        assert_eq!(scores.len(), 5);
        assert!(scores.iter().all(|s| *s >= 0.0));
    }

    #[test]
    fn graph_report_ranked_by_metric() {
        let ds = synth::linear_regression(120, 3, 0.1, 102);
        let eval = Evaluator::new(CvStrategy::kfold(4), Metric::Rmse);
        let report = eval.evaluate_graph(&small_graph(), &ds).unwrap();
        assert_eq!(report.results.len(), 4);
        assert_eq!(report.n_ok(), 4);
        // scores ascend for a lower-is-better metric
        for w in report.results.windows(2) {
            assert!(w[0].mean_score <= w[1].mean_score + 1e-12);
        }
        // linear data: a linear path must win
        assert!(report.best().unwrap().spec.steps.contains(&"linear_regression".to_string()));
    }

    #[test]
    fn higher_is_better_metric_ranks_descending() {
        let ds = synth::linear_regression(120, 3, 0.1, 103);
        let eval = Evaluator::new(CvStrategy::kfold(4), Metric::R2);
        let report = eval.evaluate_graph(&small_graph(), &ds).unwrap();
        for w in report.results.windows(2) {
            assert!(w[0].mean_score >= w[1].mean_score - 1e-12);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let ds = synth::friedman1(150, 5, 0.3, 104);
        let graph = TegBuilder::new()
            .add_feature_scalers(vec![Box::new(StandardScaler::new()), Box::new(NoOp::new())])
            .add_feature_selectors(vec![Box::new(Pca::new(3)), Box::new(NoOp::new())])
            .add_models(vec![
                Box::new(LinearRegression::new()),
                Box::new(DecisionTreeRegressor::new()),
            ])
            .create_graph()
            .unwrap();
        let serial =
            Evaluator::new(CvStrategy::kfold(3), Metric::Rmse).evaluate_graph(&graph, &ds).unwrap();
        let parallel = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse)
            .with_threads(4)
            .evaluate_graph(&graph, &ds)
            .unwrap();
        assert_eq!(serial.results.len(), parallel.results.len());
        for (a, b) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(a.spec.key(), b.spec.key());
            assert!((a.mean_score - b.mean_score).abs() < 1e-12);
        }
    }

    #[test]
    fn failing_path_recorded_not_fatal() {
        // PCA with more samples required: use a 1-sample-per-fold dataset to
        // break PCA fits while linear regression still works... simpler: an
        // estimator that needs more samples than a fold provides.
        let ds = synth::linear_regression(12, 6, 0.01, 105);
        let graph = TegBuilder::new()
            .add_models(vec![
                Box::new(LinearRegression::new()), // needs >= 7 samples/fold: 12*(2/3)=8 ok
                Box::new(RidgeRegression::new(1.0)),
            ])
            .create_graph()
            .unwrap();
        let eval = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse);
        let report = eval.evaluate_graph(&graph, &ds).unwrap();
        assert!(report.n_ok() >= 1);
    }

    #[test]
    fn all_paths_failing_is_error() {
        let ds = synth::linear_regression(6, 5, 0.01, 106);
        // linear regression needs 6 samples for 5 features + intercept;
        // 3-fold training sets have only 4 samples -> every fold fails.
        let graph = TegBuilder::new()
            .add_models(vec![Box::new(LinearRegression::new())])
            .create_graph()
            .unwrap();
        let eval = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse);
        assert!(matches!(eval.evaluate_graph(&graph, &ds), Err(EvalError::NothingEvaluated)));
    }

    #[test]
    fn grid_expands_per_path_and_dedups() {
        let ds = synth::friedman1(90, 6, 0.3, 107);
        let graph = TegBuilder::new()
            .add_feature_selectors(vec![Box::new(Pca::new(2)), Box::new(NoOp::new())])
            .add_models(vec![Box::new(KnnRegressor::new(3))])
            .create_graph()
            .unwrap();
        let mut grid = crate::grid::ParamGrid::new();
        grid.add("pca__n_components", vec![2usize.into(), 4usize.into()]);
        grid.add("knn_regressor__k", vec![3usize.into(), 7usize.into()]);
        let eval = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse);
        let report = eval.evaluate_graph_with_grid(&graph, &ds, &grid).unwrap();
        // pca path: 2 pca values x 2 k values = 4; noop path: k values only = 2
        assert_eq!(report.results.len(), 6);
        assert_eq!(report.n_failed(), 0);
    }

    #[test]
    fn sliding_split_evaluates_time_ordered() {
        let ds = synth::linear_regression(100, 2, 0.1, 108);
        let eval = Evaluator::new(
            CvStrategy::TimeSeriesSlidingSplit {
                train_size: 40,
                buffer: 5,
                validation_size: 10,
                k: 3,
            },
            Metric::Mae,
        );
        let p = Pipeline::from_nodes(vec![Node::auto(
            (Box::new(LinearRegression::new()) as BoxedEstimator).into(),
        )]);
        let scores = eval.evaluate_pipeline(&p, &ds).unwrap();
        assert_eq!(scores.len(), 3);
    }

    #[test]
    fn report_display_nonempty() {
        let ds = synth::linear_regression(60, 2, 0.1, 109);
        let eval = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse);
        let report = eval.evaluate_graph(&small_graph(), &ds).unwrap();
        let s = report.to_string();
        assert!(s.contains("GraphReport"));
        assert!(s.contains("linear_regression"));
    }

    #[test]
    fn cv_error_propagates() {
        let ds = synth::linear_regression(3, 2, 0.1, 110);
        let eval = Evaluator::new(CvStrategy::kfold(10), Metric::Rmse);
        let p = Pipeline::from_nodes(vec![Node::auto(
            (Box::new(LinearRegression::new()) as BoxedEstimator).into(),
        )]);
        assert!(matches!(eval.evaluate_pipeline(&p, &ds), Err(EvalError::Cv(_))));
    }
}
