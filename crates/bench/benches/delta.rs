//! D1 bench: delta encoding/decoding throughput and wire size across update
//! fractions.

use coda_bench::{mutate_fraction, patterned_bytes};
use coda_store::DeltaCodec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_encode(c: &mut Criterion) {
    let size = 262_144usize;
    let base = patterned_bytes(size, 1);
    let mut group = c.benchmark_group("delta/encode_256KiB");
    group.throughput(Throughput::Bytes(size as u64));
    for fraction in [0.01f64, 0.1, 0.5] {
        let target = mutate_fraction(&base, fraction);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}pct", (fraction * 100.0) as u32)),
            &target,
            |b, t| b.iter(|| DeltaCodec::encode(&base, t, 1, 2)),
        );
    }
    group.finish();
}

fn bench_apply(c: &mut Criterion) {
    let size = 262_144usize;
    let base = patterned_bytes(size, 1);
    let target = mutate_fraction(&base, 0.05);
    let delta = DeltaCodec::encode(&base, &target, 1, 2);
    let mut group = c.benchmark_group("delta/apply_256KiB");
    group.throughput(Throughput::Bytes(size as u64));
    group.bench_function("5pct", |b| b.iter(|| DeltaCodec::apply(&base, &delta).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_encode, bench_apply);
criterion_main!(benches);
