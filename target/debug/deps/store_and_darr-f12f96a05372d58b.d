/root/repo/target/debug/deps/store_and_darr-f12f96a05372d58b.d: tests/store_and_darr.rs

/root/repo/target/debug/deps/store_and_darr-f12f96a05372d58b: tests/store_and_darr.rs

tests/store_and_darr.rs:
