/root/repo/target/debug/deps/coda_cluster-a5a69d63c7ebb781.d: crates/cluster/src/lib.rs crates/cluster/src/chaos.rs crates/cluster/src/coop.rs crates/cluster/src/lifecycle.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/placement.rs crates/cluster/src/registry.rs crates/cluster/src/webservice.rs

/root/repo/target/debug/deps/coda_cluster-a5a69d63c7ebb781: crates/cluster/src/lib.rs crates/cluster/src/chaos.rs crates/cluster/src/coop.rs crates/cluster/src/lifecycle.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/placement.rs crates/cluster/src/registry.rs crates/cluster/src/webservice.rs

crates/cluster/src/lib.rs:
crates/cluster/src/chaos.rs:
crates/cluster/src/coop.rs:
crates/cluster/src/lifecycle.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/placement.rs:
crates/cluster/src/registry.rs:
crates/cluster/src/webservice.rs:
