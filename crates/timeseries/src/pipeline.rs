//! The Time Series Prediction pipeline (paper §IV-D, Fig. 11) and its
//! sliding-split evaluator (Fig. 12).
//!
//! [`TimeSeriesPipelineBuilder`] wires the three-stage selective graph:
//! Data Scaling → Data Preprocessing → Modelling, where CascadedWindows
//! feeds only the temporal DNNs, FlatWindowing and TS-as-IID feed the
//! standard DNNs, and TS-as-is feeds the statistical models.
//! [`TsEvaluator`] scores every path with `TimeSeriesSlidingSplit` and
//! returns the best-performing set of transformers and estimators.

use coda_core::{GraphError, Node, PathResult, Pipeline, PipelineSpec, Teg, TegBuilder};
use coda_data::{BoxedEstimator, BoxedTransformer, CvStrategy, Dataset, Metric, NoOp};
use coda_ml::{MinMaxScaler, RobustScaler, StandardScaler};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::deep::{
    CnnForecaster, DnnForecaster, LstmForecaster, SeriesNetForecaster, WaveNetForecaster,
};
use crate::models::{ArForecaster, ZeroModel};
use crate::series::SeriesData;
use crate::window::{CascadedWindows, FlatWindowing, TsAsIid, TsAsIs, WindowConfig};

/// Builder for the Fig. 11 graph.
///
/// # Examples
///
/// ```
/// use coda_timeseries::TimeSeriesPipelineBuilder;
///
/// let graph = TimeSeriesPipelineBuilder::new(12, 1, 1)
///     .with_deep_variants(false)
///     .build()?;
/// // 3 preprocessing routes x their models, times 4 scalers
/// assert!(graph.enumerate_pipelines()?.len() >= 4 * (4 + 2 + 2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeriesPipelineBuilder {
    history: usize,
    horizon: usize,
    n_vars: usize,
    epochs: usize,
    seed: u64,
    deep_variants: bool,
    all_scalers: bool,
}

impl TimeSeriesPipelineBuilder {
    /// Creates a builder for `n_vars`-variate series with the given history
    /// window and prediction horizon.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn new(history: usize, horizon: usize, n_vars: usize) -> Self {
        assert!(history > 0 && horizon > 0 && n_vars > 0);
        TimeSeriesPipelineBuilder {
            history,
            horizon,
            n_vars,
            epochs: 60,
            seed: 0,
            deep_variants: true,
            all_scalers: true,
        }
    }

    /// Sets training epochs for the deep models.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// Sets the shared seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Includes (default) or drops the deep model variants.
    pub fn with_deep_variants(mut self, yes: bool) -> Self {
        self.deep_variants = yes;
        self
    }

    /// Includes all four scalers (default) or only `NoOp`.
    pub fn with_all_scalers(mut self, yes: bool) -> Self {
        self.all_scalers = yes;
        self
    }

    /// Builds the selective Transformer-Estimator Graph of Fig. 11.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] (cannot occur for the fixed wiring unless a
    /// future variant breaks it).
    pub fn build(&self) -> Result<Teg, GraphError> {
        let cfg = WindowConfig::new(self.history, self.horizon);
        let p = self.history;
        let v = self.n_vars;
        let mut b = TegBuilder::new();

        // Stage 1: data scaling
        let mut scalers: Vec<String> = Vec::new();
        if self.all_scalers {
            scalers.push(
                b.add_node(Node::auto((Box::new(MinMaxScaler::new()) as BoxedTransformer).into())),
            );
            scalers.push(
                b.add_node(Node::auto((Box::new(RobustScaler::new()) as BoxedTransformer).into())),
            );
            scalers.push(b.add_node(Node::auto(
                (Box::new(StandardScaler::new()) as BoxedTransformer).into(),
            )));
        }
        scalers.push(b.add_node(Node::auto((Box::new(NoOp::new()) as BoxedTransformer).into())));

        // Stage 2: data preprocessing
        let cascaded = b
            .add_node(Node::auto((Box::new(CascadedWindows::new(cfg)) as BoxedTransformer).into()));
        let flat =
            b.add_node(Node::auto((Box::new(FlatWindowing::new(cfg)) as BoxedTransformer).into()));
        let iid = b.add_node(Node::auto((Box::new(TsAsIid::new(cfg)) as BoxedTransformer).into()));
        let asis = b.add_node(Node::auto((Box::new(TsAsIs::new(cfg)) as BoxedTransformer).into()));
        for s in &scalers {
            for pre in [&cascaded, &flat, &iid, &asis] {
                b.connect(s, pre);
            }
        }

        // Stage 3: modelling — selectively connected
        let seed = self.seed;
        let ep = self.epochs;
        let mut temporal: Vec<String> = vec![
            b.add_node(Node::new(
                "lstm_simple",
                (Box::new(LstmForecaster::simple(p, v).with_epochs(ep).with_seed(seed))
                    as BoxedEstimator)
                    .into(),
            )),
            b.add_node(Node::new(
                "cnn_simple",
                (Box::new(CnnForecaster::simple(p, v).with_epochs(ep).with_seed(seed + 1))
                    as BoxedEstimator)
                    .into(),
            )),
            b.add_node(Node::new(
                "wavenet",
                (Box::new(WaveNetForecaster::new(p, v).with_epochs(ep).with_seed(seed + 2))
                    as BoxedEstimator)
                    .into(),
            )),
            b.add_node(Node::new(
                "seriesnet",
                (Box::new(SeriesNetForecaster::new(p, v).with_epochs(ep).with_seed(seed + 3))
                    as BoxedEstimator)
                    .into(),
            )),
        ];
        if self.deep_variants {
            temporal.push(
                b.add_node(Node::new(
                    "lstm_deep",
                    (Box::new(LstmForecaster::deep(p, v).with_epochs(ep).with_seed(seed + 4))
                        as BoxedEstimator)
                        .into(),
                )),
            );
            temporal.push(
                b.add_node(Node::new(
                    "cnn_deep",
                    (Box::new(CnnForecaster::deep(p, v).with_epochs(ep).with_seed(seed + 5))
                        as BoxedEstimator)
                        .into(),
                )),
            );
        }
        let mut dnn_flat: Vec<String> = vec![b.add_node(Node::new(
            "dnn_simple",
            (Box::new(DnnForecaster::simple(p * v).with_epochs(ep).with_seed(seed + 6))
                as BoxedEstimator)
                .into(),
        ))];
        if self.deep_variants {
            dnn_flat.push(
                b.add_node(Node::new(
                    "dnn_deep",
                    (Box::new(DnnForecaster::deep(p * v).with_epochs(ep).with_seed(seed + 7))
                        as BoxedEstimator)
                        .into(),
                )),
            );
        }
        let mut dnn_iid: Vec<String> = vec![b.add_node(Node::new(
            "dnn_iid_simple",
            (Box::new(DnnForecaster::simple(v).with_epochs(ep).with_seed(seed + 8))
                as BoxedEstimator)
                .into(),
        ))];
        if self.deep_variants {
            dnn_iid.push(
                b.add_node(Node::new(
                    "dnn_iid_deep",
                    (Box::new(DnnForecaster::deep(v).with_epochs(ep).with_seed(seed + 9))
                        as BoxedEstimator)
                        .into(),
                )),
            );
        }
        let statistical: Vec<String> = vec![
            b.add_node(Node::auto((Box::new(ZeroModel::new()) as BoxedEstimator).into())),
            b.add_node(Node::auto((Box::new(ArForecaster::new()) as BoxedEstimator).into())),
            b.add_node(Node::auto(
                (Box::new(ArForecaster::differenced()) as BoxedEstimator).into(),
            )),
        ];
        // Fig. 11 selective wiring
        for m in &temporal {
            b.connect(&cascaded, m);
        }
        for m in &dnn_flat {
            b.connect(&flat, m);
        }
        for m in &dnn_iid {
            b.connect(&iid, m);
        }
        for m in &statistical {
            b.connect(&asis, m);
        }
        b.create_graph()
    }
}

/// Report over evaluated time-series paths (same shape as the tabular
/// [`coda_core::GraphReport`], ranked by the metric).
#[derive(Debug, Clone)]
pub struct TsReport {
    /// Ranking metric.
    pub metric: Metric,
    /// Ranked results (successes best-first, then failures).
    pub results: Vec<PathResult>,
}

impl TsReport {
    /// The best successful path, if any.
    pub fn best(&self) -> Option<&PathResult> {
        self.results.iter().find(|r| r.is_ok())
    }

    /// Count of successfully evaluated paths.
    pub fn n_ok(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// The mean score for a path whose spec steps contain `needle`, if any
    /// such path succeeded.
    pub fn score_for(&self, needle: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.is_ok() && r.spec.steps.iter().any(|s| s.contains(needle)))
            .map(|r| r.mean_score)
    }
}

impl fmt::Display for TsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TsReport ({} paths, metric {}):", self.results.len(), self.metric)?;
        for r in &self.results {
            match &r.error {
                None => writeln!(f, "  {:>12.6}  {}", r.mean_score, r.spec.key())?,
                Some(e) => writeln!(f, "  {:>12}  {} [{e}]", "failed", r.spec.key())?,
            }
        }
        Ok(())
    }
}

/// Evaluation error for time-series graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum TsEvalError {
    /// The sliding split cannot be applied to this series.
    Cv(coda_data::cv::CvError),
    /// The graph is malformed.
    Graph(GraphError),
    /// Every path failed.
    NothingEvaluated,
}

impl fmt::Display for TsEvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsEvalError::Cv(e) => write!(f, "cross-validation error: {e}"),
            TsEvalError::Graph(e) => write!(f, "graph error: {e}"),
            TsEvalError::NothingEvaluated => write!(f, "no pipeline evaluated successfully"),
        }
    }
}

impl std::error::Error for TsEvalError {}

/// Evaluates time-series pipelines with the sliding-split strategy of
/// Fig. 12: contiguous train window, buffer gap, contiguous validation
/// window, slid `k` times — no future information ever leaks into training.
#[derive(Debug, Clone)]
pub struct TsEvaluator {
    split: CvStrategy,
    metric: Metric,
    n_threads: usize,
}

impl TsEvaluator {
    /// Creates an evaluator.
    ///
    /// # Panics
    ///
    /// Panics unless `split` is a time-ordered strategy
    /// (`TimeSeriesSlidingSplit` or `TimeSeriesExpanding`) — the paper is
    /// explicit that i.i.d. CV is invalid for time series.
    pub fn new(split: CvStrategy, metric: Metric) -> Self {
        assert!(
            matches!(
                split,
                CvStrategy::TimeSeriesSlidingSplit { .. } | CvStrategy::TimeSeriesExpanding { .. }
            ),
            "time-series evaluation requires a time-ordered split strategy"
        );
        TsEvaluator { split, metric, n_threads: 1 }
    }

    /// Convenience constructor for the expanding-window "Time Series Split"
    /// (§IV-B's alternate strategy).
    pub fn expanding(k: usize, metric: Metric) -> Self {
        TsEvaluator::new(CvStrategy::TimeSeriesExpanding { k }, metric)
    }

    /// Convenience constructor with window sizes.
    pub fn sliding(
        train: usize,
        buffer: usize,
        validation: usize,
        k: usize,
        metric: Metric,
    ) -> Self {
        TsEvaluator::new(
            CvStrategy::TimeSeriesSlidingSplit {
                train_size: train,
                buffer,
                validation_size: validation,
                k,
            },
            metric,
        )
    }

    /// Enables parallel path evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_threads(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.n_threads = n;
        self
    }

    /// Scores one pipeline over the sliding splits.
    fn run_pipeline(&self, pipeline: &Pipeline, series_ds: &Dataset) -> PathResult {
        let spec: PipelineSpec = pipeline.spec();
        let splits = match self.split.splits(series_ds.n_samples()) {
            Ok(s) => s,
            Err(e) => {
                return PathResult {
                    spec,
                    fold_scores: Vec::new(),
                    mean_score: self.metric.worst(),
                    error: Some(e.to_string()),
                }
            }
        };
        let mut fold_scores = Vec::with_capacity(splits.len());
        for split in &splits {
            let train = series_ds.select(&split.train);
            let validation = series_ds.select(&split.validation);
            let mut p = pipeline.fresh_clone();
            let outcome =
                p.fit(&train).and_then(|_| p.transform_only(&validation)).and_then(|transformed| {
                    let preds = p.predict(&validation)?;
                    let truth = transformed.target_required()?;
                    self.metric
                        .compute(truth, &preds)
                        .map_err(|e| coda_data::ComponentError::InvalidInput(e.to_string()))
                });
            match outcome {
                Ok(score) => fold_scores.push(score),
                Err(e) => {
                    return PathResult {
                        spec,
                        fold_scores: Vec::new(),
                        mean_score: self.metric.worst(),
                        error: Some(e.to_string()),
                    }
                }
            }
        }
        let mean_score = fold_scores.iter().sum::<f64>() / fold_scores.len().max(1) as f64;
        PathResult { spec, fold_scores, mean_score, error: None }
    }

    /// Evaluates every path of `graph` on `series`, ranked by the metric.
    /// The output of the pipeline is the best performing set of transformers
    /// and estimators (Fig. 11).
    ///
    /// # Errors
    ///
    /// [`TsEvalError::Graph`] for malformed graphs,
    /// [`TsEvalError::NothingEvaluated`] when every path fails.
    pub fn evaluate_graph(
        &self,
        graph: &Teg,
        series: &SeriesData,
    ) -> Result<TsReport, TsEvalError> {
        let pipelines = graph.enumerate_pipelines().map_err(TsEvalError::Graph)?;
        let series_ds = series.to_dataset();
        let results: Vec<PathResult> = if self.n_threads <= 1 || pipelines.len() <= 1 {
            pipelines.iter().map(|p| self.run_pipeline(p, &series_ds)).collect()
        } else {
            let counter = AtomicUsize::new(0);
            let out: Mutex<Vec<(usize, PathResult)>> = Mutex::new(Vec::new());
            let pipes = &pipelines;
            let counter_ref = &counter;
            let out_ref = &out;
            let ds_ref = &series_ds;
            std::thread::scope(|scope| {
                for _ in 0..self.n_threads.min(pipes.len()) {
                    scope.spawn(move || loop {
                        let i = counter_ref.fetch_add(1, Ordering::Relaxed);
                        if i >= pipes.len() {
                            break;
                        }
                        let r = self.run_pipeline(&pipes[i], ds_ref);
                        out_ref.lock().expect("no panics hold this lock").push((i, r));
                    });
                }
            });
            let mut collected = out.into_inner().expect("threads joined");
            collected.sort_by_key(|(i, _)| *i);
            collected.into_iter().map(|(_, r)| r).collect()
        };
        if results.iter().all(|r| !r.is_ok()) {
            return Err(TsEvalError::NothingEvaluated);
        }
        let metric = self.metric;
        let mut ranked = results;
        ranked.sort_by(|a, b| match (a.is_ok(), b.is_ok()) {
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (false, false) => std::cmp::Ordering::Equal,
            (true, true) => {
                if metric.is_better(a.mean_score, b.mean_score) {
                    std::cmp::Ordering::Less
                } else if metric.is_better(b.mean_score, a.mean_score) {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            }
        });
        Ok(TsReport { metric, results: ranked })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::synth;

    #[test]
    fn graph_structure_matches_fig11() {
        let g = TimeSeriesPipelineBuilder::new(12, 1, 2).build().unwrap();
        // selective wiring: cascaded feeds temporal models only
        let idx = g.node_index("cascaded_windows").unwrap();
        let succ_names: Vec<&str> =
            g.successors(idx).iter().map(|&i| g.nodes()[i].name()).collect();
        assert!(succ_names.contains(&"lstm_simple"));
        assert!(succ_names.contains(&"wavenet"));
        assert!(!succ_names.iter().any(|n| n.starts_with("dnn")));
        assert!(!succ_names.contains(&"zero_model"));
        // ts_as_is feeds statistical models only
        let asis = g.node_index("ts_as_is").unwrap();
        let stat_names: Vec<&str> =
            g.successors(asis).iter().map(|&i| g.nodes()[i].name()).collect();
        assert!(stat_names.contains(&"zero_model"));
        assert!(stat_names.contains(&"ar_forecaster"));
        assert!(stat_names.iter().all(|n| !n.contains("lstm")));
    }

    #[test]
    fn path_count() {
        let g = TimeSeriesPipelineBuilder::new(12, 1, 1).with_deep_variants(false).build().unwrap();
        // 4 scalers x (4 temporal + 1 dnn_flat + 1 dnn_iid + 3 statistical)
        assert_eq!(g.enumerate_pipelines().unwrap().len(), 4 * 9);
    }

    #[test]
    fn evaluator_requires_sliding_split() {
        let result =
            std::panic::catch_unwind(|| TsEvaluator::new(CvStrategy::kfold(5), Metric::Rmse));
        assert!(result.is_err());
    }

    #[test]
    fn sliding_evaluation_ranks_statistical_paths() {
        // statistical-only graph evaluates quickly and meaningfully
        let g = TimeSeriesPipelineBuilder::new(8, 1, 1)
            .with_deep_variants(false)
            .with_all_scalers(false)
            .with_epochs(3)
            .build()
            .unwrap();
        let series = SeriesData::univariate(synth::ar2_series(400, 0.6, 0.2, 0.5, 31));
        let eval = TsEvaluator::sliding(200, 5, 50, 3, Metric::Rmse).with_threads(4);
        let report = eval.evaluate_graph(&g, &series).unwrap();
        assert!(report.n_ok() >= 5);
        // AR must beat the persistence baseline on an AR(2) process
        let ar = report.score_for("ar_forecaster").unwrap();
        let zero = report.score_for("zero_model").unwrap();
        assert!(ar < zero, "ar {ar:.4} vs zero {zero:.4}");
        assert!(report.best().is_some());
        assert!(report.to_string().contains("TsReport"));
    }

    #[test]
    fn expanding_split_evaluator_works() {
        let g = TimeSeriesPipelineBuilder::new(6, 1, 1)
            .with_deep_variants(false)
            .with_all_scalers(false)
            .with_epochs(3)
            .build()
            .unwrap();
        let series = SeriesData::univariate(synth::ar2_series(300, 0.5, 0.2, 0.5, 41));
        let eval = TsEvaluator::expanding(3, Metric::Rmse);
        let report = eval.evaluate_graph(&g, &series).unwrap();
        assert!(report.n_ok() >= 3);
        assert_eq!(report.results[0].fold_scores.len(), 3);
    }

    #[test]
    fn too_short_series_is_error() {
        let g = TimeSeriesPipelineBuilder::new(8, 1, 1)
            .with_deep_variants(false)
            .with_all_scalers(false)
            .build()
            .unwrap();
        let series = SeriesData::univariate(vec![1.0; 30]);
        let eval = TsEvaluator::sliding(100, 5, 20, 3, Metric::Rmse);
        assert!(matches!(eval.evaluate_graph(&g, &series), Err(TsEvalError::NothingEvaluated)));
    }
}
