//! Cross-crate integration for the extended component set: kernel PCA and
//! LDA inside graphs, MICE/ALS imputation in dirty-data pipelines, the
//! oversampler in imbalanced failure prediction, nested CV through the
//! public API, and the expanding time-series split end-to-end.

use coda::data::impute_advanced::{IterativeImputer, MatrixFactorizationImputer};
use coda::data::{synth, CvStrategy, Metric};
use coda::graph::{Evaluator, ParamGrid, Pipeline, TegBuilder};
use coda::ml::{
    Kernel, KernelPca, KnnClassifier, Lda, LogisticRegression, RandomOversampler, ScoreFunction,
    SelectKBest, StandardScaler,
};
use coda_linalg::Matrix;

/// Two concentric rings: the classic kernel-methods testbed.
fn rings(n_per: usize) -> coda::data::Dataset {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for i in 0..2 * n_per {
        let angle = i as f64 * std::f64::consts::PI * 2.0 / n_per as f64;
        let (r, label) = if i % 2 == 0 { (1.0, 0.0) } else { (5.0, 1.0) };
        rows.push(vec![r * angle.cos() + 0.05 * ((i * 7 % 13) as f64 / 13.0), r * angle.sin()]);
        labels.push(label);
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    coda::data::Dataset::new(Matrix::from_rows(&refs)).with_target(labels).unwrap()
}

#[test]
fn kernel_pca_path_beats_linear_path_on_rings() {
    let ds = rings(80);
    let graph = TegBuilder::new()
        .add_feature_selectors(vec![
            Box::new(KernelPca::new(2, Kernel::Rbf { gamma: 0.3 })),
            Box::new(coda::ml::Pca::new(2)),
        ])
        .add_models(vec![Box::new(LogisticRegression::new())])
        .create_graph()
        .unwrap();
    let report =
        Evaluator::new(CvStrategy::KFold { k: 4, shuffle: true, seed: 1 }, Metric::Accuracy)
            .evaluate_graph(&graph, &ds)
            .unwrap();
    let kernel_acc =
        report.results.iter().find(|r| r.spec.steps[0] == "kernel_pca").unwrap().mean_score;
    let linear_acc = report.results.iter().find(|r| r.spec.steps[0] == "pca").unwrap().mean_score;
    assert!(
        kernel_acc > 0.95 && linear_acc < 0.8,
        "kernel {kernel_acc:.3} must separate rings where linear PCA ({linear_acc:.3}) cannot"
    );
    assert_eq!(report.best().unwrap().spec.steps[0], "kernel_pca");
}

#[test]
fn lda_pipeline_with_information_gain_selection() {
    let ds = synth::classification_blobs(400, 10, 3, 1.2, 2);
    let graph = TegBuilder::new()
        .add_feature_selectors(vec![Box::new(SelectKBest::new(6, ScoreFunction::InformationGain))])
        .add_transformers(vec![Box::new(Lda::new(2))])
        .add_models(vec![Box::new(KnnClassifier::new(5))])
        .create_graph()
        .unwrap();
    let report =
        Evaluator::new(CvStrategy::KFold { k: 3, shuffle: true, seed: 2 }, Metric::Accuracy)
            .evaluate_graph(&graph, &ds)
            .unwrap();
    assert!(report.best().unwrap().mean_score > 0.85);
}

#[test]
fn advanced_imputers_inside_pipelines_beat_mean_downstream() {
    // correlated features with holes: downstream regression quality depends
    // on imputation quality. Features are noisy multiples of a latent
    // factor, so missing cells are recoverable from the observed ones.
    let latent = synth::linear_regression(300, 1, 0.0, 3);
    let l = latent.features().col(0);
    let mut x = Matrix::zeros(300, 4);
    let mut y = Vec::with_capacity(300);
    for (r, &v) in l.iter().enumerate() {
        x[(r, 0)] = v;
        x[(r, 1)] = 2.0 * v + 0.05 * ((r * 13 % 17) as f64 / 17.0 - 0.5);
        x[(r, 2)] = -1.5 * v + 0.05 * ((r * 7 % 23) as f64 / 23.0 - 0.5);
        x[(r, 3)] = 0.5 * v + 0.05 * ((r * 11 % 19) as f64 / 19.0 - 0.5);
        y.push(3.0 * v + 0.1 * ((r * 3 % 29) as f64 / 29.0 - 0.5));
    }
    let clean = coda::data::Dataset::new(x).with_target(y).unwrap();
    let holed = synth::inject_missing(&clean, 0.2, 4);
    let score_with = |imputer: coda::data::BoxedTransformer| {
        let graph = TegBuilder::new()
            .add_transformers(vec![imputer])
            .add_feature_scalers(vec![Box::new(StandardScaler::new())])
            .add_models(vec![Box::new(coda::ml::RidgeRegression::new(0.1))])
            .create_graph()
            .unwrap();
        Evaluator::new(CvStrategy::kfold(4), Metric::Rmse)
            .evaluate_graph(&graph, &holed)
            .unwrap()
            .best()
            .unwrap()
            .mean_score
    };
    let mice = score_with(Box::new(IterativeImputer::new(4)));
    let mf = score_with(Box::new(MatrixFactorizationImputer::new(2)));
    let mean = score_with(Box::new(coda::data::impute::SimpleImputer::new(
        coda::data::impute::ImputeStrategy::Mean,
    )));
    assert!(mice < mean, "mice {mice:.4} must beat mean {mean:.4}");
    // ALS is weaker on full-rank regression features but must stay sane
    assert!(mf < mean * 1.5, "mf {mf:.4} vs mean {mean:.4}");
}

#[test]
fn oversampler_improves_minority_f1_in_graph() {
    let ds = synth::imbalanced_binary(2500, 1, 0.04, 5);
    let run = |with_oversampling: bool| {
        let mut builder = TegBuilder::new();
        let builder = if with_oversampling {
            builder =
                builder.add_transformers(vec![Box::new(RandomOversampler::new().with_seed(9))]);
            builder
        } else {
            builder
        };
        let graph =
            builder.add_models(vec![Box::new(LogisticRegression::new())]).create_graph().unwrap();
        Evaluator::new(CvStrategy::KFold { k: 3, shuffle: true, seed: 6 }, Metric::F1)
            .evaluate_graph(&graph, &ds)
            .unwrap()
            .best()
            .unwrap()
            .mean_score
    };
    let with = run(true);
    let without = run(false);
    assert!(with > without + 0.05, "oversampled f1 {with:.3} must clearly beat plain {without:.3}");
}

#[test]
fn nested_cv_through_public_api() {
    let ds = synth::friedman1(200, 5, 1.0, 7);
    let pipeline = Pipeline::from_nodes(vec![coda::graph::Node::auto(
        (Box::new(coda::ml::KnnRegressor::new(1)) as coda::data::BoxedEstimator).into(),
    )]);
    let mut grid = ParamGrid::new();
    grid.add("knn_regressor__k", vec![1usize.into(), 5usize.into(), 11usize.into()]);
    let eval = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse);
    let nested = eval.nested_evaluate(&pipeline, &ds, &grid, CvStrategy::kfold(3)).unwrap();
    assert_eq!(nested.folds.len(), 3);
    assert!(nested.outer_mean().is_finite());
    assert!(nested.consensus_params().is_some());
}

#[test]
fn expanding_split_selects_forecaster_end_to_end() {
    use coda::timeseries::{SeriesData, TimeSeriesPipelineBuilder, TsEvaluator};
    let series = SeriesData::univariate(synth::ar2_series(400, 0.6, 0.2, 0.8, 8));
    let graph = TimeSeriesPipelineBuilder::new(6, 1, 1)
        .with_deep_variants(false)
        .with_all_scalers(false)
        .with_epochs(5)
        .build()
        .unwrap();
    let report = TsEvaluator::expanding(4, Metric::Rmse)
        .with_threads(2)
        .evaluate_graph(&graph, &series)
        .unwrap();
    assert!(report.n_ok() >= 5);
    let ar = report.score_for("ar_forecaster").unwrap();
    let zero = report.score_for("zero_model").unwrap();
    assert!(ar < zero, "AR must beat persistence on an AR process (expanding split)");
}
