//! T1/F3 bench: Transformer-Estimator-Graph evaluation throughput — the
//! full 36-pipeline Listing-1 graph under serial and parallel evaluation.

use coda_bench::{listing1_graph, small_graph};
use coda_core::Evaluator;
use coda_data::{synth, CvStrategy, Metric};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_graph_eval(c: &mut Criterion) {
    let ds = synth::friedman1(150, 10, 0.5, 1);
    let graph = small_graph();
    let mut group = c.benchmark_group("teg_eval/small_graph_8_paths");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let eval = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse).with_threads(t);
            b.iter(|| eval.evaluate_graph(&graph, &ds).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("teg_eval/listing1_36_paths");
    group.sample_size(10);
    group.bench_function("parallel4", |b| {
        let eval = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse).with_threads(4);
        b.iter(|| eval.evaluate_graph(&listing1_graph(), &ds).unwrap());
    });
    group.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let graph = listing1_graph();
    c.bench_function("teg_eval/enumerate_36_paths", |b| {
        b.iter(|| graph.enumerate_pipelines().unwrap().len())
    });
}

criterion_group!(benches, bench_graph_eval, bench_enumeration);
criterion_main!(benches);
