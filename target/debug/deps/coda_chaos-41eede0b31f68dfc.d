/root/repo/target/debug/deps/coda_chaos-41eede0b31f68dfc.d: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/retry.rs Cargo.toml

/root/repo/target/debug/deps/libcoda_chaos-41eede0b31f68dfc.rmeta: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/retry.rs Cargo.toml

crates/chaos/src/lib.rs:
crates/chaos/src/fault.rs:
crates/chaos/src/retry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
