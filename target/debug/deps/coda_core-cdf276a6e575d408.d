/root/repo/target/debug/deps/coda_core-cdf276a6e575d408.d: crates/core/src/lib.rs crates/core/src/dot.rs crates/core/src/eval.rs crates/core/src/graph.rs crates/core/src/grid.rs crates/core/src/node.rs crates/core/src/pipeline.rs crates/core/src/search.rs crates/core/src/tuning.rs

/root/repo/target/debug/deps/libcoda_core-cdf276a6e575d408.rlib: crates/core/src/lib.rs crates/core/src/dot.rs crates/core/src/eval.rs crates/core/src/graph.rs crates/core/src/grid.rs crates/core/src/node.rs crates/core/src/pipeline.rs crates/core/src/search.rs crates/core/src/tuning.rs

/root/repo/target/debug/deps/libcoda_core-cdf276a6e575d408.rmeta: crates/core/src/lib.rs crates/core/src/dot.rs crates/core/src/eval.rs crates/core/src/graph.rs crates/core/src/grid.rs crates/core/src/node.rs crates/core/src/pipeline.rs crates/core/src/search.rs crates/core/src/tuning.rs

crates/core/src/lib.rs:
crates/core/src/dot.rs:
crates/core/src/eval.rs:
crates/core/src/graph.rs:
crates/core/src/grid.rs:
crates/core/src/node.rs:
crates/core/src/pipeline.rs:
crates/core/src/search.rs:
crates/core/src/tuning.rs:
