//! Multi-step forecasting: the paper's **prediction window** ("try to
//! predict the value of the next few timestamps") realized by recursive
//! one-step forecasting — each predicted value is appended to the history
//! and fed back through the fitted pipeline.

use coda_core::Pipeline;
use coda_data::ComponentError;
use coda_linalg::Matrix;

use crate::series::SeriesData;

/// Forecasts the next `steps` values of a *univariate* series with a fitted
/// one-step pipeline (scaler → preprocessor → estimator, horizon 1),
/// feeding each prediction back as history.
///
/// # Errors
///
/// [`ComponentError::InvalidInput`] for multivariate series (the paper's
/// recursive scheme needs every input channel predicted; with one channel
/// the prediction *is* the channel) or `steps == 0`; any pipeline error.
///
/// # Examples
///
/// ```
/// use coda_core::{Node, Pipeline};
/// use coda_data::BoxedEstimator;
/// use coda_timeseries::{forecast, ArForecaster, SeriesData, TsAsIs, WindowConfig};
/// use coda_data::BoxedTransformer;
///
/// // fit AR(4) on a ramp, forecast 5 steps ahead
/// let series = SeriesData::univariate((0..60).map(|i| i as f64).collect());
/// let mut pipeline = Pipeline::from_nodes(vec![
///     Node::auto((Box::new(TsAsIs::new(WindowConfig::new(4, 1))) as BoxedTransformer).into()),
///     Node::auto((Box::new(ArForecaster::differenced()) as BoxedEstimator).into()),
/// ]);
/// pipeline.fit(&series.to_dataset())?;
/// let future = forecast::recursive_forecast(&pipeline, &series, 5)?;
/// assert_eq!(future.len(), 5);
/// assert!((future[4] - 64.0).abs() < 0.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn recursive_forecast(
    pipeline: &Pipeline,
    series: &SeriesData,
    steps: usize,
) -> Result<Vec<f64>, ComponentError> {
    if series.n_vars() != 1 {
        return Err(ComponentError::InvalidInput(
            "recursive forecasting requires a univariate series".to_string(),
        ));
    }
    if steps == 0 {
        return Err(ComponentError::InvalidInput("steps must be positive".to_string()));
    }
    let mut history = series.target_series();
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        // Windowing transformers only emit windows whose label lies inside
        // the series, so the last labeled window predicts the final
        // *observed* value. Appending a placeholder slides one more window
        // in — covering exactly the last `p` real observations — whose
        // label slot is the unknown next value we want.
        let mut extended = history.clone();
        extended.push(*history.last().expect("series is non-empty"));
        let current = SeriesData::new(Matrix::from_vec(extended.len(), 1, extended), 0);
        let preds = pipeline.predict(&current.to_dataset())?;
        let next = *preds.last().ok_or_else(|| {
            ComponentError::InvalidInput("pipeline produced no predictions".to_string())
        })?;
        out.push(next);
        history.push(next);
    }
    Ok(out)
}

/// Convenience: RMSE of a recursive forecast against the actual
/// continuation of the series — fit on `series[..split]`, forecast
/// `series[split..]`, compare.
///
/// # Errors
///
/// As for [`recursive_forecast`], plus [`ComponentError::InvalidInput`] for
/// an out-of-range split.
pub fn backtest_forecast(
    pipeline: &mut Pipeline,
    series: &SeriesData,
    split: usize,
) -> Result<f64, ComponentError> {
    if series.n_vars() != 1 {
        return Err(ComponentError::InvalidInput(
            "backtesting requires a univariate series".to_string(),
        ));
    }
    if split == 0 || split >= series.len() {
        return Err(ComponentError::InvalidInput(format!(
            "split {split} out of range for series of length {}",
            series.len()
        )));
    }
    let full = series.target_series();
    let train = SeriesData::new(Matrix::from_vec(split, 1, full[..split].to_vec()), 0);
    pipeline.fit(&train.to_dataset())?;
    let horizon = series.len() - split;
    let forecast = recursive_forecast(pipeline, &train, horizon)?;
    coda_data::metrics::rmse(&full[split..], &forecast)
        .map_err(|e| ComponentError::InvalidInput(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{ArForecaster, ZeroModel};
    use crate::window::{TsAsIs, WindowConfig};
    use coda_core::Node;
    use coda_data::{synth, BoxedEstimator, BoxedTransformer};

    fn ar_pipeline(p: usize, differenced: bool) -> Pipeline {
        let model: BoxedEstimator = if differenced {
            Box::new(ArForecaster::differenced())
        } else {
            Box::new(ArForecaster::new())
        };
        Pipeline::from_nodes(vec![
            Node::auto((Box::new(TsAsIs::new(WindowConfig::new(p, 1))) as BoxedTransformer).into()),
            Node::auto(model.into()),
        ])
    }

    #[test]
    fn tracks_a_sine_wave_over_many_steps() {
        let series: Vec<f64> =
            (0..200).map(|t| (2.0 * std::f64::consts::PI * t as f64 / 20.0).sin() * 3.0).collect();
        let train = SeriesData::univariate(series[..160].to_vec());
        let mut pipeline = ar_pipeline(20, false);
        pipeline.fit(&train.to_dataset()).unwrap();
        let forecast = recursive_forecast(&pipeline, &train, 40).unwrap();
        let rmse = coda_data::metrics::rmse(&series[160..], &forecast).unwrap();
        assert!(rmse < 0.1, "40-step sine forecast rmse {rmse}");
    }

    #[test]
    fn extends_a_trend() {
        let series = SeriesData::univariate((0..80).map(|i| 2.0 * i as f64).collect());
        let mut pipeline = ar_pipeline(4, true);
        pipeline.fit(&series.to_dataset()).unwrap();
        let forecast = recursive_forecast(&pipeline, &series, 10).unwrap();
        for (i, v) in forecast.iter().enumerate() {
            let expected = 2.0 * (80 + i) as f64;
            assert!((v - expected).abs() < 1.0, "step {i}: {v} vs {expected}");
        }
    }

    #[test]
    fn zero_model_forecast_is_flat() {
        let series = SeriesData::univariate(synth::random_walk(100, 1.0, 51));
        let mut pipeline = Pipeline::from_nodes(vec![
            Node::auto((Box::new(TsAsIs::new(WindowConfig::new(5, 1))) as BoxedTransformer).into()),
            Node::auto((Box::new(ZeroModel::new()) as BoxedEstimator).into()),
        ]);
        pipeline.fit(&series.to_dataset()).unwrap();
        let forecast = recursive_forecast(&pipeline, &series, 8).unwrap();
        let last = *series.target_series().last().unwrap();
        assert!(forecast.iter().all(|v| (v - last).abs() < 1e-12));
    }

    #[test]
    fn backtest_ranks_ar_above_zero_on_seasonal_data() {
        let series = SeriesData::univariate(
            (0..300).map(|t| (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin() * 2.0).collect(),
        );
        let mut ar = ar_pipeline(12, false);
        let ar_rmse = backtest_forecast(&mut ar, &series, 250).unwrap();
        let mut zero = Pipeline::from_nodes(vec![
            Node::auto(
                (Box::new(TsAsIs::new(WindowConfig::new(12, 1))) as BoxedTransformer).into(),
            ),
            Node::auto((Box::new(ZeroModel::new()) as BoxedEstimator).into()),
        ]);
        let zero_rmse = backtest_forecast(&mut zero, &series, 250).unwrap();
        assert!(ar_rmse < zero_rmse / 2.0, "ar {ar_rmse:.4} vs zero {zero_rmse:.4}");
    }

    #[test]
    fn errors() {
        let mv = SeriesData::new(synth::multivariate_sensors(50, 2, 52), 0);
        let pipeline = ar_pipeline(4, false);
        assert!(recursive_forecast(&pipeline, &mv, 3).is_err());
        let uni = SeriesData::univariate((0..50).map(|i| i as f64).collect());
        assert!(recursive_forecast(&pipeline, &uni, 0).is_err()); // steps = 0
                                                                  // unfitted pipeline fails inside predict
        assert!(recursive_forecast(&pipeline, &uni, 2).is_err());
        let mut p = ar_pipeline(4, false);
        assert!(backtest_forecast(&mut p, &uni, 0).is_err());
        assert!(backtest_forecast(&mut p, &uni, 50).is_err());
    }
}
