//! Cooperative multi-client graph evaluation (Fig. 2, experiment F2):
//! `n` client threads all need the results of the same Transformer-Estimator
//! Graph on the same dataset. Without the DARR each client evaluates every
//! pipeline itself (`n × m` evaluations); with the DARR clients claim
//! non-overlapping pipelines and share results (`m` evaluations total).

use std::sync::atomic::{AtomicUsize, Ordering};

use coda_core::{Evaluator, Teg};
use coda_darr::{ComputationKey, CoopOutcome, CooperativeClient, Darr};
use coda_data::{CvStrategy, Dataset, Metric};
use coda_obs::{Clock, WallClock};

/// Outcome of a cooperative (or independent) multi-client run.
#[derive(Debug, Clone, PartialEq)]
pub struct CoopRunReport {
    /// Client count.
    pub n_clients: usize,
    /// Distinct pipelines in the graph.
    pub n_pipelines: usize,
    /// Pipeline evaluations actually executed across all clients.
    pub total_evaluations: usize,
    /// Evaluations that duplicated work already done elsewhere.
    pub redundant_evaluations: usize,
    /// Results obtained from the DARR instead of recomputing.
    pub reused_results: usize,
    /// Wall-clock duration of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Best score observed (metric-dependent orientation).
    pub best_score: f64,
}

fn computation_key(
    dataset_id: &str,
    dataset_version: u64,
    pipeline_key: String,
    cv: &CvStrategy,
    metric: Metric,
) -> ComputationKey {
    ComputationKey {
        dataset_id: dataset_id.to_string(),
        dataset_version,
        pipeline: pipeline_key,
        cv: cv.to_string(),
        metric: metric.to_string(),
    }
}

/// Runs `n_clients` threads over all pipelines of `graph` on `data`.
/// With `use_darr` the clients cooperate through a shared repository;
/// without it every client evaluates everything (the paper's baseline).
///
/// Timing uses the ambient [`WallClock`]; deterministic harnesses should
/// call [`run_cooperative_with_clock`] with a `ManualClock` instead.
///
/// # Panics
///
/// Panics if the graph has no valid pipelines or `n_clients == 0`.
pub fn run_cooperative(
    graph: &Teg,
    data: &Dataset,
    cv: CvStrategy,
    metric: Metric,
    n_clients: usize,
    use_darr: bool,
) -> CoopRunReport {
    run_cooperative_with_clock(graph, data, cv, metric, n_clients, use_darr, &WallClock::new())
}

/// [`run_cooperative`] with an explicit [`Clock`] for `wall_ms`: under a
/// `ManualClock` the report is byte-identical across same-seed runs, which
/// is what lets chaos replays and CI assertions compare whole reports.
///
/// # Panics
///
/// Panics if the graph has no valid pipelines or `n_clients == 0`.
pub fn run_cooperative_with_clock(
    graph: &Teg,
    data: &Dataset,
    cv: CvStrategy,
    metric: Metric,
    n_clients: usize,
    use_darr: bool,
    clock: &dyn Clock,
) -> CoopRunReport {
    assert!(n_clients > 0, "need at least one client");
    // lint:allow(panic_safety) documented panic contract: an invalid graph is a caller bug
    let pipelines = graph.enumerate_pipelines().expect("graph must yield valid pipelines");
    assert!(!pipelines.is_empty(), "graph has no pipelines");
    let n_pipelines = pipelines.len();
    let darr = Darr::new();
    let evaluations = AtomicUsize::new(0);
    let reused = AtomicUsize::new(0);
    let evaluator = Evaluator::new(cv.clone(), metric);
    let best = parking_lot::Mutex::new(metric.worst());

    let start_ms = clock.now_ms();
    std::thread::scope(|scope| {
        for c in 0..n_clients {
            let pipelines = &pipelines;
            let darr = &darr;
            let evaluations = &evaluations;
            let reused = &reused;
            let evaluator = &evaluator;
            let cv = &cv;
            let best = &best;
            scope.spawn(move || {
                let client_name = format!("client-{c}");
                let coop = CooperativeClient::new(darr, client_name.clone(), 60_000);
                // rotate the work order so claims spread across clients
                let offset = c * n_pipelines / n_clients;
                let mut deferred: Vec<usize> = Vec::new();
                let record_best = |score: f64| {
                    let mut b = best.lock();
                    if metric.is_better(score, *b) {
                        *b = score;
                    }
                };
                for i in 0..n_pipelines {
                    let idx = (i + offset) % n_pipelines;
                    let pipeline = &pipelines[idx];
                    if !use_darr {
                        if let Ok(scores) = evaluator.evaluate_pipeline(pipeline, data) {
                            evaluations.fetch_add(1, Ordering::SeqCst);
                            record_best(scores.iter().sum::<f64>() / scores.len() as f64);
                        }
                        continue;
                    }
                    let key = computation_key("shared", 1, pipeline.spec().key(), cv, metric);
                    match coop.process(&key, || {
                        evaluations.fetch_add(1, Ordering::SeqCst);
                        let scores = evaluator
                            .evaluate_pipeline(pipeline, data)
                            .map_err(|e| e.to_string())?;
                        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
                        Ok((mean, scores, format!("{client_name} via {}", cv)))
                    }) {
                        CoopOutcome::Computed(r) => record_best(r.score),
                        CoopOutcome::Reused(r) => {
                            reused.fetch_add(1, Ordering::SeqCst);
                            record_best(r.score);
                        }
                        CoopOutcome::SkippedHeld(_) => deferred.push(idx),
                        CoopOutcome::Failed(_) => {}
                    }
                }
                // wait for claims held elsewhere to resolve
                for idx in deferred {
                    let pipeline = &pipelines[idx];
                    let key = computation_key("shared", 1, pipeline.spec().key(), cv, metric);
                    let mut spins = 0usize;
                    loop {
                        if let Some(r) = darr.lookup(&key) {
                            reused.fetch_add(1, Ordering::SeqCst);
                            record_best(r.score);
                            break;
                        }
                        spins += 1;
                        if spins > 200_000 {
                            // the holder died: take the claim ourselves
                            darr.advance_clock(100_000);
                            if darr.try_claim(&key, &client_name, 60_000).is_claimed() {
                                evaluations.fetch_add(1, Ordering::SeqCst);
                                if let Ok(scores) = evaluator.evaluate_pipeline(pipeline, data) {
                                    let mean = scores.iter().sum::<f64>() / scores.len() as f64;
                                    darr.complete(&key, &client_name, mean, scores, "takeover");
                                    record_best(mean);
                                }
                            }
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    let wall_ms = clock.now_ms() - start_ms;
    let total_evaluations = evaluations.load(Ordering::SeqCst);
    let best_score = *best.lock();
    CoopRunReport {
        n_clients,
        n_pipelines,
        total_evaluations,
        redundant_evaluations: total_evaluations.saturating_sub(n_pipelines),
        reused_results: reused.load(Ordering::SeqCst),
        wall_ms,
        best_score,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_core::TegBuilder;
    use coda_data::{synth, NoOp};
    use coda_ml::{KnnRegressor, LinearRegression, RidgeRegression, StandardScaler};

    fn graph() -> Teg {
        TegBuilder::new()
            .add_feature_scalers(vec![Box::new(StandardScaler::new()), Box::new(NoOp::new())])
            .add_models(vec![
                Box::new(LinearRegression::new()),
                Box::new(RidgeRegression::new(1.0)),
                Box::new(KnnRegressor::new(5)),
            ])
            .create_graph()
            .unwrap()
    }

    #[test]
    fn without_darr_every_client_computes_everything() {
        let ds = synth::linear_regression(80, 3, 0.1, 201);
        let report = run_cooperative(&graph(), &ds, CvStrategy::kfold(3), Metric::Rmse, 3, false);
        assert_eq!(report.n_pipelines, 6);
        assert_eq!(report.total_evaluations, 18);
        assert_eq!(report.redundant_evaluations, 12);
        assert_eq!(report.reused_results, 0);
    }

    #[test]
    fn with_darr_work_is_partitioned() {
        let ds = synth::linear_regression(80, 3, 0.1, 202);
        let report = run_cooperative(&graph(), &ds, CvStrategy::kfold(3), Metric::Rmse, 3, true);
        assert_eq!(report.n_pipelines, 6);
        assert_eq!(report.total_evaluations, 6, "cooperation must eliminate redundant evaluations");
        assert_eq!(report.redundant_evaluations, 0);
        // every client still sees all six results: 3 clients x 6 = 18 views,
        // 6 computed + 12 reused
        assert_eq!(report.reused_results, 12);
        assert!(report.best_score.is_finite());
    }

    #[test]
    fn single_client_darr_matches_plain() {
        let ds = synth::linear_regression(60, 2, 0.1, 203);
        let with = run_cooperative(&graph(), &ds, CvStrategy::kfold(3), Metric::Rmse, 1, true);
        let without = run_cooperative(&graph(), &ds, CvStrategy::kfold(3), Metric::Rmse, 1, false);
        assert_eq!(with.total_evaluations, without.total_evaluations);
        assert!((with.best_score - without.best_score).abs() < 1e-12);
    }

    #[test]
    fn manual_clock_makes_reports_byte_identical() {
        use coda_obs::ManualClock;
        let ds = synth::linear_regression(60, 2, 0.1, 205);
        let run = || {
            let clock = ManualClock::new();
            clock.set_ms(1_000.0);
            run_cooperative_with_clock(
                &graph(),
                &ds,
                CvStrategy::kfold(3),
                Metric::Rmse,
                2,
                true,
                &clock,
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.wall_ms, 0.0, "manual clock never advances on its own");
        assert_eq!(a, b, "same seed + manual clock must replay byte-identically");
    }

    #[test]
    fn best_score_is_linear_model_on_linear_data() {
        let ds = synth::linear_regression(100, 3, 0.05, 204);
        let report = run_cooperative(&graph(), &ds, CvStrategy::kfold(4), Metric::Rmse, 2, true);
        assert!(report.best_score < 0.1, "best rmse {}", report.best_score);
    }
}
