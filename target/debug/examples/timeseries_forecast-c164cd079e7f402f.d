/root/repo/target/debug/examples/timeseries_forecast-c164cd079e7f402f.d: examples/timeseries_forecast.rs

/root/repo/target/debug/examples/timeseries_forecast-c164cd079e7f402f: examples/timeseries_forecast.rs

examples/timeseries_forecast.rs:
