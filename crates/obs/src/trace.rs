//! A lightweight span/event tracer.
//!
//! Spans (`tracer.span("eval.fold", &[("fold", "2")])`) record a start
//! event immediately and an end event (with duration) when the guard
//! drops; point events record once. Timestamps come from the pluggable
//! [`Clock`], so a single-threaded driver over a [`ManualClock`] produces
//! byte-identical logs across same-seed runs — the determinism contract
//! the chaos regression test asserts (DESIGN.md §9).
//!
//! [`ManualClock`]: crate::clock::ManualClock

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::Clock;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    SpanStart,
    /// A span closed (fields carry `dur_ms`).
    SpanEnd,
    /// A point event.
    Event,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::SpanStart => write!(f, "span_start"),
            EventKind::SpanEnd => write!(f, "span_end"),
            EventKind::Event => write!(f, "event"),
        }
    }
}

/// One recorded trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span/event name (dot-separated taxonomy, e.g. `eval.fold`).
    pub name: String,
    /// Start, end, or point event.
    pub kind: EventKind,
    /// Clock reading when recorded, in milliseconds.
    pub at_ms: f64,
    /// Key-value annotations.
    pub fields: Vec<(String, String)>,
}

impl TraceEvent {
    fn render(&self) -> String {
        let mut line = format!("{:.3} {} {}", self.at_ms, self.kind, self.name);
        for (k, v) in &self.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        line
    }
}

/// Records spans and events against a pluggable [`Clock`].
pub struct Tracer {
    clock: Arc<dyn Clock>,
    events: Mutex<Vec<TraceEvent>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tracer({} events, clock {:?})", self.events.lock().len(), self.clock)
    }
}

fn own_fields(fields: &[(&str, &str)]) -> Vec<(String, String)> {
    fields.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
}

impl Tracer {
    /// Creates a tracer reading time from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Tracer { clock, events: Mutex::new(Vec::new()) }
    }

    /// The tracer's clock reading, in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.clock.now_ms()
    }

    /// Opens a span: records the start now, and the end (with `dur_ms`)
    /// when the returned guard drops.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, name: &str, fields: &[(&str, &str)]) -> SpanGuard<'_> {
        let start = self.now_ms();
        self.push(TraceEvent {
            name: name.to_string(),
            kind: EventKind::SpanStart,
            at_ms: start,
            fields: own_fields(fields),
        });
        SpanGuard { tracer: self, name: name.to_string(), start }
    }

    /// Records a point event stamped with the clock's current reading.
    pub fn event(&self, name: &str, fields: &[(&str, &str)]) {
        self.event_at(self.now_ms(), name, fields);
    }

    /// Records a point event at an explicit timestamp — used by drivers
    /// that carry their own logical clock (e.g. the chaos driver).
    pub fn event_at(&self, at_ms: f64, name: &str, fields: &[(&str, &str)]) {
        self.push(TraceEvent {
            name: name.to_string(),
            kind: EventKind::Event,
            at_ms,
            fields: own_fields(fields),
        });
    }

    fn push(&self, event: TraceEvent) {
        self.events.lock().push(event);
    }

    /// A copy of every recorded event, in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the full event log as text, one event per line — the byte
    /// surface the deterministic-trace regression test compares.
    pub fn render_log(&self) -> String {
        let events = self.events.lock();
        let mut out = String::with_capacity(events.len() * 48);
        for e in events.iter() {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }
}

/// Closes its span (recording `dur_ms`) on drop.
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    name: String,
    start: f64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end = self.tracer.now_ms();
        self.tracer.push(TraceEvent {
            name: std::mem::take(&mut self.name),
            kind: EventKind::SpanEnd,
            at_ms: end,
            fields: vec![("dur_ms".to_string(), format!("{:.3}", end - self.start))],
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual_tracer() -> (Arc<ManualClock>, Tracer) {
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::new(Arc::clone(&clock) as Arc<dyn Clock>);
        (clock, tracer)
    }

    #[test]
    fn span_records_start_and_end_with_duration() {
        let (clock, tracer) = manual_tracer();
        {
            let _span = tracer.span("eval.fold", &[("fold", "2")]);
            clock.advance_ms(7.0);
        }
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::SpanStart);
        assert_eq!(events[0].fields, vec![("fold".to_string(), "2".to_string())]);
        assert_eq!(events[1].kind, EventKind::SpanEnd);
        assert_eq!(events[1].at_ms, 7.0);
        assert_eq!(events[1].fields[0], ("dur_ms".to_string(), "7.000".to_string()));
    }

    #[test]
    fn manual_clock_makes_logs_replayable() {
        let run = || {
            let (clock, tracer) = manual_tracer();
            for i in 0..3 {
                tracer.event("tick", &[("i", &i.to_string())]);
                clock.advance_ms(10.0);
            }
            tracer.event_at(99.5, "done", &[]);
            tracer.render_log()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same driver sequence must produce byte-identical logs");
        assert!(a.contains("0.000 event tick i=0"));
        assert!(a.contains("20.000 event tick i=2"));
        assert!(a.contains("99.500 event done"));
    }

    #[test]
    fn tracer_len_and_emptiness() {
        let (_clock, tracer) = manual_tracer();
        assert!(tracer.is_empty());
        tracer.event("x", &[]);
        assert_eq!(tracer.len(), 1);
        assert!(!tracer.is_empty());
    }
}
