//! Lock-order analysis: extracts every `.lock()` / argless `.read()` /
//! `.write()` acquisition site, tracks which guards are still held when
//! later acquisitions, calls, `spawn`s and channel `send`s happen, resolves
//! nested acquisitions intra- and inter-procedurally (a bounded name-based
//! call graph with a may-acquire fixpoint), and reports:
//!
//! - **cycles** in the lock-acquisition graph (`A` held while taking `B` in
//!   one place, `B` held while taking `A` in another) — potential
//!   deadlocks;
//! - **re-acquisition** of a lock already held (parking_lot primitives are
//!   not reentrant);
//! - guards **held across `spawn`/`send`** — a classic way to ship a
//!   deadlock to another thread.
//!
//! Lock identity is heuristic: `self.field` receivers are keyed by
//! `ImplType.field` (shared across all methods of the type), free local
//! variables by `fn::var` (function-scoped). The analysis is a
//! token-level approximation — its findings feed the ratcheting baseline,
//! not a proof — but its false-negative direction is safe: it never
//! suppresses a real cycle that its extraction saw.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use crate::{Finding, Rule};

/// Callee names matching more than this many distinct workspace functions
/// are left unresolved: ubiquitous names (`new`, `clone`, `len`) would
/// otherwise smear may-acquire sets across the whole workspace.
const MAX_CALLEE_CANDIDATES: usize = 3;

/// One acquisition-ordering edge: `from` was held at `file:line` while
/// `to` was acquired (directly, or transitively through `via`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Lock already held.
    pub from: String,
    /// Lock acquired while `from` was held.
    pub to: String,
    /// Site of the nested acquisition / the call that leads to it.
    pub file: String,
    /// 1-based line of the site.
    pub line: u32,
    /// Call chain hop for interprocedural edges (empty when direct).
    pub via: String,
}

/// Everything extracted from one function body.
#[derive(Debug, Default)]
struct FnData {
    qual: String,
    file: String,
    /// Locks acquired anywhere in the body (seed of the may-acquire set).
    direct: BTreeSet<String>,
    /// Direct nested-acquisition edges.
    edges: Vec<Edge>,
    /// `(held locks, callee bare name, line)` for every call made while at
    /// least zero locks were held (all calls — the fixpoint needs them).
    calls: Vec<(Vec<String>, String, u32)>,
    findings: Vec<Finding>,
}

/// The whole-workspace result: ordering edges plus per-site findings.
#[derive(Debug, Default)]
pub struct LockReport {
    /// Deduplicated acquisition-ordering edges.
    pub edges: Vec<Edge>,
    /// Cycle / re-acquisition / held-across-spawn findings.
    pub findings: Vec<Finding>,
}

/// Runs the analysis over every file of the workspace at once (edges cross
/// file and crate boundaries).
pub fn check(files: &[SourceFile]) -> LockReport {
    let mut fns: Vec<FnData> = Vec::new();
    for sf in files {
        scan_items(sf, 0, sf.tokens.len(), None, &mut fns);
    }

    // name → candidate functions, for bounded call resolution
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        let bare = f.qual.rsplit("::").next().unwrap_or(&f.qual);
        by_name.entry(bare).or_default().push(i);
    }
    by_name.retain(|_, v| v.len() <= MAX_CALLEE_CANDIDATES);

    // may-acquire fixpoint over the call graph
    let mut may: Vec<BTreeSet<String>> = fns.iter().map(|f| f.direct.clone()).collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            for (_, callee, _) in &fns[i].calls {
                let Some(cands) = by_name.get(callee.as_str()) else { continue };
                for &c in cands {
                    if c == i {
                        continue;
                    }
                    let add: Vec<String> =
                        may[c].iter().filter(|l| !may[i].contains(*l)).cloned().collect();
                    if !add.is_empty() {
                        changed = true;
                        may[i].extend(add);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // interprocedural edges: a call made under a held lock orders that lock
    // before everything the callee may acquire
    let mut edges: BTreeSet<Edge> = BTreeSet::new();
    let mut findings: Vec<Finding> = Vec::new();
    for f in &fns {
        edges.extend(f.edges.iter().cloned());
        findings.extend(f.findings.iter().cloned());
        for (held, callee, line) in &f.calls {
            if held.is_empty() {
                continue;
            }
            let Some(cands) = by_name.get(callee.as_str()) else { continue };
            let mut reach: BTreeSet<&String> = BTreeSet::new();
            for &c in cands {
                if fns[c].qual != f.qual {
                    reach.extend(may[c].iter());
                }
            }
            for a in held {
                for &b in &reach {
                    edges.insert(Edge {
                        from: a.clone(),
                        to: b.clone(),
                        file: f.file.clone(),
                        line: *line,
                        via: callee.clone(),
                    });
                }
            }
        }
    }

    findings.extend(cycle_findings(&edges));
    findings.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    LockReport { edges: edges.into_iter().collect(), findings }
}

/// Strongly-connected components of the edge graph; every SCC with two or
/// more locks (or a lock with a self-edge) is a potential deadlock.
fn cycle_findings(edges: &BTreeSet<Edge>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
        adj.entry(&e.to).or_default();
    }
    let sccs = tarjan(&adj);
    let mut out = Vec::new();
    for scc in sccs {
        let self_edge = scc.len() == 1 && adj[scc[0]].contains(scc[0]);
        if scc.len() < 2 && !self_edge {
            continue;
        }
        let members: BTreeSet<&str> = scc.iter().copied().collect();
        let mut sites: Vec<&Edge> = edges
            .iter()
            .filter(|e| members.contains(e.from.as_str()) && members.contains(e.to.as_str()))
            .collect();
        sites.sort_by_key(|e| (&e.file, e.line));
        let site = sites[0];
        let shown: Vec<String> = sites
            .iter()
            .take(4)
            .map(|e| {
                if e.via.is_empty() {
                    format!("{} -> {} at {}:{}", e.from, e.to, e.file, e.line)
                } else {
                    format!("{} -> {} via {}() at {}:{}", e.from, e.to, e.via, e.file, e.line)
                }
            })
            .collect();
        let locks: Vec<&str> = members.iter().copied().collect();
        out.push(Finding {
            rule: Rule::LockOrder,
            file: site.file.clone(),
            line: site.line,
            message: format!(
                "potential deadlock: lock-order cycle over {{{}}} ({})",
                locks.join(", "),
                shown.join("; ")
            ),
        });
    }
    out
}

/// Iterative Tarjan SCC over the deterministic adjacency map.
fn tarjan<'a>(adj: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> Vec<Vec<&'a str>> {
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut state: BTreeMap<&str, NodeState> = BTreeMap::new();
    let mut stack: Vec<&str> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<&str>> = Vec::new();

    for &root in &nodes {
        if state.get(root).and_then(|s| s.index).is_some() {
            continue;
        }
        // explicit DFS stack: (node, next neighbor position)
        let mut work: Vec<(&str, usize)> = vec![(root, 0)];
        while let Some(&(v, ni)) = work.last() {
            if ni == 0 {
                let s = state.entry(v).or_default();
                if s.index.is_none() {
                    s.index = Some(next_index);
                    s.lowlink = next_index;
                    s.on_stack = true;
                    next_index += 1;
                    stack.push(v);
                }
            }
            let next = adj[v].iter().nth(ni).copied();
            if let Some(w) = next {
                if let Some(top) = work.last_mut() {
                    top.1 += 1;
                }
                let ws = state.entry(w).or_default().clone();
                if ws.index.is_none() {
                    work.push((w, 0));
                } else if ws.on_stack {
                    let wi = ws.index.unwrap_or(0);
                    let sv = state.entry(v).or_default();
                    sv.lowlink = sv.lowlink.min(wi);
                }
            } else {
                work.pop();
                let (vlow, vindex) = {
                    let s = &state[v];
                    (s.lowlink, s.index.unwrap_or(0))
                };
                if let Some(&(parent, _)) = work.last() {
                    let ps = state.entry(parent).or_default();
                    ps.lowlink = ps.lowlink.min(vlow);
                }
                if vlow == vindex {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        state.entry(w).or_default().on_stack = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs.sort();
    sccs
}

/// Keywords and control forms that look like `ident (` but are not calls.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "move"
            | "unsafe"
            | "as"
            | "in"
            | "else"
            | "let"
            | "fn"
            | "impl"
            | "struct"
            | "enum"
            | "ref"
            | "mut"
            | "pub"
            | "where"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
            | "Box"
            | "Vec"
            | "vec"
            | "assert"
            | "debug_assert"
    )
}

/// Recursive item scan: tracks `impl`/`mod` nesting so methods get
/// `Type::name` qualified names, and hands each `fn` body to the body
/// scanner. `[start, end)` are token indices.
fn scan_items(
    sf: &SourceFile,
    start: usize,
    end: usize,
    impl_ty: Option<&str>,
    out: &mut Vec<FnData>,
) {
    let toks = &sf.tokens;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_ident("impl") || t.is_ident("trait") {
            // self-type name: last depth-0 path ident before the body,
            // taking the `for <Type>` side when present
            let mut angle = 0i32;
            let mut name: Option<String> = None;
            let mut j = i + 1;
            while j < end {
                let tj = &toks[j];
                if tj.is_punct('<') {
                    angle += 1;
                } else if tj.is_punct('>') {
                    angle -= 1;
                } else if angle == 0 {
                    if tj.is_ident("for") {
                        name = None;
                    } else if tj.is_ident("where") || tj.is_punct('{') || tj.is_punct(';') {
                        break;
                    } else if tj.is_punct(':') {
                        if matches!(toks.get(j + 1), Some(c) if c.is_punct(':')) {
                            j += 1; // path separator `::`, keep collecting
                        } else {
                            break; // supertrait / bound list: name is fixed
                        }
                    } else if tj.kind == TokKind::Ident && !tj.is_ident("dyn") {
                        name = Some(tj.text.clone());
                    }
                }
                j += 1;
            }
            if j < end && toks[j].is_punct('{') {
                let body_end = matching_brace(toks, j, end);
                scan_items(sf, j + 1, body_end, name.as_deref().or(impl_ty), out);
                i = body_end + 1;
            } else {
                i = j + 1;
            }
        } else if t.is_ident("mod")
            && matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Ident)
            && matches!(toks.get(i + 2), Some(b) if b.is_punct('{'))
        {
            let body_end = matching_brace(toks, i + 2, end);
            scan_items(sf, i + 3, body_end, None, out);
            i = body_end + 1;
        } else if t.is_ident("fn") && matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Ident)
        {
            let name = toks[i + 1].text.clone();
            // body = first `{` outside parens/brackets; `;` first ⇒ bodiless
            let mut j = i + 2;
            let (mut paren, mut bracket) = (0i32, 0i32);
            let mut body: Option<usize> = None;
            while j < end {
                let tj = &toks[j];
                if tj.is_punct('(') {
                    paren += 1;
                } else if tj.is_punct(')') {
                    paren -= 1;
                } else if tj.is_punct('[') {
                    bracket += 1;
                } else if tj.is_punct(']') {
                    bracket -= 1;
                } else if paren == 0 && bracket == 0 {
                    if tj.is_punct('{') {
                        body = Some(j);
                        break;
                    }
                    if tj.is_punct(';') {
                        break;
                    }
                }
                j += 1;
            }
            match body {
                Some(b) => {
                    let body_end = matching_brace(toks, b, end);
                    if !sf.in_test(i) {
                        let qual = match impl_ty {
                            Some(ty) => format!("{ty}::{name}"),
                            None => name.clone(),
                        };
                        out.push(scan_fn_body(sf, &qual, b + 1, body_end));
                    }
                    i = body_end + 1;
                }
                None => i = j + 1,
            }
        } else {
            i += 1;
        }
    }
}

/// Index of the `}` matching the `{` at `open` (or `end` when unmatched).
fn matching_brace(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(end).skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    end
}

/// One guard currently held during the body scan.
struct Held {
    lock: String,
    /// Brace depth the guard was created at.
    depth: i32,
    /// Statement temporary: released at the next `;`/`{`/`}` at `depth`.
    at_stmt_end: bool,
    /// Let-bound guard variable, for `drop(var)` release.
    var: Option<String>,
}

/// Scans one function body, producing its acquisitions, ordering edges,
/// calls and spawn/send findings.
fn scan_fn_body(sf: &SourceFile, qual: &str, start: usize, end: usize) -> FnData {
    let toks = &sf.tokens;
    let mut data = FnData { qual: qual.to_string(), file: sf.rel.clone(), ..FnData::default() };
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;

    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_punct('{') {
            held.retain(|h| !(h.at_stmt_end && h.depth == depth));
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            // let-bound guards die with their block; temporaries at the new
            // depth end with the statement the block belonged to
            held.retain(|h| h.depth <= depth && !(h.at_stmt_end && h.depth == depth));
        } else if t.is_punct(';') {
            held.retain(|h| !(h.at_stmt_end && h.depth == depth));
        } else if t.is_ident("drop")
            && matches!(toks.get(i + 1), Some(p) if p.is_punct('('))
            && matches!(toks.get(i + 2), Some(v) if v.kind == TokKind::Ident)
            && matches!(toks.get(i + 3), Some(p) if p.is_punct(')'))
        {
            let var = &toks[i + 2].text;
            held.retain(|h| h.var.as_deref() != Some(var.as_str()));
            i += 4;
            continue;
        } else if let Some(acq) = acquisition_at(sf, qual, i) {
            for h in &held {
                if h.lock == acq.lock {
                    data.findings.push(Finding {
                        rule: Rule::LockOrder,
                        file: sf.rel.clone(),
                        line: t.line,
                        message: format!(
                            "lock `{}` re-acquired while already held (non-reentrant)",
                            acq.lock
                        ),
                    });
                } else {
                    data.edges.push(Edge {
                        from: h.lock.clone(),
                        to: acq.lock.clone(),
                        file: sf.rel.clone(),
                        line: t.line,
                        via: String::new(),
                    });
                }
            }
            data.direct.insert(acq.lock.clone());
            held.push(Held { lock: acq.lock, depth, at_stmt_end: !acq.let_bound, var: acq.var });
            i += 3; // past `name ( )`
            continue;
        } else if t.kind == TokKind::Ident
            && matches!(toks.get(i + 1), Some(p) if p.is_punct('('))
            && !is_keyword(&t.text)
            && !matches!(toks.get(i.wrapping_sub(1)), Some(k) if k.is_ident("fn"))
        {
            let is_spawn = t.text == "spawn";
            let is_send = (t.text == "send" || t.text == "try_send")
                && matches!(toks.get(i.wrapping_sub(1)), Some(d) if d.is_punct('.'));
            if (is_spawn || is_send) && !held.is_empty() {
                let locks: Vec<&str> = held.iter().map(|h| h.lock.as_str()).collect();
                data.findings.push(Finding {
                    rule: Rule::LockAcrossSpawn,
                    file: sf.rel.clone(),
                    line: t.line,
                    message: format!(
                        "guard(s) {{{}}} held across `{}` — release before handing \
                         control to another thread/channel",
                        locks.join(", "),
                        t.text
                    ),
                });
            } else if !is_spawn && !is_send {
                let held_now: Vec<String> = held.iter().map(|h| h.lock.clone()).collect();
                data.calls.push((held_now, t.text.clone(), t.line));
            }
        }
        i += 1;
    }
    data
}

struct Acq {
    lock: String,
    let_bound: bool,
    var: Option<String>,
}

/// Detects `<receiver>.lock()` / `.read()` / `.write()` (argless) at token
/// `i` and resolves the receiver chain into a lock identity.
fn acquisition_at(sf: &SourceFile, qual: &str, i: usize) -> Option<Acq> {
    let toks = &sf.tokens;
    let t = &toks[i];
    if !(t.is_ident("lock") || t.is_ident("read") || t.is_ident("write")) {
        return None;
    }
    if !matches!(toks.get(i.wrapping_sub(1)), Some(d) if d.is_punct('.')) {
        return None;
    }
    if !(matches!(toks.get(i + 1), Some(o) if o.is_punct('('))
        && matches!(toks.get(i + 2), Some(c) if c.is_punct(')')))
    {
        return None;
    }
    // walk the receiver chain backwards: idents joined by `.` / `::`
    let mut segs: Vec<&str> = Vec::new();
    let mut j = i - 1; // the `.`
    loop {
        if j == 0 {
            break;
        }
        let prev = &toks[j - 1];
        if prev.kind == TokKind::Ident {
            segs.push(&prev.text);
            if j == 1 {
                break;
            }
            let sep = &toks[j - 2];
            if sep.is_punct('.') {
                j -= 2;
            } else if sep.is_punct(':')
                && matches!(toks.get(j.wrapping_sub(3)), Some(c) if c.is_punct(':'))
            {
                j -= 3;
            } else {
                break;
            }
        } else {
            // `)` / `]` etc: computed receiver — not a nameable lock
            return None;
        }
    }
    if segs.is_empty() {
        return None;
    }
    segs.reverse();
    let lock = if segs[0] == "self" {
        let ty = qual.split("::").next().unwrap_or(qual);
        if segs.len() == 1 {
            ty.to_string()
        } else {
            format!("{ty}.{}", segs[1..].join("."))
        }
    } else if segs[0].starts_with(char::is_uppercase) {
        segs.join(".")
    } else {
        format!("{qual}::{}", segs.join("."))
    };

    // let-binding: `let [mut] var [: Ty] = <chain>.lock()`
    let chain_start = j - 1; // index of first receiver token
    let mut let_bound = false;
    let mut var = None;
    if chain_start >= 1 && toks[chain_start - 1].is_punct('=') {
        let mut k = chain_start - 1;
        let mut guard_var: Option<String> = None;
        while k > 0 {
            k -= 1;
            let tk = &toks[k];
            if tk.is_ident("let") {
                let_bound = true;
                var = guard_var;
                break;
            }
            if tk.is_punct(';') || tk.is_punct('{') || tk.is_punct('}') {
                break;
            }
            if tk.kind == TokKind::Ident && !tk.is_ident("mut") {
                // keep overwriting while walking left: the last value before
                // `let` is the binding itself, past any type ascription
                guard_var = Some(tk.text.clone());
            }
        }
        if !let_bound {
            // plain assignment to an existing binding: still an extended
            // hold, conservatively scoped to the current block
            let_bound = true;
        }
    }
    Some(Acq { lock, let_bound, var })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::CrateKind;

    fn report(src: &str) -> LockReport {
        check(&[SourceFile::parse("t.rs", CrateKind::Library, src)])
    }

    #[test]
    fn nested_acquisition_makes_an_edge() {
        let r = report(
            "impl S { fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); } }",
        );
        assert!(r.edges.iter().any(|e| e.from == "S.alpha" && e.to == "S.beta"));
        assert!(r.findings.is_empty(), "consistent order is clean: {:?}", r.findings);
    }

    #[test]
    fn statement_temporaries_do_not_hold() {
        let r = report(
            "impl S { fn f(&self) { self.alpha.lock().push(1); self.beta.lock().push(2); } }",
        );
        assert!(r.edges.is_empty(), "temporaries release at statement end: {:?}", r.edges);
    }

    #[test]
    fn ab_ba_is_a_cycle() {
        let r = report(
            "impl S {\n fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n \
             fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }\n}",
        );
        let cycles: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.rule == Rule::LockOrder && f.message.contains("cycle"))
            .collect();
        assert_eq!(cycles.len(), 1, "{:?}", r.findings);
        assert!(cycles[0].message.contains("S.alpha") && cycles[0].message.contains("S.beta"));
    }

    #[test]
    fn interprocedural_cycle_is_found() {
        let r = report(
            "impl S {\n \
             fn fwd(&self) { let a = self.alpha.lock(); self.take_beta(); }\n \
             fn take_beta(&self) { let b = self.beta.lock(); }\n \
             fn back(&self) { let b = self.beta.lock(); self.take_alpha(); }\n \
             fn take_alpha(&self) { let a = self.alpha.lock(); }\n}",
        );
        assert!(
            r.findings.iter().any(|f| f.message.contains("cycle")),
            "call-mediated A->B / B->A must cycle: {:?}",
            r.findings
        );
        assert!(r.edges.iter().any(|e| e.via == "take_beta"));
    }

    #[test]
    fn reacquire_and_drop_release() {
        let r = report(
            "impl S { fn f(&self) { let a = self.alpha.lock(); let b = self.alpha.lock(); } }",
        );
        assert!(r.findings.iter().any(|f| f.message.contains("re-acquired")));
        let ok = report(
            "impl S { fn f(&self) { let a = self.alpha.lock(); drop(a); \
             let b = self.alpha.lock(); } }",
        );
        assert!(ok.findings.is_empty(), "drop releases: {:?}", ok.findings);
    }

    #[test]
    fn guard_across_spawn_is_flagged() {
        let r = report("fn f() { let g = state.lock(); std::thread::spawn(move || work()); }");
        assert!(r.findings.iter().any(|f| f.rule == Rule::LockAcrossSpawn), "{:?}", r.findings);
        let clean = report("fn f() { state.lock().touch(); std::thread::spawn(move || work()); }");
        assert!(clean.findings.is_empty(), "{:?}", clean.findings);
    }

    #[test]
    fn locks_inside_spawned_closures_are_not_held_at_spawn() {
        let r = report("fn f() { scope.spawn(move || { let g = state.lock(); g.touch(); }); }");
        assert!(r.findings.iter().all(|f| f.rule != Rule::LockAcrossSpawn), "{:?}", r.findings);
    }

    #[test]
    fn block_scoped_guard_releases_at_block_end() {
        let r = report(
            "impl S { fn f(&self) { { let a = self.alpha.lock(); } \
             let b = self.beta.lock(); } }",
        );
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }
}
