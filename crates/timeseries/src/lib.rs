//! Time-series AI functions and the Time Series Prediction pipeline
//! (paper §IV-C/D, Figs. 6–12, Table II).
//!
//! A multivariate series (`n` timestamps × `v` variables, Fig. 6) is carried
//! as a [`coda_data::Dataset`] whose features are the series matrix and whose
//! target is the (unscaled) series of the variable to forecast — see
//! [`series::SeriesData`]. Data-scaling transformers act on the features;
//! the data-preprocessing transformers of Figs. 7–10 turn the series into a
//! supervised window dataset; estimators (temporal DNNs, IID DNNs and
//! statistical models) fit that. [`pipeline::TimeSeriesPipelineBuilder`]
//! wires the selective Transformer-Estimator Graph of Fig. 11, and
//! [`pipeline::TsEvaluator`] scores each path with the sliding-split
//! cross-validation of Fig. 12.
//!
//! # Examples
//!
//! ```
//! use coda_data::synth;
//! use coda_timeseries::series::SeriesData;
//! use coda_timeseries::window::{CascadedWindows, WindowConfig};
//! use coda_data::Transformer;
//!
//! let series = SeriesData::univariate(synth::trend_seasonal_series(100, 24.0, 0.1, 3));
//! let ds = series.to_dataset();
//! let mut win = CascadedWindows::new(WindowConfig::new(8, 1));
//! let supervised = win.fit_transform(&ds)?;
//! assert_eq!(supervised.n_samples(), 100 - 8); // L - p windows (Fig. 7)
//! assert_eq!(supervised.n_features(), 8);      // p * v columns
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod deep;
pub mod forecast;
pub mod models;
pub mod pipeline;
pub mod series;
pub mod window;

pub use deep::{
    CnnForecaster, DnnForecaster, LstmForecaster, SeriesNetForecaster, WaveNetForecaster,
};
pub use models::{ArForecaster, SeasonalNaive, ZeroModel};
pub use pipeline::{TimeSeriesPipelineBuilder, TsEvaluator, TsReport};
pub use series::SeriesData;
pub use window::{CascadedWindows, FlatWindowing, TsAsIid, TsAsIs, WindowConfig};
