//! CART decision trees for regression and classification (the
//! "Decision Trees" of Fig. 3 and "decision trees" of §III).

use coda_data::{BoxedEstimator, ComponentError, Dataset, Estimator, ParamValue, TaskKind};
use coda_linalg::Matrix;

/// A fitted tree node.
#[derive(Debug, Clone)]
enum Node {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// Growth hyper-parameters shared by the regressor and classifier.
#[derive(Debug, Clone, Copy)]
struct TreeConfig {
    max_depth: usize,
    min_samples_split: usize,
    min_samples_leaf: usize,
    /// Consider only this many randomly-chosen features per split
    /// (`None` = all). Used by random forests.
    max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 10, min_samples_split: 2, min_samples_leaf: 1, max_features: None }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Criterion {
    Variance,
    Gini,
}

/// The fitted tree plus accumulated impurity-decrease importances.
#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
    importances: Vec<f64>,
}

/// A deterministic splittable PRNG for feature subsampling (xorshift64*).
#[derive(Debug, Clone)]
struct SplitRng(u64);

impl SplitRng {
    fn new(seed: u64) -> Self {
        SplitRng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn gen_range(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

fn impurity(y: &[f64], indices: &[usize], criterion: Criterion) -> f64 {
    match criterion {
        Criterion::Variance => {
            if indices.len() < 2 {
                return 0.0;
            }
            let m: f64 = indices.iter().map(|&i| y[i]).sum::<f64>() / indices.len() as f64;
            indices.iter().map(|&i| (y[i] - m) * (y[i] - m)).sum::<f64>() / indices.len() as f64
        }
        Criterion::Gini => {
            let mut counts = std::collections::BTreeMap::new();
            for &i in indices {
                *counts.entry(y[i].to_bits()).or_insert(0usize) += 1;
            }
            let n = indices.len() as f64;
            1.0 - counts.values().map(|&c| (c as f64 / n).powi(2)).sum::<f64>()
        }
    }
}

fn leaf_value(y: &[f64], indices: &[usize], criterion: Criterion) -> f64 {
    match criterion {
        Criterion::Variance => {
            indices.iter().map(|&i| y[i]).sum::<f64>() / indices.len().max(1) as f64
        }
        Criterion::Gini => {
            // majority class, ties to the smallest label
            let mut counts = std::collections::BTreeMap::new();
            for &i in indices {
                *counts.entry(y[i].to_bits()).or_insert(0usize) += 1;
            }
            counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                .map(|(&bits, _)| f64::from_bits(bits))
                .unwrap_or(0.0)
        }
    }
}

#[allow(clippy::too_many_arguments)] // private recursive helper; a params struct would obscure the recursion
fn grow(
    x: &Matrix,
    y: &[f64],
    indices: Vec<usize>,
    depth: usize,
    cfg: &TreeConfig,
    criterion: Criterion,
    nodes: &mut Vec<Node>,
    importances: &mut [f64],
    rng: &mut SplitRng,
) -> usize {
    let node_impurity = impurity(y, &indices, criterion);
    let make_leaf = |nodes: &mut Vec<Node>| {
        let id = nodes.len();
        nodes.push(Node::Leaf { value: leaf_value(y, &indices, criterion) });
        id
    };
    if depth >= cfg.max_depth || indices.len() < cfg.min_samples_split || node_impurity <= 1e-12 {
        return make_leaf(nodes);
    }
    // choose candidate features
    let d = x.cols();
    let features: Vec<usize> = match cfg.max_features {
        Some(k) if k < d => {
            // Fisher-Yates over a scratch index list
            let mut all: Vec<usize> = (0..d).collect();
            for i in 0..k {
                let j = i + rng.gen_range(d - i);
                all.swap(i, j);
            }
            all.truncate(k);
            all
        }
        _ => (0..d).collect(),
    };
    // find best split: scan sorted feature values
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted impurity)
    for &f in &features {
        let mut vals: Vec<(f64, usize)> = indices.iter().map(|&i| (x[(i, f)], i)).collect();
        vals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        // candidate thresholds are midpoints between distinct consecutive values
        for w in 1..vals.len() {
            if vals[w].0 == vals[w - 1].0 {
                continue;
            }
            let n_left = w;
            let n_right = vals.len() - w;
            if n_left < cfg.min_samples_leaf || n_right < cfg.min_samples_leaf {
                continue;
            }
            let left_idx: Vec<usize> = vals[..w].iter().map(|&(_, i)| i).collect();
            let right_idx: Vec<usize> = vals[w..].iter().map(|&(_, i)| i).collect();
            let wi = (n_left as f64 * impurity(y, &left_idx, criterion)
                + n_right as f64 * impurity(y, &right_idx, criterion))
                / vals.len() as f64;
            if best.as_ref().is_none_or(|&(_, _, b)| wi < b) {
                let threshold = (vals[w].0 + vals[w - 1].0) / 2.0;
                best = Some((f, threshold, wi));
            }
        }
    }
    let Some((feature, threshold, wi)) = best else {
        return make_leaf(nodes);
    };
    if node_impurity - wi <= 1e-12 {
        return make_leaf(nodes);
    }
    importances[feature] += (node_impurity - wi) * indices.len() as f64;
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        indices.iter().partition(|&&i| x[(i, feature)] <= threshold);
    let id = nodes.len();
    nodes.push(Node::Leaf { value: 0.0 }); // placeholder, patched below
    let left = grow(x, y, left_idx, depth + 1, cfg, criterion, nodes, importances, rng);
    let right = grow(x, y, right_idx, depth + 1, cfg, criterion, nodes, importances, rng);
    nodes[id] = Node::Split { feature, threshold, left, right };
    id
}

impl Tree {
    fn fit(
        x: &Matrix,
        y: &[f64],
        cfg: &TreeConfig,
        criterion: Criterion,
        seed: u64,
        sample_indices: Option<Vec<usize>>,
    ) -> Tree {
        let indices = sample_indices.unwrap_or_else(|| (0..x.rows()).collect());
        let mut nodes = Vec::new();
        let mut importances = vec![0.0; x.cols()];
        let mut rng = SplitRng::new(seed);
        grow(x, y, indices, 0, cfg, criterion, &mut nodes, &mut importances, &mut rng);
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            importances.iter_mut().for_each(|v| *v /= total);
        }
        Tree { nodes, importances }
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut cur = 0usize;
        loop {
            match self.nodes[cur] {
                Node::Leaf { value } => return value,
                Node::Split { feature, threshold, left, right } => {
                    cur = if row[feature] <= threshold { left } else { right };
                }
            }
        }
    }

    fn depth(&self) -> usize {
        fn rec(nodes: &[Node], id: usize) -> usize {
            match nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, left).max(rec(nodes, right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// Extracts every root->leaf path as a human-readable if-then rule —
    /// the paper's interpretability requirement (§II): "can it be
    /// described using simple rules?"
    fn rules(&self, feature_names: &[String]) -> Vec<String> {
        fn name(feature_names: &[String], f: usize) -> String {
            feature_names.get(f).cloned().unwrap_or_else(|| format!("x{f}"))
        }
        fn rec(
            nodes: &[Node],
            feature_names: &[String],
            id: usize,
            conditions: &mut Vec<String>,
            out: &mut Vec<String>,
        ) {
            match &nodes[id] {
                Node::Leaf { value } => {
                    let cond = if conditions.is_empty() {
                        "always".to_string()
                    } else {
                        conditions.join(" and ")
                    };
                    out.push(format!("if {cond} then predict {value:.4}"));
                }
                Node::Split { feature, threshold, left, right } => {
                    conditions.push(format!("{} <= {threshold:.4}", name(feature_names, *feature)));
                    rec(nodes, feature_names, *left, conditions, out);
                    conditions.pop();
                    conditions.push(format!("{} > {threshold:.4}", name(feature_names, *feature)));
                    rec(nodes, feature_names, *right, conditions, out);
                    conditions.pop();
                }
            }
        }
        let mut out = Vec::new();
        if !self.nodes.is_empty() {
            rec(&self.nodes, feature_names, 0, &mut Vec::new(), &mut out);
        }
        out
    }
}

macro_rules! tree_estimator {
    ($name:ident, $display:expr, $criterion:expr, $task:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            cfg: TreeConfig,
            tree: Option<Tree>,
            seed: u64,
        }

        impl $name {
            /// Creates a tree with default growth limits (depth 10).
            pub fn new() -> Self {
                $name { cfg: TreeConfig::default(), tree: None, seed: 0 }
            }

            /// Sets the maximum depth.
            pub fn with_max_depth(mut self, depth: usize) -> Self {
                self.cfg.max_depth = depth;
                self
            }

            /// Sets the minimum samples required to split a node.
            pub fn with_min_samples_split(mut self, n: usize) -> Self {
                self.cfg.min_samples_split = n.max(2);
                self
            }

            /// Sets the minimum samples per leaf.
            pub fn with_min_samples_leaf(mut self, n: usize) -> Self {
                self.cfg.min_samples_leaf = n.max(1);
                self
            }

            pub(crate) fn with_max_features(mut self, k: usize) -> Self {
                self.cfg.max_features = Some(k.max(1));
                self
            }

            pub(crate) fn with_seed(mut self, seed: u64) -> Self {
                self.seed = seed;
                self
            }

            pub(crate) fn fit_on_indices(
                &mut self,
                data: &Dataset,
                indices: Vec<usize>,
            ) -> Result<(), ComponentError> {
                let y = data.target_required()?;
                if data.n_samples() == 0 {
                    return Err(ComponentError::InvalidInput("empty dataset".to_string()));
                }
                self.tree = Some(Tree::fit(
                    data.features(),
                    y,
                    &self.cfg,
                    $criterion,
                    self.seed,
                    Some(indices),
                ));
                Ok(())
            }

            /// The fitted tree depth (0 for a single leaf).
            pub fn fitted_depth(&self) -> Option<usize> {
                self.tree.as_ref().map(|t| t.depth())
            }

            /// The fitted tree as human-readable if-then rules (§II:
            /// "can it be described using simple rules?"), one per leaf.
            /// Returns `None` before fitting.
            pub fn rules(&self, feature_names: &[String]) -> Option<Vec<String>> {
                self.tree.as_ref().map(|t| t.rules(feature_names))
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }

        impl Estimator for $name {
            fn name(&self) -> &str {
                $display
            }

            fn task(&self) -> TaskKind {
                $task
            }

            fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
                let as_pos = |v: &ParamValue| v.as_usize().filter(|&x| x > 0);
                match param {
                    "max_depth" => {
                        self.cfg.max_depth =
                            as_pos(&value).ok_or_else(|| ComponentError::InvalidParam {
                                component: $display.to_string(),
                                param: param.to_string(),
                                reason: "must be a positive integer".to_string(),
                            })?;
                        Ok(())
                    }
                    "min_samples_split" => {
                        self.cfg.min_samples_split = as_pos(&value)
                            .filter(|&x| x >= 2)
                            .ok_or_else(|| ComponentError::InvalidParam {
                                component: $display.to_string(),
                                param: param.to_string(),
                                reason: "must be an integer >= 2".to_string(),
                            })?;
                        Ok(())
                    }
                    "min_samples_leaf" => {
                        self.cfg.min_samples_leaf =
                            as_pos(&value).ok_or_else(|| ComponentError::InvalidParam {
                                component: $display.to_string(),
                                param: param.to_string(),
                                reason: "must be a positive integer".to_string(),
                            })?;
                        Ok(())
                    }
                    _ => Err(ComponentError::UnknownParam {
                        component: self.name().to_string(),
                        param: param.to_string(),
                    }),
                }
            }

            fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
                let all: Vec<usize> = (0..data.n_samples()).collect();
                self.fit_on_indices(data, all)
            }

            fn predict(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError> {
                let tree = self
                    .tree
                    .as_ref()
                    .ok_or_else(|| ComponentError::NotFitted(self.name().to_string()))?;
                Ok(data.features().iter_rows().map(|r| tree.predict_row(r)).collect())
            }

            fn feature_importances(&self) -> Option<Vec<f64>> {
                self.tree.as_ref().map(|t| t.importances.clone())
            }

            fn clone_box(&self) -> BoxedEstimator {
                let mut fresh = $name::new();
                fresh.cfg = self.cfg;
                fresh.seed = self.seed;
                Box::new(fresh)
            }
        }
    };
}

tree_estimator!(
    DecisionTreeRegressor,
    "decision_tree_regressor",
    Criterion::Variance,
    TaskKind::Regression,
    "CART regression tree minimizing within-node variance.\n\n\
     # Examples\n\n\
     ```\n\
     use coda_data::{synth, Estimator};\n\
     use coda_ml::DecisionTreeRegressor;\n\
     let ds = synth::friedman1(200, 5, 0.1, 3);\n\
     let mut t = DecisionTreeRegressor::new();\n\
     t.fit(&ds)?;\n\
     assert_eq!(t.predict(&ds)?.len(), 200);\n\
     # Ok::<(), Box<dyn std::error::Error>>(())\n\
     ```"
);

tree_estimator!(
    DecisionTreeClassifier,
    "decision_tree_classifier",
    Criterion::Gini,
    TaskKind::Classification,
    "CART classification tree minimizing Gini impurity."
);

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::{metrics, synth};

    #[test]
    fn regressor_fits_training_data_deeply() {
        let ds = synth::friedman1(150, 5, 0.0, 21);
        let mut t = DecisionTreeRegressor::new().with_max_depth(20);
        t.fit(&ds).unwrap();
        let pred = t.predict(&ds).unwrap();
        // noiseless + unlimited depth => near-perfect memorization
        assert!(metrics::r2(ds.target().unwrap(), &pred).unwrap() > 0.99);
    }

    #[test]
    fn regressor_generalizes_nonlinear() {
        let ds = synth::friedman1(600, 5, 0.5, 22);
        let (train, test) = ds.train_test_split(0.25, 3);
        let mut t = DecisionTreeRegressor::new().with_max_depth(8);
        t.fit(&train).unwrap();
        let pred = t.predict(&test).unwrap();
        assert!(metrics::r2(test.target().unwrap(), &pred).unwrap() > 0.6);
    }

    #[test]
    fn depth_limit_respected() {
        let ds = synth::friedman1(300, 5, 0.1, 23);
        let mut t = DecisionTreeRegressor::new().with_max_depth(3);
        t.fit(&ds).unwrap();
        assert!(t.fitted_depth().unwrap() <= 3);
    }

    #[test]
    fn min_samples_leaf_prevents_tiny_leaves() {
        let ds = synth::friedman1(100, 5, 0.1, 24);
        let mut deep = DecisionTreeRegressor::new().with_max_depth(20);
        let mut stumpy = DecisionTreeRegressor::new().with_max_depth(20).with_min_samples_leaf(25);
        deep.fit(&ds).unwrap();
        stumpy.fit(&ds).unwrap();
        assert!(stumpy.fitted_depth().unwrap() < deep.fitted_depth().unwrap());
    }

    #[test]
    fn classifier_separates_blobs() {
        let ds = synth::classification_blobs(300, 2, 3, 0.4, 25);
        let (train, test) = ds.train_test_split(0.3, 4);
        let mut t = DecisionTreeClassifier::new();
        t.fit(&train).unwrap();
        let pred = t.predict(&test).unwrap();
        assert!(metrics::accuracy(test.target().unwrap(), &pred).unwrap() > 0.9);
        // predictions are valid class labels
        for p in pred {
            assert!([0.0, 1.0, 2.0].contains(&p));
        }
    }

    #[test]
    fn pure_node_becomes_leaf() {
        // constant target -> tree is a single leaf predicting that constant
        let ds = synth::linear_regression(50, 2, 0.0, 26);
        let y = vec![7.0; 50];
        let ds = ds.replace_features(ds.features().clone());
        let ds = coda_data::Dataset::new(ds.features().clone()).with_target(y).unwrap();
        let mut t = DecisionTreeRegressor::new();
        t.fit(&ds).unwrap();
        assert_eq!(t.fitted_depth().unwrap(), 0);
        assert!(t.predict(&ds).unwrap().iter().all(|&p| p == 7.0));
    }

    #[test]
    fn importances_identify_relevant_feature() {
        // y depends only on feature 1
        let base = synth::linear_regression(200, 3, 0.0, 27);
        let y: Vec<f64> = base.features().col(1).iter().map(|v| 5.0 * v).collect();
        let ds = coda_data::Dataset::new(base.features().clone()).with_target(y).unwrap();
        let mut t = DecisionTreeRegressor::new();
        t.fit(&ds).unwrap();
        let imp = t.feature_importances().unwrap();
        assert!(imp[1] > 0.9, "importances: {imp:?}");
    }

    #[test]
    fn params_and_errors() {
        let mut t = DecisionTreeRegressor::new();
        t.set_param("max_depth", ParamValue::from(5usize)).unwrap();
        t.set_param("min_samples_split", ParamValue::from(4usize)).unwrap();
        t.set_param("min_samples_leaf", ParamValue::from(2usize)).unwrap();
        assert!(t.set_param("min_samples_split", ParamValue::from(1usize)).is_err());
        assert!(t.set_param("nope", ParamValue::from(1usize)).is_err());
        let ds = synth::friedman1(50, 5, 0.1, 28);
        assert!(DecisionTreeRegressor::new().predict(&ds).is_err());
    }

    #[test]
    fn rules_describe_the_fitted_tree() {
        // y = 1 when x0 > 0: a depth-1 tree with two clean rules
        let mut x = coda_linalg::Matrix::zeros(100, 2);
        let mut y = Vec::with_capacity(100);
        for r in 0..100 {
            let v = (r as f64 / 50.0) - 1.0 + 0.005; // avoid exactly 0
            x[(r, 0)] = v;
            x[(r, 1)] = (r % 7) as f64;
            y.push(if v > 0.0 { 1.0 } else { 0.0 });
        }
        let ds = coda_data::Dataset::new(x)
            .with_target(y)
            .unwrap()
            .with_feature_names(vec!["pressure", "noise"])
            .unwrap();
        let mut t = DecisionTreeClassifier::new();
        assert!(t.rules(&[]).is_none()); // unfitted
        t.fit(&ds).unwrap();
        let rules = t.rules(ds.feature_names()).unwrap();
        assert_eq!(rules.len(), 2, "two leaves: {rules:?}");
        assert!(rules.iter().any(|r| r.contains("pressure <=") && r.ends_with("0.0000")));
        assert!(rules.iter().any(|r| r.contains("pressure >") && r.ends_with("1.0000")));
        assert!(rules.iter().all(|r| !r.contains("noise")), "irrelevant feature unused");
    }

    #[test]
    fn rules_count_equals_leaf_count() {
        let ds = synth::friedman1(150, 5, 0.3, 29);
        let mut t = DecisionTreeRegressor::new().with_max_depth(3);
        t.fit(&ds).unwrap();
        let rules = t.rules(ds.feature_names()).unwrap();
        assert!(!rules.is_empty());
        assert!(rules.len() <= 8, "depth 3 -> at most 8 leaves");
        assert!(rules.iter().all(|r| r.starts_with("if ") && r.contains(" then predict ")));
    }

    #[test]
    fn classifier_ties_break_deterministically() {
        // two samples, two classes, no split possible with min_samples_leaf
        let x = coda_linalg::Matrix::from_rows(&[&[1.0], &[1.0]]);
        let ds = coda_data::Dataset::new(x).with_target(vec![0.0, 1.0]).unwrap();
        let mut t = DecisionTreeClassifier::new();
        t.fit(&ds).unwrap();
        let pred = t.predict(&ds).unwrap();
        assert_eq!(pred[0], pred[1]); // single leaf
        assert_eq!(pred[0], 0.0); // tie -> smaller label
    }
}
