/root/repo/target/debug/deps/coda_cluster-2e00a5a1e29c9639.d: crates/cluster/src/lib.rs crates/cluster/src/coop.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/lifecycle.rs crates/cluster/src/placement.rs crates/cluster/src/registry.rs crates/cluster/src/webservice.rs

/root/repo/target/debug/deps/libcoda_cluster-2e00a5a1e29c9639.rlib: crates/cluster/src/lib.rs crates/cluster/src/coop.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/lifecycle.rs crates/cluster/src/placement.rs crates/cluster/src/registry.rs crates/cluster/src/webservice.rs

/root/repo/target/debug/deps/libcoda_cluster-2e00a5a1e29c9639.rmeta: crates/cluster/src/lib.rs crates/cluster/src/coop.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/lifecycle.rs crates/cluster/src/placement.rs crates/cluster/src/registry.rs crates/cluster/src/webservice.rs

crates/cluster/src/lib.rs:
crates/cluster/src/coop.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/lifecycle.rs:
crates/cluster/src/placement.rs:
crates/cluster/src/registry.rs:
crates/cluster/src/webservice.rs:
