/root/repo/target/debug/deps/coda_bench-ae3a335fdbf3d3f5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/coda_bench-ae3a335fdbf3d3f5: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
