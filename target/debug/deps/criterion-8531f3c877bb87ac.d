/root/repo/target/debug/deps/criterion-8531f3c877bb87ac.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-8531f3c877bb87ac.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-8531f3c877bb87ac.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
