//! Offline stand-in for `serde_json`: renders and parses the JSON text
//! format over the stand-in `serde` [`Value`] model.

pub use serde::Value;

use std::fmt;

/// Parse or conversion error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new<S: Into<String>>(message: S) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes any [`serde::Serialize`] value to compact JSON text.
///
/// # Errors
///
/// Currently infallible for the value model, but kept fallible to match the
/// real `serde_json` signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses JSON text into any [`serde::Deserialize`] type.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::new)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a decimal point on whole floats ("1.0"), so
                // the integer/float distinction survives a round-trip.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// [`Error`] describing the first malformed construct.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected '{}' at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // advance one UTF-8 character
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number '{text}'")))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                // integer overflow: fall back to float like serde_json's
                // arbitrary-precision-off behavior
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::new(format!("invalid number '{text}'"))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn value_roundtrip() {
        let mut obj = BTreeMap::new();
        obj.insert("a".to_string(), Value::Int(3));
        obj.insert("b".to_string(), Value::Float(1.5));
        obj.insert("c".to_string(), Value::Str("x\"y\n".to_string()));
        obj.insert(
            "d".to_string(),
            Value::Array(vec![Value::Bool(true), Value::Null, Value::Int(-7)]),
        );
        let v = Value::Object(obj);
        let text = to_string(&v).unwrap();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn int_float_distinction_survives() {
        assert_eq!(parse("3").unwrap(), Value::Int(3));
        assert_eq!(parse("3.0").unwrap(), Value::Float(3.0));
        assert_eq!(to_string(&Value::Float(1.0)).unwrap(), "1.0");
        assert_eq!(to_string(&Value::Int(1)).unwrap(), "1");
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
    }

    #[test]
    fn malformed_rejected() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn typed_from_str() {
        let v: Vec<u64> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(from_str::<Vec<u64>>("[1,-2]").is_err());
        let s: String = from_str("\"hi\"").unwrap();
        assert_eq!(s, "hi");
    }
}
