//! k-nearest-neighbour regression and classification (the "k nearest
//! neighbors" of §III).

use coda_data::{BoxedEstimator, ComponentError, Dataset, Estimator, ParamValue, TaskKind};

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Returns the indices of the `k` nearest training rows to `row`.
fn nearest(train: &coda_linalg::Matrix, row: &[f64], k: usize) -> Vec<usize> {
    let mut dists: Vec<(f64, usize)> =
        train.iter_rows().enumerate().map(|(i, r)| (euclidean(r, row), i)).collect();
    dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    dists.into_iter().take(k).map(|(_, i)| i).collect()
}

macro_rules! knn {
    ($name:ident, $display:expr, $task:expr, $agg:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            k: usize,
            train: Option<Dataset>,
        }

        impl $name {
            /// Creates a k-NN model with `k` neighbours.
            ///
            /// # Panics
            ///
            /// Panics if `k == 0`.
            pub fn new(k: usize) -> Self {
                assert!(k > 0, "k must be positive");
                $name { k, train: None }
            }
        }

        impl Estimator for $name {
            fn name(&self) -> &str {
                $display
            }

            fn task(&self) -> TaskKind {
                $task
            }

            fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
                match param {
                    "k" | "n_neighbors" => {
                        self.k = value.as_usize().filter(|&k| k > 0).ok_or_else(|| {
                            ComponentError::InvalidParam {
                                component: $display.to_string(),
                                param: param.to_string(),
                                reason: "must be a positive integer".to_string(),
                            }
                        })?;
                        Ok(())
                    }
                    _ => Err(ComponentError::UnknownParam {
                        component: self.name().to_string(),
                        param: param.to_string(),
                    }),
                }
            }

            fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
                data.target_required()?;
                if data.n_samples() == 0 {
                    return Err(ComponentError::InvalidInput("empty dataset".to_string()));
                }
                self.train = Some(data.clone());
                Ok(())
            }

            fn predict(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError> {
                let train = self
                    .train
                    .as_ref()
                    .ok_or_else(|| ComponentError::NotFitted(self.name().to_string()))?;
                if train.n_features() != data.n_features() {
                    return Err(ComponentError::InvalidInput(format!(
                        "model fitted on {} features, input has {}",
                        train.n_features(),
                        data.n_features()
                    )));
                }
                let y = train.target_required()?;
                let k = self.k.min(train.n_samples());
                Ok(data
                    .features()
                    .iter_rows()
                    .map(|row| {
                        let ids = nearest(train.features(), row, k);
                        let votes: Vec<f64> = ids.iter().map(|&i| y[i]).collect();
                        $agg(&votes)
                    })
                    .collect())
            }

            fn clone_box(&self) -> BoxedEstimator {
                Box::new($name::new(self.k))
            }
        }
    };
}

fn mean_vote(votes: &[f64]) -> f64 {
    votes.iter().sum::<f64>() / votes.len() as f64
}

fn majority_vote(votes: &[f64]) -> f64 {
    let mut counts = std::collections::BTreeMap::new();
    for v in votes {
        *counts.entry(v.to_bits()).or_insert(0usize) += 1;
    }
    counts
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
        .map(|(&bits, _)| f64::from_bits(bits))
        .unwrap_or(0.0)
}

knn!(
    KnnRegressor,
    "knn_regressor",
    TaskKind::Regression,
    mean_vote,
    "k-NN regressor: predicts the mean target of the k nearest training rows.\n\n\
     # Examples\n\n\
     ```\n\
     use coda_data::{synth, Estimator};\n\
     use coda_ml::KnnRegressor;\n\
     let ds = synth::linear_regression(100, 2, 0.1, 4);\n\
     let mut knn = KnnRegressor::new(3);\n\
     knn.fit(&ds)?;\n\
     assert_eq!(knn.predict(&ds)?.len(), 100);\n\
     # Ok::<(), Box<dyn std::error::Error>>(())\n\
     ```"
);

knn!(
    KnnClassifier,
    "knn_classifier",
    TaskKind::Classification,
    majority_vote,
    "k-NN classifier: majority label of the k nearest training rows."
);

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::{metrics, synth};

    #[test]
    fn k1_memorizes_training_data() {
        let ds = synth::linear_regression(80, 3, 0.5, 41);
        let mut knn = KnnRegressor::new(1);
        knn.fit(&ds).unwrap();
        let pred = knn.predict(&ds).unwrap();
        assert!(metrics::rmse(ds.target().unwrap(), &pred).unwrap() < 1e-12);
    }

    #[test]
    fn regressor_generalizes_smooth_function() {
        let ds = synth::friedman1(800, 5, 0.3, 42);
        let (train, test) = ds.train_test_split(0.25, 7);
        let mut knn = KnnRegressor::new(7);
        knn.fit(&train).unwrap();
        let pred = knn.predict(&test).unwrap();
        assert!(metrics::r2(test.target().unwrap(), &pred).unwrap() > 0.6);
    }

    #[test]
    fn classifier_on_blobs() {
        let ds = synth::classification_blobs(200, 2, 2, 0.5, 43);
        let (train, test) = ds.train_test_split(0.3, 8);
        let mut knn = KnnClassifier::new(5);
        knn.fit(&train).unwrap();
        let pred = knn.predict(&test).unwrap();
        assert!(metrics::accuracy(test.target().unwrap(), &pred).unwrap() > 0.95);
    }

    #[test]
    fn k_capped_at_training_size() {
        let ds = synth::linear_regression(5, 2, 0.1, 44);
        let mut knn = KnnRegressor::new(100);
        knn.fit(&ds).unwrap();
        let pred = knn.predict(&ds).unwrap();
        // k = n -> every prediction is the global mean
        let mean = coda_linalg::mean(ds.target().unwrap());
        assert!(pred.iter().all(|p| (p - mean).abs() < 1e-12));
    }

    #[test]
    fn errors() {
        let ds = synth::linear_regression(10, 2, 0.1, 45);
        assert!(KnnRegressor::new(3).predict(&ds).is_err()); // not fitted
        let mut knn = KnnRegressor::new(3);
        knn.fit(&ds).unwrap();
        let other = synth::linear_regression(10, 4, 0.1, 45);
        assert!(knn.predict(&other).is_err()); // feature mismatch
        let no_target = coda_data::Dataset::new(coda_linalg::Matrix::zeros(4, 2));
        assert!(KnnClassifier::new(1).fit(&no_target).is_err());
    }

    #[test]
    fn set_param() {
        let mut knn = KnnClassifier::new(3);
        knn.set_param("n_neighbors", ParamValue::from(5usize)).unwrap();
        assert!(knn.set_param("k", ParamValue::from(0usize)).is_err());
    }
}
