/root/repo/target/debug/deps/coda-3a1bd51afd1b5cb9.d: src/lib.rs

/root/repo/target/debug/deps/coda-3a1bd51afd1b5cb9: src/lib.rs

src/lib.rs:
