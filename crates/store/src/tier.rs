//! The distributed data tier (paper §III): "there is a main database. That
//! database might be in a central location. Alternatively, the database
//! might be distributed across multiple nodes … Each data object has an
//! associated home data store."
//!
//! [`DataTier`] partitions the object space over several
//! [`HomeDataStore`]s by stable hashing of the object id; every operation
//! routes to the object's home store. A thread-safe [`SharedTier`] wrapper
//! lets concurrent clients use one tier.

use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;

use crate::home::{FetchReply, HomeDataStore, TransferStats};
use crate::lease::{PushMode, UpdateMessage};

/// The stable shard-routing function shared by every partitioned layer
/// (the [`DataTier`] here, the DARR lanes in `coda-cluster`, and the
/// serving shards in `coda-serve`): FNV-1a over the key bytes, modulo the
/// partition count. One function, one hash — so an object's home in a
/// `DataTier` and its worker shard in a serving tier always agree, and a
/// 1-partition layout routes everything to index 0 (the unsharded
/// baseline every equivalence test compares against).
///
/// # Panics
///
/// Panics if `n == 0` — a zero-way partition routes nowhere.
pub fn shard_of(id: &str, n: usize) -> usize {
    assert!(n > 0, "need at least one partition");
    let mut h = 0xcbf29ce484222325u64;
    for b in id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % n as u64) as usize
}

/// A partitioned set of home data stores with stable id-hash routing.
#[derive(Debug, Clone)]
pub struct DataTier {
    stores: Vec<HomeDataStore>,
}

impl DataTier {
    /// Creates a tier of `n_stores` partitions, each keeping
    /// `history_depth` versions.
    ///
    /// # Panics
    ///
    /// Panics if `n_stores == 0`.
    pub fn new(n_stores: usize, history_depth: usize) -> Self {
        assert!(n_stores > 0, "need at least one store");
        let stores = (0..n_stores)
            .map(|i| HomeDataStore::new(format!("store-{i}"), history_depth))
            .collect();
        DataTier { stores }
    }

    /// Number of partitions.
    pub fn n_stores(&self) -> usize {
        self.stores.len()
    }

    /// The partition index that is `id`'s home (stable FNV-1a hash).
    pub fn home_index(&self, id: &str) -> usize {
        shard_of(id, self.stores.len())
    }

    /// The home store's name for `id`.
    pub fn home_name(&self, id: &str) -> &str {
        self.stores[self.home_index(id)].name()
    }

    /// Borrows `id`'s home store.
    pub fn home(&self, id: &str) -> &HomeDataStore {
        &self.stores[self.home_index(id)]
    }

    /// Mutable borrow of `id`'s home store.
    pub fn home_mut(&mut self, id: &str) -> &mut HomeDataStore {
        let i = self.home_index(id);
        &mut self.stores[i]
    }

    /// Writes a new version of `id` through its home store.
    pub fn put(&mut self, id: &str, data: Bytes) -> (u64, Vec<UpdateMessage>) {
        self.home_mut(id).put(id, data)
    }

    /// Version-aware fetch from `id`'s home store.
    pub fn fetch(&mut self, id: &str, client_version: Option<u64>) -> Option<FetchReply> {
        let Ok(reply) = self.home_mut(id).fetch(id, client_version);
        reply
    }

    /// Subscribes `client` to `id`'s updates at its home store.
    pub fn subscribe(&mut self, client: &str, id: &str, mode: PushMode, duration: u64) {
        self.home_mut(id).subscribe(client.to_string(), id.to_string(), mode, duration);
    }

    /// Advances every store's logical clock.
    pub fn advance_clock(&mut self, ticks: u64) {
        for s in &mut self.stores {
            s.advance_clock(ticks);
        }
    }

    /// Aggregated transfer statistics across all partitions.
    pub fn stats(&self) -> TransferStats {
        let mut total = TransferStats::default();
        for s in &self.stores {
            let st = s.stats();
            total.messages += st.messages;
            total.bytes += st.bytes;
            total.full_transfers += st.full_transfers;
            total.delta_transfers += st.delta_transfers;
            total.notifications += st.notifications;
        }
        total
    }

    /// Objects per partition (load-balance diagnostics): store name → count
    /// over the given ids.
    pub fn distribution<'a, I: IntoIterator<Item = &'a str>>(&self, ids: I) -> Vec<usize> {
        let mut counts = vec![0usize; self.stores.len()];
        for id in ids {
            counts[self.home_index(id)] += 1;
        }
        counts
    }
}

/// A cheaply clonable, thread-safe handle to a shared [`DataTier`].
#[derive(Debug, Clone)]
pub struct SharedTier {
    inner: Arc<Mutex<DataTier>>,
}

impl SharedTier {
    /// Wraps a tier for concurrent use.
    pub fn new(tier: DataTier) -> Self {
        SharedTier { inner: Arc::new(Mutex::new(tier)) }
    }

    /// Writes a new version of `id`.
    pub fn put(&self, id: &str, data: Bytes) -> (u64, Vec<UpdateMessage>) {
        self.inner.lock().put(id, data)
    }

    /// Version-aware fetch.
    pub fn fetch(&self, id: &str, client_version: Option<u64>) -> Option<FetchReply> {
        self.inner.lock().fetch(id, client_version)
    }

    /// Current version of `id`, if stored.
    pub fn version_of(&self, id: &str) -> Option<u64> {
        let mut tier = self.inner.lock();
        let home = tier.home_mut(id);
        home.version_of(id)
    }

    /// Aggregated transfer statistics.
    pub fn stats(&self) -> TransferStats {
        self.inner.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_agrees_with_home_index() {
        let tier = DataTier::new(4, 2);
        for i in 0..64 {
            let id = format!("object-{i}");
            assert_eq!(shard_of(&id, 4), tier.home_index(&id));
            assert_eq!(shard_of(&id, 1), 0, "one partition routes everything to 0");
        }
        assert_eq!(shard_of("x", 8), shard_of("x", 8));
    }

    #[test]
    fn routing_is_stable_and_spread() {
        let tier = DataTier::new(4, 2);
        let ids: Vec<String> = (0..200).map(|i| format!("object-{i}")).collect();
        let counts = tier.distribution(ids.iter().map(|s| s.as_str()));
        assert_eq!(counts.iter().sum::<usize>(), 200);
        // every partition gets a reasonable share
        for &c in &counts {
            assert!(c > 20, "distribution too skewed: {counts:?}");
        }
        // stability: same id, same home
        assert_eq!(tier.home_index("object-7"), tier.home_index("object-7"));
    }

    #[test]
    fn put_fetch_roundtrip_through_home() {
        let mut tier = DataTier::new(3, 2);
        let (v, _) = tier.put("sensor-a", Bytes::from_static(b"hello"));
        assert_eq!(v, 1);
        let reply = tier.fetch("sensor-a", None).unwrap();
        match reply {
            FetchReply::Full { version, data } => {
                assert_eq!(version, 1);
                assert_eq!(&data[..], b"hello");
            }
            other => panic!("expected full, got {other:?}"),
        }
        // another object likely lives elsewhere but is equally reachable
        tier.put("sensor-b", Bytes::from_static(b"world"));
        assert!(tier.fetch("sensor-b", None).is_some());
        assert!(tier.fetch("missing", None).is_none());
    }

    #[test]
    fn subscriptions_route_to_home() {
        let mut tier = DataTier::new(4, 2);
        tier.put("o", Bytes::from_static(b"v1"));
        tier.subscribe("c", "o", PushMode::Full, 100);
        let (_, messages) = tier.put("o", Bytes::from_static(b"v2"));
        assert_eq!(messages.len(), 1);
        assert_eq!(messages[0].client(), "c");
        // clock advance expires the lease on every store
        tier.advance_clock(200);
        let (_, messages) = tier.put("o", Bytes::from_static(b"v3"));
        assert!(messages.is_empty());
    }

    #[test]
    fn stats_aggregate_across_partitions() {
        let mut tier = DataTier::new(2, 2);
        tier.put("a", Bytes::from(vec![0u8; 100]));
        tier.put("b", Bytes::from(vec![0u8; 100]));
        tier.fetch("a", None);
        tier.fetch("b", None);
        let stats = tier.stats();
        assert_eq!(stats.messages, 2);
        assert!(stats.bytes >= 200);
    }

    #[test]
    fn shared_tier_concurrent_writers_and_readers() {
        let shared = SharedTier::new(DataTier::new(4, 4));
        let mut handles = Vec::new();
        for t in 0..4 {
            let tier = shared.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    let id = format!("obj-{t}-{i}");
                    tier.put(&id, Bytes::from(vec![t as u8; 64]));
                    let reply = tier.fetch(&id, None).expect("just written");
                    assert_eq!(reply.version(), 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.version_of("obj-0-0"), Some(1));
        assert_eq!(shared.stats().messages, 100);
    }
}
