//! CI benchmark ratchet for the serving tier: re-runs the D7 sustained
//! load (`coda_bench::run_serving_bench`) and compares its throughput
//! against the committed `BENCH_serving.json` baseline. One-way gate:
//! fails (exit 1) when fresh throughput drops below the baseline by more
//! than the tolerance band, so serving regressions are caught before they
//! land; a large *improvement* prints a reminder to ratchet the committed
//! baseline forward but still passes.
//!
//! Usage: `bench_gate [--self-test] [--baseline PATH]`
//!   BENCH_TOL  tolerance band as a fraction (default 0.5: fail below
//!              50% of baseline throughput — wide enough for shared CI
//!              runners, tight enough to catch a serialization collapse)
//!   SERVE_SEED overrides the workload seed recorded in the baseline

use serde_json::Value;

const DEFAULT_BASELINE: &str = "BENCH_serving.json";
const DEFAULT_TOL: f64 = 0.5;

struct Baseline {
    seed: u64,
    throughput: f64,
    p99_ms: f64,
}

fn num(v: &Value, field: &str) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        other => panic!("baseline field {field} is not a number: {other:?}"),
    }
}

fn parse_baseline(text: &str) -> Baseline {
    let value = serde_json::parse(text).expect("baseline must be valid JSON");
    let Value::Object(map) = value else { panic!("baseline must be a JSON object") };
    let field = |name: &str| num(map.get(name).unwrap_or(&Value::Null), name);
    let schema = map.get("schema").cloned().unwrap_or(Value::Null);
    assert_eq!(
        schema,
        Value::Str("coda-serving-bench-v1".into()),
        "unknown baseline schema: {schema:?}"
    );
    Baseline {
        seed: field("seed") as u64,
        throughput: field("throughput_ops_per_sec"),
        p99_ms: field("p99_ms"),
    }
}

/// The one-way ratchet decision: a regression trips the gate; anything at
/// or above the band passes.
fn regressed(base: f64, fresh: f64, tol: f64) -> bool {
    fresh < base * (1.0 - tol)
}

/// Proves the gate trips: a synthetic collapsed run must fail the ratchet
/// and an at-baseline run must pass, without touching the real benchmark.
fn self_test(base: &Baseline, tol: f64) {
    let collapsed = base.throughput * (1.0 - tol) * 0.5;
    assert!(
        regressed(base.throughput, collapsed, tol),
        "gate self-test: a {collapsed:.0} ops/s collapse must trip the {tol:.2} band"
    );
    assert!(
        !regressed(base.throughput, base.throughput, tol),
        "gate self-test: baseline throughput itself must pass"
    );
    assert!(
        !regressed(base.throughput, base.throughput * (1.0 - tol) * 1.01, tol),
        "gate self-test: throughput just inside the band must pass"
    );
    println!(
        "PASS: bench-gate self-test (baseline {:.0} ops/s, band {:.2}, trips at {:.0} ops/s)",
        base.throughput,
        tol,
        base.throughput * (1.0 - tol)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| DEFAULT_BASELINE.to_string());
    let tol: f64 = std::env::var("BENCH_TOL")
        .ok()
        .map(|s| s.parse().expect("BENCH_TOL must be a float"))
        .unwrap_or(DEFAULT_TOL);
    assert!((0.0..1.0).contains(&tol), "BENCH_TOL must be in [0, 1)");

    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let base = parse_baseline(&text);

    if args.iter().any(|a| a == "--self-test") {
        self_test(&base, tol);
        return;
    }

    let seed: u64 = std::env::var("SERVE_SEED")
        .ok()
        .map(|s| s.parse().expect("SERVE_SEED must be an integer"))
        .unwrap_or(base.seed);
    let fresh = coda_bench::run_serving_bench(seed, None);
    assert!(fresh.shed == 0, "closed-loop gate run must not shed (got {})", fresh.shed);

    let floor = base.throughput * (1.0 - tol);
    println!("serving benchmark ratchet (seed {seed}, band {tol:.2})");
    println!("  baseline: {:>12.0} ops/s  (p99 {:.3} ms)", base.throughput, base.p99_ms);
    println!(
        "  fresh:    {:>12.0} ops/s  (p99 {:.3} ms, {} ops over {:.0} ms)",
        fresh.throughput_ops_per_sec, fresh.p99_ms, fresh.total_ops, fresh.elapsed_ms
    );
    println!("  floor:    {floor:>12.0} ops/s");

    if regressed(base.throughput, fresh.throughput_ops_per_sec, tol) {
        eprintln!(
            "FAIL: serving throughput regressed below the ratchet floor \
             ({:.0} < {floor:.0} ops/s)",
            fresh.throughput_ops_per_sec
        );
        std::process::exit(1);
    }
    if fresh.throughput_ops_per_sec > base.throughput * (1.0 + tol) {
        println!(
            "NOTE: fresh throughput beats the baseline by more than the band — \
             consider ratcheting BENCH_serving.json forward (`experiments --exp d7`)"
        );
    }
    println!("PASS: {:.0} ops/s >= {floor:.0} ops/s floor", fresh.throughput_ops_per_sec);
}
