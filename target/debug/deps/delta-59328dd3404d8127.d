/root/repo/target/debug/deps/delta-59328dd3404d8127.d: crates/bench/benches/delta.rs Cargo.toml

/root/repo/target/debug/deps/libdelta-59328dd3404d8127.rmeta: crates/bench/benches/delta.rs Cargo.toml

crates/bench/benches/delta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
