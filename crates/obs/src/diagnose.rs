//! Breach-triggered incident diagnosis: from "an SLO is burning" to "this
//! series / operator / shard is to blame", deterministically.
//!
//! When the [`SloEngine`](crate::slo::SloEngine) reports a burning SLO,
//! [`diagnose`] assembles one [`Incident`] per contiguous breach run
//! ([`SloReport::breach_runs`]): it slices the [`FlightRecorder`] timeline
//! to the breach window, diffs each anomaly window against a pre-breach
//! baseline (z-score per metric series over ring-buffer history), pulls
//! the exemplar spans captured inside the window, reconstructs their
//! place in the [`TraceForest`], runs critical-path + self-time analysis,
//! and joins against a [`CostProfile`] — emitting ranked suspects at
//! three granularities: metric series, operator `name[spec]`, and shard.
//!
//! Every ranking uses a deterministic total order (score, then
//! labeled-before-unlabeled, then name — never map iteration order), and
//! the report contains only quantities invariant under shard count, so
//! same-seed runs produce byte-identical `DIAG_REPORT.json` regardless of
//! how many shards served the traffic (DESIGN.md §14).
//!
//! The ranking model in brief:
//!
//! - **Baseline**: the last `baseline_windows` flight windows that end at
//!   least `guard_windows` before the first breach — the guard keeps the
//!   fault's onset (which predates the alert by up to the short burn
//!   window) from contaminating "normal".
//! - **Per-window scalar**: counters and gauges contribute their delta
//!   per level-0 window; histograms contribute their delta *sum* per
//!   window (sums are invariant under shard count where counts are not).
//! - **Score**: `z = (observed − mean) / max(std, floor·|mean|, floor)`,
//!   where `observed` is the anomaly slice's extremum (max or min,
//!   whichever deviates more — a mean would dilute single-window spikes).

use std::collections::{BTreeMap, BTreeSet};

use serde::impl_serde_struct;

use crate::analyze::TraceForest;
use crate::flight::{FlightRecorder, FlightWindow};
use crate::metrics::{label_value, name_parts};
use crate::profile::{CostProfile, Exemplar};
use crate::slo::SloReport;

/// Knobs for the attribution engine.
#[derive(Debug, Clone)]
pub struct DiagnoseConfig {
    /// Flight windows of pre-breach history forming the baseline.
    pub baseline_windows: usize,
    /// Windows immediately before the first breach excluded from the
    /// baseline *and* included in the anomaly slice — the detection lag
    /// guard (a burn alert trails the fault's onset).
    pub guard_windows: usize,
    /// Minimum |z| for a series to rank as a suspect.
    pub z_threshold: f64,
    /// Robustness floor for the z denominator, both as a fraction of the
    /// baseline mean and as an absolute: a flat-zero baseline must not
    /// make every nonzero observation infinitely anomalous.
    pub floor_frac: f64,
    /// Ranked series suspects retained per incident. Sized generously: a
    /// zero-baseline bulk counter (e.g. recovery bytes transferred) scores
    /// a huge z in its own units, and a tight cap would let one such
    /// burst crowd out the persistent low-rate anomalies that usually
    /// name the actual cause.
    pub max_suspects: usize,
}

impl Default for DiagnoseConfig {
    fn default() -> Self {
        DiagnoseConfig {
            baseline_windows: 8,
            guard_windows: 3,
            z_threshold: 3.0,
            floor_frac: 0.25,
            max_suspects: 32,
        }
    }
}

/// One anomalous metric series, ranked by |z|.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSuspect {
    /// The series name (flat, possibly `base{label="value"}`).
    pub series: String,
    /// Instrument kind: `counter`, `gauge`, or `histogram`.
    pub kind: String,
    /// Baseline per-window mean of the series scalar.
    pub baseline_mean: f64,
    /// Baseline per-window standard deviation.
    pub baseline_std: f64,
    /// The anomaly slice's most deviant per-window scalar.
    pub observed: f64,
    /// Signed z-score of `observed` against the baseline.
    pub z: f64,
    /// Which way the series moved: `up` or `down`.
    pub direction: String,
}

impl_serde_struct!(SeriesSuspect {
    series,
    kind,
    baseline_mean,
    baseline_std,
    observed,
    z,
    direction
});

/// One operator implicated by exemplar spans inside the breach window.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorSuspect {
    /// Operator label: span name, refined to `name[spec]` when the span
    /// carries a `spec` field (the cost-profile keying).
    pub operator: String,
    /// Distinct exemplar spans aggregated.
    pub spans: u64,
    /// Total self-time across those spans, milliseconds.
    pub total_self_ms: f64,
    /// Mean self-time per exemplar span.
    pub mean_self_ms: f64,
    /// The operator's mean self-time over the whole run's cost profile.
    pub profile_mean_self_ms: f64,
    /// `mean_self_ms` over the (floored) profile mean — how much slower
    /// the breach-window spans ran than the operator's norm.
    pub slowdown: f64,
    /// Encoded span contexts of the implicated exemplars, worst first.
    pub exemplars: Vec<String>,
}

impl_serde_struct!(OperatorSuspect {
    operator,
    spans,
    total_self_ms,
    mean_self_ms,
    profile_mean_self_ms,
    slowdown,
    exemplars
});

/// One shard implicated by `shard`-labeled series suspects.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSuspect {
    /// The shard label value (e.g. `shard-0`).
    pub shard: String,
    /// `overload` (queue-wait anomalous, service time not),
    /// `slow-service` (service time anomalous), or `degraded`.
    pub verdict: String,
    /// Worst |z| among this shard's series suspects.
    pub max_z: f64,
    /// The shard's anomalous series, ranked.
    pub series: Vec<String>,
}

impl_serde_struct!(ShardSuspect { shard, verdict, max_z, series });

/// Everything concluded about one contiguous breach run.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// The breaching SLO.
    pub slo: String,
    /// First breached evaluation boundary, milliseconds.
    pub first_breach_ms: f64,
    /// Last breached evaluation boundary in the run.
    pub last_breach_ms: f64,
    /// Breached evaluations in the run.
    pub breaches: u64,
    /// Worst long-window burn inside the run.
    pub max_long_burn: f64,
    /// Worst short-window burn inside the run.
    pub max_short_burn: f64,
    /// Flight windows in the baseline slice.
    pub baseline_windows: u64,
    /// Flight windows in the anomaly slice.
    pub anomaly_windows: u64,
    /// Ranked anomalous series (|z| descending).
    pub series_suspects: Vec<SeriesSuspect>,
    /// Ranked operators implicated by exemplar spans in the window.
    pub operator_suspects: Vec<OperatorSuspect>,
    /// Shards implicated by `shard`-labeled series suspects.
    pub shard_suspects: Vec<ShardSuspect>,
    /// Critical-path operator labels of the worst exemplar trace in the
    /// window (empty without exemplars).
    pub critical_path: Vec<String>,
    /// The single best answer to "what broke": the top series, except
    /// when it is `spec`-labeled and an operator suspect matches — then
    /// the operator label (the finer diagnosis).
    pub top_suspect: String,
}

impl_serde_struct!(Incident {
    slo,
    first_breach_ms,
    last_breach_ms,
    breaches,
    max_long_burn,
    max_short_burn,
    baseline_windows,
    anomaly_windows,
    series_suspects,
    operator_suspects,
    shard_suspects,
    critical_path,
    top_suspect
});

/// The deterministic `DIAG_REPORT.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagReport {
    /// Schema tag (`coda-diag-report-v1`).
    pub schema: String,
    /// One entry per contiguous breach run; empty on a clean run.
    pub incidents: Vec<Incident>,
}

impl_serde_struct!(DiagReport { schema, incidents });

impl DiagReport {
    /// Serializes to deterministic JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error message on malformed input.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let value = serde_json::parse(s).map_err(|e| e.to_string())?;
        serde::Deserialize::from_value(&value)
    }
}

/// Per-window scalars for every series in a flight window, normalized to
/// a per-level-0-window rate so merged (coarse) windows compare against
/// fine ones. Histograms contribute their delta **sum**: observation
/// counts shift between per-shard series as shard count changes, but the
/// total observed milliseconds do not.
fn window_scalars(w: &FlightWindow) -> BTreeMap<String, (&'static str, f64)> {
    let per = w.windows.max(1) as f64;
    let mut out = BTreeMap::new();
    for (k, v) in &w.delta.counters {
        out.insert(k.clone(), ("counter", *v as f64 / per));
    }
    for (k, v) in &w.delta.gauges {
        out.insert(k.clone(), ("gauge", *v / per));
    }
    for (k, h) in &w.delta.histograms {
        out.insert(k.clone(), ("histogram", h.sum / per));
    }
    out
}

/// Labeled series rank before unlabeled on score ties: when an aggregate
/// and one of its labeled splits are equally anomalous, the split is the
/// finer (more actionable) diagnosis.
fn label_rank(series: &str) -> u8 {
    u8::from(name_parts(series).1.is_none())
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Ranks anomalous series for one incident's baseline/anomaly slices.
fn rank_series(
    cfg: &DiagnoseConfig,
    baseline: &[&&FlightWindow],
    anomaly: &[&&FlightWindow],
) -> Vec<SeriesSuspect> {
    let base_rows: Vec<_> = baseline.iter().map(|w| window_scalars(w)).collect();
    let anom_rows: Vec<_> = anomaly.iter().map(|w| window_scalars(w)).collect();
    let mut names: BTreeMap<String, &'static str> = BTreeMap::new();
    for row in base_rows.iter().chain(&anom_rows) {
        for (name, (kind, _)) in row {
            names.entry(name.clone()).or_insert(kind);
        }
    }
    let mut suspects = Vec::new();
    for (series, kind) in names {
        let value_of =
            |row: &BTreeMap<String, (&'static str, f64)>| row.get(&series).map_or(0.0, |v| v.1);
        let base_vals: Vec<f64> = base_rows.iter().map(value_of).collect();
        let (mean, std) = mean_std(&base_vals);
        let mut max = f64::NEG_INFINITY;
        let mut min = f64::INFINITY;
        for v in anom_rows.iter().map(value_of) {
            max = max.max(v);
            min = min.min(v);
        }
        if anom_rows.is_empty() {
            continue;
        }
        let (observed, direction) =
            if max - mean >= mean - min { (max, "up") } else { (min, "down") };
        let denom = std.max(cfg.floor_frac * mean.abs()).max(cfg.floor_frac);
        let z = (observed - mean) / denom;
        if z.abs() >= cfg.z_threshold {
            suspects.push(SeriesSuspect {
                series,
                kind: kind.to_string(),
                baseline_mean: mean,
                baseline_std: std,
                observed,
                z,
                direction: direction.to_string(),
            });
        }
    }
    suspects.sort_by(|a, b| {
        b.z.abs()
            .total_cmp(&a.z.abs())
            .then_with(|| label_rank(&a.series).cmp(&label_rank(&b.series)))
            .then_with(|| a.series.cmp(&b.series))
    });
    suspects.truncate(cfg.max_suspects);
    suspects
}

/// Aggregates the breach window's exemplar spans into operator suspects,
/// joined against the whole-run cost profile for a slowdown ratio.
fn rank_operators(
    cfg: &DiagnoseConfig,
    exemplars: &BTreeMap<String, Vec<Exemplar>>,
    forest: &TraceForest,
    from_ms: f64,
    to_ms: f64,
) -> (Vec<OperatorSuspect>, Vec<String>) {
    let profile = CostProfile::from_forest_refined(forest, Some("spec"));
    struct Agg {
        spans: u64,
        total_self_ms: f64,
        exemplars: Vec<(f64, String)>,
    }
    let mut by_operator: BTreeMap<String, Agg> = BTreeMap::new();
    let mut seen = BTreeSet::new();
    let mut worst: Option<(f64, u64)> = None; // (value, span id) of the worst exemplar
    for list in exemplars.values() {
        for e in list {
            if !(e.at_ms > from_ms && e.at_ms <= to_ms) {
                continue;
            }
            let Some(ctx) = e.ctx else { continue };
            if !seen.insert(ctx.span_id.0) {
                continue;
            }
            let Some(span) = forest.span(ctx.span_id) else { continue };
            if worst.is_none_or(|(v, id)| (e.value, ctx.span_id.0) > (v, id)) {
                worst = Some((e.value, ctx.span_id.0));
            }
            let operator = match span.field("spec") {
                Some(v) => format!("{}[{}]", span.name, v),
                None => span.name.clone(),
            };
            let agg = by_operator.entry(operator).or_insert(Agg {
                spans: 0,
                total_self_ms: 0.0,
                exemplars: Vec::new(),
            });
            agg.spans += 1;
            agg.total_self_ms += forest.self_time_ms(ctx.span_id);
            agg.exemplars.push((e.value, ctx.encode()));
        }
    }
    let mut suspects: Vec<OperatorSuspect> = by_operator
        .into_iter()
        .map(|(operator, mut agg)| {
            agg.exemplars.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
            let mean_self_ms = agg.total_self_ms / agg.spans.max(1) as f64;
            let profile_mean_self_ms =
                profile.entries.get(&operator).map_or(0.0, |e| e.mean_self_ms);
            OperatorSuspect {
                operator,
                spans: agg.spans,
                total_self_ms: agg.total_self_ms,
                mean_self_ms,
                profile_mean_self_ms,
                slowdown: mean_self_ms / profile_mean_self_ms.max(cfg.floor_frac),
                exemplars: agg.exemplars.into_iter().map(|(_, ctx)| ctx).collect(),
            }
        })
        .collect();
    suspects.sort_by(|a, b| {
        b.total_self_ms.total_cmp(&a.total_self_ms).then_with(|| a.operator.cmp(&b.operator))
    });
    let critical_path = worst
        .and_then(|(_, span_id)| forest.span(crate::trace::SpanId(span_id)))
        .map(|span| forest.critical_path_labels(span.ctx.trace_id, Some("spec")))
        .unwrap_or_default();
    (suspects, critical_path)
}

/// Groups `shard`-labeled series suspects into per-shard verdicts.
fn rank_shards(series_suspects: &[SeriesSuspect]) -> Vec<ShardSuspect> {
    struct Agg {
        max_z: f64,
        wait_up: bool,
        service_up: bool,
        series: Vec<String>,
    }
    let mut by_shard: BTreeMap<String, Agg> = BTreeMap::new();
    for s in series_suspects {
        let Some(shard) = label_value(&s.series, "shard") else { continue };
        let agg = by_shard.entry(shard.to_string()).or_insert(Agg {
            max_z: 0.0,
            wait_up: false,
            service_up: false,
            series: Vec::new(),
        });
        agg.max_z = agg.max_z.max(s.z.abs());
        let (base, _) = name_parts(&s.series);
        if s.direction == "up" {
            agg.wait_up |= base.contains("queue_wait");
            agg.service_up |= base.contains("service");
        }
        agg.series.push(s.series.clone());
    }
    let mut out: Vec<ShardSuspect> = by_shard
        .into_iter()
        .map(|(shard, agg)| ShardSuspect {
            shard,
            verdict: if agg.service_up {
                "slow-service"
            } else if agg.wait_up {
                "overload"
            } else {
                "degraded"
            }
            .to_string(),
            max_z: agg.max_z,
            series: agg.series,
        })
        .collect();
    out.sort_by(|a, b| b.max_z.total_cmp(&a.max_z).then_with(|| a.shard.cmp(&b.shard)));
    out
}

/// The single best answer: the top series, unless it is `spec`-labeled
/// and an operator suspect carries the same spec — then the operator.
fn pick_top_suspect(
    series_suspects: &[SeriesSuspect],
    operator_suspects: &[OperatorSuspect],
) -> String {
    let Some(top) = series_suspects.first() else { return String::new() };
    if let Some(spec) = label_value(&top.series, "spec") {
        let suffix = format!("[{spec}]");
        if let Some(op) = operator_suspects.iter().find(|o| o.operator.ends_with(&suffix)) {
            return op.operator.clone();
        }
        if let Some(op) = operator_suspects.first() {
            return op.operator.clone();
        }
    }
    top.series.clone()
}

/// Runs attribution over everything the ops plane collected: one
/// [`Incident`] per contiguous breach run in `slo_report`, ranked
/// suspects at series, operator, and shard granularity. A report with no
/// breaches yields a valid empty report.
pub fn diagnose(
    cfg: &DiagnoseConfig,
    recorder: &FlightRecorder,
    slo_report: &SloReport,
    exemplars: &BTreeMap<String, Vec<Exemplar>>,
    forest: &TraceForest,
) -> DiagReport {
    let window_ms = recorder.config().window_ms;
    let timeline = recorder.timeline();
    let mut incidents = Vec::new();
    for run in slo_report.breach_runs() {
        let cut = run.first_ms - cfg.guard_windows as f64 * window_ms;
        let anomaly: Vec<&&FlightWindow> =
            timeline.iter().filter(|w| w.end_ms > cut && w.start_ms < run.last_ms).collect();
        let baseline_all: Vec<&&FlightWindow> =
            timeline.iter().filter(|w| w.end_ms <= cut).collect();
        let skip = baseline_all.len().saturating_sub(cfg.baseline_windows);
        let baseline = &baseline_all[skip..];

        let series_suspects = rank_series(cfg, baseline, &anomaly);
        let (operator_suspects, critical_path) =
            rank_operators(cfg, exemplars, forest, cut, run.last_ms);
        let shard_suspects = rank_shards(&series_suspects);
        let top_suspect = pick_top_suspect(&series_suspects, &operator_suspects);
        incidents.push(Incident {
            slo: run.slo,
            first_breach_ms: run.first_ms,
            last_breach_ms: run.last_ms,
            breaches: run.evaluations,
            max_long_burn: run.max_long_burn,
            max_short_burn: run.max_short_burn,
            baseline_windows: baseline.len() as u64,
            anomaly_windows: anomaly.len() as u64,
            series_suspects,
            operator_suspects,
            shard_suspects,
            critical_path,
            top_suspect,
        });
    }
    DiagReport { schema: "coda-diag-report-v1".to_string(), incidents }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::flight::FlightConfig;
    use crate::metrics::{labeled_name, MetricsRegistry};
    use crate::slo::{BurnWindows, SloEngine, SloSignal, SloSpec};
    use crate::trace::Tracer;

    fn shed_slo() -> SloSpec {
        SloSpec {
            name: "serve-shed-rate".to_string(),
            signal: SloSignal::EventRatio {
                bad: "coda_serve_shed_total".to_string(),
                good: "coda_serve_ops_total".to_string(),
            },
            objective: 0.05,
        }
    }

    fn rig(specs: Vec<SloSpec>) -> (SloEngine, FlightRecorder, MetricsRegistry) {
        let windows = BurnWindows { long_windows: 4, short_windows: 2, factor: 2.0 };
        let cfg = FlightConfig { window_ms: 10.0, level_capacity: 32, merge: 4, levels: 2 };
        (SloEngine::new(specs, windows), FlightRecorder::new(cfg), MetricsRegistry::new())
    }

    fn small_cfg() -> DiagnoseConfig {
        DiagnoseConfig { baseline_windows: 4, guard_windows: 2, ..DiagnoseConfig::default() }
    }

    #[test]
    fn clean_run_yields_a_valid_empty_report() {
        let (mut engine, mut rec, reg) = rig(vec![shed_slo()]);
        rec.tick(0.0, &reg.snapshot());
        for i in 1..=8 {
            reg.count("coda_serve_ops_total", 100);
            rec.tick(i as f64 * 10.0, &reg.snapshot());
            engine.step(&rec, None);
        }
        let report = diagnose(
            &DiagnoseConfig::default(),
            &rec,
            &engine.report(),
            &BTreeMap::new(),
            &TraceForest::from_events(&[]),
        );
        assert!(report.incidents.is_empty(), "no breach, no incident");
        assert_eq!(report.schema, "coda-diag-report-v1");
        let back = DiagReport::from_json(&report.to_json()).expect("empty report parses");
        assert_eq!(back, report);
    }

    #[test]
    fn a_shed_burst_is_attributed_to_the_shed_series() {
        let (mut engine, mut rec, reg) = rig(vec![shed_slo()]);
        rec.tick(0.0, &reg.snapshot());
        for i in 1..=10 {
            reg.count("coda_serve_ops_total", 100);
            if i > 6 {
                reg.count("coda_serve_shed_total", 40);
            }
            rec.tick(i as f64 * 10.0, &reg.snapshot());
            engine.step(&rec, None);
        }
        let slo_report = engine.report();
        assert!(slo_report.total_breaches() > 0, "the burst must burn");
        let report = diagnose(
            &small_cfg(),
            &rec,
            &slo_report,
            &BTreeMap::new(),
            &TraceForest::from_events(&[]),
        );
        assert_eq!(report.incidents.len(), 1, "one contiguous run, one incident");
        let inc = &report.incidents[0];
        assert_eq!(inc.slo, "serve-shed-rate");
        assert_eq!(inc.top_suspect, "coda_serve_shed_total");
        let top = &inc.series_suspects[0];
        assert_eq!(top.direction, "up");
        assert!(top.z >= 3.0, "burst must clear the threshold: {top:?}");
        assert!(inc.operator_suspects.is_empty(), "no exemplars, no operators — not a panic");
        assert!(inc.critical_path.is_empty());
        assert!(inc.breaches >= 1);
        assert!(inc.baseline_windows >= 1);
    }

    #[test]
    fn labeled_split_outranks_its_aggregate_on_ties_and_names_the_shard() {
        let (mut engine, mut rec, reg) = rig(vec![shed_slo()]);
        let per_shard = labeled_name("coda_serve_queue_wait_ms", "shard", "shard-2");
        rec.tick(0.0, &reg.snapshot());
        for i in 1..=10 {
            reg.count("coda_serve_ops_total", 100);
            if i > 6 {
                reg.count("coda_serve_shed_total", 40);
                // identical sums land in the aggregate and the shard split
                reg.observe_ms("coda_serve_queue_wait_ms", 50.0);
                reg.observe_ms(&per_shard, 50.0);
            }
            rec.tick(i as f64 * 10.0, &reg.snapshot());
            engine.step(&rec, None);
        }
        let report = diagnose(
            &small_cfg(),
            &rec,
            &engine.report(),
            &BTreeMap::new(),
            &TraceForest::from_events(&[]),
        );
        let inc = &report.incidents[0];
        let wait_rank =
            |name: &str| inc.series_suspects.iter().position(|s| s.series == name).expect("ranked");
        assert!(
            wait_rank(&per_shard) < wait_rank("coda_serve_queue_wait_ms"),
            "equal-z tie must prefer the labeled split: {:?}",
            inc.series_suspects
        );
        assert_eq!(inc.shard_suspects.len(), 1);
        assert_eq!(inc.shard_suspects[0].shard, "shard-2");
        assert_eq!(inc.shard_suspects[0].verdict, "overload");
    }

    /// Satellite: equal-score suspects keep a deterministic total order
    /// regardless of registration (insertion) order.
    #[test]
    fn equal_score_suspects_order_deterministically_under_permutation() {
        let run = |names: &[&str]| {
            let (mut engine, mut rec, reg) = rig(vec![shed_slo()]);
            rec.tick(0.0, &reg.snapshot());
            for i in 1..=10 {
                reg.count("coda_serve_ops_total", 100);
                if i > 6 {
                    reg.count("coda_serve_shed_total", 40);
                    for name in names {
                        reg.count(name, 40);
                    }
                }
                rec.tick(i as f64 * 10.0, &reg.snapshot());
                engine.step(&rec, None);
            }
            let report = diagnose(
                &small_cfg(),
                &rec,
                &engine.report(),
                &BTreeMap::new(),
                &TraceForest::from_events(&[]),
            );
            report.incidents[0].series_suspects.iter().map(|s| s.series.clone()).collect::<Vec<_>>()
        };
        let a = run(&["coda_x_alpha", "coda_x_beta", "coda_x_gamma"]);
        let b = run(&["coda_x_gamma", "coda_x_alpha", "coda_x_beta"]);
        let c = run(&["coda_x_beta", "coda_x_gamma", "coda_x_alpha"]);
        assert_eq!(a, b, "ranking must not depend on insertion order");
        assert_eq!(b, c);
        let alpha = a.iter().position(|s| s == "coda_x_alpha").expect("ranked");
        let beta = a.iter().position(|s| s == "coda_x_beta").expect("ranked");
        assert!(alpha < beta, "equal scores fall back to name order");
    }

    #[test]
    fn exemplar_spans_become_operator_suspects_with_critical_path() {
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::new(Arc::clone(&clock) as Arc<dyn Clock>);
        let slow_ctx;
        {
            let _graph = tracer.span("eval.graph", &[]);
            {
                let path = tracer.span("eval.path", &[("spec", "scale>ridge")]);
                slow_ctx = path.context();
                clock.advance_ms(80.0);
            }
        }
        let forest = TraceForest::from_events(&tracer.events());
        let mut exemplars = BTreeMap::new();
        exemplars.insert(
            "coda_core_eval_path_ms".to_string(),
            vec![Exemplar { value: 80.0, ctx: Some(slow_ctx), at_ms: 75.0 }],
        );

        let (mut engine, mut rec, reg) = rig(vec![SloSpec {
            name: "eval-path-latency".to_string(),
            signal: SloSignal::LatencyAbove {
                histogram: "coda_core_eval_path_ms".to_string(),
                threshold_ms: 25.0,
            },
            objective: 0.05,
        }]);
        let spec_series = labeled_name("coda_core_eval_path_ms", "spec", "scale>ridge");
        rec.tick(0.0, &reg.snapshot());
        for i in 1..=10 {
            if i > 6 {
                reg.observe_ms("coda_core_eval_path_ms", 80.0);
                reg.observe_ms(&spec_series, 80.0);
            } else {
                reg.observe_ms("coda_core_eval_path_ms", 1.0);
                reg.observe_ms(&spec_series, 1.0);
            }
            rec.tick(i as f64 * 10.0, &reg.snapshot());
            engine.step(&rec, None);
        }
        let report = diagnose(&small_cfg(), &rec, &engine.report(), &exemplars, &forest);
        let inc = &report.incidents[0];
        assert_eq!(inc.operator_suspects.len(), 1);
        let op = &inc.operator_suspects[0];
        assert_eq!(op.operator, "eval.path[scale>ridge]");
        assert_eq!(op.spans, 1);
        assert!((op.total_self_ms - 80.0).abs() < 1e-9);
        assert_eq!(op.exemplars, vec![slow_ctx.encode()]);
        assert_eq!(
            inc.critical_path,
            vec!["eval.graph".to_string(), "eval.path[scale>ridge]".to_string()]
        );
        assert_eq!(
            inc.top_suspect, "eval.path[scale>ridge]",
            "a spec-labeled top series resolves to the operator"
        );
        let back = DiagReport::from_json(&report.to_json()).expect("report parses");
        assert_eq!(back, report);
    }

    #[test]
    fn separate_breach_runs_become_separate_incidents() {
        let (mut engine, mut rec, reg) = rig(vec![shed_slo()]);
        rec.tick(0.0, &reg.snapshot());
        for i in 1..=20 {
            reg.count("coda_serve_ops_total", 100);
            // two bursts separated by a long clean stretch
            if (7..=8).contains(&i) || (16..=17).contains(&i) {
                reg.count("coda_serve_shed_total", 60);
            }
            rec.tick(i as f64 * 10.0, &reg.snapshot());
            engine.step(&rec, None);
        }
        let slo_report = engine.report();
        let runs = slo_report.breach_runs();
        assert!(runs.len() >= 2, "two bursts, two runs: {runs:?}");
        let report = diagnose(
            &small_cfg(),
            &rec,
            &slo_report,
            &BTreeMap::new(),
            &TraceForest::from_events(&[]),
        );
        assert_eq!(report.incidents.len(), runs.len());
        assert!(report.incidents[0].last_breach_ms < report.incidents[1].first_breach_ms);
        for inc in &report.incidents {
            assert_eq!(inc.top_suspect, "coda_serve_shed_total");
        }
    }
}
