/root/repo/target/release/deps/serde_json-867a2b8a91718faa.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-867a2b8a91718faa.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-867a2b8a91718faa.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
