/root/repo/target/debug/deps/coda_cluster-611f37b21c75afee.d: crates/cluster/src/lib.rs crates/cluster/src/coop.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/lifecycle.rs crates/cluster/src/placement.rs crates/cluster/src/registry.rs crates/cluster/src/webservice.rs

/root/repo/target/debug/deps/coda_cluster-611f37b21c75afee: crates/cluster/src/lib.rs crates/cluster/src/coop.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/lifecycle.rs crates/cluster/src/placement.rs crates/cluster/src/registry.rs crates/cluster/src/webservice.rs

crates/cluster/src/lib.rs:
crates/cluster/src/coop.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/lifecycle.rs:
crates/cluster/src/placement.rs:
crates/cluster/src/registry.rs:
crates/cluster/src/webservice.rs:
