//! Quickstart: build the paper's Listing-1 regression graph (36 pipelines),
//! evaluate every path with 10-fold cross-validation, and print the best
//! model — the end-to-end workflow of Section IV.
//!
//! Run with: `cargo run --release --example quickstart`

use coda::data::{synth, CvStrategy, Metric, NoOp};
use coda::graph::{to_dot, Evaluator, ParamGrid, TegBuilder};
use coda::ml::{
    DecisionTreeRegressor, KnnRegressor, MinMaxScaler, Pca, RandomForestRegressor, RobustScaler,
    ScoreFunction, SelectKBest, StandardScaler,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dataset where scaling matters: features span several orders of
    // magnitude (the regime Fig. 3's scaling stage exists for).
    let dataset = synth::badly_scaled_regression(400, 7, 0.5, 42);
    println!("dataset: {dataset}");

    // Listing 1, verbatim: four scalers x three selectors x three models.
    let graph = TegBuilder::new()
        .add_feature_scalers(vec![
            Box::new(MinMaxScaler::new()),
            Box::new(StandardScaler::new()),
            Box::new(RobustScaler::new()),
            Box::new(NoOp::new()),
        ])
        .add_feature_selectors(vec![
            Box::new(Pca::new(4)),
            Box::new(SelectKBest::new(4, ScoreFunction::FRegression)),
            Box::new(NoOp::new()),
        ])
        .add_models(vec![
            Box::new(DecisionTreeRegressor::new()),
            Box::new(KnnRegressor::new(5)),
            Box::new(RandomForestRegressor::new(20)),
        ])
        .create_graph()?;

    let n_pipelines = graph.enumerate_pipelines()?.len();
    println!(
        "graph: {} nodes, {} edges, {n_pipelines} pipelines",
        graph.n_nodes(),
        graph.n_edges()
    );
    println!("\nGraphviz (paste into `dot -Tpng`):\n{}", to_dot(&graph));

    // Listing 2: 10-fold CV; RMSE as the agreed scoring mechanism.
    let evaluator = Evaluator::new(CvStrategy::kfold(10), Metric::Rmse).with_threads(4);
    let report = evaluator.evaluate_graph(&graph, &dataset)?;
    println!("{report}");
    let best = report.best().expect("at least one path evaluates");
    println!(
        "best path: {}  (rmse {:.4} over {} folds)",
        best.spec.steps.join(" -> "),
        best.mean_score,
        best.fold_scores.len()
    );

    // Hyper-parameter optimization with the `node__param` convention.
    let mut grid = ParamGrid::new();
    grid.add("pca__n_components", vec![2usize.into(), 4usize.into(), 6usize.into()]);
    grid.add("knn_regressor__k", vec![3usize.into(), 5usize.into(), 9usize.into()]);
    let tuned = evaluator.evaluate_graph_with_grid(&graph, &dataset, &grid)?;
    let best_tuned = tuned.best().expect("grid evaluation succeeds");
    println!(
        "\nafter grid search over {} configurations: {}  (rmse {:.4})",
        tuned.results.len(),
        best_tuned.spec.key(),
        best_tuned.mean_score
    );
    Ok(())
}
