/root/repo/target/debug/examples/solution_templates-3fc48436c606c34d.d: examples/solution_templates.rs Cargo.toml

/root/repo/target/debug/examples/libsolution_templates-3fc48436c606c34d.rmeta: examples/solution_templates.rs Cargo.toml

examples/solution_templates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
