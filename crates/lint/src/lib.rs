//! `coda-lint` — workspace invariant checker (DESIGN.md §10).
//!
//! Three whole-workspace static analyses over a hand-rolled token stream
//! (the offline build vendors no `syn`):
//!
//! 1. **Determinism** ([`determinism`]) — no wall clocks or ambient RNGs
//!    outside the `coda-obs` `Clock` impls and bench binaries, so
//!    same-seed runs replay byte-identically (never baselineable);
//! 2. **Panic safety** ([`panics`]) — no `unwrap`/`expect`/`panic!`-family
//!    calls in library-crate non-test code;
//! 3. **Lock order** ([`locks`]) — an intra-/inter-procedural acquisition
//!    graph over every `Mutex`/`RwLock` site, reporting cycles
//!    (potential deadlocks), non-reentrant re-acquisition, and guards held
//!    across `spawn`/`send`.
//!
//! Pre-existing violations are frozen by the one-way ratchet in
//! [`baseline`]; the escape hatch is a `// lint:allow(<rule>) <reason>`
//! comment whose reason is mandatory.
//!
//! # Examples
//!
//! ```
//! use coda_lint::{analyze_sources, CrateKind, Rule};
//!
//! let src = "fn f() { let t = std::time::Instant::now(); }";
//! let findings = analyze_sources(vec![("lib.rs".into(), CrateKind::Library, src.into())]);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, Rule::Determinism);
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod baseline;
pub mod determinism;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod source;
pub mod walk;

use std::io;
use std::path::Path;

pub use baseline::{Baseline, RatchetCheck};
pub use locks::LockReport;
pub use source::{CrateKind, SourceFile};

/// The lint rules. `as_str` names are what `// lint:allow(<rule>)` takes
/// and what baseline keys use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall clock / ambient RNG outside the Clock impls.
    Determinism,
    /// Panicking call/macro in library non-test code.
    PanicSafety,
    /// Lock-order cycle or non-reentrant re-acquisition.
    LockOrder,
    /// Guard held across a `spawn` or channel `send`.
    LockAcrossSpawn,
    /// `lint:allow` escape hatch without a justification.
    AllowMissingReason,
}

impl Rule {
    /// Stable rule name.
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::PanicSafety => "panic_safety",
            Rule::LockOrder => "lock_order",
            Rule::LockAcrossSpawn => "lock_across_spawn",
            Rule::AllowMissingReason => "allow_missing_reason",
        }
    }

    /// Whether pre-existing violations of this rule may be frozen in the
    /// baseline. Determinism violations and reason-less escape hatches
    /// always fail.
    pub fn is_baselineable(self) -> bool {
        !matches!(self, Rule::Determinism | Rule::AllowMissingReason)
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule violated.
    pub rule: Rule,
    /// Workspace-relative file (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.as_str(), self.message)
    }
}

/// Runs all analyses over in-memory sources: `(rel path, kind, text)`.
/// Returns surviving findings, sorted by `(file, line, rule)`; findings
/// covered by a `lint:allow` directive *with a reason* are suppressed, and
/// every reason-less directive yields an [`Rule::AllowMissingReason`]
/// finding of its own.
pub fn analyze_sources(files: Vec<(String, CrateKind, String)>) -> Vec<Finding> {
    let sources: Vec<SourceFile> =
        files.iter().map(|(rel, kind, text)| SourceFile::parse(rel, *kind, text)).collect();

    let mut findings: Vec<Finding> = Vec::new();
    for sf in &sources {
        findings.extend(determinism::check(sf));
        findings.extend(panics::check(sf));
    }
    findings.extend(locks::check(&sources).findings);

    // escape hatch: suppress allowed findings, flag reason-less directives
    let mut out: Vec<Finding> = Vec::new();
    for f in findings {
        let covered = sources
            .iter()
            .find(|sf| sf.rel == f.file)
            .and_then(|sf| sf.allow_for(f.rule.as_str(), f.line));
        match covered {
            Some(allow) if !allow.reason.is_empty() => {}
            _ => out.push(f),
        }
    }
    for sf in &sources {
        for allow in &sf.allows {
            if allow.reason.is_empty() {
                out.push(Finding {
                    rule: Rule::AllowMissingReason,
                    file: sf.rel.clone(),
                    line: allow.line,
                    message: format!(
                        "`lint:allow({})` without a justification — write \
                         `// lint:allow({}) <why this site is safe>`",
                        allow.rule, allow.rule
                    ),
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Discovers and analyzes every covered file under the workspace `root`.
///
/// # Errors
///
/// Propagates filesystem errors from the workspace walk.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(analyze_sources(walk::workspace_files(root)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> Vec<(String, CrateKind, String)> {
        vec![("lib.rs".to_string(), CrateKind::Library, src.to_string())]
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let findings = analyze_sources(lib(
            "fn f() -> u32 {\n    // lint:allow(panic_safety) the map is non-empty by construction\n    m.get(0).unwrap()\n}\n",
        ));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allow_without_reason_does_not_suppress_and_is_flagged() {
        let findings = analyze_sources(lib(
            "fn f() -> u32 {\n    // lint:allow(panic_safety)\n    m.get(0).unwrap()\n}\n",
        ));
        let rules: Vec<Rule> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&Rule::PanicSafety), "{findings:?}");
        assert!(rules.contains(&Rule::AllowMissingReason), "{findings:?}");
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let findings = analyze_sources(lib(
            "fn f() {\n    // lint:allow(determinism) wrong rule\n    x.unwrap();\n}\n",
        ));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::PanicSafety);
    }

    #[test]
    fn binary_files_skip_panic_and_determinism_but_not_locks() {
        let findings = analyze_sources(vec![(
            "src/bin/tool.rs".to_string(),
            CrateKind::Binary,
            "fn main() {\n let t = std::time::Instant::now();\n x.unwrap();\n \
             let a = s.alpha.lock();\n let b = s.beta.lock();\n let g = held.lock();\n \
             std::thread::spawn(move || {});\n}\n"
                .to_string(),
        )]);
        assert!(findings.iter().all(|f| f.rule == Rule::LockAcrossSpawn), "{findings:?}");
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let findings =
            analyze_sources(lib("#[cfg(test)]\nmod tests {\n fn helper() { x.unwrap(); \
             let t = std::time::Instant::now(); }\n}\n"));
        assert!(findings.is_empty(), "{findings:?}");
    }
}
