/root/repo/target/release/deps/coda_darr-bc44fc413396710e.d: crates/darr/src/lib.rs crates/darr/src/coop.rs crates/darr/src/record.rs crates/darr/src/repo.rs crates/darr/src/resilient.rs

/root/repo/target/release/deps/libcoda_darr-bc44fc413396710e.rlib: crates/darr/src/lib.rs crates/darr/src/coop.rs crates/darr/src/record.rs crates/darr/src/repo.rs crates/darr/src/resilient.rs

/root/repo/target/release/deps/libcoda_darr-bc44fc413396710e.rmeta: crates/darr/src/lib.rs crates/darr/src/coop.rs crates/darr/src/record.rs crates/darr/src/repo.rs crates/darr/src/resilient.rs

crates/darr/src/lib.rs:
crates/darr/src/coop.rs:
crates/darr/src/record.rs:
crates/darr/src/repo.rs:
crates/darr/src/resilient.rs:
